#include "cache/l1_cache.hpp"

#include "support/logging.hpp"

namespace icheck::cache
{

L1Cache::L1Cache(const CacheConfig &config) : cfg(config)
{
    ICHECK_ASSERT(cfg.lineBytes > 0 && (cfg.lineBytes & (cfg.lineBytes - 1))
                  == 0, "line size must be a power of two");
    ICHECK_ASSERT(cfg.associativity > 0, "associativity must be positive");
    const std::size_t num_lines = cfg.sizeBytes / cfg.lineBytes;
    ICHECK_ASSERT(num_lines % cfg.associativity == 0,
                  "cache geometry does not divide evenly");
    numSets = num_lines / cfg.associativity;
    lines.resize(num_lines);
    while ((std::size_t{1} << lineShift) < cfg.lineBytes)
        ++lineShift;
    setsArePow2 = (numSets & (numSets - 1)) == 0;
    if (setsArePow2) {
        while ((std::size_t{1} << setShift) < numSets)
            ++setShift;
    }
}

std::size_t
L1Cache::setIndex(Addr paddr) const
{
    // One divide per simulated access is measurable; the usual power-of-two
    // geometry reduces to shift/mask.
    const Addr line = paddr >> lineShift;
    return setsArePow2 ? (line & (numSets - 1)) : (line % numSets);
}

Addr
L1Cache::tagOf(Addr paddr) const
{
    const Addr line = paddr >> lineShift;
    return setsArePow2 ? (line >> setShift) : (line / numSets);
}

AccessResult
L1Cache::access(Addr paddr, bool is_write)
{
    const std::size_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base = &lines[set * cfg.associativity];
    ++stamp;

    Line *victim = nullptr;
    for (std::size_t way = 0; way < cfg.associativity; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = stamp;
            line.dirty = line.dirty || is_write;
            ++nHits;
            return {true, false};
        }
        if (!victim || !line.valid ||
            (victim->valid && line.lruStamp < victim->lruStamp)) {
            if (!victim || victim->valid)
                victim = &line;
        }
    }

    ++nMisses;
    AccessResult result{false, false};
    ICHECK_ASSERT(victim != nullptr, "no victim line");
    if (victim->valid && victim->dirty) {
        ++nWritebacks;
        result.evictedDirty = true;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lruStamp = stamp;
    return result;
}

bool
L1Cache::resident(Addr paddr) const
{
    const std::size_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    const Line *base = &lines[set * cfg.associativity];
    for (std::size_t way = 0; way < cfg.associativity; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
L1Cache::reset()
{
    for (auto &line : lines)
        line = Line{};
    stamp = 0;
    nHits = nMisses = nWritebacks = 0;
}

} // namespace icheck::cache
