#ifndef ICHECK_CACHE_L1_CACHE_HPP
#define ICHECK_CACHE_L1_CACHE_HPP

/**
 * @file
 * Per-core L1 data cache model (Section 3.1 context).
 *
 * The MHM sits in the L1 controller and reads Data_old from the cache when
 * the write buffer updates a line. The paper's key microarchitectural claim
 * is that obtaining Data_old incurs *no additional cache miss* in
 * write-allocate caches: the write either hits, or the line is brought in
 * anyway to service the write. This model is a tag-only set-associative
 * write-allocate/write-back LRU cache whose statistics let tests verify
 * exactly that claim: enabling the MHM changes no hit/miss counter.
 */

#include <cstdint>
#include <vector>

#include "support/stats.hpp"
#include "support/types.hpp"

namespace icheck::cache
{

/** Geometry of an L1 cache. */
struct CacheConfig
{
    std::size_t sizeBytes = 32 * 1024;
    std::size_t lineBytes = 64;
    std::size_t associativity = 8;
};

/** Outcome of one access. */
struct AccessResult
{
    bool hit = false;
    bool evictedDirty = false; ///< A dirty victim was written back.
};

/**
 * Tag-only set-associative cache with true-LRU replacement. Data stays in
 * the functional SparseMemory; this model tracks architectural state
 * (tags, dirty bits) and statistics.
 */
class L1Cache
{
  public:
    explicit L1Cache(const CacheConfig &config = {});

    /**
     * Perform one access. Write misses allocate (write-allocate); dirty
     * victims count as writebacks.
     */
    AccessResult access(Addr paddr, bool is_write);

    /** True if the line holding @p paddr is currently resident. */
    bool resident(Addr paddr) const;

    /** Invalidate everything (e.g., between runs). */
    void reset();

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }
    std::uint64_t writebacks() const { return nWritebacks; }
    std::uint64_t accesses() const { return nHits + nMisses; }

    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr paddr) const;
    Addr tagOf(Addr paddr) const;

    CacheConfig cfg;
    std::size_t numSets;
    /** log2(lineBytes); line size is asserted to be a power of two. */
    unsigned lineShift = 0;
    /** log2(numSets) when numSets is a power of two, else 0 with
     *  setsArePow2 false — setIndex/tagOf then fall back to divides. */
    unsigned setShift = 0;
    bool setsArePow2 = false;
    std::vector<Line> lines; ///< numSets * associativity, set-major.
    std::uint64_t stamp = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nWritebacks = 0;
};

} // namespace icheck::cache

#endif // ICHECK_CACHE_L1_CACHE_HPP
