#include "cache/write_buffer.hpp"

#include "support/logging.hpp"

namespace icheck::cache
{

WriteBuffer::WriteBuffer(std::size_t capacity, DrainPolicy policy,
                         std::uint64_t seed)
    : cap(capacity), drainPolicy(policy), rng(seed)
{
    ICHECK_ASSERT(cap > 0, "write buffer needs capacity");
}

std::size_t
WriteBuffer::pickIndex()
{
    switch (drainPolicy) {
      case DrainPolicy::Fifo:
        return 0;
      case DrainPolicy::Lifo:
        return entries.size() - 1;
      case DrainPolicy::Random:
        return static_cast<std::size_t>(rng.below(entries.size()));
    }
    ICHECK_PANIC("unknown DrainPolicy");
}

void
WriteBuffer::push(const WriteBufferEntry &entry,
                  const std::function<void(const WriteBufferEntry &)> &sink)
{
    if (entries.size() >= cap) {
        const std::size_t idx = pickIndex();
        sink(entries[idx]);
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    entries.push_back(entry);
}

void
WriteBuffer::drainAll(
    const std::function<void(const WriteBufferEntry &)> &sink)
{
    while (!entries.empty()) {
        const std::size_t idx = pickIndex();
        sink(entries[idx]);
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(idx));
    }
}

} // namespace icheck::cache
