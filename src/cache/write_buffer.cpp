#include "cache/write_buffer.hpp"

#include "support/logging.hpp"

namespace icheck::cache
{

WriteBuffer::WriteBuffer(std::size_t capacity, DrainPolicy policy,
                         std::uint64_t seed)
    : cap(capacity), drainPolicy(policy), rng(seed)
{
    ICHECK_ASSERT(cap > 0, "write buffer needs capacity");
}

std::size_t
WriteBuffer::pickIndex()
{
    switch (drainPolicy) {
      case DrainPolicy::Fifo:
        return 0;
      case DrainPolicy::Lifo:
        return entries.size() - 1;
      case DrainPolicy::Random:
        return static_cast<std::size_t>(rng.below(entries.size()));
    }
    ICHECK_PANIC("unknown DrainPolicy");
}

} // namespace icheck::cache
