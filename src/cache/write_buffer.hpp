#ifndef ICHECK_CACHE_WRITE_BUFFER_HPP
#define ICHECK_CACHE_WRITE_BUFFER_HPP

/**
 * @file
 * The write buffer between the core and the L1 cache (Fig 3a).
 *
 * When a write retires from the ROB, its data and physical address are
 * saved in a write-buffer entry together with the *virtual page number*
 * (VPN) of the destination. When the entry later drains into the L1, the
 * hardware reconstructs V_addr from the saved VPN and the page offset of
 * P_addr and feeds (V_addr, Data_old, Data_new) to the MHM.
 *
 * Section 3.2 stresses that entries may drain in any order without changing
 * the resulting TH, because the hash group is commutative; the buffer
 * therefore supports several drain policies so tests can verify that
 * order-freedom.
 */

#include <cstdint>
#include <deque>

#include "hashing/state_hash.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace icheck::cache
{

/**
 * Linear virtual-to-physical offset of the simulated address space. A
 * nonzero offset makes the VPN-capture mechanism observable: reconstructing
 * V_addr from P_addr alone would produce the wrong hash input.
 */
inline constexpr Addr physOffset = 0x1000'0000'0000ULL;

/** Translate a simulated virtual address to its physical address. */
constexpr Addr
translate(Addr vaddr)
{
    return vaddr + physOffset;
}

/** Page size used for VPN capture. */
inline constexpr Addr vpnPageSize = 4096;

/**
 * One retired store awaiting drain into the L1.
 */
struct WriteBufferEntry
{
    Addr paddr = 0;           ///< Physical address of the store.
    Addr vpn = 0;             ///< Captured virtual page number.
    unsigned width = 0;       ///< Store width in bytes (1..8).
    std::uint64_t oldBits = 0;
    std::uint64_t newBits = 0;
    hashing::ValueClass cls = hashing::ValueClass::Integer;

    /**
     * False when the store retired inside a stop_hashing window (Fig 4):
     * it updates the cache but must not reach the MHM.
     */
    bool hashed = true;

    /** Reconstruct the virtual address from VPN + page offset of P_addr. */
    Addr
    vaddr() const
    {
        return vpn * vpnPageSize + paddr % vpnPageSize;
    }
};

/** Order in which buffered writes drain. */
enum class DrainPolicy
{
    Fifo,
    Lifo,
    Random, ///< Seeded shuffle; exercises Section 3.2's order-freedom.
};

/**
 * Bounded write buffer with pluggable drain order.
 */
class WriteBuffer
{
  public:
    /**
     * @param capacity Max buffered entries before a push forces a drain.
     * @param policy   Drain ordering.
     * @param seed     Seed for the Random policy.
     */
    explicit WriteBuffer(std::size_t capacity = 16,
                         DrainPolicy policy = DrainPolicy::Fifo,
                         std::uint64_t seed = 1);

    /**
     * Enqueue a retired store; if the buffer is full, drains one entry
     * first via @p sink. The sink is a template so the per-store call in
     * the simulator inlines instead of routing through a std::function.
     */
    template <typename Sink>
    void
    push(const WriteBufferEntry &entry, const Sink &sink)
    {
        if (entries.size() >= cap)
            drainOne(sink);
        entries.push_back(entry);
    }

    /** Drain everything via @p sink in policy order. */
    template <typename Sink>
    void
    drainAll(const Sink &sink)
    {
        while (!entries.empty())
            drainOne(sink);
    }

    /** Buffered entry count. */
    std::size_t size() const { return entries.size(); }

  private:
    /** Index of the next entry to drain under the current policy. */
    std::size_t pickIndex();

    /** Pop the policy-selected entry and hand it to @p sink. */
    template <typename Sink>
    void
    drainOne(const Sink &sink)
    {
        const std::size_t idx = pickIndex();
        const WriteBufferEntry entry = entries[idx];
        entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(idx));
        sink(entry);
    }

    std::size_t cap;
    DrainPolicy drainPolicy;
    Xoshiro256 rng;
    std::deque<WriteBufferEntry> entries;
};

} // namespace icheck::cache

#endif // ICHECK_CACHE_WRITE_BUFFER_HPP
