#include "apps/scales.hpp"

#include <memory>

#include "apps/apps.hpp"
#include "support/logging.hpp"

namespace icheck::apps
{

std::string
scaleName(InputScale scale)
{
    switch (scale) {
      case InputScale::Dev:    return "simdev";
      case InputScale::Medium: return "simmedium";
      case InputScale::Large:  return "simlarge";
    }
    ICHECK_PANIC("unknown InputScale");
}

namespace
{

/** Index 0 = Dev, 1 = Medium, 2 = Large. */
std::size_t
idx(InputScale scale)
{
    return static_cast<std::size_t>(scale);
}

template <typename T>
T
pick(InputScale scale, T dev, T medium, T large)
{
    const T values[3] = {dev, medium, large};
    return values[idx(scale)];
}

} // namespace

check::ProgramFactory
scaledFactory(const std::string &app_name, InputScale s)
{
    if (app_name == "blackscholes") {
        return [=] {
            return std::make_unique<Blackscholes>(
                8, pick<std::uint32_t>(s, 32, 96, 256),
                pick<std::uint32_t>(s, 2, 5, 10));
        };
    }
    if (app_name == "fft") {
        return [=] {
            return std::make_unique<Fft>(
                8, pick<std::uint32_t>(s, 6, 8, 10));
        };
    }
    if (app_name == "lu") {
        return [=] {
            return std::make_unique<Lu>(
                8, pick<std::uint32_t>(s, 16, 32, 48),
                pick<std::uint32_t>(s, 8, 8, 8));
        };
    }
    if (app_name == "radix") {
        return [=] {
            return std::make_unique<Radix>(
                8, pick<std::uint32_t>(s, 128, 512, 2048));
        };
    }
    if (app_name == "streamcluster") {
        // Dev is the small input on which the real bug reaches the
        // output; medium/large mask it before program end.
        return [=] {
            return std::make_unique<Streamcluster>(
                8, /*medium_input=*/s != InputScale::Dev,
                /*with_bug=*/true,
                pick<std::uint32_t>(s, 32, 64, 160));
        };
    }
    if (app_name == "swaptions") {
        return [=] {
            return std::make_unique<Swaptions>(
                8, pick<std::uint32_t>(s, 8, 32, 64),
                pick<std::uint32_t>(s, 10, 40, 100));
        };
    }
    if (app_name == "volrend") {
        return [=] {
            return std::make_unique<Volrend>(
                8, pick<std::uint32_t>(s, 2, 5, 10),
                pick<std::uint32_t>(s, 64, 256, 512));
        };
    }
    if (app_name == "fluidanimate") {
        return [=] {
            return std::make_unique<Fluidanimate>(
                8, pick<std::uint32_t>(s, 32, 64, 128),
                pick<std::uint32_t>(s, 2, 5, 8));
        };
    }
    if (app_name == "ocean") {
        return [=] {
            return std::make_unique<Ocean>(
                8, pick<std::uint32_t>(s, 12, 24, 48),
                pick<std::uint32_t>(s, 4, 8, 12));
        };
    }
    if (app_name == "waterNS") {
        return [=] {
            return std::make_unique<WaterNS>(
                8, pick<std::uint32_t>(s, 16, 48, 96),
                pick<std::uint32_t>(s, 3, 5, 8));
        };
    }
    if (app_name == "waterSP") {
        return [=] {
            return std::make_unique<WaterSP>(
                8, pick<std::uint32_t>(s, 16, 48, 96),
                pick<std::uint32_t>(s, 2, 4, 6));
        };
    }
    if (app_name == "cholesky") {
        return [=] {
            return std::make_unique<Cholesky>(
                8, pick<std::uint32_t>(s, 10, 20, 32));
        };
    }
    if (app_name == "pbzip2") {
        return [=] {
            return std::make_unique<Pbzip2>(
                8, pick<std::uint32_t>(s, 6, 12, 24),
                pick<std::uint32_t>(s, 48, 96, 192));
        };
    }
    if (app_name == "sphinx3") {
        return [=] {
            return std::make_unique<Sphinx3>(
                8, pick<std::uint32_t>(s, 10, 40, 100),
                pick<std::uint32_t>(s, 48, 96, 192));
        };
    }
    if (app_name == "barnes") {
        return [=] {
            return std::make_unique<Barnes>(
                8, pick<std::uint32_t>(s, 16, 48, 96),
                pick<std::uint32_t>(s, 1, 2, 3));
        };
    }
    if (app_name == "canneal") {
        return [=] {
            return std::make_unique<Canneal>(
                8, pick<std::uint32_t>(s, 32, 64, 128),
                pick<std::uint32_t>(s, 20, 60, 150));
        };
    }
    if (app_name == "radiosity") {
        return [=] {
            return std::make_unique<Radiosity>(
                8, pick<std::uint32_t>(s, 16, 48, 96),
                pick<std::uint32_t>(s, 2, 3, 5));
        };
    }
    ICHECK_PANIC("unknown app ", app_name);
}

} // namespace icheck::apps
