/**
 * @file
 * streamcluster, including a model of the real PARSEC 2.1 bug the paper
 * found with InstantCheck (Section 7.2.1): a non-benign data race that
 * creates an order violation. Intermediate barriers observe the
 * nondeterminism; for medium inputs a later deterministic rewrite masks it
 * before the program end, while for small inputs it propagates into the
 * output — exactly the behaviour that makes checking at *every* barrier
 * (cheap with HW-InstantCheck) worthwhile.
 */

#include "apps/apps.hpp"

#include <cmath>

namespace icheck::apps
{

using mem::tArray;
using mem::tDouble;
using mem::tInt32;
using mem::tInt64;

Streamcluster::Streamcluster(ThreadId threads, bool medium_input,
                             bool with_bug, std::uint32_t points)
    : BaseApp(threads), mediumInput(medium_input), withBug(with_bug),
      points(points)
{
    iterations = mediumInput ? 24 : 8;
    buggyFirst = 4;
    buggyLast = mediumInput ? 10 : iterations; // window of racy iterations
    resetIteration = mediumInput ? 16 : iterations + 1; // never, if small
}

void
Streamcluster::setup(sim::SetupCtx &ctx)
{
    coords = ctx.global("coords", tArray(tDouble(), points));
    partials = ctx.global("partials", tArray(tDouble(), threads));
    cost = ctx.global("cost", tDouble());
    scratch = ctx.global("scratch", tArray(tInt32(), points));
    param = ctx.global("param", tDouble());
    ready = ctx.global("ready", tInt64());
    for (std::uint32_t i = 0; i < points; ++i)
        ctx.init<double>(coords + 8 * i, ctx.rng().uniform() * 10);
    ctx.init<double>(param, 1.0);
    phaseBarrier = ctx.barrier(threads);
}

void
Streamcluster::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = points * ctx.tid() / threads;
    const std::uint32_t hi = points * (ctx.tid() + 1) / threads;

    for (std::uint32_t iter = 0; iter < iterations; ++iter) {
        // Thread 0 publishes this iteration's clustering parameter.
        if (ctx.tid() == 0) {
            ctx.store<double>(param, 1.0 + 0.01 * iter);
            ctx.store<std::int64_t>(ready,
                                    static_cast<std::int64_t>(iter));
        }
        const bool racy_window =
            withBug && iter >= buggyFirst && iter < buggyLast;
        // The fix (and all iterations outside the bug window): a barrier
        // orders the publication before the consumers' reads. The bug:
        // consumers read immediately — an order violation — and may use
        // the previous iteration's parameter.
        if (!racy_window)
            ctx.barrier(phaseBarrier);
        const double p = ctx.load<double>(param);

        // Phase 1: schedule work assignments into scratch.
        for (std::uint32_t i = lo; i < hi; ++i) {
            const double c = ctx.load<double>(coords + 8 * i);
            ctx.store<std::int32_t>(
                scratch + 4 * i,
                static_cast<std::int32_t>(c * 10 + p * 100) % 7);
            ctx.tick(20);
        }
        ctx.barrier(phaseBarrier);

        // Phase 2: per-thread cost partials over the scratch assignment.
        double local = 0;
        for (std::uint32_t i = lo; i < hi; ++i) {
            const auto s = ctx.load<std::int32_t>(scratch + 4 * i);
            const double c = ctx.load<double>(coords + 8 * i);
            local += c * (1.0 + 0.125 * s);
            ctx.tick(15);
        }
        ctx.store<double>(partials + 8 * ctx.tid(), local);
        ctx.barrier(phaseBarrier);

        // Phase 3: thread 0 reduces in fixed order; at the reset
        // iteration the scratch is deterministically rewritten, which is
        // what masks the bug for medium inputs.
        if (ctx.tid() == 0) {
            double total = 0;
            for (ThreadId t = 0; t < threads; ++t)
                total += ctx.load<double>(partials + 8 * t);
            ctx.store<double>(cost, total);
            if (iter == resetIteration) {
                for (std::uint32_t i = 0; i < points; ++i) {
                    const double c = ctx.load<double>(coords + 8 * i);
                    ctx.store<std::int32_t>(
                        scratch + 4 * i,
                        static_cast<std::int32_t>(c * 10) % 7);
                }
            }
        }
        ctx.barrier(phaseBarrier);
    }

    if (ctx.tid() == 0) {
        // Program output: final cost plus the scratch checksum. For small
        // inputs the bug's corruption is still present here.
        const double final_cost = ctx.load<double>(cost);
        std::int64_t checksum = 0;
        for (std::uint32_t i = 0; i < points; ++i)
            checksum += ctx.load<std::int32_t>(scratch + 4 * i);
        ctx.outputValue(final_cost);
        ctx.outputValue(checksum);
    }
}

} // namespace icheck::apps
