/**
 * @file
 * The nondeterministic workloads of Table 1: barnes (racy tree build
 * whose shape depends on insertion interleaving), canneal (unlocked
 * simulated-annealing swaps), radiosity (task stealing leaking into
 * results). All end in schedule-dependent states with many differences —
 * the class the paper reports as NDet and suggests rewriting (a Java
 * barnes was made deterministic in DPJ).
 */

#include "apps/apps.hpp"

#include <cmath>

namespace icheck::apps
{

using mem::tArray;
using mem::tDouble;
using mem::tInt64;
using mem::tPointer;
using mem::tStruct;

// --------------------------------------------------------------------
// barnes
// --------------------------------------------------------------------

namespace
{

/** Tree node shape: { left, right, key, mass }. */
mem::TypeRef
barnesNodeType()
{
    return tStruct({tPointer(), tPointer(), tInt64(), tDouble()});
}

} // namespace

Barnes::Barnes(ThreadId threads, std::uint32_t bodies,
               std::uint32_t steps)
    : BaseApp(threads), bodies(bodies), steps(steps)
{}

void
Barnes::setup(sim::SetupCtx &ctx)
{
    keys = ctx.global("keys", tArray(tInt64(), bodies));
    root = ctx.global("root", tPointer());
    forces = ctx.global("forces", tArray(tDouble(), bodies));
    for (std::uint32_t i = 0; i < bodies; ++i) {
        ctx.init<std::int64_t>(
            keys + 8 * i,
            static_cast<std::int64_t>(ctx.rng().below(1u << 20)));
    }
    treeMutex = ctx.mutex();
    stepBarrier = ctx.barrier(threads);
}

void
Barnes::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = bodies * ctx.tid() / threads;
    const std::uint32_t hi = bodies * (ctx.tid() + 1) / threads;

    // Phase 1: racy-order tree build. The lock keeps the structure
    // consistent, but the BST *shape* depends on insertion interleaving —
    // externally visible nondeterminism.
    for (std::uint32_t i = lo; i < hi; ++i) {
        const auto key = ctx.load<std::int64_t>(keys + 8 * i);
        const Addr node = ctx.malloc("barnes.cpp:node",
                                     barnesNodeType());
        ctx.store<std::int64_t>(node + 16, key);
        ctx.store<double>(node + 24, 1.0 + 0.001 * (key % 97));
        ctx.lock(treeMutex);
        Addr parent = ctx.loadPtr(root);
        if (parent == 0) {
            ctx.storePtr(root, node);
        } else {
            for (;;) {
                const auto pkey = ctx.load<std::int64_t>(parent + 16);
                const Addr slot = key < pkey ? parent : parent + 8;
                const Addr child = ctx.loadPtr(slot);
                if (child == 0) {
                    ctx.storePtr(slot, node);
                    break;
                }
                parent = child;
                ctx.tick(4);
            }
        }
        ctx.unlock(treeMutex);
    }
    ctx.barrier(stepBarrier);

    // Phase 2..: force computation from depth-dependent traversals; the
    // tree shape feeds straight into the results.
    for (std::uint32_t step = 0; step < steps; ++step) {
        for (std::uint32_t i = lo; i < hi; ++i) {
            const auto key = ctx.load<std::int64_t>(keys + 8 * i);
            const Addr slot = forces + 8 * i;
            ctx.store<double>(slot, 0.0);
            Addr walk = ctx.loadPtr(root);
            std::uint32_t depth = 0;
            // Accumulate the force in memory per tree level (as the
            // straightforward SPLASH-2 code does): barnes is write-heavy
            // between checkpoints, which is why traversal hashing beats
            // incremental hashing for it in Figure 6.
            while (walk != 0 && depth < 64) {
                const auto wkey = ctx.load<std::int64_t>(walk + 16);
                const double mass = ctx.load<double>(walk + 24);
                ctx.store<double>(slot, ctx.load<double>(slot) +
                                            mass / (1.0 + depth));
                walk = key < wkey ? ctx.loadPtr(walk)
                                  : ctx.loadPtr(walk + 8);
                ++depth;
                ctx.tick(8);
            }
        }
        ctx.barrier(stepBarrier);
    }
}

// --------------------------------------------------------------------
// canneal
// --------------------------------------------------------------------

Canneal::Canneal(ThreadId threads, std::uint32_t elements,
                 std::uint32_t moves)
    : BaseApp(threads), elements(elements), moves(moves)
{}

void
Canneal::setup(sim::SetupCtx &ctx)
{
    placement = ctx.global("placement", tArray(tInt64(), elements));
    for (std::uint32_t i = 0; i < elements; ++i)
        ctx.init<std::int64_t>(placement + 8 * i,
                               static_cast<std::int64_t>(i * 13 % 101));
    roundBarrier = ctx.barrier(threads);
}

void
Canneal::threadMain(sim::ThreadCtx &ctx)
{
    // Simulated annealing with *unlocked* element swaps: the paper's
    // truly nondeterministic algorithm class. Each thread's random picks
    // are themselves deterministic (intercepted rand), so all remaining
    // nondeterminism is thread interleaving.
    for (std::uint32_t half = 0; half < 2; ++half) {
        for (std::uint32_t m = 0; m < moves / 2; ++m) {
            const auto i = static_cast<std::uint32_t>(ctx.rand64() %
                                                      elements);
            const auto j = static_cast<std::uint32_t>(ctx.rand64() %
                                                      elements);
            const auto a = ctx.load<std::int64_t>(placement + 8 * i);
            const auto b = ctx.load<std::int64_t>(placement + 8 * j);
            ctx.tick(10);
            if ((a + i) % 7 > (b + j) % 7) {
                ctx.store<std::int64_t>(placement + 8 * i, b);
                ctx.store<std::int64_t>(placement + 8 * j, a);
            }
        }
        ctx.barrier(roundBarrier);
    }
}

// --------------------------------------------------------------------
// radiosity
// --------------------------------------------------------------------

Radiosity::Radiosity(ThreadId threads, std::uint32_t patches,
                     std::uint32_t rounds)
    : BaseApp(threads), patches(patches), rounds(rounds)
{}

void
Radiosity::setup(sim::SetupCtx &ctx)
{
    // Integer energies (the paper's radiosity row has FP == N).
    energy = ctx.global("energy", tArray(tInt64(), patches));
    owner = ctx.global("owner", tArray(tInt64(), patches));
    nextTask = ctx.global("next_task", tInt64());
    for (std::uint32_t i = 0; i < patches; ++i)
        ctx.init<std::int64_t>(energy + 8 * i,
                               1000 + static_cast<std::int64_t>(
                                          ctx.rng().below(1000)));
    taskMutex = ctx.mutex();
    roundBarrier = ctx.barrier(threads);
}

void
Radiosity::threadMain(sim::ThreadCtx &ctx)
{
    for (std::uint32_t round = 0; round < rounds; ++round) {
        if (ctx.tid() == 0)
            ctx.store<std::int64_t>(nextTask, 0);
        ctx.barrier(roundBarrier);

        // Work stealing: tasks go to whichever thread grabs them; the
        // grabbing thread's identity and racy neighbor reads leak into
        // the results.
        for (;;) {
            ctx.lock(taskMutex);
            const auto t = ctx.load<std::int64_t>(nextTask);
            if (t >= static_cast<std::int64_t>(patches)) {
                ctx.unlock(taskMutex);
                break;
            }
            ctx.store<std::int64_t>(nextTask, t + 1);
            ctx.unlock(taskMutex);

            const auto patch = static_cast<std::uint32_t>(t);
            const std::uint32_t left = (patch + patches - 1) % patches;
            const std::uint32_t right = (patch + 1) % patches;
            // Neighbors may be mid-update in this round: racy reads.
            const std::int64_t gather =
                (ctx.load<std::int64_t>(energy + 8 * left) +
                 ctx.load<std::int64_t>(energy + 8 * right)) /
                2;
            const Addr cell = energy + 8 * patch;
            ctx.store<std::int64_t>(
                cell,
                (7 * ctx.load<std::int64_t>(cell) + 3 * gather) / 10);
            ctx.store<std::int64_t>(owner + 8 * patch, ctx.tid());
            ctx.tick(30);
        }
        ctx.barrier(roundBarrier);
    }
}

} // namespace icheck::apps
