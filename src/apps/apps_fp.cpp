/**
 * @file
 * The "deterministic after FP rounding" workloads of Table 1:
 * fluidanimate, ocean, waterNS, waterSP. All accumulate floating-point
 * sums in schedule-dependent order under locks — each location receives a
 * fixed multiset of contributions, so results differ only in reassociation
 * noise that the round-off unit absorbs.
 *
 * waterNS and waterSP carry the Figure 7 bug seeds (semantic bug and
 * atomicity violation, thread 3 only), whose effects exceed the rounding
 * grain and are therefore detected as nondeterminism (Table 2).
 */

#include "apps/apps.hpp"

#include <cmath>

namespace icheck::apps
{

using mem::tArray;
using mem::tDouble;

// --------------------------------------------------------------------
// fluidanimate
// --------------------------------------------------------------------

Fluidanimate::Fluidanimate(ThreadId threads, std::uint32_t cells,
                           std::uint32_t steps)
    : BaseApp(threads), cells(cells), steps(steps)
{}

void
Fluidanimate::setup(sim::SetupCtx &ctx)
{
    density = ctx.global("density", tArray(tDouble(), cells));
    position = ctx.global("position", tArray(tDouble(), cells));
    for (std::uint32_t i = 0; i < cells; ++i)
        ctx.init<double>(position + 8 * i, ctx.rng().uniform() * 5);
    cellMutex = ctx.mutex();
    stepBarrier = ctx.barrier(threads);
}

void
Fluidanimate::threadMain(sim::ThreadCtx &ctx)
{
    // Strided particle ownership: neighbors of any particle belong to
    // *other* threads at similar loop positions, so the lock-protected
    // neighbor accumulations interleave differently under every schedule
    // (contiguous slices would only race at slice edges, and fair
    // scheduling keeps those in stable order).
    for (std::uint32_t step = 0; step < steps; ++step) {
        // Clear this thread's cells (single-writer).
        for (std::uint32_t i = ctx.tid(); i < cells; i += threads)
            ctx.store<double>(density + 8 * i, 0.0);
        ctx.barrier(stepBarrier);

        // Each particle contributes to its neighbor cells; the shared
        // accumulation order depends on the schedule. Contribution
        // magnitudes span several orders of magnitude so that summation
        // order is visible in the last bits (as with real SPH kernels).
        for (std::uint32_t i = ctx.tid(); i < cells; i += threads) {
            const double p = ctx.load<double>(position + 8 * i);
            for (int d = -2; d <= 2; ++d) {
                const std::uint32_t j =
                    (i + cells + static_cast<std::uint32_t>(d + 2) - 2) %
                    cells;
                // Source-particle-dependent magnitudes: each cell gathers
                // terms spanning ~6 decades, so summation order shows in
                // the result bits whenever two threads interleave.
                const double scale =
                    std::pow(10.0,
                             -static_cast<double>((i * 3) % 7));
                const double w = scale / (3.0 + p + d * 0.5);
                ctx.lock(cellMutex);
                const double cur = ctx.load<double>(density + 8 * j);
                ctx.store<double>(density + 8 * j, cur + w);
                ctx.unlock(cellMutex);
                ctx.tick(18);
            }
        }
        ctx.barrier(stepBarrier);
    }
}

// --------------------------------------------------------------------
// ocean
// --------------------------------------------------------------------

Ocean::Ocean(ThreadId threads, std::uint32_t dim,
             std::uint32_t iterations)
    : BaseApp(threads), dim(dim), iterations(iterations)
{}

void
Ocean::setup(sim::SetupCtx &ctx)
{
    grid = ctx.global("grid", tArray(tDouble(), dim * dim));
    residual = ctx.global("residual", tDouble());
    for (std::uint32_t i = 0; i < dim * dim; ++i)
        ctx.init<double>(grid + 8 * i, ctx.rng().uniform());
    residualMutex = ctx.mutex();
    sweepBarrier = ctx.barrier(threads);
}

void
Ocean::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t row_lo = 1 + (dim - 2) * ctx.tid() / threads;
    const std::uint32_t row_hi = 1 + (dim - 2) * (ctx.tid() + 1) / threads;
    auto at = [&](std::uint32_t r, std::uint32_t c) {
        return grid + 8 * (r * dim + c);
    };
    auto sweep = [&](std::uint32_t color) {
        for (std::uint32_t r = row_lo; r < row_hi; ++r) {
            for (std::uint32_t c = 1 + (r + color) % 2; c < dim - 1;
                 c += 2) {
                const double center = ctx.load<double>(at(r, c));
                const double next =
                    0.25 * (ctx.load<double>(at(r - 1, c)) +
                            ctx.load<double>(at(r + 1, c)) +
                            ctx.load<double>(at(r, c - 1)) +
                            ctx.load<double>(at(r, c + 1))) *
                        0.9 +
                    0.1 * center;
                ctx.store<double>(at(r, c), next);
                ctx.tick(12);
            }
        }
    };

    for (std::uint32_t iter = 0; iter < iterations; ++iter) {
        // Red/black Gauss-Seidel: single-writer cells, barrier-ordered
        // neighbor reads — bit-by-bit deterministic.
        sweep(0);
        ctx.barrier(sweepBarrier);
        sweep(1);
        ctx.barrier(sweepBarrier);

        // Global residual reduction: the FP nondeterminism source.
        if (ctx.tid() == 0)
            ctx.store<double>(residual, 0.0005);
        ctx.barrier(sweepBarrier);
        double local = 0;
        for (std::uint32_t r = row_lo; r < row_hi; ++r) {
            for (std::uint32_t c = 1; c < dim - 1; ++c)
                local += std::fabs(ctx.load<double>(at(r, c)));
        }
        ctx.lock(residualMutex);
        ctx.store<double>(residual,
                          ctx.load<double>(residual) + local);
        ctx.unlock(residualMutex);
        ctx.barrier(sweepBarrier);
    }
}

// --------------------------------------------------------------------
// waterNS (semantic-bug seed, Figure 7(a))
// --------------------------------------------------------------------

WaterNS::WaterNS(ThreadId threads, std::uint32_t molecules,
                 std::uint32_t steps, BugSeed bug)
    : BaseApp(threads), molecules(molecules), steps(steps), bug(bug)
{}

void
WaterNS::setup(sim::SetupCtx &ctx)
{
    pos = ctx.global("pos", tArray(tDouble(), molecules));
    vel = ctx.global("vel", tArray(tDouble(), molecules));
    potential = ctx.global("potential", tDouble());
    for (std::uint32_t i = 0; i < molecules; ++i) {
        ctx.init<double>(pos + 8 * i, ctx.rng().uniform() * 3);
        ctx.init<double>(vel + 8 * i, ctx.rng().uniform() - 0.5);
    }
    ctx.init<double>(potential, 0.0005);
    energyMutex = ctx.mutex();
    stepBarrier = ctx.barrier(threads);
}

void
WaterNS::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = molecules * ctx.tid() / threads;
    const std::uint32_t hi = molecules * (ctx.tid() + 1) / threads;
    for (std::uint32_t step = 0; step < steps; ++step) {
        if (ctx.tid() == 0)
            ctx.store<double>(potential, 0.0005);
        ctx.barrier(stepBarrier);

        // Force computation on this thread's molecules (single-writer).
        double local = 0;
        for (std::uint32_t i = lo; i < hi; ++i) {
            const double p = ctx.load<double>(pos + 8 * i);
            const double f = 0.01 * std::sin(p * 3.0);
            ctx.store<double>(vel + 8 * i,
                              ctx.load<double>(vel + 8 * i) + f);
            local += 1.0 / (1.5 + p);
            ctx.tick(25);
        }
        if (bug == BugSeed::Semantic && ctx.tid() == buggyThread) {
            // Figure 7(a): the buggy thread scales its contribution by a
            // *racy read* of the shared accumulator — a semantic bug whose
            // result depends on how many threads have already added.
            const double racy = ctx.load<double>(potential);
            local = local * (1.0 + 0.05 * racy);
        }
        ctx.lock(energyMutex);
        ctx.store<double>(potential,
                          ctx.load<double>(potential) + local);
        ctx.unlock(energyMutex);
        ctx.barrier(stepBarrier);

        // Position integration (single-writer).
        for (std::uint32_t i = lo; i < hi; ++i) {
            ctx.store<double>(pos + 8 * i,
                              ctx.load<double>(pos + 8 * i) +
                                  0.1 * ctx.load<double>(vel + 8 * i));
            ctx.tick(10);
        }
        ctx.barrier(stepBarrier);
    }
}

// --------------------------------------------------------------------
// waterSP (atomicity-violation seed, Figure 7(b))
// --------------------------------------------------------------------

WaterSP::WaterSP(ThreadId threads, std::uint32_t molecules,
                 std::uint32_t steps, BugSeed bug)
    : BaseApp(threads), molecules(molecules), steps(steps), bug(bug)
{}

void
WaterSP::setup(sim::SetupCtx &ctx)
{
    pos = ctx.global("pos", tArray(tDouble(), molecules));
    kinetic = ctx.global("kinetic", tDouble());
    for (std::uint32_t i = 0; i < molecules; ++i)
        ctx.init<double>(pos + 8 * i, ctx.rng().uniform() * 2);
    ctx.init<double>(kinetic, 0.0005);
    energyMutex = ctx.mutex();
    stepBarrier = ctx.barrier(threads);
}

void
WaterSP::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = molecules * ctx.tid() / threads;
    const std::uint32_t hi = molecules * (ctx.tid() + 1) / threads;
    for (std::uint32_t step = 0; step < steps; ++step) {
        if (ctx.tid() == 0)
            ctx.store<double>(kinetic, 0.0005);
        ctx.barrier(stepBarrier);

        double local = 0;
        for (std::uint32_t i = lo; i < hi; ++i) {
            const double p = ctx.load<double>(pos + 8 * i);
            ctx.store<double>(pos + 8 * i, p + 0.01 * std::cos(p));
            local += p * p * 0.1;
            ctx.tick(22);
        }
        if (bug == BugSeed::AtomicityViolation &&
            ctx.tid() == buggyThread) {
            // Figure 7(b): read-modify-write without the lock. The racy
            // region spans an unrelated critical section (a common real
            // shape for atomicity violations), so the serializing
            // scheduler always gets a switch point inside the window and
            // other threads' locked updates can be lost.
            const double k = ctx.load<double>(kinetic);
            ctx.lock(energyMutex);
            const double probe = ctx.load<double>(pos + 8 * lo);
            ctx.unlock(energyMutex);
            ctx.tick(static_cast<InstCount>(probe > -1e9 ? 10 : 11));
            ctx.store<double>(kinetic, k + local);
        } else {
            ctx.lock(energyMutex);
            ctx.store<double>(kinetic,
                              ctx.load<double>(kinetic) + local);
            ctx.unlock(energyMutex);
        }
        ctx.barrier(stepBarrier);
    }
}

} // namespace icheck::apps
