#ifndef ICHECK_APPS_APP_REGISTRY_HPP
#define ICHECK_APPS_APP_REGISTRY_HPP

/**
 * @file
 * Registry of the 17 evaluation workloads with their Table 1 metadata:
 * source suite, FP usage, expected determinism class, and the ignore
 * specification used to isolate small nondeterministic structures.
 */

#include <string>
#include <vector>

#include "check/driver.hpp"
#include "check/ignore.hpp"

namespace icheck::apps
{

/** The four determinism classes of Table 1. */
enum class DetClass
{
    BitByBit,    ///< Deterministic as-is.
    FpRounding,  ///< Deterministic after FP round-off.
    SmallStruct, ///< Deterministic after ignoring small structures.
    NonDet,      ///< Nondeterministic.
};

/** Printable class label. */
std::string detClassName(DetClass cls);

/** One registered workload. */
struct AppInfo
{
    std::string name;
    std::string source; ///< parsec / splash2 / openSrc / alpBench.
    bool usesFp = false;
    DetClass expected = DetClass::BitByBit;

    /** Structures to isolate (empty unless class is SmallStruct). */
    check::IgnoreSpec ignores;

    /** Factory for the default-input configuration. */
    check::ProgramFactory factory;

    /** Extra note rendered in reports (e.g., the streamcluster bug). */
    std::string note;
};

/** All 17 workloads in the paper's Table 1 order. */
const std::vector<AppInfo> &registry();

/** Workload by name (panics if absent). */
const AppInfo &findApp(const std::string &name);

/**
 * Workload by name, or null if absent. The campaign service validates
 * untrusted request payloads through this — an unknown app must become
 * an error *response*, never a process panic.
 */
const AppInfo *tryFindApp(const std::string &name);

} // namespace icheck::apps

#endif // ICHECK_APPS_APP_REGISTRY_HPP
