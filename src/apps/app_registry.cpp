#include "apps/app_registry.hpp"

#include <memory>

#include "apps/apps.hpp"
#include "support/logging.hpp"

namespace icheck::apps
{

std::string
detClassName(DetClass cls)
{
    switch (cls) {
      case DetClass::BitByBit:    return "bit-by-bit";
      case DetClass::FpRounding:  return "FP-precision";
      case DetClass::SmallStruct: return "small-struct";
      case DetClass::NonDet:      return "NDet";
    }
    ICHECK_PANIC("unknown DetClass");
}

namespace
{

template <typename App, typename... Args>
check::ProgramFactory
factoryOf(Args... args)
{
    return [=] { return std::make_unique<App>(8, args...); };
}

std::vector<AppInfo>
buildRegistry()
{
    std::vector<AppInfo> apps;

    // --- bit-by-bit deterministic ------------------------------------
    apps.push_back({"blackscholes", "parsec", true, DetClass::BitByBit,
                    {}, factoryOf<Blackscholes>(), ""});
    apps.push_back({"fft", "splash2", true, DetClass::BitByBit, {},
                    factoryOf<Fft>(), ""});
    apps.push_back({"lu", "splash2", true, DetClass::BitByBit, {},
                    factoryOf<Lu>(), ""});
    apps.push_back({"radix", "splash2", false, DetClass::BitByBit, {},
                    factoryOf<Radix>(), ""});
    apps.push_back({"streamcluster", "parsec", true, DetClass::BitByBit,
                    {},
                    [] {
                        return std::make_unique<Streamcluster>(
                            8, /*medium_input=*/true, /*with_bug=*/true);
                    },
                    "version 2.1 order-violation bug: nondeterministic "
                    "internal barriers, masked at program end for the "
                    "medium input"});
    apps.push_back({"swaptions", "parsec", true, DetClass::BitByBit, {},
                    factoryOf<Swaptions>(), ""});
    apps.push_back({"volrend", "splash2", false, DetClass::BitByBit, {},
                    factoryOf<Volrend>(),
                    "benign data race in a hand-coded barrier"});

    // --- deterministic after FP rounding ------------------------------
    apps.push_back({"fluidanimate", "parsec", true, DetClass::FpRounding,
                    {}, factoryOf<Fluidanimate>(), ""});
    apps.push_back({"ocean", "splash2", true, DetClass::FpRounding, {},
                    factoryOf<Ocean>(), ""});
    apps.push_back({"waterNS", "splash2", true, DetClass::FpRounding, {},
                    factoryOf<WaterNS>(), ""});
    apps.push_back({"waterSP", "splash2", true, DetClass::FpRounding, {},
                    factoryOf<WaterSP>(), ""});

    // --- deterministic after ignoring small structures ----------------
    {
        check::IgnoreSpec ignores;
        ignores.sites.push_back(Cholesky::taskNodeSite());
        ignores.globals.push_back("free_task_head");
        apps.push_back({"cholesky", "splash2", true,
                        DetClass::SmallStruct, ignores,
                        factoryOf<Cholesky>(),
                        "nondeterministic freeTask linked list"});
    }
    {
        check::IgnoreSpec ignores;
        ignores.fields.push_back({Pbzip2::taskSite(),
                                  Pbzip2::resultPtrOffset,
                                  Pbzip2::resultPtrWidth});
        apps.push_back({"pbzip2", "openSrc", false,
                        DetClass::SmallStruct, ignores,
                        factoryOf<Pbzip2>(),
                        "dangling result pointers in task structs; "
                        "output stream hashed and deterministic"});
    }
    {
        check::IgnoreSpec ignores;
        ignores.sites.push_back(Sphinx3::scratchSite());
        ignores.globals.push_back("scratch_ptrs");
        apps.push_back({"sphinx3", "alpBench", true,
                        DetClass::SmallStruct, ignores,
                        factoryOf<Sphinx3>(),
                        "nondeterministic scratch allocations (~4% of "
                        "state)"});
    }

    // --- nondeterministic ----------------------------------------------
    apps.push_back({"barnes", "splash2", true, DetClass::NonDet, {},
                    factoryOf<Barnes>(), "tree shape depends on "
                                         "insertion interleaving"});
    apps.push_back({"canneal", "parsec", false, DetClass::NonDet, {},
                    factoryOf<Canneal>(), "unlocked annealing swaps"});
    apps.push_back({"radiosity", "splash2", false, DetClass::NonDet, {},
                    factoryOf<Radiosity>(),
                    "task stealing leaks into results"});
    return apps;
}

} // namespace

const std::vector<AppInfo> &
registry()
{
    static const std::vector<AppInfo> apps = buildRegistry();
    return apps;
}

const AppInfo &
findApp(const std::string &name)
{
    if (const AppInfo *app = tryFindApp(name))
        return *app;
    ICHECK_PANIC("unknown app ", name);
}

const AppInfo *
tryFindApp(const std::string &name)
{
    for (const AppInfo &app : registry()) {
        if (app.name == name)
            return &app;
    }
    return nullptr;
}

} // namespace icheck::apps
