/**
 * @file
 * The bit-by-bit deterministic workloads of Table 1 (minus streamcluster,
 * which lives in its own file): blackscholes, fft, lu, radix, swaptions,
 * volrend. Each partitions work so that every memory location has exactly
 * one writer between barriers, which is why even their FP results are
 * schedule-invariant.
 */

#include "apps/apps.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace icheck::apps
{

using mem::tArray;
using mem::tDouble;
using mem::tInt32;
using mem::tInt64;

// --------------------------------------------------------------------
// blackscholes
// --------------------------------------------------------------------

Blackscholes::Blackscholes(ThreadId threads, std::uint32_t options,
                           std::uint32_t iterations)
    : BaseApp(threads), options(options), iterations(iterations)
{}

void
Blackscholes::setup(sim::SetupCtx &ctx)
{
    spot = ctx.global("spot", tArray(tDouble(), options));
    strike = ctx.global("strike", tArray(tDouble(), options));
    vol = ctx.global("vol", tArray(tDouble(), options));
    prices = ctx.global("prices", tArray(tDouble(), options));
    for (std::uint32_t i = 0; i < options; ++i) {
        ctx.init<double>(spot + 8 * i, 50.0 + ctx.rng().uniform() * 100);
        ctx.init<double>(strike + 8 * i, 50.0 + ctx.rng().uniform() * 100);
        ctx.init<double>(vol + 8 * i, 0.1 + ctx.rng().uniform() * 0.5);
    }
    iterBarrier = ctx.barrier(threads);
}

void
Blackscholes::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = options * ctx.tid() / threads;
    const std::uint32_t hi = options * (ctx.tid() + 1) / threads;
    for (std::uint32_t iter = 0; iter < iterations; ++iter) {
        for (std::uint32_t i = lo; i < hi; ++i) {
            const double s = ctx.load<double>(spot + 8 * i);
            const double k = ctx.load<double>(strike + 8 * i);
            const double v = ctx.load<double>(vol + 8 * i);
            // A cheap Black-Scholes-flavored closed form; the exact shape
            // is irrelevant, single-writer FP determinism is the point.
            const double d1 = (std::log(s / k) + 0.5 * v * v) / v;
            const double price =
                s * (0.5 + 0.5 * std::tanh(d1)) -
                k * (0.5 + 0.5 * std::tanh(d1 - v));
            ctx.store<double>(prices + 8 * i, price);
            ctx.tick(40);
        }
        // The paper checks blackscholes at the end of each simulation-pass
        // iteration; the barrier provides exactly that checkpoint.
        ctx.barrier(iterBarrier);
    }
}

// --------------------------------------------------------------------
// fft
// --------------------------------------------------------------------

Fft::Fft(ThreadId threads, std::uint32_t log2n)
    : BaseApp(threads), log2n(log2n), n(1u << log2n)
{}

void
Fft::setup(sim::SetupCtx &ctx)
{
    re = ctx.global("re", tArray(tDouble(), n));
    im = ctx.global("im", tArray(tDouble(), n));
    for (std::uint32_t i = 0; i < n; ++i) {
        ctx.init<double>(re + 8 * i, ctx.rng().uniform() * 2 - 1);
        ctx.init<double>(im + 8 * i, ctx.rng().uniform() * 2 - 1);
    }
    stageBarrier = ctx.barrier(threads);
}

void
Fft::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t pairs = n / 2;
    const std::uint32_t lo = pairs * ctx.tid() / threads;
    const std::uint32_t hi = pairs * (ctx.tid() + 1) / threads;
    for (std::uint32_t stage = 0; stage < log2n; ++stage) {
        const std::uint32_t half = 1u << stage;
        for (std::uint32_t k = lo; k < hi; ++k) {
            const std::uint32_t i =
                (k / half) * 2 * half + (k % half);
            const std::uint32_t j = i + half;
            const double angle = -3.14159265358979323846 *
                                 static_cast<double>(k % half) /
                                 static_cast<double>(half);
            const double wr = std::cos(angle);
            const double wi = std::sin(angle);
            const double ar = ctx.load<double>(re + 8 * i);
            const double ai = ctx.load<double>(im + 8 * i);
            const double br = ctx.load<double>(re + 8 * j);
            const double bi = ctx.load<double>(im + 8 * j);
            const double tr = wr * br - wi * bi;
            const double ti = wr * bi + wi * br;
            ctx.store<double>(re + 8 * i, ar + tr);
            ctx.store<double>(im + 8 * i, ai + ti);
            ctx.store<double>(re + 8 * j, ar - tr);
            ctx.store<double>(im + 8 * j, ai - ti);
            ctx.tick(30);
        }
        ctx.barrier(stageBarrier);
    }
}

// --------------------------------------------------------------------
// lu
// --------------------------------------------------------------------

Lu::Lu(ThreadId threads, std::uint32_t dim, std::uint32_t block)
    : BaseApp(threads), dim(dim), block(block)
{}

void
Lu::setup(sim::SetupCtx &ctx)
{
    matrix = ctx.global("matrix", tArray(tDouble(), dim * dim));
    for (std::uint32_t r = 0; r < dim; ++r) {
        for (std::uint32_t c = 0; c < dim; ++c) {
            const double base = r == c ? dim + 1.0 : 0.0;
            ctx.init<double>(matrix + 8 * (r * dim + c),
                             base + ctx.rng().uniform());
        }
    }
    stepBarrier = ctx.barrier(threads);
}

void
Lu::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t nb = dim / block;
    auto at = [&](std::uint32_t r, std::uint32_t c) {
        return matrix + 8 * (r * dim + c);
    };
    auto owner = [&](std::uint32_t bi, std::uint32_t bj) {
        return static_cast<ThreadId>((bi * nb + bj) % threads);
    };

    for (std::uint32_t k = 0; k < nb; ++k) {
        const std::uint32_t base = k * block;
        // 1. Factor the diagonal block (owner-computes).
        if (owner(k, k) == ctx.tid()) {
            for (std::uint32_t p = 0; p < block; ++p) {
                const double pivot =
                    ctx.load<double>(at(base + p, base + p));
                for (std::uint32_t r = p + 1; r < block; ++r) {
                    const double l =
                        ctx.load<double>(at(base + r, base + p)) / pivot;
                    ctx.store<double>(at(base + r, base + p), l);
                    for (std::uint32_t c = p + 1; c < block; ++c) {
                        const double v =
                            ctx.load<double>(at(base + r, base + c));
                        const double u =
                            ctx.load<double>(at(base + p, base + c));
                        ctx.store<double>(at(base + r, base + c),
                                          v - l * u);
                        ctx.tick(4);
                    }
                }
            }
        }
        ctx.barrier(stepBarrier);

        // 2. Update row and column panels.
        for (std::uint32_t j = k + 1; j < nb; ++j) {
            if (owner(k, j) == ctx.tid()) {
                // Apply L(k,k)^-1 from the left.
                for (std::uint32_t p = 0; p < block; ++p) {
                    for (std::uint32_t r = p + 1; r < block; ++r) {
                        const double l =
                            ctx.load<double>(at(base + r, base + p));
                        for (std::uint32_t c = 0; c < block; ++c) {
                            const Addr cell =
                                at(base + r, j * block + c);
                            const double v = ctx.load<double>(cell);
                            const double u = ctx.load<double>(
                                at(base + p, j * block + c));
                            ctx.store<double>(cell, v - l * u);
                            ctx.tick(4);
                        }
                    }
                }
            }
            if (owner(j, k) == ctx.tid()) {
                // Apply U(k,k)^-1 from the right.
                for (std::uint32_t p = 0; p < block; ++p) {
                    const double pivot =
                        ctx.load<double>(at(base + p, base + p));
                    for (std::uint32_t r = 0; r < block; ++r) {
                        const Addr cell = at(j * block + r, base + p);
                        const double l =
                            ctx.load<double>(cell) / pivot;
                        ctx.store<double>(cell, l);
                        for (std::uint32_t c = p + 1; c < block; ++c) {
                            const Addr tcell =
                                at(j * block + r, base + c);
                            const double v = ctx.load<double>(tcell);
                            const double u = ctx.load<double>(
                                at(base + p, base + c));
                            ctx.store<double>(tcell, v - l * u);
                            ctx.tick(4);
                        }
                    }
                }
            }
        }
        ctx.barrier(stepBarrier);

        // 3. Trailing submatrix update.
        for (std::uint32_t i = k + 1; i < nb; ++i) {
            for (std::uint32_t j = k + 1; j < nb; ++j) {
                if (owner(i, j) != ctx.tid())
                    continue;
                // Accumulate in memory per rank-1 update, as the SPLASH-2
                // kernel does — this is what makes lu write-heavy between
                // barriers (and traversal hashing the cheaper software
                // scheme for it, Figure 6).
                for (std::uint32_t r = 0; r < block; ++r) {
                    for (std::uint32_t c = 0; c < block; ++c) {
                        const Addr cell =
                            at(i * block + r, j * block + c);
                        for (std::uint32_t p = 0; p < block; ++p) {
                            const double acc = ctx.load<double>(cell) -
                                ctx.load<double>(
                                    at(i * block + r, base + p)) *
                                ctx.load<double>(
                                    at(base + p, j * block + c));
                            ctx.store<double>(cell, acc);
                            ctx.tick(2);
                        }
                    }
                }
            }
        }
        ctx.barrier(stepBarrier);
    }
}

// --------------------------------------------------------------------
// radix (with the Figure 7(c) order-violation seed)
// --------------------------------------------------------------------

Radix::Radix(ThreadId threads, std::uint32_t keys, BugSeed bug)
    : BaseApp(threads), keys(keys), bug(bug)
{}

void
Radix::setup(sim::SetupCtx &ctx)
{
    const std::uint32_t buckets = 1u << radixBits;
    src = ctx.global("src", tArray(tInt32(), keys));
    dst = ctx.global("dst", tArray(tInt32(), keys));
    histograms = ctx.global("histograms",
                            tArray(tInt32(), threads * buckets));
    offsets = ctx.global("offsets", tArray(tInt32(), threads * buckets));
    for (std::uint32_t i = 0; i < keys; ++i) {
        ctx.init<std::uint32_t>(
            src + 4 * i,
            static_cast<std::uint32_t>(ctx.rng().below(
                1u << (radixBits * passes))));
    }
    passBarrier = ctx.barrier(threads);
}

void
Radix::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t buckets = 1u << radixBits;
    const std::uint32_t lo = keys * ctx.tid() / threads;
    const std::uint32_t hi = keys * (ctx.tid() + 1) / threads;
    const Addr my_hist = histograms + 4 * (ctx.tid() * buckets);

    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const Addr from = pass % 2 == 0 ? src : dst;
        const Addr to = pass % 2 == 0 ? dst : src;
        const std::uint32_t shift = pass * radixBits;

        // 1. Local histogram.
        for (std::uint32_t b = 0; b < buckets; ++b)
            ctx.store<std::uint32_t>(my_hist + 4 * b, 0);
        for (std::uint32_t i = lo; i < hi; ++i) {
            const std::uint32_t key =
                ctx.load<std::uint32_t>(from + 4 * i);
            const std::uint32_t digit = (key >> shift) & (buckets - 1);
            const Addr cell = my_hist + 4 * digit;
            ctx.store<std::uint32_t>(
                cell, ctx.load<std::uint32_t>(cell) + 1);
            ctx.tick(6);
        }
        ctx.barrier(passBarrier);

        // 2. Thread 0 turns histograms into scatter offsets.
        if (ctx.tid() == 0) {
            std::uint32_t running = 0;
            for (std::uint32_t d = 0; d < buckets; ++d) {
                for (ThreadId t = 0; t < threads; ++t) {
                    ctx.store<std::uint32_t>(
                        offsets + 4 * (t * buckets + d), running);
                    running += ctx.load<std::uint32_t>(
                        histograms + 4 * (t * buckets + d));
                    ctx.tick(4);
                }
            }
        }

        // The order violation (Figure 7(c)): thread 3 scatters *before*
        // the barrier that publishes the offsets, once (pass 2), using
        // whatever offsets happen to be in memory.
        const bool violate = bug == BugSeed::OrderViolation &&
                             ctx.tid() == buggyThread && pass == 2;
        if (violate)
            scatterPass(ctx, from, to, shift, lo, hi);
        ctx.barrier(passBarrier);
        if (!violate)
            scatterPass(ctx, from, to, shift, lo, hi);
        ctx.barrier(passBarrier);
    }
}

void
Radix::scatterPass(sim::ThreadCtx &ctx, Addr from, Addr to,
                   std::uint32_t shift, std::uint32_t lo,
                   std::uint32_t hi)
{
    const std::uint32_t buckets = 1u << radixBits;
    for (std::uint32_t i = lo; i < hi; ++i) {
        const std::uint32_t key = ctx.load<std::uint32_t>(from + 4 * i);
        const std::uint32_t digit = (key >> shift) & (buckets - 1);
        const Addr slot = offsets + 4 * (ctx.tid() * buckets + digit);
        std::uint32_t position = ctx.load<std::uint32_t>(slot);
        if (position >= keys)
            position = keys - 1; // bug containment: never crash
        ctx.store<std::uint32_t>(slot, position + 1);
        ctx.store<std::uint32_t>(to + 4 * position, key);
        ctx.tick(6);
    }
}

// --------------------------------------------------------------------
// swaptions
// --------------------------------------------------------------------

Swaptions::Swaptions(ThreadId threads, std::uint32_t swaptions,
                     std::uint32_t trials)
    : BaseApp(threads), nSwaptions(swaptions), trials(trials)
{}

void
Swaptions::setup(sim::SetupCtx &ctx)
{
    params = ctx.global("params", tArray(tDouble(), nSwaptions * 2));
    results = ctx.global("results", tArray(tDouble(), nSwaptions));
    for (std::uint32_t i = 0; i < nSwaptions * 2; ++i)
        ctx.init<double>(params + 8 * i, 0.5 + ctx.rng().uniform());
    blockBarrier = ctx.barrier(threads);
}

void
Swaptions::threadMain(sim::ThreadCtx &ctx)
{
    // The paper's key observation: swaptions is a Monte Carlo simulation,
    // yet deterministic, because each thread has a *local* RNG with no
    // shared state.
    Xoshiro256 local_rng(ctx.inputSeed() ^
                         (0x9e3779b97f4a7c15ULL * (ctx.tid() + 1)));
    const std::uint32_t lo = nSwaptions * ctx.tid() / threads;
    const std::uint32_t hi = nSwaptions * (ctx.tid() + 1) / threads;
    for (std::uint32_t half = 0; half < 2; ++half) {
        for (std::uint32_t i = lo; i < hi; ++i) {
            const double rate = ctx.load<double>(params + 8 * (2 * i));
            const double volp =
                ctx.load<double>(params + 8 * (2 * i + 1));
            double sum = 0;
            for (std::uint32_t t = 0; t < trials / 2; ++t) {
                const double shock = local_rng.uniform() - 0.5;
                sum += rate + volp * shock * shock;
                ctx.tick(12);
            }
            const Addr slot = results + 8 * i;
            ctx.store<double>(slot, ctx.load<double>(slot) +
                                        sum /
                                            static_cast<double>(trials));
        }
        ctx.barrier(blockBarrier);
    }
}

// --------------------------------------------------------------------
// volrend
// --------------------------------------------------------------------

Volrend::Volrend(ThreadId threads, std::uint32_t frames,
                 std::uint32_t pixels)
    : BaseApp(threads), frames(frames), pixels(pixels)
{}

void
Volrend::setup(sim::SetupCtx &ctx)
{
    image = ctx.global("image", tArray(tInt32(), pixels));
    volume = ctx.global("volume", tArray(tInt32(), pixels * 2));
    hbCount = ctx.global("hb_count", tInt64());
    hbGen = ctx.global("hb_gen", tInt64());
    for (std::uint32_t i = 0; i < pixels * 2; ++i) {
        ctx.init<std::int32_t>(
            volume + 4 * i,
            static_cast<std::int32_t>(ctx.rng().below(256)));
    }
    hbMutex = ctx.mutex();
    frameBarrier = ctx.barrier(threads);
}

void
Volrend::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = pixels * ctx.tid() / threads;
    const std::uint32_t hi = pixels * (ctx.tid() + 1) / threads;
    for (std::uint32_t frame = 0; frame < frames; ++frame) {
        for (std::uint32_t i = lo; i < hi; ++i) {
            const std::int32_t a =
                ctx.load<std::int32_t>(volume + 4 * (2 * i));
            const std::int32_t b =
                ctx.load<std::int32_t>(volume + 4 * (2 * i + 1));
            ctx.store<std::int32_t>(
                image + 4 * i,
                (a * 3 + b + static_cast<std::int32_t>(frame)) / 2);
            ctx.tick(25);
        }
        // Hand-coded sense-reversing barrier with a benign data race: the
        // generation flag is written under the lock but spun on without
        // it. volrend is still externally deterministic (Table 1), and
        // the race detector flags the race as benign.
        const auto my_gen = ctx.load<std::int64_t>(hbGen); // racy read
        ctx.lock(hbMutex);
        const auto arrived = ctx.load<std::int64_t>(hbCount) + 1;
        if (arrived == threads) {
            ctx.store<std::int64_t>(hbCount, 0);
            ctx.store<std::int64_t>(hbGen, my_gen + 1);
        } else {
            ctx.store<std::int64_t>(hbCount, arrived);
        }
        ctx.unlock(hbMutex);
        while (ctx.load<std::int64_t>(hbGen) == my_gen) // racy spin
            ctx.tick(1);
        // The pthread barrier is where InstantCheck checks (the paper does
        // not check at hand-coded barriers).
        ctx.barrier(frameBarrier);
    }
}

} // namespace icheck::apps
