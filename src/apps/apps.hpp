#ifndef ICHECK_APPS_APPS_HPP
#define ICHECK_APPS_APPS_HPP

/**
 * @file
 * The 17 workloads of the paper's evaluation (Table 1), as mini-programs
 * on the simulated machine. Each mini-app is engineered to reproduce the
 * determinism class, synchronization structure, and FP behaviour the paper
 * reports for the corresponding real application:
 *
 *   bit-by-bit deterministic:
 *     blackscholes, fft, lu, radix, streamcluster (bug-fixed), swaptions,
 *     volrend
 *   deterministic after FP rounding:
 *     fluidanimate, ocean, waterNS, waterSP
 *   deterministic after ignoring small structures:
 *     cholesky (freeTask list), pbzip2 (dangling result pointers),
 *     sphinx3 (scratch allocations)
 *   nondeterministic:
 *     barnes, canneal, radiosity
 *
 * streamcluster additionally models the real order-violation bug the
 * authors found in PARSEC 2.1: nondeterminism at internal barriers that is
 * masked at program end for medium inputs but propagates to the output for
 * small inputs.
 */

#include <cstdint>

#include "apps/bug_seeds.hpp"
#include "sim/context.hpp"
#include "sim/program.hpp"

namespace icheck::apps
{

/** Common base: thread count plumbing. */
class BaseApp : public sim::Program
{
  public:
    explicit BaseApp(ThreadId threads) : threads(threads) {}

    ThreadId numThreads() const override { return threads; }

  protected:
    ThreadId threads;
};

/** PARSEC blackscholes: data-parallel option pricing; bit-by-bit det. */
class Blackscholes : public BaseApp
{
  public:
    explicit Blackscholes(ThreadId threads = 8,
                          std::uint32_t options = 96,
                          std::uint32_t iterations = 5);
    std::string name() const override { return "blackscholes"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t options;
    std::uint32_t iterations;
    Addr spot = 0, strike = 0, vol = 0, prices = 0;
    sim::BarrierId iterBarrier = 0;
};

/** SPLASH-2 fft: staged butterflies, local then global stages. */
class Fft : public BaseApp
{
  public:
    explicit Fft(ThreadId threads = 8, std::uint32_t log2n = 8);
    std::string name() const override { return "fft"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t log2n;
    std::uint32_t n;
    Addr re = 0, im = 0;
    sim::BarrierId stageBarrier = 0;
};

/** SPLASH-2 lu: blocked factorization, owner-computes. */
class Lu : public BaseApp
{
  public:
    explicit Lu(ThreadId threads = 8, std::uint32_t dim = 32,
                std::uint32_t block = 8);
    std::string name() const override { return "lu"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t dim;
    std::uint32_t block;
    Addr matrix = 0;
    sim::BarrierId stepBarrier = 0;
};

/** SPLASH-2 radix: integer sort; optional order-violation seed. */
class Radix : public BaseApp
{
  public:
    explicit Radix(ThreadId threads = 8, std::uint32_t keys = 512,
                   BugSeed bug = BugSeed::None);
    std::string name() const override { return "radix"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    /** Scatter this thread's slice using the shared offset table. */
    void scatterPass(sim::ThreadCtx &ctx, Addr from, Addr to,
                     std::uint32_t shift, std::uint32_t lo,
                     std::uint32_t hi);

    std::uint32_t keys;
    BugSeed bug;
    std::uint32_t radixBits = 4;
    std::uint32_t passes = 4;
    Addr src = 0, dst = 0, histograms = 0, offsets = 0;
    sim::BarrierId passBarrier = 0;
};

/** PARSEC streamcluster: phase structure + the real PARSEC 2.1 bug. */
class Streamcluster : public BaseApp
{
  public:
    /**
     * @param medium_input  True models simmedium (bug masked at end);
     *                      false models simdev (bug reaches the output).
     * @param with_bug      Include the order-violation race (version 2.1)
     *                      or the fixed version.
     */
    explicit Streamcluster(ThreadId threads = 8, bool medium_input = true,
                           bool with_bug = false,
                           std::uint32_t points = 64);
    std::string name() const override { return "streamcluster"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    bool mediumInput;
    bool withBug;
    std::uint32_t points;
    std::uint32_t iterations;
    std::uint32_t buggyFirst, buggyLast, resetIteration;
    Addr coords = 0, partials = 0, cost = 0, scratch = 0, param = 0,
         ready = 0;
    sim::BarrierId phaseBarrier = 0;
};

/** PARSEC swaptions: Monte Carlo with thread-local RNGs; bit det. */
class Swaptions : public BaseApp
{
  public:
    explicit Swaptions(ThreadId threads = 8, std::uint32_t swaptions = 32,
                       std::uint32_t trials = 40);
    std::string name() const override { return "swaptions"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t nSwaptions;
    std::uint32_t trials;
    Addr params = 0, results = 0;
    sim::BarrierId blockBarrier = 0;
};

/** SPLASH-2 volrend: integer rendering + benign hand-coded-barrier race. */
class Volrend : public BaseApp
{
  public:
    explicit Volrend(ThreadId threads = 8, std::uint32_t frames = 5,
                     std::uint32_t pixels = 256);
    std::string name() const override { return "volrend"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t frames;
    std::uint32_t pixels;
    Addr image = 0, volume = 0, hbCount = 0, hbGen = 0;
    sim::MutexId hbMutex = 0;
    sim::BarrierId frameBarrier = 0;
};

/** PARSEC fluidanimate: neighbor accumulation; det after FP rounding. */
class Fluidanimate : public BaseApp
{
  public:
    explicit Fluidanimate(ThreadId threads = 8, std::uint32_t cells = 64,
                          std::uint32_t steps = 5);
    std::string name() const override { return "fluidanimate"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t cells;
    std::uint32_t steps;
    Addr density = 0, position = 0;
    sim::MutexId cellMutex = 0;
    sim::BarrierId stepBarrier = 0;
};

/** SPLASH-2 ocean: grid relaxation + global residual reduction. */
class Ocean : public BaseApp
{
  public:
    explicit Ocean(ThreadId threads = 8, std::uint32_t dim = 24,
                   std::uint32_t iterations = 8);
    std::string name() const override { return "ocean"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t dim;
    std::uint32_t iterations;
    Addr grid = 0, residual = 0;
    sim::MutexId residualMutex = 0;
    sim::BarrierId sweepBarrier = 0;
};

/** SPLASH-2 water-nsquared: MD forces; optional semantic bug seed. */
class WaterNS : public BaseApp
{
  public:
    explicit WaterNS(ThreadId threads = 8, std::uint32_t molecules = 48,
                     std::uint32_t steps = 5, BugSeed bug = BugSeed::None);
    std::string name() const override { return "waterNS"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t molecules;
    std::uint32_t steps;
    BugSeed bug;
    Addr pos = 0, vel = 0, potential = 0;
    sim::MutexId energyMutex = 0;
    sim::BarrierId stepBarrier = 0;
};

/** SPLASH-2 water-spatial: optional atomicity-violation seed. */
class WaterSP : public BaseApp
{
  public:
    explicit WaterSP(ThreadId threads = 8, std::uint32_t molecules = 48,
                     std::uint32_t steps = 4, BugSeed bug = BugSeed::None);
    std::string name() const override { return "waterSP"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t molecules;
    std::uint32_t steps;
    BugSeed bug;
    Addr pos = 0, kinetic = 0;
    sim::MutexId energyMutex = 0;
    sim::BarrierId stepBarrier = 0;
};

/** SPLASH-2 cholesky: task queue + nondeterministic freeTask list. */
class Cholesky : public BaseApp
{
  public:
    explicit Cholesky(ThreadId threads = 8, std::uint32_t dim = 20);
    std::string name() const override { return "cholesky"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

    /** Allocation site of the task nodes (the structure to ignore). */
    static const char *taskNodeSite() { return "cholesky.cpp:task_node"; }

  private:
    std::uint32_t dim;
    Addr matrix = 0, nextColumn = 0, freeTaskHead = 0;
    sim::MutexId queueMutex = 0, freeListMutex = 0, columnMutex = 0;
    sim::BarrierId doneBarrier = 0;
};

/** pbzip2: producer/consumer RLE pipeline with dangling result ptrs. */
class Pbzip2 : public BaseApp
{
  public:
    explicit Pbzip2(ThreadId threads = 8, std::uint32_t blocks = 12,
                    std::uint32_t block_bytes = 96);
    std::string name() const override { return "pbzip2"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

    /** Allocation site of the task structs. */
    static const char *taskSite() { return "pbzip2.cpp:task"; }

    /** Offset/width of the nondeterministic result pointer field. */
    static constexpr std::size_t resultPtrOffset = 8;
    static constexpr std::size_t resultPtrWidth = 8;

  private:
    std::uint32_t blocks;
    std::uint32_t blockBytes;
    Addr input = 0, tasks = 0, queue = 0, queueHead = 0, queueTail = 0,
         producedAll = 0, doneCount = 0;
    sim::MutexId queueMutex = 0;
    sim::CondId queueCond = 0;
};

/** sphinx3: many-barrier pipeline + nondeterministic scratch (~4%). */
class Sphinx3 : public BaseApp
{
  public:
    explicit Sphinx3(ThreadId threads = 8, std::uint32_t frames = 40,
                     std::uint32_t states = 96);
    std::string name() const override { return "sphinx3"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

    /** Allocation site of the nondeterministic scratch buffers. */
    static const char *scratchSite() { return "sphinx3.cpp:scratch"; }

  private:
    std::uint32_t frames;
    std::uint32_t states;
    Addr features = 0, scores = 0, best = 0, claimed = 0,
         scratchPtrs = 0;
    sim::MutexId bestMutex = 0;
    sim::BarrierId frameBarrier = 0;
};

/** SPLASH-2 barnes: racy tree build; nondeterministic. */
class Barnes : public BaseApp
{
  public:
    explicit Barnes(ThreadId threads = 8, std::uint32_t bodies = 48,
                    std::uint32_t steps = 2);
    std::string name() const override { return "barnes"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t bodies;
    std::uint32_t steps;
    Addr keys = 0, root = 0, forces = 0;
    sim::MutexId treeMutex = 0;
    sim::BarrierId stepBarrier = 0;
};

/** PARSEC canneal: racy simulated annealing; nondeterministic. */
class Canneal : public BaseApp
{
  public:
    explicit Canneal(ThreadId threads = 8, std::uint32_t elements = 64,
                     std::uint32_t moves = 60);
    std::string name() const override { return "canneal"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t elements;
    std::uint32_t moves;
    Addr placement = 0;
    sim::BarrierId roundBarrier = 0;
};

/** SPLASH-2 radiosity: task stealing leaks into results; ndet. */
class Radiosity : public BaseApp
{
  public:
    explicit Radiosity(ThreadId threads = 8, std::uint32_t patches = 48,
                       std::uint32_t rounds = 3);
    std::string name() const override { return "radiosity"; }
    void setup(sim::SetupCtx &ctx) override;
    void threadMain(sim::ThreadCtx &ctx) override;

  private:
    std::uint32_t patches;
    std::uint32_t rounds;
    Addr energy = 0, owner = 0, nextTask = 0;
    sim::MutexId taskMutex = 0;
    sim::BarrierId roundBarrier = 0;
};

} // namespace icheck::apps

#endif // ICHECK_APPS_APPS_HPP
