#ifndef ICHECK_APPS_BUG_SEEDS_HPP
#define ICHECK_APPS_BUG_SEEDS_HPP

/**
 * @file
 * The seeded bugs of Figure 7 / Table 2.
 *
 * Each bug is injected into one formerly deterministic application, only
 * in thread 3, and (for the order violation) only once dynamically — the
 * paper's recipe for simulating rarely occurring bugs. None crash the
 * program; all corrupt results in a schedule-dependent way that
 * InstantCheck detects as nondeterminism.
 */

#include <cstdint>

namespace icheck::apps
{

/** Which bug (if any) an application instance is seeded with. */
enum class BugSeed : std::uint8_t
{
    None,
    Semantic,           ///< waterNS: wrong value computed from a racy read.
    AtomicityViolation, ///< waterSP: non-atomic read-modify-write.
    OrderViolation,     ///< radix: consume before the producer published.
};

/** The thread the paper seeds bugs into. */
inline constexpr std::uint32_t buggyThread = 3;

} // namespace icheck::apps

#endif // ICHECK_APPS_BUG_SEEDS_HPP
