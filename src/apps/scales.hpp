#ifndef ICHECK_APPS_SCALES_HPP
#define ICHECK_APPS_SCALES_HPP

/**
 * @file
 * Input scales for the workloads — the analogue of PARSEC's simdev /
 * simmedium / simlarge inputs (Section 7.1 uses simmedium; the
 * streamcluster bug analysis contrasts simdev).
 */

#include <string>

#include "check/driver.hpp"

namespace icheck::apps
{

/** Input size classes. */
enum class InputScale
{
    Dev,    ///< Smallest: quick runs, fewest phases.
    Medium, ///< The default evaluation input (registry factories).
    Large,  ///< Stress input: larger state, more phases.
};

/** Printable scale name. */
std::string scaleName(InputScale scale);

/**
 * Factory for @p app_name at @p scale. Medium matches the registry's
 * default factory parameters. Panics on unknown names.
 */
check::ProgramFactory scaledFactory(const std::string &app_name,
                                    InputScale scale);

} // namespace icheck::apps

#endif // ICHECK_APPS_SCALES_HPP
