#ifndef ICHECK_APPS_CHARACTERIZE_HPP
#define ICHECK_APPS_CHARACTERIZE_HPP

/**
 * @file
 * The Table 1 pipeline: run one workload through the three InstantCheck
 * configurations — bit-by-bit, FP-rounded, FP-rounded + isolated small
 * structures — and derive the paper's columns.
 */

#include <optional>

#include "apps/app_registry.hpp"
#include "check/driver.hpp"

namespace icheck::apps
{

/** Campaign parameters shared across apps. */
struct CharacterizeConfig
{
    check::Scheme scheme = check::Scheme::HwInc;
    int runs = 30;
    std::uint64_t baseSchedSeed = 1000;
    std::uint64_t inputSeed = 42;
    CoreId cores = 8;

    /**
     * Campaign worker threads (0 = hardware concurrency). Reports are
     * bit-identical for every value; see src/runtime/parallel_driver.
     */
    int jobs = 1;
};

/** One Table 1 row, with the underlying campaign reports retained. */
struct Table1Row
{
    const AppInfo *app = nullptr;

    bool detAsIs = false;
    int firstNdetRun = 0; ///< 0 == never (column 6 "-").

    bool detAfterFp = false;
    int firstNdetAfterFp = 0; ///< Column 8.

    /** Meaningful only when the app declares an ignore spec. */
    std::optional<bool> detAfterIgnores;

    /** Checking-point counts under the app's class configuration. */
    std::uint64_t detPoints = 0;
    std::uint64_t ndetPoints = 0;
    bool detAtEnd = false;

    check::DriverReport bitwise;
    check::DriverReport rounded;
    std::optional<check::DriverReport> isolated;
};

/** Run the three campaigns for @p app. */
Table1Row characterizeApp(const AppInfo &app,
                          const CharacterizeConfig &config);

} // namespace icheck::apps

#endif // ICHECK_APPS_CHARACTERIZE_HPP
