/**
 * @file
 * The "deterministic after ignoring small structures" workloads of
 * Table 1: cholesky (nondeterministic freeTask linked list), pbzip2
 * (dangling result pointers in task structs), sphinx3 (nondeterministic
 * scratch allocations, a few percent of the state). Each computes a
 * deterministic result while leaving a schedule-dependent auxiliary
 * structure behind — precisely the case ignore-deletion (Section 2.2)
 * exists for.
 */

#include "apps/apps.hpp"

#include <cmath>

namespace icheck::apps
{

using mem::tArray;
using mem::tBytes;
using mem::tDouble;
using mem::tInt64;
using mem::tPointer;
using mem::tStruct;

// --------------------------------------------------------------------
// cholesky
// --------------------------------------------------------------------

namespace
{

/** Task node shape: { next, taskId, payload }. */
mem::TypeRef
taskNodeType()
{
    return tStruct({tPointer(), tInt64(), tDouble()});
}

} // namespace

Cholesky::Cholesky(ThreadId threads, std::uint32_t dim)
    : BaseApp(threads), dim(dim)
{}

void
Cholesky::setup(sim::SetupCtx &ctx)
{
    matrix = ctx.global("matrix", tArray(tDouble(), dim * dim));
    nextColumn = ctx.global("next_column", tInt64());
    freeTaskHead = ctx.global("free_task_head", tPointer());
    ctx.global("tally", tDouble());
    ctx.init<double>(ctx.addressOf("tally"), 0.0005);
    for (std::uint32_t r = 0; r < dim; ++r) {
        for (std::uint32_t c = 0; c < dim; ++c) {
            const double base = r == c ? dim + 2.0 : 0.0;
            ctx.init<double>(matrix + 8 * (r * dim + c),
                             base + ctx.rng().uniform());
        }
    }
    queueMutex = ctx.mutex();
    freeListMutex = ctx.mutex();
    columnMutex = ctx.mutex();
    doneBarrier = ctx.barrier(threads);
}

void
Cholesky::threadMain(sim::ThreadCtx &ctx)
{
    const Addr tally = ctx.global("tally");
    for (;;) {
        // Pop the next column task (the paper's tasks race over a queue).
        ctx.lock(queueMutex);
        const auto k = ctx.load<std::int64_t>(nextColumn);
        if (k >= static_cast<std::int64_t>(dim)) {
            ctx.unlock(queueMutex);
            break;
        }
        ctx.store<std::int64_t>(nextColumn, k + 1);
        ctx.unlock(queueMutex);

        // Take a task node from the freeTask list or allocate a new one.
        // Link order and list length end up schedule-dependent — the
        // structure the paper ignores to make cholesky deterministic.
        ctx.lock(freeListMutex);
        Addr node = ctx.loadPtr(freeTaskHead);
        if (node != 0) {
            ctx.storePtr(freeTaskHead, ctx.loadPtr(node));
        } else {
            ctx.unlock(freeListMutex);
            node = ctx.malloc(taskNodeSite(), taskNodeType());
            ctx.lock(freeListMutex);
        }
        ctx.unlock(freeListMutex);
        ctx.store<std::int64_t>(node + 8, k);

        // Process the column: deterministic single-writer scaling.
        double colsum = 0;
        for (std::uint32_t r = 0; r < dim; ++r) {
            const Addr cell =
                matrix + 8 * (r * dim + static_cast<std::uint32_t>(k));
            const double v = ctx.load<double>(cell);
            const double scaled = v / (1.0 + static_cast<double>(k));
            ctx.store<double>(cell, scaled);
            colsum += scaled;
            ctx.tick(20);
        }
        ctx.store<double>(node + 16, colsum);

        // Shared FP accumulation — needs rounding, like real cholesky.
        ctx.lock(columnMutex);
        ctx.store<double>(tally, ctx.load<double>(tally) + colsum);
        ctx.unlock(columnMutex);

        // Return the node to the free list (schedule-dependent order).
        ctx.lock(freeListMutex);
        ctx.storePtr(node, ctx.loadPtr(freeTaskHead));
        ctx.storePtr(freeTaskHead, node);
        ctx.unlock(freeListMutex);
    }
    ctx.barrier(doneBarrier);
}

// --------------------------------------------------------------------
// pbzip2
// --------------------------------------------------------------------

namespace
{

/** Task struct shape: { blockId, resultPtr, resultLen, done }. */
mem::TypeRef
pbzipTaskType()
{
    return tStruct({tInt64(), tPointer(), tInt64(), tInt64()});
}

} // namespace

Pbzip2::Pbzip2(ThreadId threads, std::uint32_t blocks,
               std::uint32_t block_bytes)
    : BaseApp(threads), blocks(blocks), blockBytes(block_bytes)
{}

void
Pbzip2::setup(sim::SetupCtx &ctx)
{
    input = ctx.global("input", tBytes(blocks * blockBytes));
    tasks = ctx.global("tasks", tArray(tPointer(), blocks));
    queue = ctx.global("queue", tArray(tPointer(), blocks));
    queueHead = ctx.global("queue_head", tInt64());
    queueTail = ctx.global("queue_tail", tInt64());
    producedAll = ctx.global("produced_all", tInt64());
    doneCount = ctx.global("done_count", tInt64());
    // Compressible input: runs of repeated bytes.
    std::uint8_t current = 0;
    std::uint32_t run = 0;
    for (std::uint32_t i = 0; i < blocks * blockBytes; ++i) {
        if (run == 0) {
            current = static_cast<std::uint8_t>(ctx.rng().below(7) + 1);
            run = static_cast<std::uint32_t>(ctx.rng().below(12) + 1);
        }
        ctx.init<std::uint8_t>(input + i, current);
        --run;
    }
    queueMutex = ctx.mutex();
    queueCond = ctx.cond();
}

void
Pbzip2::threadMain(sim::ThreadCtx &ctx)
{
    if (ctx.tid() == 0) {
        // Producer: allocate and enqueue one task per block.
        for (std::uint32_t b = 0; b < blocks; ++b) {
            const Addr task = ctx.malloc(taskSite(), pbzipTaskType());
            ctx.store<std::int64_t>(task, b);
            ctx.storePtr(tasks + 8 * b, task);
            ctx.lock(queueMutex);
            const auto tail = ctx.load<std::int64_t>(queueTail);
            ctx.storePtr(queue + 8 * (tail % blocks), task);
            ctx.store<std::int64_t>(queueTail, tail + 1);
            ctx.condBroadcast(queueCond);
            ctx.unlock(queueMutex);
        }
        ctx.lock(queueMutex);
        ctx.store<std::int64_t>(producedAll, 1);
        ctx.condBroadcast(queueCond);
        // Writer: wait for the consumers, then emit blocks in order.
        while (ctx.load<std::int64_t>(doneCount) <
               static_cast<std::int64_t>(blocks)) {
            ctx.condWait(queueCond, queueMutex);
        }
        ctx.unlock(queueMutex);
        for (std::uint32_t b = 0; b < blocks; ++b) {
            const Addr task = ctx.loadPtr(tasks + 8 * b);
            const Addr buf = ctx.loadPtr(task + resultPtrOffset);
            const auto len = ctx.load<std::int64_t>(task + 16);
            for (std::int64_t i = 0; i < len; ++i)
                ctx.outputValue(ctx.load<std::uint8_t>(
                    buf + static_cast<Addr>(i)));
            // Free the compressed buffer: the memory leaves the state,
            // the dangling resultPtr in the task struct remains — the
            // paper's exact pbzip2 nondeterminism.
            ctx.free(buf);
        }
        return;
    }

    // Consumers: race for tasks, compress, publish.
    for (;;) {
        ctx.lock(queueMutex);
        while (ctx.load<std::int64_t>(queueHead) ==
                   ctx.load<std::int64_t>(queueTail) &&
               ctx.load<std::int64_t>(producedAll) == 0) {
            ctx.condWait(queueCond, queueMutex);
        }
        if (ctx.load<std::int64_t>(queueHead) ==
            ctx.load<std::int64_t>(queueTail)) {
            ctx.unlock(queueMutex);
            break; // drained and production finished
        }
        const auto head = ctx.load<std::int64_t>(queueHead);
        const Addr task = ctx.loadPtr(queue + 8 * (head % blocks));
        ctx.store<std::int64_t>(queueHead, head + 1);
        ctx.unlock(queueMutex);

        const auto block_id = static_cast<std::uint32_t>(
            ctx.load<std::int64_t>(task));
        const Addr block = input + block_id * blockBytes;
        // Run-length encode first (into thread-local staging), then
        // allocate the result buffer. Buffers are therefore claimed in
        // compression-*completion* order, which depends on the schedule —
        // so the pointer stored in the task struct is nondeterministic,
        // exactly the pbzip2 behaviour of Section 7.2.1.
        std::vector<std::uint8_t> staged;
        std::uint32_t i = 0;
        while (i < blockBytes) {
            const std::uint8_t byte = ctx.load<std::uint8_t>(block + i);
            std::uint8_t count = 1;
            while (i + count < blockBytes && count < 255 &&
                   ctx.load<std::uint8_t>(block + i + count) == byte) {
                ++count;
            }
            staged.push_back(count);
            staged.push_back(byte);
            i += count;
            ctx.tick(15);
        }
        const Addr buf =
            ctx.malloc("pbzip2.cpp:result_buf",
                       tBytes(2 * blockBytes + 2));
        for (std::size_t b = 0; b < staged.size(); ++b)
            ctx.store<std::uint8_t>(buf + b, staged[b]);
        const auto out = static_cast<std::int64_t>(staged.size());
        ctx.storePtr(task + resultPtrOffset, buf);
        ctx.store<std::int64_t>(task + 16, out);
        ctx.store<std::int64_t>(task + 24, 1);

        ctx.lock(queueMutex);
        ctx.store<std::int64_t>(doneCount,
                                ctx.load<std::int64_t>(doneCount) + 1);
        ctx.condBroadcast(queueCond);
        ctx.unlock(queueMutex);
    }
}

// --------------------------------------------------------------------
// sphinx3
// --------------------------------------------------------------------

Sphinx3::Sphinx3(ThreadId threads, std::uint32_t frames,
                 std::uint32_t states)
    : BaseApp(threads), frames(frames), states(states)
{}

void
Sphinx3::setup(sim::SetupCtx &ctx)
{
    features = ctx.global("features", tArray(tDouble(), states));
    scores = ctx.global("scores", tArray(tDouble(), states));
    best = ctx.global("best", tDouble());
    claimed = ctx.global("claimed", tInt64());
    scratchPtrs = ctx.global("scratch_ptrs",
                             tArray(tPointer(), frames));
    for (std::uint32_t s = 0; s < states; ++s)
        ctx.init<double>(features + 8 * s, ctx.rng().uniform() * 4 - 2);
    ctx.init<double>(best, 0.0005);
    ctx.init<std::int64_t>(claimed, -1);
    bestMutex = ctx.mutex();
    frameBarrier = ctx.barrier(threads);
}

void
Sphinx3::threadMain(sim::ThreadCtx &ctx)
{
    const std::uint32_t lo = states * ctx.tid() / threads;
    const std::uint32_t hi = states * (ctx.tid() + 1) / threads;
    for (std::uint32_t frame = 0; frame < frames; ++frame) {
        // Deterministic score update over this thread's state slice.
        double local = 0;
        for (std::uint32_t s = lo; s < hi; ++s) {
            const double f = ctx.load<double>(features + 8 * s);
            const double score =
                std::tanh(f * (1.0 + 0.01 * frame));
            ctx.store<double>(scores + 8 * s, score);
            local += score * score;
            ctx.tick(35);
        }
        // Shared FP best-score accumulation (needs rounding).
        ctx.lock(bestMutex);
        ctx.store<double>(best, ctx.load<double>(best) + local);
        ctx.unlock(bestMutex);

        // Racy token claim: whichever thread gets here first writes the
        // frame's scratch buffer. Both the claim and the buffer contents
        // are schedule-dependent — the ~4% of nondeterministic memory the
        // paper isolates for sphinx3.
        if (ctx.load<std::int64_t>(claimed) !=
            static_cast<std::int64_t>(frame)) {
            ctx.store<std::int64_t>(claimed,
                                    static_cast<std::int64_t>(frame));
            const Addr scratch =
                ctx.malloc(scratchSite(), tArray(tInt64(), 4));
            ctx.store<std::int64_t>(scratch, frame);
            ctx.store<std::int64_t>(scratch + 8, ctx.tid());
            ctx.store<std::int64_t>(scratch + 16,
                                    static_cast<std::int64_t>(local *
                                                              1000));
            ctx.storePtr(scratchPtrs + 8 * frame, scratch);
        }
        ctx.barrier(frameBarrier);
    }
}

} // namespace icheck::apps
