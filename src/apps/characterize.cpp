#include "apps/characterize.hpp"

#include "runtime/parallel_driver.hpp"

namespace icheck::apps
{

namespace
{

/** The three campaigns per app all run through the parallel executor. */
check::DriverReport
runCampaign(const check::DriverConfig &cfg, const CharacterizeConfig &config,
            const check::ProgramFactory &factory)
{
    runtime::CampaignOptions options;
    options.jobs = config.jobs;
    return runtime::runCampaign(cfg, factory, options);
}

check::DriverConfig
driverConfig(const CharacterizeConfig &config, bool fp_rounding,
             const check::IgnoreSpec &ignores)
{
    check::DriverConfig cfg;
    cfg.scheme = config.scheme;
    cfg.runs = config.runs;
    cfg.baseSchedSeed = config.baseSchedSeed;
    cfg.machine.numCores = config.cores;
    cfg.machine.inputSeed = config.inputSeed;
    cfg.machine.fpRoundingEnabled = fp_rounding;
    cfg.ignores = ignores;
    return cfg;
}

} // namespace

Table1Row
characterizeApp(const AppInfo &app, const CharacterizeConfig &config)
{
    Table1Row row;
    row.app = &app;

    // Configuration A: bit-by-bit comparison (columns 5-6).
    row.bitwise = runCampaign(driverConfig(config, /*fp_rounding=*/false, {}),
                              config, app.factory);
    row.detAsIs = row.bitwise.deterministic();
    row.firstNdetRun = row.bitwise.firstNdetRun;

    // Configuration B: FP rounding (columns 7-8).
    row.rounded = runCampaign(driverConfig(config, /*fp_rounding=*/true, {}),
                              config, app.factory);
    row.detAfterFp = row.rounded.deterministic();
    row.firstNdetAfterFp = row.rounded.firstNdetRun;

    // Configuration C: FP rounding + isolated structures (column 9).
    if (!app.ignores.empty()) {
        row.isolated =
            runCampaign(driverConfig(config, /*fp_rounding=*/true,
                                     app.ignores),
                        config, app.factory);
        row.detAfterIgnores = row.isolated->deterministic();
    }

    // Checking-point columns (10-12) come from the app's class config.
    const check::DriverReport &class_report =
        row.isolated.has_value() ? *row.isolated
        : app.usesFp             ? row.rounded
                                 : row.bitwise;
    row.detPoints = class_report.detPoints;
    row.ndetPoints = class_report.ndetPoints;
    row.detAtEnd = class_report.detAtEnd;
    return row;
}

} // namespace icheck::apps
