#include "mhm/mhm.hpp"

#include "support/logging.hpp"

namespace icheck::mhm
{

Mhm::Mhm(const hashing::LocationHasher &hasher,
         hashing::FpRoundMode fp_mode)
    : roundedPipeline(hasher, fp_mode),
      rawPipeline(hasher, hashing::FpRoundMode::none())
{}

void
Mhm::restoreHash(HashWord word)
{
    loadState(hashing::ModHash(word));
}

void
Mhm::reset()
{
    clearState();
    hashingOn = false;
    fpRoundingOn = true;
    nStores = 0;
    nBytes = 0;
}

MhmState
Mhm::saveState() const
{
    MhmState state;
    state.hashingOn = hashingOn;
    state.fpRoundingOn = fpRoundingOn;
    state.nStores = nStores;
    state.nBytes = nBytes;
    savePartials(state);
    return state;
}

void
Mhm::restoreState(const MhmState &state)
{
    hashingOn = state.hashingOn;
    fpRoundingOn = state.fpRoundingOn;
    nStores = state.nStores;
    nBytes = state.nBytes;
    loadPartials(state);
}

hashing::ModHash
Mhm::hashValue(Addr addr, std::uint64_t bits, unsigned width,
               hashing::ValueClass cls) const
{
    const hashing::StateHasher &pipeline =
        fpRoundingOn ? roundedPipeline : rawPipeline;
    return pipeline.valueHash(addr, bits, width, cls);
}

void
Mhm::observeStore(Addr vaddr, std::uint64_t old_bits,
                  std::uint64_t new_bits, unsigned width,
                  hashing::ValueClass cls)
{
    if (!hashingOn)
        return;
    // The two halves are independent group elements; feed them separately
    // so a clustered design can route them to different clusters (Fig 3b).
    accumulate(-hashValue(vaddr, old_bits, width, cls));
    accumulate(hashValue(vaddr, new_bits, width, cls));
    ++nStores;
    nBytes += 2ULL * width;
}

void
Mhm::minusHash(Addr addr, std::uint64_t current_bits, unsigned width,
               hashing::ValueClass cls)
{
    accumulate(-hashValue(addr, current_bits, width, cls));
    nBytes += width;
}

void
Mhm::plusHash(Addr addr, std::uint64_t bits, unsigned width,
              hashing::ValueClass cls)
{
    accumulate(hashValue(addr, bits, width, cls));
    nBytes += width;
}

ClusteredMhm::ClusteredMhm(const hashing::LocationHasher &hasher,
                           hashing::FpRoundMode fp_mode,
                           std::size_t clusters,
                           DispatchPolicy dispatch_policy,
                           std::uint64_t seed)
    : Mhm(hasher, fp_mode), partials(clusters), opCounts(clusters, 0),
      policy(dispatch_policy), rng(seed)
{
    ICHECK_ASSERT(clusters > 0, "clustered MHM needs at least one cluster");
}

hashing::ModHash
ClusteredMhm::th() const
{
    hashing::ModHash sum;
    for (const auto &partial : partials)
        sum += partial;
    return sum;
}

void
ClusteredMhm::accumulate(hashing::ModHash delta)
{
    std::size_t idx;
    switch (policy) {
      case DispatchPolicy::RoundRobin:
        idx = nextCluster;
        // Compare-based wrap: the integer divide in `% clusters` is the
        // single most expensive instruction on this path.
        nextCluster = idx + 1 == partials.size() ? 0 : idx + 1;
        break;
      case DispatchPolicy::Random:
        idx = static_cast<std::size_t>(rng.below(partials.size()));
        break;
      default:
        ICHECK_PANIC("unknown DispatchPolicy");
    }
    partials[idx] += delta;
    ++opCounts[idx];
}

void
ClusteredMhm::clearState()
{
    for (auto &partial : partials)
        partial = hashing::ModHash{};
    nextCluster = 0;
}

void
ClusteredMhm::loadState(hashing::ModHash value)
{
    clearState();
    partials[0] = value;
}

void
ClusteredMhm::savePartials(MhmState &out) const
{
    out.partials = partials;
    out.opCounts = opCounts;
    out.nextCluster = nextCluster;
    out.dispatchRng = rng;
}

void
ClusteredMhm::loadPartials(const MhmState &in)
{
    ICHECK_ASSERT(in.partials.size() == partials.size() &&
                      in.opCounts.size() == opCounts.size(),
                  "MhmState shape mismatch (clustered)");
    partials = in.partials;
    opCounts = in.opCounts;
    nextCluster = in.nextCluster;
    rng = in.dispatchRng;
}

std::unique_ptr<Mhm>
makeMhm(const hashing::LocationHasher &hasher, const MhmConfig &config)
{
    if (config.clustered) {
        return std::make_unique<ClusteredMhm>(hasher, config.fpMode,
                                              config.clusters,
                                              config.dispatch,
                                              config.dispatchSeed);
    }
    return std::make_unique<BasicMhm>(hasher, config.fpMode);
}

} // namespace icheck::mhm
