#ifndef ICHECK_EXPLORE_DPOR_HPP
#define ICHECK_EXPLORE_DPOR_HPP

/**
 * @file
 * Dynamic partial-order reduction for the exploration engine.
 *
 * Instead of expanding every sibling at every scheduling decision, the
 * DPOR frontier expands only the siblings some observed *race* justifies
 * (Flanagan-Godefroid persistent sets): after each run, the slice-level
 * happens-before analysis (race::SliceHb) yields the pairs of unordered
 * conflicting slices; for each pair the later slice's thread is
 * scheduled at the earlier slice's decision, which is the one reordering
 * that can change behaviour. Everything that commutes is never
 * enumerated — one representative schedule per Mazurkiewicz trace.
 *
 * Three pieces adapt the classic DFS formulation to this repo's
 * prefix-frontier search (each run is a complete execution extending a
 * scripted prefix, runs may execute on any worker in any order):
 *
 *  - BranchLedger replaces the DFS stack's backtrack sets: a shared,
 *    sharded, exact (hash + full-prefix compare) registry of which
 *    children of which branch points were ever scheduled. The explored
 *    set is the least fixpoint of "run the root; emit every
 *    race-justified unclaimed child of every run" — order-independent,
 *    so coverage is identical at any --jobs.
 *  - Sleep sets ride on the frontier nodes: when a child is emitted at
 *    branch decision b, the thread the parent ran at b goes to sleep
 *    (its subtree from b is covered by the parent's own continuation),
 *    together with the parent's entries still asleep before b. A
 *    sleeping thread wakes when scheduled or when a slice conflicts
 *    with its recorded pending step; while asleep, race proposals for
 *    it are skipped. SleepEval tracks wake points online so the active
 *    sleep set can also be folded into the pruning signature — the
 *    known-unsound sleep-set x state-caching interaction is avoided by
 *    distinguishing states whose sleep sets differ.
 *  - Checkpoint keying: under DPOR the prefix engine forces a snapshot
 *    at each emitted child's branch decision (prefix length - 1), so
 *    every sibling emitted there restores with zero replayed decisions.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "explore/explorer.hpp"
#include "race/slice_hb.hpp"
#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::explore
{

/**
 * Listener + decision hook that segments a run into slices and feeds
 * them to the slice-level happens-before analyzer. A plain value:
 * copyable, so the prefix engine checkpoints it alongside a machine
 * snapshot and rewinds both together.
 */
class DporTracker : public sim::AccessListener
{
  public:
    /** Start a fresh run; the prelude slice opens immediately. */
    void reset(ThreadId setup_tid);

    void
    onStore(const sim::StoreEvent &event) override
    {
        if (event.domain != sim::CostDomain::Native)
            return;
        hbState.record(race::SliceHb::Op::Write, event.addr & ~Addr{7});
    }

    void
    onLoad(const sim::LoadEvent &event) override
    {
        hbState.record(race::SliceHb::Op::Read, event.addr & ~Addr{7});
    }

    void onSync(const sim::SyncEvent &event) override;

    /**
     * Decision hook: close the slice that just finished (its chosen
     * thread is now known from the executed history) and open the next.
     * Re-invocations at the same decision (the handler fires again after
     * a checkpoint restore) are idempotent.
     *
     * @param runnable Runnable threads at this decision (ascending tid).
     * @param chosen   Executed choice history; size() == decision index.
     */
    void onDecision(const std::vector<ThreadId> &runnable,
                    const std::vector<std::uint32_t> &chosen);

    /** Close the final slice once the program has ended. */
    void finishRun(const std::vector<std::uint32_t> &chosen);

    const race::SliceHb &hb() const { return hbState; }

    const std::vector<std::vector<ThreadId>> &
    runnables() const
    {
        return runnableLists;
    }

    /**
     * Move this run's observations out (pairing them with @p wake_at
     * from the run's SleepEval). The tracker must be reset() or
     * assigned from a checkpoint before the next run.
     */
    detail::DporRunData takeRunData(std::vector<std::size_t> wake_at);

  private:
    void closeOpenSlice(const std::vector<std::uint32_t> &chosen);

    race::SliceHb hbState;
    std::vector<std::vector<ThreadId>> runnableLists;
    /** Decision index of the open slice; noDecision = the prelude. */
    std::size_t openDecision = noDecision;
    bool finished = false;
    ThreadId setupTid = 0;
};

/**
 * Online wake tracking for one run's sleep set: advances over the
 * analyzer's closed slices and records, per entry, the first decision at
 * or past the branch whose slice woke it. Folding the still-active
 * entries into the pruning signature keeps sleep sets sound under
 * hb/state pruning.
 */
class SleepEval
{
  public:
    /** Start a run: @p sleep may be null (empty set). */
    void reset(const detail::SleepSet *sleep, std::size_t branch_decision);

    /** Process slices closed since the last call. */
    void advance(const race::SliceHb &hb);

    /** Mix the still-asleep entries (sorted by tid) into @p sig. */
    std::uint64_t foldActive(std::uint64_t sig) const;

    /** Per-entry wake decisions (noDecision = slept to the end). */
    std::vector<std::size_t> takeWakeAt() { return std::move(wake); }

  private:
    const detail::SleepSet *entries = nullptr;
    std::size_t branch = 0;
    std::size_t nextSlice = 0;
    std::vector<std::size_t> wake;
};

/**
 * Shared registry of scheduled branch-point children: the prefix-frontier
 * replacement for DFS backtrack sets. claim() is exact — hash plus full
 * prefix compare — because a false "already claimed" would silently drop
 * coverage. Sharded mutexes; safe from any worker.
 */
class BranchLedger
{
  public:
    /**
     * Claim child @p choice of the branch point reached by
     * @p path[0..len). True if this (prefix, choice) pair was new.
     */
    bool claim(const std::uint32_t *path, std::size_t len,
               std::uint32_t choice);

  private:
    static constexpr std::size_t numShards = 16;

    struct Node
    {
        std::vector<std::uint32_t> prefix;
        std::set<std::uint32_t> children;
    };

    struct Shard
    {
        std::mutex mu;
        /** Ordered map (lint rule D1); hash collisions chain. */
        std::map<std::uint64_t, std::vector<Node>> chains;
    };

    std::array<Shard, numShards> shards;
};

namespace detail
{

/**
 * DPOR counterpart of expandBranches(): register this run's executed
 * children in the ledger, then emit one child node per race-justified,
 * unclaimed, awake sibling. Counter parity: counts.pruned counts
 * siblings past the pruning limit exactly as expandBranches does;
 * stats.dporPruned counts in-scope siblings no race justified.
 */
ExpandCounts
expandDpor(const RunObservation &obs, const PendingNode &node,
           const ExploreConfig &config, BranchLedger &ledger,
           ExploreStats &stats,
           const std::function<void(PendingNode)> &emit);

} // namespace detail

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_DPOR_HPP
