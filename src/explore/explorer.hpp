#ifndef ICHECK_EXPLORE_EXPLORER_HPP
#define ICHECK_EXPLORE_EXPLORER_HPP

/**
 * @file
 * Bounded systematic-testing explorer (Section 6.2).
 *
 * Enumerates thread interleavings of a small program by DFS over
 * scheduling choices (ScriptedScheduler) and compares three search-space
 * reduction strategies:
 *
 *  - None: exhaustive enumeration;
 *  - HappensBefore: do not expand branches from a run whose happens-before
 *    signature was already seen (the approximation CHESS uses);
 *  - StateHash: do not expand branches past the first scheduling decision
 *    whose machine state (InstantCheck State Hash + per-thread progress)
 *    was already seen.
 *
 * The paper's Figure 1 argument is exactly that the two runs lead to the
 * same state but different happens-before, so state pruning merges what
 * happens-before pruning cannot. The pruning signature includes per-thread
 * progress counters as a program-counter proxy; it is exact for programs
 * whose thread-local state is a function of progress — true of the small
 * test programs used here.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "check/driver.hpp"
#include "explore/explore_constants.hpp"
#include "race/slice_hb.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace icheck::explore
{

/** Search-space reduction strategy. */
enum class PruneMode
{
    None,
    HappensBefore,
    StateHash,
};

/** Exploration bounds and scheduling granularity. */
struct ExploreConfig
{
    PruneMode prune = PruneMode::None;

    /**
     * Dynamic partial-order reduction (`--prune dpor`), composable with
     * any base prune mode: instead of expanding every sibling at every
     * decision, expand only the siblings some observed race justifies —
     * one representative schedule per Mazurkiewicz trace. Sound for
     * final-state coverage: commuting independent slices cannot change
     * any outcome, so the reduced search reports the same finalStates
     * (and finds the same seeded bugs) as exhaustive enumeration.
     * Unsound only in combination with a maxPreemptions bound (the
     * classic DPOR/bounding interaction), which is therefore not part
     * of any equivalence guarantee.
     */
    bool dpor = false;

    /** Hard cap on executed runs. */
    int maxRuns = 20000;

    /** Accesses per slice; 1 interleaves at every access. */
    std::uint64_t quantum = 1;

    /** Cap on scheduling decisions considered for branching per run. */
    std::size_t maxDepth = 4096;

    /**
     * CHESS-style iterative context bounding: maximum *preemptive*
     * context switches per explored schedule (switching away from a
     * thread that is still runnable). Unbounded by default. With a
     * bound, default continuations are preemption-free and branches
     * whose preemption count would exceed the bound are skipped.
     */
    std::size_t maxPreemptions = noDecision;

    /**
     * Share schedule prefixes between runs via machine checkpoints: a
     * frontier node restores its deepest checkpointed ancestor and
     * executes only the schedule suffix, instead of cold re-running the
     * whole prefix. Pure performance — every observation, report, and
     * hash is byte-identical with this on or off. Automatically falls
     * back to cold re-execution in builds without fiber snapshots
     * (TSan).
     */
    bool checkpoints = true;

    /**
     * Create a checkpoint at every Nth eligible scheduling decision.
     * Creating one costs about as much as restoring one, so stride 1
     * spends more on snapshots than they save; a hit loses at most
     * N-1 decisions of re-execution, which stride 4 keeps negligible.
     */
    std::size_t checkpointStride = 4;

    /**
     * Byte budget of the checkpoint tree; least-recently-used entries
     * are evicted past it (workers holding a lease on an evicted
     * snapshot keep it alive until they finish with it).
     */
    std::size_t checkpointBudgetBytes = 64ULL << 20;

    /**
     * Route the run trackers (HbTracker/DporTracker) through the ring
     * event transport (sim/transport.hpp, inline drain) instead of
     * direct dispatch. Observations are byte-identical either way;
     * forces cold runs (the warm prefix engine replays suffixes on a
     * persistent machine the transport cannot rebind mid-tree).
     */
    bool transport = false;

    /**
     * When non-empty, write one Chrome trace-event JSON per executed
     * run into this directory (`icheck explore --trace-dir`). Forces
     * cold runs so every trace covers its schedule from the start.
     */
    std::string traceDir;
};

/**
 * Observability counters of one exploration (the `icheck explore
 * --stats` JSON footer). Pure metadata: excluded from any equivalence
 * comparison between checkpointing and cold exploration.
 */
struct ExploreStats
{
    bool checkpointing = false; ///< Prefix sharing actually in effect.
    std::uint64_t nodesExpanded = 0;      ///< Schedules executed.
    std::uint64_t checkpointHits = 0;     ///< Runs resumed from an ancestor.
    std::uint64_t checkpointMisses = 0;   ///< Runs replayed from the root.
    std::uint64_t checkpointsCreated = 0;
    std::uint64_t checkpointsEvicted = 0;
    std::uint64_t checkpointBytes = 0;    ///< Resident tree bytes at end.
    std::uint64_t pagesCowCloned = 0;     ///< COW page copies performed.
    std::uint64_t decisionsRestored = 0;  ///< Decisions skipped via restore.
    std::uint64_t decisionsExecuted = 0;  ///< Decisions actually simulated.
    std::uint64_t sigInserts = 0;         ///< Seen-set insert attempts.
    std::uint64_t sigUnique = 0;          ///< ... that were new.

    /// @name DPOR counters (all zero unless ExploreConfig::dpor).
    /// @{
    bool dporActive = false;            ///< DPOR actually in effect.
    std::uint64_t tracesExplored = 0;   ///< Representative schedules run.
    std::uint64_t dporRaces = 0;        ///< Racing slice pairs observed.
    std::uint64_t backtracksInserted = 0; ///< Race-justified children emitted.
    std::uint64_t sleepSetHits = 0;     ///< Proposals skipped: thread asleep.
    std::uint64_t dporPruned = 0;       ///< Siblings no race justified.
    /// @}

    /** Accumulate @p other (counter sums; flags OR). */
    void merge(const ExploreStats &other);
};

/**
 * Render @p stats as the canonical single-line JSON object shared by
 * `icheck explore --stats` and the campaign service's explore
 * responses. Fixed key order, fixed "%.4f" dedup-rate formatting —
 * consumers diff these lines byte-for-byte.
 */
std::string renderStatsJson(const ExploreStats &stats);

/** Exploration outcome. */
struct ExploreResult
{
    int runsExecuted = 0;
    std::uint64_t branchesPruned = 0;
    std::uint64_t branchesBoundedOut = 0; ///< Skipped by the preemption bound.
    bool exhausted = false; ///< True if the full tree was covered.
    std::set<HashWord> finalStates;

    /** Observability counters (not part of the exploration outcome). */
    ExploreStats stats;
};

/**
 * Explore interleavings of programs from @p factory on machines built
 * from @p machine_template.
 */
ExploreResult explore(const check::ProgramFactory &factory,
                      const sim::MachineConfig &machine_template,
                      const ExploreConfig &config);

namespace detail
{

/**
 * The single-run / branch-expansion engine underneath explore(), exposed
 * so the parallel exploration frontier (src/runtime) can drive the same
 * search with a shared, thread-safe seen-signature set.
 */

/**
 * One sleeping thread: while no executed slice conflicts with `next`
 * (its pending step, recorded when it was put to sleep) and the thread
 * itself is not scheduled, any continuation that wakes it commutes back
 * to the branch point whose alternative already covers it.
 */
struct SleepEntry
{
    ThreadId tid = 0;
    race::SliceFootprint next;
};

/** A frontier node's sleep set, sorted by tid (deterministic folds). */
using SleepSet = std::vector<SleepEntry>;

/** One frontier node: a schedule prefix plus its inherited sleep set. */
struct PendingNode
{
    std::vector<std::uint32_t> prefix;
    SleepSet sleep; ///< Empty unless ExploreConfig::dpor.
};

/** Per-run DPOR observations (attached to RunObservation when on). */
struct DporRunData
{
    /** Slice conflict/order analysis of the whole run. */
    race::SliceHb hb;

    /** Runnable thread list at each decision (ascending tid order). */
    std::vector<std::vector<ThreadId>> runnables;

    /**
     * Per input sleep entry: decision index of the first slice at or
     * past the branch that woke it (scheduled the thread or conflicted
     * with its pending step), or noDecision if it slept to the end.
     */
    std::vector<std::size_t> wakeAt;
};

/** Everything observed during one scripted run. */
struct RunObservation
{
    std::vector<std::uint32_t> fanout;
    std::vector<std::uint32_t> path; ///< Choice taken at each decision.
    std::vector<std::int32_t> prevIdx; ///< Previous-thread index per decision.
    std::vector<std::size_t> preemptionsBefore; ///< Prefix preemption counts.
    std::size_t pruneAt = noDecision;
    HashWord finalState = 0;

    /** DPOR observations; null unless ExploreConfig::dpor. */
    std::shared_ptr<const DporRunData> dpor;
};

/**
 * Insert a pruning signature into the seen set; returns true if the
 * signature was new. Sequential search backs this with a plain std::set,
 * the parallel frontier with a sharded mutex-protected set.
 */
using SignatureInsert = std::function<bool(std::uint64_t)>;

/**
 * Execute one scripted run continuing past @p prefix. @p sleep is the
 * frontier node's sleep set (used, under DPOR, for wake tracking and the
 * pruning-signature fold); null is an empty set. @p trace, when non-null,
 * is attached as a run listener (ExploreConfig::traceDir plumbing).
 */
RunObservation runOnce(const check::ProgramFactory &factory,
                       const sim::MachineConfig &machine_template,
                       const ExploreConfig &config,
                       const std::vector<std::uint32_t> &prefix,
                       const SignatureInsert &insert_sig,
                       const SleepSet *sleep = nullptr,
                       sim::ChromeTraceBuilder *trace = nullptr);

/** Write @p trace as `<dir>/run-NNNNN.json` (claim-order @p ordinal);
 *  fatal when the directory is missing or unwritable. */
void writeRunTrace(const std::string &dir, int ordinal,
                   const sim::ChromeTraceBuilder &trace);

/** Branches not expanded (per-observation pruning/bounding counts). */
struct ExpandCounts
{
    std::uint64_t pruned = 0;
    std::uint64_t boundedOut = 0;
};

/**
 * Enumerate the unexplored child prefixes of @p obs (decisions at or past
 * @p prefix_size), calling @p emit for each; pruned and bounded-out
 * branches are counted instead of emitted. The designated (executed)
 * child is never emitted, so each prefix is generated exactly once across
 * the whole search regardless of which worker expands it.
 */
ExpandCounts
expandBranches(const RunObservation &obs, std::size_t prefix_size,
               const ExploreConfig &config,
               const std::function<void(std::vector<std::uint32_t>)> &emit);

} // namespace detail

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_EXPLORER_HPP
