#ifndef ICHECK_EXPLORE_HB_SIGNATURE_HPP
#define ICHECK_EXPLORE_HB_SIGNATURE_HPP

/**
 * @file
 * Happens-before trace signatures for search-space pruning.
 *
 * HbTracker listens to a Machine's events and maintains an
 * order-independent fingerprint of the run's happens-before trace — the
 * approximation systematic testers like CHESS prune with, and the foil for
 * the paper's state-hash pruning (Figure 1: equal states can arise from
 * inequivalent traces).
 *
 * The tracker is a plain value: copyable and assignable, so the
 * prefix-sharing explorer can checkpoint its state alongside a machine
 * snapshot and rewind both together.
 */

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "race/vector_clock.hpp"
#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::explore
{

/** Mix one word into a running signature (splitmix-style avalanche). */
inline std::uint64_t
mixSignature(std::uint64_t acc, std::uint64_t word)
{
    std::uint64_t z = acc ^ (word + 0x9e3779b97f4a7c15ULL +
                             (acc << 6) + (acc >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 31);
}

/**
 * Order-independent happens-before signature: modular sum of per-event
 * hashes, each covering (kind, object, tid, vector timestamp). Events
 * include synchronization operations *and* memory accesses with their
 * conflict order (every access to a granule joins the granule's clock),
 * so two interleavings get the same signature exactly when they are
 * trace-equivalent.
 */
class HbTracker : public sim::AccessListener
{
  public:
    void
    onStore(const sim::StoreEvent &event) override
    {
        if (event.domain != sim::CostDomain::Native)
            return;
        recordAccess(event.tid, event.addr & ~Addr{7}, /*is_write=*/true);
    }

    void
    onLoad(const sim::LoadEvent &event) override
    {
        recordAccess(event.tid, event.addr & ~Addr{7},
                     /*is_write=*/false);
    }

    void
    onSync(const sim::SyncEvent &event) override
    {
        // Maintain the same clock algebra as the race detector.
        race::VectorClock &now = clock(event.tid);
        switch (event.kind) {
          case sim::SyncKind::LockAcquire:
            now.join(mutexClocks[event.object]);
            break;
          case sim::SyncKind::LockRelease:
            mutexClocks[event.object].join(now);
            now.tick(event.tid);
            break;
          case sim::SyncKind::BarrierArrive:
            barrierGather[{event.object, event.epoch}].join(now);
            break;
          case sim::SyncKind::BarrierLeave:
            now.join(barrierGather[{event.object, event.epoch}]);
            now.tick(event.tid);
            break;
          case sim::SyncKind::CondSignal:
            condClocks[event.object].join(now);
            now.tick(event.tid);
            break;
          case sim::SyncKind::CondWait:
            now.join(condClocks[event.object]);
            break;
          case sim::SyncKind::ThreadStart:
          case sim::SyncKind::ThreadFinish:
            break;
        }
        std::uint64_t event_hash = 0x51ULL;
        event_hash = mixSignature(event_hash, static_cast<std::uint64_t>(
                                                  event.kind));
        event_hash = mixSignature(event_hash, event.object);
        event_hash = mixSignature(event_hash, event.tid);
        for (ThreadId t = 0; t < clocks.size(); ++t)
            event_hash = mixSignature(event_hash, now.get(t));
        signature += event_hash; // order-independent accumulation
    }

    std::uint64_t value() const { return signature; }

  private:
    race::VectorClock &
    clock(ThreadId tid)
    {
        if (tid >= clocks.size())
            clocks.resize(tid + 1);
        return clocks[tid];
    }

    void
    recordAccess(ThreadId tid, Addr granule, bool is_write)
    {
        // Conservative conflict order: every access to a granule is
        // ordered after all earlier accesses to it (read-read ordering is
        // stronger than necessary — it only costs pruning power, never
        // soundness).
        race::VectorClock &now = clock(tid);
        race::VectorClock &loc = granuleClocks[granule];
        now.join(loc);
        now.tick(tid);
        loc.join(now);
        std::uint64_t event_hash = is_write ? 0x77ULL : 0x72ULL;
        event_hash = mixSignature(event_hash, granule);
        event_hash = mixSignature(event_hash, tid);
        for (ThreadId t = 0; t < clocks.size(); ++t)
            event_hash = mixSignature(event_hash, now.get(t));
        signature += event_hash;
    }

    std::vector<race::VectorClock> clocks;
    std::map<Addr, race::VectorClock> granuleClocks;
    std::map<std::uint32_t, race::VectorClock> mutexClocks;
    std::map<std::pair<std::uint32_t, std::uint64_t>, race::VectorClock>
        barrierGather;
    std::map<std::uint32_t, race::VectorClock> condClocks;
    std::uint64_t signature = 0;
};

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_HB_SIGNATURE_HPP
