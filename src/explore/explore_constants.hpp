#ifndef ICHECK_EXPLORE_EXPLORE_CONSTANTS_HPP
#define ICHECK_EXPLORE_EXPLORE_CONSTANTS_HPP

/**
 * @file
 * Shared sentinels of the exploration engine.
 */

#include <cstddef>

namespace icheck::explore
{

/**
 * "No decision index": the unset value of per-run decision markers
 * (pruneAt, sleep-set wake points) and the unbounded setting of
 * decision-count knobs (maxPreemptions). Larger than any reachable
 * decision index, so range comparisons need no special casing.
 */
inline constexpr std::size_t noDecision = ~std::size_t{0};

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_EXPLORE_CONSTANTS_HPP
