#include "explore/dpor.hpp"

#include <algorithm>
#include <cassert>

#include "explore/hb_signature.hpp"

namespace icheck::explore
{

// ---------------------------------------------------------------------------
// DporTracker

void
DporTracker::reset(ThreadId setup_tid)
{
    setupTid = setup_tid;
    hbState = race::SliceHb(setup_tid);
    runnableLists.clear();
    openDecision = noDecision;
    finished = false;
}

void
DporTracker::onSync(const sim::SyncEvent &event)
{
    switch (event.kind) {
      case sim::SyncKind::LockAcquire:
        hbState.record(race::SliceHb::Op::Acquire, race::mutexKey(event.object));
        break;
      case sim::SyncKind::LockRelease:
        hbState.record(race::SliceHb::Op::Release, race::mutexKey(event.object));
        break;
      case sim::SyncKind::CondSignal:
        hbState.record(race::SliceHb::Op::CondSignal,
                       race::condKey(event.object));
        break;
      case sim::SyncKind::CondWait:
        hbState.record(race::SliceHb::Op::CondWait, race::condKey(event.object));
        break;
      case sim::SyncKind::BarrierArrive:
        hbState.record(race::SliceHb::Op::BarrierArrive,
                       race::barrierKey(event.object), event.epoch);
        break;
      case sim::SyncKind::BarrierLeave:
        hbState.record(race::SliceHb::Op::BarrierLeave,
                       race::barrierKey(event.object), event.epoch);
        break;
      case sim::SyncKind::ThreadStart:
      case sim::SyncKind::ThreadFinish:
        // Start/finish ordering is subsumed by the prelude base clock and
        // the per-thread slice clocks.
        break;
    }
}

void
DporTracker::closeOpenSlice(const std::vector<std::uint32_t> &chosen)
{
    if (openDecision == noDecision) {
        hbState.closeSlice(setupTid, race::SliceHb::noIndex);
        return;
    }
    const std::vector<ThreadId> &runnable = runnableLists[openDecision];
    hbState.closeSlice(runnable[chosen[openDecision]], openDecision);
}

void
DporTracker::onDecision(const std::vector<ThreadId> &runnable,
                        const std::vector<std::uint32_t> &chosen)
{
    const std::size_t decision = chosen.size();
    if (openDecision != noDecision && openDecision == decision) {
        // Re-fired at the same decision after a checkpoint restore: the
        // slice boundary was already processed when the checkpoint was
        // taken; just refresh the runnable list.
        runnableLists[decision] = runnable;
        return;
    }
    closeOpenSlice(chosen);
    runnableLists.push_back(runnable);
    openDecision = decision;
}

void
DporTracker::finishRun(const std::vector<std::uint32_t> &chosen)
{
    if (finished)
        return;
    closeOpenSlice(chosen);
    finished = true;
}

detail::DporRunData
DporTracker::takeRunData(std::vector<std::size_t> wake_at)
{
    detail::DporRunData data;
    data.hb = std::move(hbState);
    data.runnables = std::move(runnableLists);
    data.wakeAt = std::move(wake_at);
    return data;
}

// ---------------------------------------------------------------------------
// SleepEval

void
SleepEval::reset(const detail::SleepSet *sleep, std::size_t branch_decision)
{
    entries = sleep;
    branch = branch_decision;
    nextSlice = 0;
    wake.assign(sleep != nullptr ? sleep->size() : 0, noDecision);
}

void
SleepEval::advance(const race::SliceHb &hb)
{
    for (; nextSlice < hb.sliceCount(); ++nextSlice) {
        const std::size_t d = hb.sliceDecision(nextSlice);
        // The prelude and replayed prefix slices cannot wake anyone: the
        // sleep set was computed *at* the branch, over exactly those
        // slices (a conflicting entry was never inherited).
        if (d == race::SliceHb::noIndex || d < branch)
            continue;
        for (std::size_t i = 0; i < wake.size(); ++i) {
            if (wake[i] != noDecision)
                continue;
            const detail::SleepEntry &entry = (*entries)[i];
            if (hb.sliceTid(nextSlice) == entry.tid ||
                race::footprintsConflict(hb.sliceFootprint(nextSlice),
                                         entry.next))
                wake[i] = d;
        }
    }
}

std::uint64_t
SleepEval::foldActive(std::uint64_t sig) const
{
    // Entries are sorted by tid and wake order is position-independent,
    // so cold and checkpointed runs fold identical sequences. The offset
    // keeps sleep folds disjoint from the runnable-tid folds (t + 1).
    for (std::size_t i = 0; i < wake.size(); ++i) {
        if (wake[i] == noDecision)
            sig = mixSignature(sig, (*entries)[i].tid + 0x51ee9);
    }
    return sig;
}

// ---------------------------------------------------------------------------
// BranchLedger

bool
BranchLedger::claim(const std::uint32_t *path, std::size_t len,
                    std::uint32_t choice)
{
    std::uint64_t hash = 0xb7a9c4ULL;
    for (std::size_t i = 0; i < len; ++i)
        hash = mixSignature(hash, path[i] + 1);

    Shard &shard = shards[hash % numShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    std::vector<Node> &chain = shard.chains[hash];
    for (Node &node : chain) {
        if (node.prefix.size() == len &&
            std::equal(node.prefix.begin(), node.prefix.end(), path))
            return node.children.insert(choice).second;
    }
    Node node;
    node.prefix.assign(path, path + len);
    node.children.insert(choice);
    chain.push_back(std::move(node));
    return true;
}

// ---------------------------------------------------------------------------
// expandDpor

namespace detail
{

ExpandCounts
expandDpor(const RunObservation &obs, const PendingNode &node,
           const ExploreConfig &config, BranchLedger &ledger,
           ExploreStats &stats, const std::function<void(PendingNode)> &emit)
{
    assert(obs.dpor != nullptr);
    const DporRunData &data = *obs.dpor;
    const std::vector<std::uint32_t> &path = obs.path;
    const std::size_t prefixSize = node.prefix.size();
    const bool bounded = config.maxPreemptions != noDecision;

    ++stats.tracesExplored;
    stats.dporRaces += data.hb.races().size();

    const std::size_t limit =
        std::min({obs.fanout.size(), config.maxDepth, obs.pruneAt});

    // Register this run's executed children first: any concurrent run
    // proposing one of them finds it claimed, giving exactly-once
    // emission of every prefix across the whole search.
    for (std::size_t d = 0; d < limit; ++d) {
        if (obs.fanout[d] > 1)
            ledger.claim(path.data(), d, path[d]);
    }

    ExpandCounts counts;
    std::uint64_t emittedDeep = 0;

    for (const race::SliceHb::Race &race : data.hb.races()) {
        // Backtrack point: the decision whose choice started the earlier
        // slice — the last point where the later slice's thread can be
        // scheduled before it.
        const std::size_t e = data.hb.sliceDecision(race.earlier);
        if (e == race::SliceHb::noIndex || e >= limit || obs.fanout[e] <= 1)
            continue;
        const ThreadId target = data.hb.sliceTid(race.later);
        const std::vector<ThreadId> &runnable = data.runnables[e];

        // Propose the racing thread if it was runnable at e; otherwise
        // fall back to all runnable threads (one of them enables it —
        // the classic conservative fallback).
        std::vector<std::uint32_t> candidates;
        for (std::size_t i = 0; i < runnable.size(); ++i) {
            if (runnable[i] == target) {
                candidates.assign(1, static_cast<std::uint32_t>(i));
                break;
            }
        }
        if (candidates.empty()) {
            for (std::size_t i = 0; i < runnable.size(); ++i)
                candidates.push_back(static_cast<std::uint32_t>(i));
        }

        for (const std::uint32_t c : candidates) {
            if (c == path[e])
                continue;

            // Skip threads asleep at e: their step from here commutes
            // back to a branch whose alternative is already scheduled.
            bool asleep = false;
            for (std::size_t i = 0; i < node.sleep.size(); ++i) {
                if (node.sleep[i].tid == runnable[c] && e <= data.wakeAt[i]) {
                    asleep = true;
                    break;
                }
            }
            if (asleep) {
                ++stats.sleepSetHits;
                continue;
            }

            if (bounded) {
                const std::size_t preempt =
                    (obs.prevIdx[e] >= 0 &&
                     c != static_cast<std::uint32_t>(obs.prevIdx[e]))
                        ? 1
                        : 0;
                if (obs.preemptionsBefore[e] + preempt > config.maxPreemptions) {
                    ++counts.boundedOut;
                    continue;
                }
            }

            if (!ledger.claim(path.data(), e, c))
                continue;

            PendingNode child;
            child.prefix.assign(path.begin(),
                                path.begin() + static_cast<std::ptrdiff_t>(e));
            child.prefix.push_back(c);

            // The child's sleep set: the parent's entries still asleep at
            // the branch, plus the displaced designated thread with the
            // footprint of the step it would have taken (slice e is at
            // index e + 1: the prelude shifts slice indices by one).
            const ThreadId designated = runnable[path[e]];
            for (std::size_t i = 0; i < node.sleep.size(); ++i) {
                if (node.sleep[i].tid != designated && data.wakeAt[i] >= e)
                    child.sleep.push_back(node.sleep[i]);
            }
            SleepEntry displaced;
            displaced.tid = designated;
            if (e + 1 < data.hb.sliceCount())
                displaced.next = data.hb.sliceFootprint(e + 1);
            child.sleep.push_back(std::move(displaced));
            std::sort(child.sleep.begin(), child.sleep.end(),
                      [](const SleepEntry &a, const SleepEntry &b) {
                          return a.tid < b.tid;
                      });

            ++stats.backtracksInserted;
            if (e >= prefixSize)
                ++emittedDeep;
            emit(std::move(child));
        }
    }

    // Counter parity with expandBranches: siblings past the pruning
    // limit count as pruned; in-scope siblings DPOR did not need count
    // as dpor-pruned (the headline node reduction).
    std::uint64_t candidatesDeep = 0;
    for (std::size_t d = prefixSize; d < limit; ++d)
        candidatesDeep += obs.fanout[d] - 1;
    const std::size_t depthCap = std::min(obs.fanout.size(), config.maxDepth);
    for (std::size_t d = std::max(prefixSize, limit); d < depthCap; ++d)
        counts.pruned += obs.fanout[d] - 1;
    if (candidatesDeep > emittedDeep)
        stats.dporPruned += candidatesDeep - emittedDeep;

    return counts;
}

} // namespace detail

} // namespace icheck::explore
