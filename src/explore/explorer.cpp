#include "explore/explorer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <optional>

#include "explore/dpor.hpp"
#include "explore/hb_signature.hpp"
#include "explore/snapshot_tree.hpp"
#include "sim/transport.hpp"
#include "support/logging.hpp"

namespace icheck::explore
{

std::string
renderStatsJson(const ExploreStats &s)
{
    const double dedup =
        s.sigInserts == 0 ? 0.0
                          : 1.0 - static_cast<double>(s.sigUnique) /
                                      static_cast<double>(s.sigInserts);
    char line[768];
    std::snprintf(
        line, sizeof line,
        "{\"checkpointing\": %s, \"nodes_expanded\": %" PRIu64 ", "
        "\"checkpoint_hits\": %" PRIu64 ", \"checkpoint_misses\": %" PRIu64
        ", \"checkpoints_created\": %" PRIu64 ", "
        "\"checkpoints_evicted\": %" PRIu64 ", "
        "\"checkpoint_bytes\": %" PRIu64 ", \"pages_cow_cloned\": %" PRIu64
        ", \"decisions_restored\": %" PRIu64 ", "
        "\"decisions_executed\": %" PRIu64 ", \"sig_inserts\": %" PRIu64
        ", \"sig_unique\": %" PRIu64 ", \"dedup_rate\": %.4f, "
        "\"dpor\": %s, \"traces_explored\": %" PRIu64
        ", \"dpor_races\": %" PRIu64 ", \"backtracks_inserted\": %" PRIu64
        ", \"sleep_set_hits\": %" PRIu64 ", \"dpor_pruned\": %" PRIu64 "}",
        s.checkpointing ? "true" : "false", s.nodesExpanded,
        s.checkpointHits, s.checkpointMisses, s.checkpointsCreated,
        s.checkpointsEvicted, s.checkpointBytes, s.pagesCowCloned,
        s.decisionsRestored, s.decisionsExecuted, s.sigInserts,
        s.sigUnique, dedup, s.dporActive ? "true" : "false",
        s.tracesExplored, s.dporRaces, s.backtracksInserted,
        s.sleepSetHits, s.dporPruned);
    return line;
}

void
ExploreStats::merge(const ExploreStats &other)
{
    checkpointing = checkpointing || other.checkpointing;
    nodesExpanded += other.nodesExpanded;
    checkpointHits += other.checkpointHits;
    checkpointMisses += other.checkpointMisses;
    checkpointsCreated += other.checkpointsCreated;
    checkpointsEvicted += other.checkpointsEvicted;
    checkpointBytes += other.checkpointBytes;
    pagesCowCloned += other.pagesCowCloned;
    decisionsRestored += other.decisionsRestored;
    decisionsExecuted += other.decisionsExecuted;
    sigInserts += other.sigInserts;
    sigUnique += other.sigUnique;
    dporActive = dporActive || other.dporActive;
    tracesExplored += other.tracesExplored;
    dporRaces += other.dporRaces;
    backtracksInserted += other.backtracksInserted;
    sleepSetHits += other.sleepSetHits;
    dporPruned += other.dporPruned;
}

namespace detail
{

RunObservation
runOnce(const check::ProgramFactory &factory,
        const sim::MachineConfig &machine_template,
        const ExploreConfig &config,
        const std::vector<std::uint32_t> &prefix,
        const SignatureInsert &insert_sig, const SleepSet *sleep,
        sim::ChromeTraceBuilder *trace)
{
    auto program = factory();
    // Declared before the machine and its listeners: ~Machine (and the
    // explicit detach below) drains into still-live trackers.
    std::optional<sim::EventTransport> transport;
    if (config.transport)
        transport.emplace(sim::TransportConfig{});
    sim::Machine machine(machine_template);
    const bool bounded = config.maxPreemptions != noDecision;
    auto sched = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>(prefix), config.quantum,
        /*prefer_previous=*/bounded);
    sim::ScriptedScheduler *sched_ptr = sched.get();
    machine.setScheduler(std::move(sched));

    // The trackers read at scheduling decisions must be caught up before
    // every decision handler: decision-coupled interest. They key off
    // access addresses, never store values.
    sim::ConsumerInterest tracker_interest;
    tracker_interest.loads = true;
    tracker_interest.storeValues = false;
    tracker_interest.decisionCoupled = true;

    RunObservation obs;
    HbTracker hb;
    if (config.prune == PruneMode::HappensBefore) {
        if (transport)
            transport->addListener(&hb, tracker_interest);
        else
            machine.addListener(&hb);
    }

    DporTracker dpor;
    SleepEval sleepEval;
    if (config.dpor) {
        dpor.reset(program->numThreads());
        if (transport)
            transport->addListener(&dpor, tracker_interest);
        else
            machine.addListener(&dpor);
        sleepEval.reset(sleep, prefix.empty() ? 0 : prefix.size() - 1);
    }
    if (trace != nullptr)
        machine.addListener(trace);
    if (transport)
        machine.setTransport(&*transport);

    std::size_t decision = 0;
    machine.setDecisionHandler(
        [&](const std::vector<ThreadId> &runnable) {
            // Close the previous slice first: the pruning signature below
            // must reflect every slice executed *before* this decision.
            if (config.dpor) {
                dpor.onDecision(runnable, sched_ptr->chosenIndices());
                sleepEval.advance(dpor.hb());
            }
            // Both pruning modes work at decision granularity: if the
            // fingerprint of the execution prefix repeats, every
            // continuation from here was already reachable from the
            // earlier occurrence, so branches past this decision need not
            // be expanded. StateHash fingerprints the reached *state*
            // (merging state-equal prefixes even when their traces
            // differ, the paper's improvement); HappensBefore fingerprints
            // the *trace* (the CHESS approximation). Decisions before
            // prefix.size() are shared with the ancestor run that spawned
            // this prefix and were recorded by it already.
            if (config.prune != PruneMode::None &&
                decision >= prefix.size() &&
                obs.pruneAt == noDecision) {
                // HappensBefore merges equal *traces*; trace-equivalent
                // prefixes always have the same length, so folding the
                // depth in costs nothing — and without it a decision whose
                // slice emitted no sync event (a pre-acquire switch point)
                // would collide with its own predecessor and truncate the
                // run's expansion. States, by contrast, merge at any depth.
                std::uint64_t sig =
                    config.prune == PruneMode::StateHash
                        ? machine.stateSignature()
                        : mixSignature(hb.value(), decision);
                // Sleep sets make continuations a function of (state,
                // sleep set), not state alone: fold the active entries in
                // so states reached with different sleep sets never
                // dedup against each other (the classic sleep-set x
                // state-caching unsoundness).
                if (config.dpor)
                    sig = sleepEval.foldActive(sig);
                for (ThreadId t : runnable)
                    sig = mixSignature(sig, t + 1);
                if (!insert_sig(sig))
                    obs.pruneAt = decision;
            }
            ++decision;
        });

    machine.setCheckpointHandler([&](const sim::CheckpointInfo &info) {
        if (info.kind == sim::CheckpointKind::ProgramEnd) {
            hashing::ModHash sum;
            for (ThreadId t = 0; t < machine.numThreads(); ++t)
                sum += hashing::ModHash(machine.threadHash(t));
            obs.finalState = sum.raw();
        }
    });

    machine.run(*program);
    if (transport)
        machine.setTransport(nullptr); // Final drain + detach.

    if (config.dpor) {
        dpor.finishRun(sched_ptr->chosenIndices());
        sleepEval.advance(dpor.hb());
        obs.dpor = std::make_shared<const DporRunData>(
            dpor.takeRunData(sleepEval.takeWakeAt()));
    }

    obs.fanout = sched_ptr->decisionFanout();
    obs.path = sched_ptr->chosenIndices();
    obs.prevIdx = sched_ptr->previousIndices();
    // Prefix sums of preemptions: decision d preempts when the previous
    // thread was runnable but a different one was chosen.
    obs.preemptionsBefore.resize(obs.fanout.size() + 1, 0);
    for (std::size_t d = 0; d < obs.fanout.size(); ++d) {
        const bool preempted =
            obs.prevIdx[d] >= 0 &&
            obs.path[d] != static_cast<std::uint32_t>(obs.prevIdx[d]);
        obs.preemptionsBefore[d + 1] =
            obs.preemptionsBefore[d] + (preempted ? 1 : 0);
    }
    return obs;
}

void
writeRunTrace(const std::string &dir, int ordinal,
              const sim::ChromeTraceBuilder &trace)
{
    char name[32];
    std::snprintf(name, sizeof name, "run-%05d.json", ordinal);
    const std::string path = dir + "/" + name;
    if (!sim::writeChromeTraceFile(path, {&trace}))
        ICHECK_FATAL("cannot write trace file '", path, "'");
}

ExpandCounts
expandBranches(const RunObservation &obs, std::size_t prefix_size,
               const ExploreConfig &config,
               const std::function<void(std::vector<std::uint32_t>)> &emit)
{
    ExpandCounts counts;

    // Expand new branches only up to the first pruned decision.
    const std::size_t limit =
        std::min({obs.fanout.size(), config.maxDepth, obs.pruneAt});

    // Expand every non-designated choice at every decision past the
    // prefix. The designated (executed) child is a deterministic
    // function of the execution history, so each prefix is generated
    // exactly once across the whole search.
    for (std::size_t d = prefix_size;
         d < std::min(obs.fanout.size(), config.maxDepth); ++d) {
        for (std::uint32_t c = 0; c < obs.fanout[d]; ++c) {
            if (c == obs.path[d])
                continue;
            if (d >= limit) {
                ++counts.pruned;
                continue;
            }
            // Context bounding: skip branches whose preemption count
            // would exceed the budget.
            const bool branch_preempts =
                obs.prevIdx[d] >= 0 &&
                c != static_cast<std::uint32_t>(obs.prevIdx[d]);
            if (obs.preemptionsBefore[d] + (branch_preempts ? 1 : 0) >
                config.maxPreemptions) {
                ++counts.boundedOut;
                continue;
            }
            std::vector<std::uint32_t> next(
                obs.path.begin(),
                obs.path.begin() + static_cast<std::ptrdiff_t>(d));
            next.push_back(c);
            emit(std::move(next));
        }
    }
    return counts;
}

} // namespace detail

ExploreResult
explore(const check::ProgramFactory &factory,
        const sim::MachineConfig &machine_template,
        const ExploreConfig &config)
{
    ExploreResult result;
    std::set<std::uint64_t> seen_sigs;
    const detail::SignatureInsert insert_sig =
        [&seen_sigs, &result](std::uint64_t sig) {
            ++result.stats.sigInserts;
            const bool fresh = seen_sigs.insert(sig).second;
            if (fresh)
                ++result.stats.sigUnique;
            return fresh;
        };

    // Prefix sharing: one persistent machine plus a checkpoint tree,
    // unless disabled or unsupported (TSan builds). Either way every
    // observation — and therefore the whole ExploreResult minus stats —
    // is byte-identical. Transport routing and per-run tracing force
    // cold runs: the persistent machine cannot rebind a transport
    // mid-tree, and a trace must cover its schedule from the start.
    const bool warm = config.checkpoints && PrefixEngine::supported() &&
                      !config.transport && config.traceDir.empty();
    std::unique_ptr<CheckpointTree> tree;
    std::unique_ptr<PrefixEngine> engine;
    if (warm) {
        tree = std::make_unique<CheckpointTree>(
            config.checkpointBudgetBytes);
        engine = std::make_unique<PrefixEngine>(
            factory, machine_template, config, *tree, 0);
    }

    std::unique_ptr<BranchLedger> ledger;
    if (config.dpor)
        ledger = std::make_unique<BranchLedger>();
    result.stats.dporActive = config.dpor;

    std::vector<detail::PendingNode> pending;
    pending.push_back({});

    while (!pending.empty() && result.runsExecuted < config.maxRuns) {
        const detail::PendingNode node = std::move(pending.back());
        pending.pop_back();

        std::unique_ptr<sim::ChromeTraceBuilder> trace;
        if (!config.traceDir.empty()) {
            trace = std::make_unique<sim::ChromeTraceBuilder>(
                "run " + std::to_string(result.runsExecuted) +
                " (depth " + std::to_string(node.prefix.size()) + ")");
        }
        const detail::RunObservation obs =
            warm ? engine->runOnce(node.prefix, insert_sig, &node.sleep)
                 : detail::runOnce(factory, machine_template, config,
                                   node.prefix, insert_sig, &node.sleep,
                                   trace.get());
        if (trace != nullptr)
            detail::writeRunTrace(config.traceDir, result.runsExecuted,
                                  *trace);
        ++result.runsExecuted;
        if (!warm) {
            ++result.stats.nodesExpanded;
            result.stats.decisionsExecuted += obs.fanout.size();
        }
        result.finalStates.insert(obs.finalState);

        const detail::ExpandCounts counts =
            config.dpor
                ? detail::expandDpor(
                      obs, node, config, *ledger, result.stats,
                      [&pending](detail::PendingNode child) {
                          pending.push_back(std::move(child));
                      })
                : detail::expandBranches(
                      obs, node.prefix.size(), config,
                      [&pending](std::vector<std::uint32_t> next) {
                          pending.push_back({std::move(next), {}});
                      });
        result.branchesPruned += counts.pruned;
        result.branchesBoundedOut += counts.boundedOut;
    }

    result.exhausted = pending.empty();
    if (warm) {
        result.stats.merge(engine->stats());
        result.stats.checkpointsCreated = tree->createdCount();
        result.stats.checkpointsEvicted = tree->evictedCount();
        result.stats.checkpointBytes = tree->residentBytes();
    }
    return result;
}

} // namespace icheck::explore
