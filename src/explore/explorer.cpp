#include "explore/explorer.hpp"

#include <algorithm>
#include <memory>

#include "race/vector_clock.hpp"
#include "support/logging.hpp"

namespace icheck::explore
{

namespace
{

/** Mix one word into a running signature. */
std::uint64_t
mix(std::uint64_t acc, std::uint64_t word)
{
    std::uint64_t z = acc ^ (word + 0x9e3779b97f4a7c15ULL +
                             (acc << 6) + (acc >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 31);
}

/**
 * Order-independent happens-before signature: modular sum of per-event
 * hashes, each covering (kind, object, tid, vector timestamp). Events
 * include synchronization operations *and* memory accesses with their
 * conflict order (every access to a granule joins the granule's clock),
 * so two interleavings get the same signature exactly when they are
 * trace-equivalent. This is the approximation systematic testers like
 * CHESS prune with — and what state hashing improves on, because equal
 * states can arise from inequivalent traces (Figure 1).
 */
class HbTracker : public sim::AccessListener
{
  public:
    void
    onStore(const sim::StoreEvent &event) override
    {
        if (event.domain != sim::CostDomain::Native)
            return;
        recordAccess(event.tid, event.addr & ~Addr{7}, /*is_write=*/true);
    }

    void
    onLoad(const sim::LoadEvent &event) override
    {
        recordAccess(event.tid, event.addr & ~Addr{7},
                     /*is_write=*/false);
    }
    void
    onSync(const sim::SyncEvent &event) override
    {
        // Maintain the same clock algebra as the race detector.
        race::VectorClock &now = clock(event.tid);
        switch (event.kind) {
          case sim::SyncKind::LockAcquire:
            now.join(mutexClocks[event.object]);
            break;
          case sim::SyncKind::LockRelease:
            mutexClocks[event.object].join(now);
            now.tick(event.tid);
            break;
          case sim::SyncKind::BarrierArrive:
            barrierGather[{event.object, event.epoch}].join(now);
            break;
          case sim::SyncKind::BarrierLeave:
            now.join(barrierGather[{event.object, event.epoch}]);
            now.tick(event.tid);
            break;
          case sim::SyncKind::CondSignal:
            condClocks[event.object].join(now);
            now.tick(event.tid);
            break;
          case sim::SyncKind::CondWait:
            now.join(condClocks[event.object]);
            break;
          case sim::SyncKind::ThreadStart:
          case sim::SyncKind::ThreadFinish:
            break;
        }
        std::uint64_t event_hash = 0x51ULL;
        event_hash = mix(event_hash, static_cast<std::uint64_t>(
                                         event.kind));
        event_hash = mix(event_hash, event.object);
        event_hash = mix(event_hash, event.tid);
        for (ThreadId t = 0; t < clocks.size(); ++t)
            event_hash = mix(event_hash, now.get(t));
        signature += event_hash; // order-independent accumulation
    }

    std::uint64_t value() const { return signature; }

  private:
    race::VectorClock &
    clock(ThreadId tid)
    {
        if (tid >= clocks.size())
            clocks.resize(tid + 1);
        return clocks[tid];
    }

    void
    recordAccess(ThreadId tid, Addr granule, bool is_write)
    {
        // Conservative conflict order: every access to a granule is
        // ordered after all earlier accesses to it (read-read ordering is
        // stronger than necessary — it only costs pruning power, never
        // soundness).
        race::VectorClock &now = clock(tid);
        race::VectorClock &loc = granuleClocks[granule];
        now.join(loc);
        now.tick(tid);
        loc.join(now);
        std::uint64_t event_hash = is_write ? 0x77ULL : 0x72ULL;
        event_hash = mix(event_hash, granule);
        event_hash = mix(event_hash, tid);
        for (ThreadId t = 0; t < clocks.size(); ++t)
            event_hash = mix(event_hash, now.get(t));
        signature += event_hash;
    }

    std::vector<race::VectorClock> clocks;
    std::map<Addr, race::VectorClock> granuleClocks;
    std::map<std::uint32_t, race::VectorClock> mutexClocks;
    std::map<std::pair<std::uint32_t, std::uint64_t>, race::VectorClock>
        barrierGather;
    std::map<std::uint32_t, race::VectorClock> condClocks;
    std::uint64_t signature = 0;
};

} // namespace

namespace detail
{

RunObservation
runOnce(const check::ProgramFactory &factory,
        const sim::MachineConfig &machine_template,
        const ExploreConfig &config,
        const std::vector<std::uint32_t> &prefix,
        const SignatureInsert &insert_sig)
{
    sim::Machine machine(machine_template);
    const bool bounded = config.maxPreemptions != ~std::size_t{0};
    auto sched = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>(prefix), config.quantum,
        /*prefer_previous=*/bounded);
    sim::ScriptedScheduler *sched_ptr = sched.get();
    machine.setScheduler(std::move(sched));

    RunObservation obs;
    HbTracker hb;
    if (config.prune == PruneMode::HappensBefore)
        machine.addListener(&hb);

    std::size_t decision = 0;
    machine.setDecisionHandler(
        [&](const std::vector<ThreadId> &runnable) {
            // Both pruning modes work at decision granularity: if the
            // fingerprint of the execution prefix repeats, every
            // continuation from here was already reachable from the
            // earlier occurrence, so branches past this decision need not
            // be expanded. StateHash fingerprints the reached *state*
            // (merging state-equal prefixes even when their traces
            // differ, the paper's improvement); HappensBefore fingerprints
            // the *trace* (the CHESS approximation). Decisions before
            // prefix.size() are shared with the ancestor run that spawned
            // this prefix and were recorded by it already.
            if (config.prune != PruneMode::None &&
                decision >= prefix.size() &&
                obs.pruneAt == ~std::size_t{0}) {
                std::uint64_t sig =
                    config.prune == PruneMode::StateHash
                        ? machine.stateSignature()
                        : hb.value();
                for (ThreadId t : runnable)
                    sig = mix(sig, t + 1);
                if (!insert_sig(sig))
                    obs.pruneAt = decision;
            }
            ++decision;
        });

    machine.setCheckpointHandler([&](const sim::CheckpointInfo &info) {
        if (info.kind == sim::CheckpointKind::ProgramEnd) {
            hashing::ModHash sum;
            for (ThreadId t = 0; t < machine.numThreads(); ++t)
                sum += hashing::ModHash(machine.threadHash(t));
            obs.finalState = sum.raw();
        }
    });

    auto program = factory();
    machine.run(*program);

    obs.fanout = sched_ptr->decisionFanout();
    obs.path = sched_ptr->chosenIndices();
    obs.prevIdx = sched_ptr->previousIndices();
    // Prefix sums of preemptions: decision d preempts when the previous
    // thread was runnable but a different one was chosen.
    obs.preemptionsBefore.resize(obs.fanout.size() + 1, 0);
    for (std::size_t d = 0; d < obs.fanout.size(); ++d) {
        const bool preempted =
            obs.prevIdx[d] >= 0 &&
            obs.path[d] != static_cast<std::uint32_t>(obs.prevIdx[d]);
        obs.preemptionsBefore[d + 1] =
            obs.preemptionsBefore[d] + (preempted ? 1 : 0);
    }
    return obs;
}

ExpandCounts
expandBranches(const RunObservation &obs, std::size_t prefix_size,
               const ExploreConfig &config,
               const std::function<void(std::vector<std::uint32_t>)> &emit)
{
    ExpandCounts counts;

    // Expand new branches only up to the first pruned decision.
    const std::size_t limit =
        std::min({obs.fanout.size(), config.maxDepth, obs.pruneAt});

    // Expand every non-designated choice at every decision past the
    // prefix. The designated (executed) child is a deterministic
    // function of the execution history, so each prefix is generated
    // exactly once across the whole search.
    for (std::size_t d = prefix_size;
         d < std::min(obs.fanout.size(), config.maxDepth); ++d) {
        for (std::uint32_t c = 0; c < obs.fanout[d]; ++c) {
            if (c == obs.path[d])
                continue;
            if (d >= limit) {
                ++counts.pruned;
                continue;
            }
            // Context bounding: skip branches whose preemption count
            // would exceed the budget.
            const bool branch_preempts =
                obs.prevIdx[d] >= 0 &&
                c != static_cast<std::uint32_t>(obs.prevIdx[d]);
            if (obs.preemptionsBefore[d] + (branch_preempts ? 1 : 0) >
                config.maxPreemptions) {
                ++counts.boundedOut;
                continue;
            }
            std::vector<std::uint32_t> next(
                obs.path.begin(),
                obs.path.begin() + static_cast<std::ptrdiff_t>(d));
            next.push_back(c);
            emit(std::move(next));
        }
    }
    return counts;
}

} // namespace detail

ExploreResult
explore(const check::ProgramFactory &factory,
        const sim::MachineConfig &machine_template,
        const ExploreConfig &config)
{
    ExploreResult result;
    std::set<std::uint64_t> seen_sigs;
    const detail::SignatureInsert insert_sig =
        [&seen_sigs](std::uint64_t sig) {
            return seen_sigs.insert(sig).second;
        };

    std::vector<std::vector<std::uint32_t>> pending;
    pending.push_back({});

    while (!pending.empty() && result.runsExecuted < config.maxRuns) {
        const std::vector<std::uint32_t> prefix = std::move(
            pending.back());
        pending.pop_back();

        const detail::RunObservation obs = detail::runOnce(
            factory, machine_template, config, prefix, insert_sig);
        ++result.runsExecuted;
        result.finalStates.insert(obs.finalState);

        const detail::ExpandCounts counts = detail::expandBranches(
            obs, prefix.size(), config,
            [&pending](std::vector<std::uint32_t> next) {
                pending.push_back(std::move(next));
            });
        result.branchesPruned += counts.pruned;
        result.branchesBoundedOut += counts.boundedOut;
    }

    result.exhausted = pending.empty();
    return result;
}

} // namespace icheck::explore
