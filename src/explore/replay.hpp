#ifndef ICHECK_EXPLORE_REPLAY_HPP
#define ICHECK_EXPLORE_REPLAY_HPP

/**
 * @file
 * Deterministic-replay assist (Section 6.3).
 *
 * Classic replay saves a precise schedule log; recent systems save only a
 * partial log and search executions consistent with it. InstantCheck's
 * role: the state hash stored with the log tells the searcher *when it has
 * reproduced the entire state*, not just the bug — a 64-bit compare
 * instead of a full state diff.
 *
 * Implemented here: full schedule recording (choice indices + quanta),
 * exact scripted replay, and a partial-log search that replays a prefix of
 * the log and randomizes the suffix until the recorded final state hash is
 * reproduced.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "sim/machine.hpp"
#include "sim/sched.hpp"
#include "support/types.hpp"

namespace icheck::explore
{

/** A recorded schedule plus the state fingerprint it reached. */
struct ScheduleLog
{
    std::vector<std::uint32_t> choices; ///< Index into the runnable set.
    std::vector<std::uint64_t> quanta;  ///< Slice length per decision.
    HashWord finalStateHash = 0;

    /**
     * Serialize to a stable single-line text format ("v1 <hash> <n>
     * <choice:quantum>...") so logs can be stored beside a failing test
     * and replayed in another process.
     */
    std::string serialize() const;

    /** Parse a serialize()d log; throws std::invalid_argument on junk. */
    static ScheduleLog deserialize(const std::string &text);

    bool operator==(const ScheduleLog &) const = default;
};

/**
 * Scheduler wrapper that records every decision of an inner scheduler.
 */
class RecordingScheduler : public sim::Scheduler
{
  public:
    explicit RecordingScheduler(std::unique_ptr<sim::Scheduler> wrapped)
        : inner(std::move(wrapped))
    {}

    ThreadId pick(const std::vector<ThreadId> &runnable) override;
    std::uint64_t quantum() override;

    /** Decisions recorded so far. */
    const std::vector<std::uint32_t> &choices() const { return log; }
    const std::vector<std::uint64_t> &quanta() const { return quantaLog; }

  private:
    std::unique_ptr<sim::Scheduler> inner;
    std::vector<std::uint32_t> log;
    std::vector<std::uint64_t> quantaLog;
};

/**
 * Replays a log prefix exactly, then continues with seeded random
 * decisions — the "search executions that obey the partial log" step.
 */
class PrefixReplayScheduler : public sim::Scheduler
{
  public:
    PrefixReplayScheduler(const ScheduleLog &log, std::size_t prefix_len,
                          std::uint64_t search_seed,
                          std::uint64_t min_quantum,
                          std::uint64_t max_quantum);

    ThreadId pick(const std::vector<ThreadId> &runnable) override;
    std::uint64_t quantum() override;

  private:
    std::vector<std::uint32_t> choices;
    std::vector<std::uint64_t> quanta;
    std::size_t prefixLen;
    std::size_t pickCursor = 0;
    std::size_t quantumCursor = 0;
    Xoshiro256 rng;
    std::uint64_t minQuantum;
    std::uint64_t maxQuantum;
};

/** Record one run under a random schedule. */
ScheduleLog recordRun(const check::ProgramFactory &factory,
                      const sim::MachineConfig &machine_template,
                      std::uint64_t sched_seed);

/** Replay a full log exactly; returns the reached state hash. */
HashWord replayExact(const check::ProgramFactory &factory,
                     const sim::MachineConfig &machine_template,
                     const ScheduleLog &log);

/** Outcome of a partial-log replay search. */
struct ReplaySearchResult
{
    bool reproduced = false;
    int attempts = 0;
    std::uint64_t matchingSeed = 0;
};

/**
 * Keep only the first @p prefix_fraction of the log and search random
 * continuations until the recorded state hash is reproduced (hash-verified
 * replay) or @p max_attempts is exhausted.
 */
ReplaySearchResult searchReplay(const check::ProgramFactory &factory,
                                const sim::MachineConfig
                                    &machine_template,
                                const ScheduleLog &log,
                                double prefix_fraction, int max_attempts);

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_REPLAY_HPP
