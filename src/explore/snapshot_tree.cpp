#include "explore/snapshot_tree.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace icheck::explore
{

// ---------------------------------------------------------------------------
// CheckpointTree

CheckpointTree::CheckpointTree(std::size_t budget_bytes)
    : shardBudget(std::max<std::size_t>(budget_bytes / numShards, 1))
{}

std::uint64_t
CheckpointTree::hashPrefix(std::size_t owner, const std::uint32_t *choices,
                           std::size_t count)
{
    std::uint64_t h = mixSignature(0x1c5eedULL, owner + 1);
    for (std::size_t i = 0; i < count; ++i)
        h = mixSignature(h, choices[i] + 1ULL);
    return h;
}

void
CheckpointTree::evictFor(Shard &shard, std::size_t need,
                         std::size_t shard_budget)
{
    while (!shard.entries.empty() &&
           shard.bytesResident + need > shard_budget) {
        auto victim = shard.entries.begin();
        for (auto it = shard.entries.begin(); it != shard.entries.end();
             ++it) {
            if (it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        shard.bytesResident -= std::min(shard.bytesResident,
                                        victim->second->bytes);
        ++shard.evicted;
        // Dropping the map's shared_ptr: a worker holding a lease keeps
        // the entry (and its snapshot) alive until it finishes with it.
        shard.entries.erase(victim);
    }
}

void
CheckpointTree::insert(CheckpointEntry entry)
{
    const std::uint64_t key =
        hashPrefix(entry.owner, entry.chosen.data(), entry.chosen.size());
    const std::uint64_t stamp =
        useClock.fetch_add(1, std::memory_order_relaxed) + 1;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        if (it->second->owner == entry.owner &&
            it->second->chosen == entry.chosen) {
            it->second->lastUse = stamp; // already resident; refresh
            return;
        }
        // Key collision with a different prefix: replace (lookups verify
        // the exact history, so keeping just one is merely a cache miss
        // for the displaced prefix).
        shard.bytesResident -= std::min(shard.bytesResident,
                                        it->second->bytes);
        ++shard.evicted;
        shard.entries.erase(it);
    }
    evictFor(shard, entry.bytes, shardBudget);
    entry.lastUse = stamp;
    shard.bytesResident += entry.bytes;
    ++shard.created;
    shard.entries.emplace(
        key, std::make_shared<CheckpointEntry>(std::move(entry)));
}

std::shared_ptr<const CheckpointEntry>
CheckpointTree::deepestAncestor(std::size_t owner,
                                const std::vector<std::uint32_t> &prefix)
{
    // Rolling hashes of every prefix length, built front to back, then
    // probed deepest first. Length 0 is excluded: the root snapshot is
    // pinned by the engine, never stored in the tree.
    std::vector<std::uint64_t> keys(prefix.size() + 1);
    std::uint64_t h = mixSignature(0x1c5eedULL, owner + 1);
    keys[0] = h;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        h = mixSignature(h, prefix[i] + 1ULL);
        keys[i + 1] = h;
    }
    for (std::size_t len = prefix.size(); len >= 1; --len) {
        Shard &shard = shardFor(keys[len]);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.entries.find(keys[len]);
        if (it == shard.entries.end())
            continue;
        const std::shared_ptr<CheckpointEntry> &entry = it->second;
        if (entry->owner != owner || entry->chosen.size() != len ||
            !std::equal(entry->chosen.begin(), entry->chosen.end(),
                        prefix.begin())) {
            continue; // hash collision; treat as absent
        }
        entry->lastUse =
            useClock.fetch_add(1, std::memory_order_relaxed) + 1;
        return entry;
    }
    return nullptr;
}

bool
CheckpointTree::contains(std::size_t owner,
                         const std::vector<std::uint32_t> &prefix)
{
    return containsKeyed(hashPrefix(owner, prefix.data(), prefix.size()),
                         owner, prefix);
}

bool
CheckpointTree::containsKeyed(std::uint64_t key, std::size_t owner,
                              const std::vector<std::uint32_t> &prefix)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    return it != shard.entries.end() && it->second->owner == owner &&
           it->second->chosen == prefix;
}

std::uint64_t
CheckpointTree::createdCount() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.created;
    }
    return total;
}

std::uint64_t
CheckpointTree::evictedCount() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.evicted;
    }
    return total;
}

std::uint64_t
CheckpointTree::residentBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.bytesResident;
    }
    return total;
}

// ---------------------------------------------------------------------------
// PrefixEngine

PrefixEngine::PrefixEngine(const check::ProgramFactory &factory,
                           const sim::MachineConfig &machine_template,
                           const ExploreConfig &config,
                           CheckpointTree &checkpoint_tree,
                           std::size_t owner_id)
    : cfg(config), tree(checkpoint_tree), owner(owner_id),
      program(factory()), machine(machine_template)
{
    ICHECK_ASSERT(supported(),
                  "PrefixEngine requires fiber snapshots (use the cold "
                  "explorer under TSan)");
    counters.checkpointing = true;

    machine.setDecisionHandler(
        [this](const std::vector<ThreadId> &runnable) {
            onDecision(runnable);
        });
    machine.setCheckpointHandler(
        [this](const sim::CheckpointInfo &info) {
            if (info.kind == sim::CheckpointKind::ProgramEnd) {
                hashing::ModHash sum;
                for (ThreadId t = 0; t < machine.numThreads(); ++t)
                    sum += hashing::ModHash(machine.threadHash(t));
                finalState = sum.raw();
            }
        });
    if (cfg.prune == PruneMode::HappensBefore)
        machine.addListener(&hbState);
    if (cfg.dpor) {
        dporState.reset(program->numThreads());
        machine.addListener(&dporState);
    }

    // The scheduler must be injected before beginRun() (which otherwise
    // installs a RandomScheduler); runOnce() replaces it per run.
    const bool bounded = cfg.maxPreemptions != noDecision;
    auto seed_sched = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>{}, cfg.quantum, bounded);
    sched = seed_sched.get();
    machine.setScheduler(std::move(seed_sched));

    machine.beginRun(*program);
    rootSnap = machine.checkpoint();
    rootHb = hbState;
    rootDpor = dporState;
}

PrefixEngine::~PrefixEngine() = default;

void
PrefixEngine::onDecision(const std::vector<ThreadId> &runnable)
{
    const std::vector<std::uint32_t> &prefix = *curPrefix;
    const std::vector<std::uint32_t> &executed = sched->chosenIndices();

    // Close the previous slice first (identical to the cold path): the
    // pruning signature and any checkpoint taken below must reflect every
    // slice executed before this decision. After a restore the handler
    // re-fires at startDecision; DporTracker::onDecision is idempotent
    // against that.
    if (cfg.dpor) {
        dporState.onDecision(runnable, executed);
        sleepEval.advance(dporState.hb());
    }

    // Fold choices appended since the last decision into the rolling
    // path hash (the handler runs before pick(), so the history holds
    // exactly `decision` entries).
    while (pathHashLen < executed.size()) {
        pathHash = mixSignature(pathHash, executed[pathHashLen] + 1ULL);
        ++pathHashLen;
    }

    // Pruning-signature logic, identical to the cold path: decisions
    // before prefix.size() were recorded by the ancestor run that spawned
    // this prefix. Decisions before startDecision never execute at all —
    // they were skipped by the checkpoint restore, which is exactly why
    // the condition must use prefix.size(), not startDecision.
    if (cfg.prune != PruneMode::None && decision >= prefix.size() &&
        pruneAt == noDecision) {
        // Depth fold for HappensBefore mirrors the cold path exactly; see
        // the comment there.
        std::uint64_t sig = cfg.prune == PruneMode::StateHash
                                ? machine.stateSignature()
                                : mixSignature(hbState.value(), decision);
        if (cfg.dpor)
            sig = sleepEval.foldActive(sig);
        for (ThreadId t : runnable)
            sig = mixSignature(sig, t + 1);
        if (!(*curInsert)(sig))
            pruneAt = decision;
    }

    // Checkpoint creation. Eligible decisions: past the (pinned) root,
    // within the branching depth, actually branchy (forced moves add no
    // reachable prefix keys), on the stride, and not beyond a pruned
    // decision (expansion never emits prefixes past pruneAt, so deeper
    // checkpoints on this path could never be hit). Under DPOR the
    // current prefix's own branch decision bypasses the stride: every
    // sibling emitted at that branch restores from it with zero replayed
    // decisions, which is what makes per-trace cost O(suffix).
    const bool branchPoint =
        cfg.dpor && !prefix.empty() && decision + 1 == prefix.size();
    if (decision >= 1 && runnable.size() > 1 &&
        decision < cfg.maxDepth && decision < pruneAt &&
        (cfg.checkpointStride <= 1 ||
         decision % cfg.checkpointStride == 0 || branchPoint) &&
        !tree.containsKeyed(pathHash, owner, executed)) {
        CheckpointEntry entry;
        entry.owner = owner;
        entry.fanout = sched->decisionFanout();
        entry.chosen = sched->chosenIndices();
        entry.prevIdx = sched->previousIndices();
        entry.lastPick = sched->lastPicked();
        entry.snap = machine.checkpoint();
        if (cfg.prune == PruneMode::HappensBefore)
            entry.hb = std::make_shared<HbTracker>(hbState);
        if (cfg.dpor)
            entry.dpor = std::make_shared<DporTracker>(dporState);
        entry.bytes = entry.snap->bytes() +
                      entry.chosen.size() * 16 + sizeof(CheckpointEntry);
        if (entry.dpor != nullptr) {
            // Rough LRU-budget charge for the slice analysis state.
            entry.bytes += 1024 + entry.dpor->hb().sliceCount() * 96;
        }
        tree.insert(std::move(entry));
    }

    ++decision;
}

detail::RunObservation
PrefixEngine::runOnce(const std::vector<std::uint32_t> &prefix,
                      const detail::SignatureInsert &insert_sig,
                      const detail::SleepSet *sleep)
{
    const bool bounded = cfg.maxPreemptions != noDecision;
    auto fresh = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>(prefix), cfg.quantum, bounded);
    sched = fresh.get();

    const std::shared_ptr<const CheckpointEntry> anc =
        tree.deepestAncestor(owner, prefix);
    if (anc) {
        // The lease (anc) keeps the snapshot alive even if the tree
        // evicts the entry while we restore.
        sched->resumeAt(anc->fanout, anc->chosen, anc->prevIdx,
                        anc->lastPick);
        machine.restore(*anc->snap);
        if (cfg.prune == PruneMode::HappensBefore) {
            ICHECK_ASSERT(anc->hb != nullptr,
                          "checkpoint without HB state under HB pruning");
            hbState = *anc->hb;
        }
        if (cfg.dpor) {
            ICHECK_ASSERT(anc->dpor != nullptr,
                          "checkpoint without slice state under DPOR");
            dporState = *anc->dpor;
        }
        startDecision = anc->depth();
        ++counters.checkpointHits;
    } else {
        machine.restore(*rootSnap);
        if (cfg.prune == PruneMode::HappensBefore)
            hbState = rootHb;
        if (cfg.dpor)
            dporState = rootDpor;
        startDecision = 0;
        ++counters.checkpointMisses;
    }
    machine.setScheduler(std::move(fresh));

    decision = startDecision;
    pruneAt = noDecision;
    curPrefix = &prefix;
    curInsert = &insert_sig;
    if (cfg.dpor)
        sleepEval.reset(sleep, prefix.empty() ? 0 : prefix.size() - 1);
    // Seed the rolling path hash from the restored choice history; the
    // per-decision folds in onDecision() keep it current from here.
    pathHash = CheckpointTree::hashPrefix(
        owner, sched->chosenIndices().data(),
        sched->chosenIndices().size());
    pathHashLen = sched->chosenIndices().size();
    counters.decisionsRestored += startDecision;

    machine.finishRun();

    detail::RunObservation obs;
    obs.fanout = sched->decisionFanout();
    obs.path = sched->chosenIndices();
    obs.prevIdx = sched->previousIndices();
    obs.pruneAt = pruneAt;
    obs.finalState = finalState;
    if (cfg.dpor) {
        dporState.finishRun(obs.path);
        sleepEval.advance(dporState.hb());
        obs.dpor = std::make_shared<const detail::DporRunData>(
            dporState.takeRunData(sleepEval.takeWakeAt()));
    }
    obs.preemptionsBefore.resize(obs.fanout.size() + 1, 0);
    for (std::size_t d = 0; d < obs.fanout.size(); ++d) {
        const bool preempted =
            obs.prevIdx[d] >= 0 &&
            obs.path[d] != static_cast<std::uint32_t>(obs.prevIdx[d]);
        obs.preemptionsBefore[d + 1] =
            obs.preemptionsBefore[d] + (preempted ? 1 : 0);
    }

    counters.decisionsExecuted += obs.fanout.size() - startDecision;
    ++counters.nodesExpanded;
    curPrefix = nullptr;
    curInsert = nullptr;
    return obs;
}

const ExploreStats &
PrefixEngine::stats()
{
    counters.pagesCowCloned = machine.memory().cowClonedPages();
    return counters;
}

} // namespace icheck::explore
