#include "explore/snapshot_tree.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace icheck::explore
{

// ---------------------------------------------------------------------------
// CheckpointTree

CheckpointTree::CheckpointTree(std::size_t budget_bytes)
    : shardBudget(std::max<std::size_t>(budget_bytes / numShards, 1))
{}

std::uint64_t
CheckpointTree::hashPrefix(std::size_t owner, const std::uint32_t *choices,
                           std::size_t count)
{
    std::uint64_t h = mixSignature(0x1c5eedULL, owner + 1);
    for (std::size_t i = 0; i < count; ++i)
        h = mixSignature(h, choices[i] + 1ULL);
    return h;
}

void
CheckpointTree::evictFor(Shard &shard, std::size_t need,
                         std::size_t shard_budget)
{
    while (!shard.entries.empty() &&
           shard.bytesResident + need > shard_budget) {
        auto victim = shard.entries.begin();
        for (auto it = shard.entries.begin(); it != shard.entries.end();
             ++it) {
            if (it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        shard.bytesResident -= std::min(shard.bytesResident,
                                        victim->second->bytes);
        ++shard.evicted;
        // Dropping the map's shared_ptr: a worker holding a lease keeps
        // the entry (and its snapshot) alive until it finishes with it.
        shard.entries.erase(victim);
    }
}

void
CheckpointTree::insert(CheckpointEntry entry)
{
    const std::uint64_t key =
        hashPrefix(entry.owner, entry.chosen.data(), entry.chosen.size());
    const std::uint64_t stamp =
        useClock.fetch_add(1, std::memory_order_relaxed) + 1;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        if (it->second->owner == entry.owner &&
            it->second->chosen == entry.chosen) {
            it->second->lastUse = stamp; // already resident; refresh
            return;
        }
        // Key collision with a different prefix: replace (lookups verify
        // the exact history, so keeping just one is merely a cache miss
        // for the displaced prefix).
        shard.bytesResident -= std::min(shard.bytesResident,
                                        it->second->bytes);
        ++shard.evicted;
        shard.entries.erase(it);
    }
    evictFor(shard, entry.bytes, shardBudget);
    entry.lastUse = stamp;
    shard.bytesResident += entry.bytes;
    ++shard.created;
    shard.entries.emplace(
        key, std::make_shared<CheckpointEntry>(std::move(entry)));
}

std::shared_ptr<const CheckpointEntry>
CheckpointTree::deepestAncestor(std::size_t owner,
                                const std::vector<std::uint32_t> &prefix)
{
    // Rolling hashes of every prefix length, built front to back, then
    // probed deepest first. Length 0 is excluded: the root snapshot is
    // pinned by the engine, never stored in the tree.
    std::vector<std::uint64_t> keys(prefix.size() + 1);
    std::uint64_t h = mixSignature(0x1c5eedULL, owner + 1);
    keys[0] = h;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        h = mixSignature(h, prefix[i] + 1ULL);
        keys[i + 1] = h;
    }
    for (std::size_t len = prefix.size(); len >= 1; --len) {
        Shard &shard = shardFor(keys[len]);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.entries.find(keys[len]);
        if (it == shard.entries.end())
            continue;
        const std::shared_ptr<CheckpointEntry> &entry = it->second;
        if (entry->owner != owner || entry->chosen.size() != len ||
            !std::equal(entry->chosen.begin(), entry->chosen.end(),
                        prefix.begin())) {
            continue; // hash collision; treat as absent
        }
        entry->lastUse =
            useClock.fetch_add(1, std::memory_order_relaxed) + 1;
        return entry;
    }
    return nullptr;
}

bool
CheckpointTree::contains(std::size_t owner,
                         const std::vector<std::uint32_t> &prefix)
{
    return containsKeyed(hashPrefix(owner, prefix.data(), prefix.size()),
                         owner, prefix);
}

bool
CheckpointTree::containsKeyed(std::uint64_t key, std::size_t owner,
                              const std::vector<std::uint32_t> &prefix)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    return it != shard.entries.end() && it->second->owner == owner &&
           it->second->chosen == prefix;
}

std::uint64_t
CheckpointTree::createdCount() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.created;
    }
    return total;
}

std::uint64_t
CheckpointTree::evictedCount() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.evicted;
    }
    return total;
}

std::uint64_t
CheckpointTree::residentBytes() const
{
    std::uint64_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.bytesResident;
    }
    return total;
}

// ---------------------------------------------------------------------------
// PrefixEngine

PrefixEngine::PrefixEngine(const check::ProgramFactory &factory,
                           const sim::MachineConfig &machine_template,
                           const ExploreConfig &config,
                           CheckpointTree &checkpoint_tree,
                           std::size_t owner_id)
    : cfg(config), tree(checkpoint_tree), owner(owner_id),
      program(factory()), machine(machine_template)
{
    ICHECK_ASSERT(supported(),
                  "PrefixEngine requires fiber snapshots (use the cold "
                  "explorer under TSan)");
    counters.checkpointing = true;

    machine.setDecisionHandler(
        [this](const std::vector<ThreadId> &runnable) {
            onDecision(runnable);
        });
    machine.setCheckpointHandler(
        [this](const sim::CheckpointInfo &info) {
            if (info.kind == sim::CheckpointKind::ProgramEnd) {
                hashing::ModHash sum;
                for (ThreadId t = 0; t < machine.numThreads(); ++t)
                    sum += hashing::ModHash(machine.threadHash(t));
                finalState = sum.raw();
            }
        });
    if (cfg.prune == PruneMode::HappensBefore)
        machine.addListener(&hbState);

    // The scheduler must be injected before beginRun() (which otherwise
    // installs a RandomScheduler); runOnce() replaces it per run.
    const bool bounded = cfg.maxPreemptions != ~std::size_t{0};
    auto seed_sched = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>{}, cfg.quantum, bounded);
    sched = seed_sched.get();
    machine.setScheduler(std::move(seed_sched));

    machine.beginRun(*program);
    rootSnap = machine.checkpoint();
    rootHb = hbState;
}

PrefixEngine::~PrefixEngine() = default;

void
PrefixEngine::onDecision(const std::vector<ThreadId> &runnable)
{
    const std::vector<std::uint32_t> &prefix = *curPrefix;

    // Fold choices appended since the last decision into the rolling
    // path hash (the handler runs before pick(), so the history holds
    // exactly `decision` entries).
    const std::vector<std::uint32_t> &executed = sched->chosenIndices();
    while (pathHashLen < executed.size()) {
        pathHash = mixSignature(pathHash, executed[pathHashLen] + 1ULL);
        ++pathHashLen;
    }

    // Pruning-signature logic, identical to the cold path: decisions
    // before prefix.size() were recorded by the ancestor run that spawned
    // this prefix. Decisions before startDecision never execute at all —
    // they were skipped by the checkpoint restore, which is exactly why
    // the condition must use prefix.size(), not startDecision.
    if (cfg.prune != PruneMode::None && decision >= prefix.size() &&
        pruneAt == ~std::size_t{0}) {
        std::uint64_t sig = cfg.prune == PruneMode::StateHash
                                ? machine.stateSignature()
                                : hbState.value();
        for (ThreadId t : runnable)
            sig = mixSignature(sig, t + 1);
        if (!(*curInsert)(sig))
            pruneAt = decision;
    }

    // Checkpoint creation. Eligible decisions: past the (pinned) root,
    // within the branching depth, actually branchy (forced moves add no
    // reachable prefix keys), on the stride, and not beyond a pruned
    // decision (expansion never emits prefixes past pruneAt, so deeper
    // checkpoints on this path could never be hit).
    if (decision >= 1 && runnable.size() > 1 &&
        decision < cfg.maxDepth && decision < pruneAt &&
        (cfg.checkpointStride <= 1 ||
         decision % cfg.checkpointStride == 0) &&
        !tree.containsKeyed(pathHash, owner, executed)) {
        CheckpointEntry entry;
        entry.owner = owner;
        entry.fanout = sched->decisionFanout();
        entry.chosen = sched->chosenIndices();
        entry.prevIdx = sched->previousIndices();
        entry.lastPick = sched->lastPicked();
        entry.snap = machine.checkpoint();
        if (cfg.prune == PruneMode::HappensBefore)
            entry.hb = std::make_shared<HbTracker>(hbState);
        entry.bytes = entry.snap->bytes() +
                      entry.chosen.size() * 16 + sizeof(CheckpointEntry);
        tree.insert(std::move(entry));
    }

    ++decision;
}

detail::RunObservation
PrefixEngine::runOnce(const std::vector<std::uint32_t> &prefix,
                      const detail::SignatureInsert &insert_sig)
{
    const bool bounded = cfg.maxPreemptions != ~std::size_t{0};
    auto fresh = std::make_unique<sim::ScriptedScheduler>(
        std::vector<std::uint32_t>(prefix), cfg.quantum, bounded);
    sched = fresh.get();

    const std::shared_ptr<const CheckpointEntry> anc =
        tree.deepestAncestor(owner, prefix);
    if (anc) {
        // The lease (anc) keeps the snapshot alive even if the tree
        // evicts the entry while we restore.
        sched->resumeAt(anc->fanout, anc->chosen, anc->prevIdx,
                        anc->lastPick);
        machine.restore(*anc->snap);
        if (cfg.prune == PruneMode::HappensBefore) {
            ICHECK_ASSERT(anc->hb != nullptr,
                          "checkpoint without HB state under HB pruning");
            hbState = *anc->hb;
        }
        startDecision = anc->depth();
        ++counters.checkpointHits;
    } else {
        machine.restore(*rootSnap);
        if (cfg.prune == PruneMode::HappensBefore)
            hbState = rootHb;
        startDecision = 0;
        ++counters.checkpointMisses;
    }
    machine.setScheduler(std::move(fresh));

    decision = startDecision;
    pruneAt = ~std::size_t{0};
    curPrefix = &prefix;
    curInsert = &insert_sig;
    // Seed the rolling path hash from the restored choice history; the
    // per-decision folds in onDecision() keep it current from here.
    pathHash = CheckpointTree::hashPrefix(
        owner, sched->chosenIndices().data(),
        sched->chosenIndices().size());
    pathHashLen = sched->chosenIndices().size();
    counters.decisionsRestored += startDecision;

    machine.finishRun();

    detail::RunObservation obs;
    obs.fanout = sched->decisionFanout();
    obs.path = sched->chosenIndices();
    obs.prevIdx = sched->previousIndices();
    obs.pruneAt = pruneAt;
    obs.finalState = finalState;
    obs.preemptionsBefore.resize(obs.fanout.size() + 1, 0);
    for (std::size_t d = 0; d < obs.fanout.size(); ++d) {
        const bool preempted =
            obs.prevIdx[d] >= 0 &&
            obs.path[d] != static_cast<std::uint32_t>(obs.prevIdx[d]);
        obs.preemptionsBefore[d + 1] =
            obs.preemptionsBefore[d] + (preempted ? 1 : 0);
    }

    counters.decisionsExecuted += obs.fanout.size() - startDecision;
    ++counters.nodesExpanded;
    curPrefix = nullptr;
    curInsert = nullptr;
    return obs;
}

const ExploreStats &
PrefixEngine::stats()
{
    counters.pagesCowCloned = machine.memory().cowClonedPages();
    return counters;
}

} // namespace icheck::explore
