#include "explore/replay.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "support/logging.hpp"

namespace icheck::explore
{

/** Stable text form: header, hash, count, then choice:quantum pairs. */
std::string
ScheduleLog::serialize() const
{
    std::ostringstream os;
    os << "v1 " << finalStateHash << " " << choices.size();
    for (std::size_t i = 0; i < choices.size(); ++i) {
        os << " " << choices[i] << ":"
           << (i < quanta.size() ? quanta[i] : 1);
    }
    return os.str();
}

ScheduleLog
ScheduleLog::deserialize(const std::string &text)
{
    std::istringstream is(text);
    std::string version;
    ScheduleLog log;
    std::size_t count = 0;
    if (!(is >> version >> log.finalStateHash >> count) ||
        version != "v1") {
        throw std::invalid_argument("bad schedule log header");
    }
    log.choices.reserve(count);
    log.quanta.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::string pair;
        if (!(is >> pair))
            throw std::invalid_argument("truncated schedule log");
        const std::size_t colon = pair.find(':');
        if (colon == std::string::npos)
            throw std::invalid_argument("malformed schedule entry");
        log.choices.push_back(static_cast<std::uint32_t>(
            std::stoul(pair.substr(0, colon))));
        log.quanta.push_back(std::stoull(pair.substr(colon + 1)));
    }
    return log;
}

namespace
{

/** Final state hash of a machine whose run just completed. */
HashWord
finalHash(const sim::Machine &machine)
{
    hashing::ModHash sum;
    for (ThreadId t = 0; t < machine.numThreads(); ++t)
        sum += hashing::ModHash(machine.threadHash(t));
    return sum.raw();
}

/** Run the program once under @p sched and return the final state hash. */
HashWord
runUnder(const check::ProgramFactory &factory,
         const sim::MachineConfig &machine_template,
         std::unique_ptr<sim::Scheduler> sched)
{
    sim::Machine machine(machine_template);
    machine.setScheduler(std::move(sched));
    auto program = factory();
    machine.run(*program);
    return finalHash(machine);
}

} // namespace

ThreadId
RecordingScheduler::pick(const std::vector<ThreadId> &runnable)
{
    const ThreadId tid = inner->pick(runnable);
    const auto it = std::find(runnable.begin(), runnable.end(), tid);
    ICHECK_ASSERT(it != runnable.end(), "inner scheduler picked a "
                                        "non-runnable thread");
    log.push_back(
        static_cast<std::uint32_t>(it - runnable.begin()));
    return tid;
}

std::uint64_t
RecordingScheduler::quantum()
{
    const std::uint64_t q = inner->quantum();
    quantaLog.push_back(q);
    return q;
}

PrefixReplayScheduler::PrefixReplayScheduler(const ScheduleLog &log,
                                             std::size_t prefix_len,
                                             std::uint64_t search_seed,
                                             std::uint64_t min_quantum,
                                             std::uint64_t max_quantum)
    : choices(log.choices), quanta(log.quanta),
      prefixLen(std::min(prefix_len, log.choices.size())),
      rng(search_seed), minQuantum(min_quantum), maxQuantum(max_quantum)
{}

ThreadId
PrefixReplayScheduler::pick(const std::vector<ThreadId> &runnable)
{
    std::size_t idx;
    if (pickCursor < prefixLen && pickCursor < choices.size()) {
        idx = std::min<std::size_t>(choices[pickCursor],
                                    runnable.size() - 1);
    } else {
        idx = static_cast<std::size_t>(rng.below(runnable.size()));
    }
    ++pickCursor;
    return runnable[idx];
}

std::uint64_t
PrefixReplayScheduler::quantum()
{
    std::uint64_t q;
    if (quantumCursor < prefixLen && quantumCursor < quanta.size())
        q = quanta[quantumCursor];
    else
        q = rng.range(minQuantum, maxQuantum);
    ++quantumCursor;
    return q;
}

ScheduleLog
recordRun(const check::ProgramFactory &factory,
          const sim::MachineConfig &machine_template,
          std::uint64_t sched_seed)
{
    sim::Machine machine(machine_template);
    auto recorder = std::make_unique<RecordingScheduler>(
        std::make_unique<sim::RandomScheduler>(
            sched_seed, machine_template.minQuantum,
            machine_template.maxQuantum, /*migrate_prob=*/0.0));
    RecordingScheduler *recorder_ptr = recorder.get();
    machine.setScheduler(std::move(recorder));
    auto program = factory();
    machine.run(*program);

    ScheduleLog log;
    log.choices = recorder_ptr->choices();
    log.quanta = recorder_ptr->quanta();
    log.finalStateHash = finalHash(machine);
    return log;
}

HashWord
replayExact(const check::ProgramFactory &factory,
            const sim::MachineConfig &machine_template,
            const ScheduleLog &log)
{
    return runUnder(factory, machine_template,
                    std::make_unique<PrefixReplayScheduler>(
                        log, log.choices.size(), /*search_seed=*/0,
                        machine_template.minQuantum,
                        machine_template.maxQuantum));
}

ReplaySearchResult
searchReplay(const check::ProgramFactory &factory,
             const sim::MachineConfig &machine_template,
             const ScheduleLog &log, double prefix_fraction,
             int max_attempts)
{
    ICHECK_ASSERT(prefix_fraction >= 0.0 && prefix_fraction <= 1.0,
                  "prefix fraction must be in [0, 1]");
    const auto prefix_len = static_cast<std::size_t>(
        prefix_fraction * static_cast<double>(log.choices.size()));
    ReplaySearchResult result;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        const std::uint64_t seed =
            0x5eed0000ULL + static_cast<std::uint64_t>(attempt);
        const HashWord reached = runUnder(
            factory, machine_template,
            std::make_unique<PrefixReplayScheduler>(
                log, prefix_len, seed, machine_template.minQuantum,
                machine_template.maxQuantum));
        ++result.attempts;
        if (reached == log.finalStateHash) {
            result.reproduced = true;
            result.matchingSeed = seed;
            return result;
        }
    }
    return result;
}

} // namespace icheck::explore
