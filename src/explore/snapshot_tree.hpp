#ifndef ICHECK_EXPLORE_SNAPSHOT_TREE_HPP
#define ICHECK_EXPLORE_SNAPSHOT_TREE_HPP

/**
 * @file
 * Prefix-sharing exploration: the checkpoint tree and the per-worker
 * prefix engine.
 *
 * The systematic-testing explorer enumerates schedule prefixes. Cold
 * exploration re-executes every prefix from scratch, so a run at depth d
 * costs O(d + suffix). The prefix engine instead keeps one persistent
 * Machine per worker and a shared tree of MachineSnapshots keyed by
 * (worker, schedule prefix): expanding a frontier node restores the
 * deepest checkpointed ancestor of its prefix and executes only the
 * suffix. Snapshots are cheap because SparseMemory forks copy-on-write
 * and fiber stacks image only their live region.
 *
 * Correctness bar: a restored state is bit-identical to the cold state at
 * the same decision, so every observation, pruning signature, hash, and
 * report is byte-identical whether checkpointing is on or off. The tree
 * is bounded: least-recently-used entries are evicted past a byte budget,
 * and a worker that restores from an entry holds a shared_ptr lease so
 * eviction can never free a snapshot out from under it. The root snapshot
 * of each engine is pinned outside the tree, so eviction can never force
 * an impossible cold restart.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "check/driver.hpp"
#include "explore/dpor.hpp"
#include "explore/explorer.hpp"
#include "explore/hb_signature.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace icheck::explore
{

/**
 * One checkpoint: a machine snapshot taken at scheduling decision
 * `chosen.size()` of the schedule whose choice history is `chosen`,
 * together with everything needed to resume the scheduler and the
 * pruning listeners at that decision.
 */
struct CheckpointEntry
{
    /** Engine that produced the snapshot (snapshots are machine-affine). */
    std::size_t owner = 0;

    /// @name Scheduler history over the checkpointed prefix.
    /// @{
    std::vector<std::uint32_t> fanout;
    std::vector<std::uint32_t> chosen;
    std::vector<std::int32_t> prevIdx;
    ThreadId lastPick = invalidThreadId;
    /// @}

    std::shared_ptr<const sim::MachineSnapshot> snap;

    /** HB-tracker state at the decision (HappensBefore pruning only). */
    std::shared_ptr<const HbTracker> hb;

    /** Slice-analysis state at the decision (DPOR only). */
    std::shared_ptr<const DporTracker> dpor;

    /** Checkpoint depth: decisions already executed when it was taken. */
    std::size_t depth() const { return chosen.size(); }

    /** Footprint charged against the tree budget. */
    std::size_t bytes = 0;

    /** Logical timestamp of the last lookup/insert (LRU eviction). */
    std::uint64_t lastUse = 0;
};

/**
 * Bounded, sharded map from (owner, schedule prefix) to checkpoints.
 * Thread-safe: shards are guarded by their own mutexes, so parallel
 * workers contend only when their prefixes hash to the same shard.
 * Lookups return shared_ptr leases; eviction drops the tree's reference
 * but never invalidates a lease already handed out.
 */
class CheckpointTree
{
  public:
    explicit CheckpointTree(std::size_t budget_bytes);

    /**
     * Insert @p entry, evicting least-recently-used entries from its
     * shard if the shard's slice of the budget would overflow.
     */
    void insert(CheckpointEntry entry);

    /**
     * Deepest checkpoint of @p owner whose choice history is a prefix of
     * @p prefix (possibly all of it), or null when none survives.
     */
    std::shared_ptr<const CheckpointEntry>
    deepestAncestor(std::size_t owner,
                    const std::vector<std::uint32_t> &prefix);

    /** Whether a checkpoint for exactly (owner, prefix) is resident. */
    bool contains(std::size_t owner,
                  const std::vector<std::uint32_t> &prefix);

    /**
     * contains() with the key already computed — the prefix engine
     * maintains the rolling hash of its executed path incrementally, so
     * the per-decision residency probe stays O(1) instead of rehashing
     * the whole history (O(depth^2) per run).
     */
    bool containsKeyed(std::uint64_t key, std::size_t owner,
                       const std::vector<std::uint32_t> &prefix);

    /** Rolling hash of (owner, choices[0..count)); see containsKeyed(). */
    static std::uint64_t hashPrefix(std::size_t owner,
                                    const std::uint32_t *choices,
                                    std::size_t count);

    /// @name Tree-wide counters (aggregated across shards).
    /// @{
    std::uint64_t createdCount() const;
    std::uint64_t evictedCount() const;
    std::uint64_t residentBytes() const;
    /// @}

  private:
    static constexpr std::size_t numShards = 16;

    struct Shard
    {
        mutable std::mutex mu;
        /** Ordered map: iteration order is deterministic (lint rule D1);
         *  keyed by the prefix hash, with collisions resolved by the
         *  exact-history compare in the entry. */
        std::map<std::uint64_t, std::shared_ptr<CheckpointEntry>> entries;
        std::size_t bytesResident = 0;
        std::uint64_t created = 0;
        std::uint64_t evicted = 0;
    };

    Shard &shardFor(std::uint64_t key) { return shards[key % numShards]; }

    /** Evict LRU entries from @p shard until @p need more bytes fit. */
    static void evictFor(Shard &shard, std::size_t need,
                         std::size_t shard_budget);

    std::array<Shard, numShards> shards;
    std::size_t shardBudget;
    std::atomic<std::uint64_t> useClock{0};
};

/**
 * One worker's exploration engine: a persistent Machine + Program pair
 * driven through the checkpoint/restore session API. runOnce() has the
 * exact observable behaviour of detail::runOnce() (cold), but restores
 * the deepest resident ancestor checkpoint instead of re-executing the
 * prefix.
 */
class PrefixEngine
{
  public:
    /**
     * @param factory          Program factory (one instance per engine).
     * @param machine_template Machine configuration.
     * @param config           Exploration bounds; checkpoint knobs.
     * @param tree             Shared checkpoint tree.
     * @param owner            This engine's id within the tree.
     */
    PrefixEngine(const check::ProgramFactory &factory,
                 const sim::MachineConfig &machine_template,
                 const ExploreConfig &config, CheckpointTree &tree,
                 std::size_t owner);

    ~PrefixEngine();

    PrefixEngine(const PrefixEngine &) = delete;
    PrefixEngine &operator=(const PrefixEngine &) = delete;

    /** Whether prefix sharing works in this build (fiber snapshots). */
    static bool supported() { return sim::Machine::snapshotSupported(); }

    /**
     * Execute the schedule @p prefix (plus its default continuation) and
     * return the same observation cold runOnce() would.
     */
    detail::RunObservation
    runOnce(const std::vector<std::uint32_t> &prefix,
            const detail::SignatureInsert &insert_sig,
            const detail::SleepSet *sleep = nullptr);

    /**
     * Per-engine counters. checkpointBytes/created/evicted are tree-wide
     * and filled by the caller; pagesCowCloned is refreshed here.
     */
    const ExploreStats &stats();

  private:
    void onDecision(const std::vector<ThreadId> &runnable);

    ExploreConfig cfg;
    CheckpointTree &tree;
    std::size_t owner;

    std::unique_ptr<sim::Program> program;
    sim::Machine machine;
    sim::ScriptedScheduler *sched = nullptr; ///< Owned by the machine.
    HbTracker hbState;

    /** Decision-0 snapshot, pinned for the machine's whole life: kept
     *  outside the tree so eviction can never force an impossible cold
     *  restart of the persistent machine. */
    std::shared_ptr<const sim::MachineSnapshot> rootSnap;

    /** HB-tracker state right after setup (the decision-0 value). */
    HbTracker rootHb;

    /// @name DPOR slice analysis (cfg.dpor only; idle otherwise).
    /// @{
    DporTracker dporState;
    DporTracker rootDpor; ///< dporState right after setup.
    SleepEval sleepEval;
    /// @}

    /// @name Per-run state consumed by onDecision().
    /// @{
    const std::vector<std::uint32_t> *curPrefix = nullptr;
    const detail::SignatureInsert *curInsert = nullptr;
    std::size_t startDecision = 0;
    std::size_t decision = 0;
    std::size_t pruneAt = noDecision;

    /** Rolling CheckpointTree::hashPrefix of the executed path, folded
     *  incrementally as the scheduler appends choices. */
    std::uint64_t pathHash = 0;
    std::size_t pathHashLen = 0;
    /// @}

    HashWord finalState = 0;
    ExploreStats counters;
};

} // namespace icheck::explore

#endif // ICHECK_EXPLORE_SNAPSHOT_TREE_HPP
