#include "race/race_log.hpp"

#include <ostream>
#include <set>
#include <tuple>

#include "support/json_escape.hpp"

namespace icheck::race
{

namespace
{

Addr
granuleOf(Addr addr)
{
    return addr & ~Addr{7};
}

} // namespace

void
AccessAttributor::note(
    std::map<std::pair<ThreadId, Addr>, AccessSite> &table, ThreadId tid,
    Addr addr, unsigned width)
{
    AccessSite site;
    site.tid = tid;
    if (machine.accessSiteFile() != nullptr) {
        site.file = machine.accessSiteFile();
        site.line = machine.accessSiteLine();
    }
    const Addr first = granuleOf(addr);
    const Addr last = granuleOf(addr + width - 1);
    table[{tid, first}] = site;
    if (last != first)
        table[{tid, last}] = std::move(site);
}

void
AccessAttributor::onStore(const sim::StoreEvent &event)
{
    if (event.domain != sim::CostDomain::Native)
        return; // instrumentation stores have no app call site
    note(writes, event.tid, event.addr, event.width);
}

void
AccessAttributor::onLoad(const sim::LoadEvent &event)
{
    note(reads, event.tid, event.addr, event.width);
}

AccessSite
AccessAttributor::lastWrite(ThreadId tid, Addr granule) const
{
    const auto it = writes.find({tid, granule});
    return it != writes.end() ? it->second : AccessSite{"", 0, tid};
}

AccessSite
AccessAttributor::lastRead(ThreadId tid, Addr granule) const
{
    const auto it = reads.find({tid, granule});
    return it != reads.end() ? it->second : AccessSite{"", 0, tid};
}

std::vector<AttributedRace>
attributeRaces(const RaceDetector &detector,
               const AccessAttributor &attributor,
               const sim::Machine &machine)
{
    std::vector<AttributedRace> attributed;
    attributed.reserve(detector.races().size());
    for (const RaceRecord &record : detector.races()) {
        AttributedRace race;
        race.record = record;
        race.symbol = symbolizeAddress(record.granule, machine);
        switch (record.kind) {
          case RaceKind::WriteWrite:
            race.first = attributor.lastWrite(record.first, record.granule);
            race.second =
                attributor.lastWrite(record.second, record.granule);
            break;
          case RaceKind::ReadWrite:
            race.first = attributor.lastRead(record.first, record.granule);
            race.second =
                attributor.lastWrite(record.second, record.granule);
            break;
          case RaceKind::WriteRead:
            race.first = attributor.lastWrite(record.first, record.granule);
            race.second =
                attributor.lastRead(record.second, record.granule);
            break;
        }
        attributed.push_back(std::move(race));
    }
    return attributed;
}

void
writeRaceLogJsonl(std::ostream &out, const std::string &app,
                  const std::vector<AttributedRace> &races)
{
    for (const AttributedRace &race : races) {
        out << "{\"app\":\"" << jsonEscapeText(app) << "\",\"kind\":\""
            << raceKindName(race.record.kind) << "\",\"symbol\":\""
            << jsonEscapeText(race.symbol) << "\",\"first\":{\"tid\":"
            << race.first.tid << ",\"file\":\""
            << jsonEscapeText(race.first.file) << "\",\"line\":"
            << race.first.line << "},\"second\":{\"tid\":"
            << race.second.tid << ",\"file\":\""
            << jsonEscapeText(race.second.file) << "\",\"line\":"
            << race.second.line << "}}\n";
    }
}

int
exportRaceLog(const check::ProgramFactory &factory,
              const sim::MachineConfig &config, int runs,
              std::uint64_t base_seed, const std::string &app,
              std::ostream &out)
{
    // Dedup key: the full record plus both attributed endpoints, so the
    // same race attributed to two different lines (e.g. reset vs update
    // writes) is reported for each line pair it actually manifested on.
    using Key = std::tuple<Addr, ThreadId, ThreadId, int, std::string,
                           int, std::string, int>;
    std::set<Key> seen;
    std::vector<AttributedRace> unique;
    for (int run = 0; run < runs; ++run) {
        sim::MachineConfig cfg = config;
        cfg.schedSeed = base_seed + static_cast<std::uint64_t>(run);
        sim::Machine machine(cfg);
        machine.setAccessSiteTracking(true);
        RaceDetector detector;
        AccessAttributor attributor(machine);
        machine.addListener(&detector);
        machine.addListener(&attributor);
        auto program = factory();
        machine.run(*program);
        for (AttributedRace &race :
             attributeRaces(detector, attributor, machine)) {
            Key key{race.record.granule, race.record.first,
                    race.record.second,
                    static_cast<int>(race.record.kind),
                    race.first.file, race.first.line,
                    race.second.file, race.second.line};
            if (seen.insert(std::move(key)).second)
                unique.push_back(std::move(race));
        }
    }
    writeRaceLogJsonl(out, app, unique);
    return static_cast<int>(unique.size());
}

} // namespace icheck::race
