#include "race/vector_clock.hpp"

#include <algorithm>
#include <sstream>

namespace icheck::race
{

std::uint64_t
VectorClock::get(ThreadId tid) const
{
    return tid < components.size() ? components[tid] : 0;
}

void
VectorClock::set(ThreadId tid, std::uint64_t value)
{
    if (tid >= components.size())
        components.resize(tid + 1, 0);
    components[tid] = value;
}

void
VectorClock::tick(ThreadId tid)
{
    set(tid, get(tid) + 1);
}

void
VectorClock::join(const VectorClock &other)
{
    if (other.components.size() > components.size())
        components.resize(other.components.size(), 0);
    for (std::size_t i = 0; i < other.components.size(); ++i)
        components[i] = std::max(components[i], other.components[i]);
}

bool
VectorClock::precedesOrEquals(const VectorClock &other) const
{
    for (std::size_t i = 0; i < components.size(); ++i) {
        if (components[i] > other.get(static_cast<ThreadId>(i)))
            return false;
    }
    return true;
}

std::string
VectorClock::render() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < components.size(); ++i) {
        if (i > 0)
            os << ",";
        os << components[i];
    }
    os << "]";
    return os.str();
}

bool
VectorClock::operator==(const VectorClock &other) const
{
    const std::size_t n =
        std::max(components.size(), other.components.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (get(static_cast<ThreadId>(i)) !=
            other.get(static_cast<ThreadId>(i)))
            return false;
    }
    return true;
}

} // namespace icheck::race
