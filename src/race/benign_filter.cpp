#include "race/benign_filter.hpp"

#include <set>

#include "support/logging.hpp"

namespace icheck::race
{

FilterReport
classifyRaces(const check::ProgramFactory &factory,
              const sim::MachineConfig &machine_template, int runs,
              std::uint64_t base_seed)
{
    ICHECK_ASSERT(runs >= 2, "need at least two runs to flip races");
    FilterReport report;
    report.runs = runs;

    mem::ReplayLog log;
    std::set<HashWord> final_hashes;
    for (int run = 0; run < runs; ++run) {
        sim::MachineConfig mc = machine_template;
        mc.schedSeed = base_seed + static_cast<std::uint64_t>(run);
        const auto mode = run == 0
                              ? mem::DeterministicAllocator::Mode::Record
                              : mem::DeterministicAllocator::Mode::Replay;
        sim::Machine machine(mc, &log, mode);

        auto checker = check::makeChecker(check::Scheme::HwInc);
        checker->attach(machine);
        machine.setRunStartHandler([&] { checker->onRunStart(); });
        RaceDetector detector;
        machine.addListener(&detector);

        HashWord final_hash = 0;
        machine.setCheckpointHandler(
            [&](const sim::CheckpointInfo &info) {
                if (info.kind == sim::CheckpointKind::ProgramEnd)
                    final_hash = checker->checkpointHash().raw();
            });
        auto program = factory();
        machine.run(*program);
        final_hashes.insert(final_hash);
        report.races.insert(detector.races().begin(),
                            detector.races().end());
    }

    report.distinctStates = final_hashes.size();
    if (report.races.empty())
        report.verdict = RaceVerdict::NoRaces;
    else if (final_hashes.size() == 1)
        report.verdict = RaceVerdict::Benign;
    else
        report.verdict = RaceVerdict::Harmful;
    return report;
}

} // namespace icheck::race
