#include "race/race_detector.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace icheck::race
{

std::string
raceKindName(RaceKind kind)
{
    switch (kind) {
      case RaceKind::WriteWrite: return "write-write";
      case RaceKind::ReadWrite:  return "read-write";
      case RaceKind::WriteRead:  return "write-read";
    }
    ICHECK_PANIC("unknown RaceKind");
}

std::string
symbolizeAddress(Addr addr, const sim::Machine &machine)
{
    std::ostringstream os;
    if (const mem::Block *block =
            machine.allocator().findHistorical(addr)) {
        os << "site:" << block->site << "+0x" << std::hex
           << addr - block->addr << std::dec;
    } else if (const mem::GlobalVar *var =
                   machine.staticSegment().findContaining(addr)) {
        os << "global:" << var->name << "+0x" << std::hex
           << addr - var->addr << std::dec;
    } else {
        os << "addr:0x" << std::hex << addr << std::dec;
    }
    return os.str();
}

std::vector<std::string>
describeRaces(const std::set<RaceRecord> &races,
              const sim::Machine &machine)
{
    std::vector<std::string> lines;
    lines.reserve(races.size());
    for (const RaceRecord &race : races) {
        std::ostringstream os;
        os << raceKindName(race.kind) << " race between t" << race.first
           << " and t" << race.second << " on "
           << symbolizeAddress(race.granule, machine);
        lines.push_back(os.str());
    }
    return lines;
}

VectorClock &
RaceDetector::threadClock(ThreadId tid)
{
    if (tid >= threads.size()) {
        threads.resize(tid + 1);
        // Each thread starts with its own component at 1 so that epochs
        // are never confused with the zero clock.
        threads[tid].tick(tid);
    }
    return threads[tid];
}

void
RaceDetector::checkWrite(ThreadId tid, Addr granule)
{
    VectorClock &now = threadClock(tid);
    LocationState &loc = locations[granule];

    if (loc.lastWrite.valid() && loc.lastWrite.tid != tid &&
        !loc.lastWrite.happensBefore(now)) {
        found.insert({granule, loc.lastWrite.tid, tid,
                      RaceKind::WriteWrite});
    }
    for (const auto &[reader, clock] : loc.reads) {
        if (reader != tid && clock > now.get(reader))
            found.insert({granule, reader, tid, RaceKind::ReadWrite});
    }
    loc.lastWrite = {tid, now.get(tid)};
    loc.reads.clear();
}

void
RaceDetector::checkRead(ThreadId tid, Addr granule)
{
    VectorClock &now = threadClock(tid);
    LocationState &loc = locations[granule];
    if (loc.lastWrite.valid() && loc.lastWrite.tid != tid &&
        !loc.lastWrite.happensBefore(now)) {
        found.insert({granule, loc.lastWrite.tid, tid,
                      RaceKind::WriteRead});
    }
    loc.reads[tid] = now.get(tid);
}

void
RaceDetector::onStore(const sim::StoreEvent &event)
{
    // Instrumentation stores (zeroing/scrubbing) are InstantCheck-internal
    // and must not be analyzed as program accesses.
    if (event.domain != sim::CostDomain::Native)
        return;
    ++nAccesses;
    // A store may straddle two granules.
    const Addr first = granuleOf(event.addr);
    const Addr last = granuleOf(event.addr + event.width - 1);
    checkWrite(event.tid, first);
    if (last != first)
        checkWrite(event.tid, last);
}

void
RaceDetector::onLoad(const sim::LoadEvent &event)
{
    ++nAccesses;
    const Addr first = granuleOf(event.addr);
    const Addr last = granuleOf(event.addr + event.width - 1);
    checkRead(event.tid, first);
    if (last != first)
        checkRead(event.tid, last);
}

void
RaceDetector::onSync(const sim::SyncEvent &event)
{
    VectorClock &now = threadClock(event.tid);
    switch (event.kind) {
      case sim::SyncKind::LockAcquire:
        now.join(mutexClocks[event.object]);
        break;
      case sim::SyncKind::LockRelease:
        mutexClocks[event.object].join(now);
        now.tick(event.tid);
        break;
      case sim::SyncKind::BarrierArrive:
        barrierGather[{event.object, event.epoch}].join(now);
        break;
      case sim::SyncKind::BarrierLeave:
        now.join(barrierGather[{event.object, event.epoch}]);
        now.tick(event.tid);
        break;
      case sim::SyncKind::CondSignal:
        condClocks[event.object].join(now);
        now.tick(event.tid);
        break;
      case sim::SyncKind::CondWait:
        // The wakeup edge is approximated by the mutex reacquisition that
        // pthreads semantics force after cond_wait; joining the cond clock
        // here additionally orders signal-before-wait pairs.
        now.join(condClocks[event.object]);
        break;
      case sim::SyncKind::ThreadStart:
      case sim::SyncKind::ThreadFinish:
        break;
    }
}

std::set<Addr>
RaceDetector::racyGranules() const
{
    std::set<Addr> granules;
    for (const RaceRecord &race : found)
        granules.insert(race.granule);
    return granules;
}

} // namespace icheck::race
