#ifndef ICHECK_RACE_SLICE_HB_HPP
#define ICHECK_RACE_SLICE_HB_HPP

/**
 * @file
 * Slice-granularity happens-before analysis for dynamic partial-order
 * reduction.
 *
 * The systematic-testing explorer divides a run into *slices*: the events
 * a thread executes between two consecutive scheduling decisions. DPOR
 * needs to know, for each pair of slices, whether they conflict (touch a
 * common location, at least one writing, or contend for the same
 * synchronization object) and whether they are ordered by happens-before.
 * A pair that conflicts while unordered is a *race*: executing the two
 * slices in the other order can change the behaviour, so the explorer
 * must schedule the later slice's thread at the earlier slice's decision.
 *
 * This analyzer is FastTrack-shaped but at slice granularity: one vector
 * clock per thread counting completed slices, per-granule last-write
 * epochs plus read maps, and per-object clocks for mutexes, condition
 * variables, and barriers. Two deliberate differences from the
 * exploration HbTracker:
 *
 *  - read-read is *not* a dependency (two reads commute, so ordering
 *    them would hide real reduction opportunities);
 *  - mutex acquire-acquire pairs *are* races even though the
 *    release-acquire join orders them in the observed execution —
 *    acquisition order is exactly the nondeterminism lock-based programs
 *    exhibit, so DPOR must explore both orders.
 *
 * The analyzer is a plain value: copyable and assignable, so the
 * prefix-sharing explorer checkpoints it alongside a machine snapshot
 * and rewinds both together.
 */

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "race/vector_clock.hpp"
#include "support/types.hpp"

namespace icheck::race
{

/** One object a slice touched, and whether it can change state. */
struct SliceRef
{
    std::uint64_t object = 0;
    bool write = false;

    bool
    operator<(const SliceRef &other) const
    {
        return object != other.object ? object < other.object
                                      : write < other.write;
    }
    bool operator==(const SliceRef &) const = default;
};

/** A slice's deduplicated access set, sorted by object. */
using SliceFootprint = std::vector<SliceRef>;

/**
 * Whether two footprints conflict: they share an object and at least one
 * side writes it. Disjoint slices commute — executing them in either
 * order yields identical per-access behaviour — which is the soundness
 * basis of both race-driven backtracking and sleep sets.
 */
bool footprintsConflict(const SliceFootprint &a, const SliceFootprint &b);

/** Namespaced object keys: data granules share the address space. */
inline std::uint64_t
mutexKey(std::uint32_t id)
{
    return (0xAULL << 56) | id;
}
inline std::uint64_t
condKey(std::uint32_t id)
{
    return (0xCULL << 56) | id;
}
inline std::uint64_t
barrierKey(std::uint32_t id)
{
    return (0xBULL << 56) | id;
}

/**
 * Incremental slice-granularity happens-before analyzer.
 *
 * Usage: record() the open slice's operations as they happen, then
 * closeSlice() when the next scheduling decision is reached, attributing
 * the slice to the thread that executed it. Races are detected at close
 * time, against the most recent unordered conflicting slice — exactly
 * the adjacent pairs DPOR backtracks on (earlier conflicts are ordered
 * by conflict closure and surface recursively in the subtrees the
 * backtracks open).
 *
 * The first slice is the *prelude*: program setup, closed with
 * decision == noIndex. Its effects are ordered before every thread's
 * first slice (threads start after setup), so it never races and is
 * never a backtrack target.
 */
class SliceHb
{
  public:
    /** "No slice / no decision" sentinel. */
    static constexpr std::size_t noIndex = ~std::size_t{0};

    /** Operations a slice can record. */
    enum class Op : std::uint8_t
    {
        Read,
        Write,
        Acquire,
        Release,
        CondSignal,
        CondWait,
        BarrierArrive,
        BarrierLeave,
    };

    /** An unordered conflicting slice pair (indices into the run). */
    struct Race
    {
        std::size_t earlier = 0;
        std::size_t later = 0;
    };

    /**
     * @param setup_tid Pseudo-thread the prelude slice is attributed to;
     *                  pass the program's thread count so it collides
     *                  with no real thread id.
     */
    explicit SliceHb(ThreadId setup_tid = 0) : setupTid(setup_tid) {}

    /** Record one operation into the open slice. */
    void record(Op op, std::uint64_t object, std::uint64_t epoch = 0);

    /**
     * Close the open slice: attribute it to @p tid at scheduling decision
     * @p decision (noIndex for the prelude), run race detection and the
     * clock algebra over its operations, and start a new open slice.
     */
    void closeSlice(ThreadId tid, std::size_t decision);

    /** Races detected so far, in detection order, deduplicated. */
    const std::vector<Race> &races() const { return raceList; }

    /// @name Closed-slice metadata.
    /// @{
    std::size_t sliceCount() const { return slices.size(); }
    ThreadId sliceTid(std::size_t i) const { return slices[i].tid; }
    std::size_t
    sliceDecision(std::size_t i) const
    {
        return slices[i].decision;
    }
    const SliceFootprint &
    sliceFootprint(std::size_t i) const
    {
        return slices[i].footprint;
    }
    /// @}

    /** Whether the open slice has recorded no operations yet. */
    bool openSliceEmpty() const { return pending.empty(); }

  private:
    struct PendingOp
    {
        Op op;
        std::uint64_t object;
        std::uint64_t epoch;
    };

    struct SliceInfo
    {
        ThreadId tid = 0;
        std::size_t decision = noIndex;
        SliceFootprint footprint;
    };

    /** Per-granule conflict state: last write plus reads since it. */
    struct GranuleState
    {
        VectorClock writeClock; ///< HB closure at the last write.
        Epoch write;            ///< Last write's (tid, slice) epoch.
        std::size_t writeSlice = noIndex;
        /** Reads since the last write: tid -> (local epoch, slice). */
        std::map<ThreadId, std::pair<std::uint64_t, std::size_t>> readers;
    };

    /** Per-mutex/cond state: published clock plus the last operation. */
    struct ObjectState
    {
        VectorClock clock;
        Epoch last;
        std::size_t lastSlice = noIndex;
    };

    VectorClock &clockOf(ThreadId tid);
    void noteRace(std::size_t earlier, std::size_t later);

    ThreadId setupTid = 0;
    std::vector<PendingOp> pending;
    std::vector<SliceInfo> slices;
    std::vector<Race> raceList;
    std::set<std::pair<std::size_t, std::size_t>> raceSeen;

    std::vector<VectorClock> clocks;
    std::vector<bool> clockInited;
    /** Clock published by the prelude; thread clocks start from it. */
    VectorClock baseClock;

    std::map<std::uint64_t, GranuleState> granules;
    std::map<std::uint64_t, ObjectState> mutexes;
    std::map<std::uint64_t, ObjectState> conds;
    std::map<std::pair<std::uint64_t, std::uint64_t>, VectorClock>
        barrierGather;
};

} // namespace icheck::race

#endif // ICHECK_RACE_SLICE_HB_HPP
