#ifndef ICHECK_RACE_RACE_DETECTOR_HPP
#define ICHECK_RACE_RACE_DETECTOR_HPP

/**
 * @file
 * A happens-before dynamic data-race detector (the detection half of
 * Section 6.1). FastTrack-flavored: per-thread vector clocks, per-sync-
 * object clocks, per-location last-write epochs and read clocks.
 *
 * Granularity is the 8-byte granule: two accesses race if they touch the
 * same granule, at least one writes, and neither happens-before the other
 * under the lock/barrier/condvar-induced order.
 */

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <string>

#include "race/vector_clock.hpp"
#include "sim/listener.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace icheck::race
{

/** Kind of racing access pair. */
enum class RaceKind : std::uint8_t
{
    WriteWrite,
    ReadWrite, ///< Earlier read, later write.
    WriteRead, ///< Earlier write, later read.
};

/** One detected race (deduplicated per granule and kind). */
struct RaceRecord
{
    Addr granule = 0;
    ThreadId first = 0;
    ThreadId second = 0;
    RaceKind kind = RaceKind::WriteWrite;

    auto operator<=>(const RaceRecord &) const = default;
};

/** Printable race kind. */
std::string raceKindName(RaceKind kind);

/**
 * Symbolize the races found by a detector against a machine's allocation
 * table and static segment: "WriteWrite on global:counter+0x8 between t1
 * and t3". Using the owner names is what turns raw racy addresses into
 * actionable reports (the same attribution the Section 2.3 localization
 * tool performs).
 */
std::vector<std::string> describeRaces(const std::set<RaceRecord> &races,
                                       const sim::Machine &machine);

/**
 * Symbolize one address against the machine's allocation table and
 * static segment: "site:<alloc site>+0xOFF", "global:<name>+0xOFF", or
 * "addr:0xHEX" when the address belongs to neither.
 */
std::string symbolizeAddress(Addr addr, const sim::Machine &machine);

/**
 * The detector. Attach to a Machine as a listener before run().
 */
class RaceDetector : public sim::AccessListener
{
  public:
    RaceDetector() = default;

    void onStore(const sim::StoreEvent &event) override;
    void onLoad(const sim::LoadEvent &event) override;
    void onSync(const sim::SyncEvent &event) override;

    /** Distinct races found, ordered by granule. */
    const std::set<RaceRecord> &races() const { return found; }

    /** Granules with at least one race. */
    std::set<Addr> racyGranules() const;

    /** Number of accesses analyzed. */
    std::uint64_t accessesChecked() const { return nAccesses; }

  private:
    struct LocationState
    {
        Epoch lastWrite;
        /** Per-thread read clocks since the last ordered write. */
        std::map<ThreadId, std::uint64_t> reads;
    };

    VectorClock &threadClock(ThreadId tid);
    void checkWrite(ThreadId tid, Addr granule);
    void checkRead(ThreadId tid, Addr granule);

    static Addr granuleOf(Addr addr) { return addr & ~Addr{7}; }

    std::vector<VectorClock> threads;
    std::map<std::uint32_t, VectorClock> mutexClocks;
    std::map<std::pair<std::uint32_t, std::uint64_t>, VectorClock>
        barrierGather;
    std::map<std::uint32_t, VectorClock> condClocks;
    std::map<Addr, LocationState> locations;
    std::set<RaceRecord> found;
    std::uint64_t nAccesses = 0;
};

} // namespace icheck::race

#endif // ICHECK_RACE_RACE_DETECTOR_HPP
