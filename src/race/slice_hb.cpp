#include "race/slice_hb.hpp"

#include <algorithm>

namespace icheck::race
{

bool
footprintsConflict(const SliceFootprint &a, const SliceFootprint &b)
{
    // Both footprints are sorted by object: merge-walk them.
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].object < b[j].object) {
            ++i;
        } else if (b[j].object < a[i].object) {
            ++j;
        } else {
            if (a[i].write || b[j].write)
                return true;
            ++i;
            ++j;
        }
    }
    return false;
}

VectorClock &
SliceHb::clockOf(ThreadId tid)
{
    if (tid >= clocks.size()) {
        clocks.resize(tid + 1);
        clockInited.resize(tid + 1, false);
    }
    if (!clockInited[tid]) {
        // Threads start after setup: every thread's first slice is
        // ordered after the prelude, so it can never race with it.
        clocks[tid].join(baseClock);
        clockInited[tid] = true;
    }
    return clocks[tid];
}

void
SliceHb::noteRace(std::size_t earlier, std::size_t later)
{
    if (raceSeen.emplace(earlier, later).second)
        raceList.push_back({earlier, later});
}

void
SliceHb::record(Op op, std::uint64_t object, std::uint64_t epoch)
{
    pending.push_back({op, object, epoch});
}

void
SliceHb::closeSlice(ThreadId tid, std::size_t decision)
{
    const std::size_t idx = slices.size();
    VectorClock &now = clockOf(tid);
    const std::uint64_t local = now.get(tid); ///< Completed slices of tid.
    const Epoch self{tid, local + 1};

    const auto raise = [&now](const Epoch &e) {
        if (e.valid())
            now.set(e.tid, std::max(now.get(e.tid), e.clock));
    };
    const auto publish = [&](VectorClock &into) {
        into.join(now);
        into.set(tid, std::max(into.get(tid), self.clock));
    };

    std::map<std::uint64_t, bool> touched; // object -> any write

    for (const PendingOp &p : pending) {
        switch (p.op) {
          case Op::Read: {
            GranuleState &g = granules[p.object];
            if (g.write.valid() && g.write.tid != tid &&
                !g.write.happensBefore(now))
                noteRace(g.writeSlice, idx);
            // Conflict closure: order this read after the last write so
            // a later conflicting access races with the *adjacent*
            // partner only (transitive pairs surface recursively in the
            // subtrees the backtracks open).
            now.join(g.writeClock);
            raise(g.write);
            g.readers[tid] = {local + 1, idx};
            touched.emplace(p.object, false);
            break;
          }
          case Op::Write: {
            GranuleState &g = granules[p.object];
            if (g.write.valid() && g.write.tid != tid &&
                !g.write.happensBefore(now))
                noteRace(g.writeSlice, idx);
            for (const auto &[rt, ri] : g.readers) {
                if (rt != tid && ri.first > now.get(rt))
                    noteRace(ri.second, idx);
            }
            now.join(g.writeClock);
            raise(g.write);
            for (const auto &[rt, ri] : g.readers)
                now.set(rt, std::max(now.get(rt), ri.first));
            g.writeClock = now;
            g.write = self;
            g.writeSlice = idx;
            g.readers.clear();
            touched[p.object] = true;
            break;
          }
          case Op::Acquire: {
            ObjectState &m = mutexes[p.object];
            // Acquire-acquire is a race on purpose: the release-acquire
            // join below orders the observed acquisition order, but the
            // *other* order is a different Mazurkiewicz trace DPOR must
            // visit.
            if (m.last.valid() && m.last.tid != tid &&
                !m.last.happensBefore(now))
                noteRace(m.lastSlice, idx);
            now.join(m.clock);
            m.last = self;
            m.lastSlice = idx;
            touched[p.object] = true;
            break;
          }
          case Op::Release: {
            ObjectState &m = mutexes[p.object];
            publish(m.clock);
            touched[p.object] = true;
            break;
          }
          case Op::CondSignal: {
            ObjectState &c = conds[p.object];
            if (c.last.valid() && c.last.tid != tid &&
                !c.last.happensBefore(now))
                noteRace(c.lastSlice, idx);
            publish(c.clock);
            c.last = self;
            c.lastSlice = idx;
            touched[p.object] = true;
            break;
          }
          case Op::CondWait: {
            ObjectState &c = conds[p.object];
            if (c.last.valid() && c.last.tid != tid &&
                !c.last.happensBefore(now))
                noteRace(c.lastSlice, idx);
            now.join(c.clock);
            c.last = self;
            c.lastSlice = idx;
            touched[p.object] = true;
            break;
          }
          case Op::BarrierArrive: {
            // Arrival order commutes (the gather join is symmetric), so
            // barriers order but never race.
            publish(barrierGather[{p.object, p.epoch}]);
            touched[p.object] = true;
            break;
          }
          case Op::BarrierLeave: {
            now.join(barrierGather[{p.object, p.epoch}]);
            touched[p.object] = true;
            break;
          }
        }
    }

    now.tick(tid);
    if (decision == noIndex)
        baseClock = now; // prelude: the base every thread starts from

    SliceInfo info;
    info.tid = tid;
    info.decision = decision;
    info.footprint.reserve(touched.size());
    for (const auto &[object, write] : touched)
        info.footprint.push_back({object, write});
    slices.push_back(std::move(info));
    pending.clear();
}

} // namespace icheck::race
