#ifndef ICHECK_RACE_BENIGN_FILTER_HPP
#define ICHECK_RACE_BENIGN_FILTER_HPP

/**
 * @file
 * Benign-race filtering via fast state comparison (Section 6.1).
 *
 * Narayanasamy et al. classify a race as benign if flipping its order
 * leaves the memory state unchanged; the expensive part is comparing
 * states. InstantCheck's contribution is making that comparison a 64-bit
 * hash compare. This filter runs a program under many schedules (which
 * exercises both orders of each race), detects races with the happens-
 * before detector, and classifies: if every schedule that exercised the
 * races reaches the same state hash, the races are benign.
 */

#include <cstdint>
#include <set>
#include <vector>

#include "check/checker.hpp"
#include "check/driver.hpp"
#include "race/race_detector.hpp"
#include "support/types.hpp"

namespace icheck::race
{

/** Verdict for the set of races a program exhibits. */
enum class RaceVerdict
{
    NoRaces,  ///< Nothing to classify.
    Benign,   ///< Races exist; final state hash is schedule-invariant.
    Harmful,  ///< Races exist and change the final state.
};

/** Result of one filtering campaign. */
struct FilterReport
{
    RaceVerdict verdict = RaceVerdict::NoRaces;
    std::set<RaceRecord> races;    ///< Union over all runs.
    std::size_t distinctStates = 0;
    int runs = 0;
};

/**
 * Run @p factory under @p runs schedules with a HW checker attached and
 * a race detector listening; classify the program's races.
 */
FilterReport classifyRaces(const check::ProgramFactory &factory,
                           const sim::MachineConfig &machine_template,
                           int runs, std::uint64_t base_seed);

} // namespace icheck::race

#endif // ICHECK_RACE_BENIGN_FILTER_HPP
