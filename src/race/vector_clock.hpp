#ifndef ICHECK_RACE_VECTOR_CLOCK_HPP
#define ICHECK_RACE_VECTOR_CLOCK_HPP

/**
 * @file
 * Vector clocks for the happens-before race detector (Section 6.1
 * substrate). Lamport-style: each thread owns one component; joins take
 * componentwise maxima.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace icheck::race
{

/**
 * A grow-on-demand vector clock. Missing components read as zero.
 */
class VectorClock
{
  public:
    /** Component for @p tid. */
    std::uint64_t get(ThreadId tid) const;

    /** Set component @p tid to @p value. */
    void set(ThreadId tid, std::uint64_t value);

    /** Increment component @p tid (a local step of that thread). */
    void tick(ThreadId tid);

    /** Componentwise maximum with @p other. */
    void join(const VectorClock &other);

    /**
     * True if this clock happens-before-or-equals @p other
     * (componentwise <=).
     */
    bool precedesOrEquals(const VectorClock &other) const;

    /** Render "[3,0,7]" for diagnostics. */
    std::string render() const;

    bool operator==(const VectorClock &) const;

  private:
    std::vector<std::uint64_t> components;
};

/**
 * A FastTrack-style epoch: one (thread, clock-value) pair. An epoch (t, c)
 * happens-before a clock V iff c <= V[t] — an O(1) check that suffices for
 * last-write tracking.
 */
struct Epoch
{
    ThreadId tid = invalidThreadId;
    std::uint64_t clock = 0;

    /** Whether this epoch is ordered before @p now. */
    bool
    happensBefore(const VectorClock &now) const
    {
        return tid == invalidThreadId || clock <= now.get(tid);
    }

    bool valid() const { return tid != invalidThreadId; }
};

} // namespace icheck::race

#endif // ICHECK_RACE_VECTOR_CLOCK_HPP
