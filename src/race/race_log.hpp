#ifndef ICHECK_RACE_RACE_LOG_HPP
#define ICHECK_RACE_RACE_LOG_HPP

/**
 * @file
 * Attributed race export — the dynamic half of the lint cross-check.
 *
 * The RaceDetector reports races as (granule, tid pair, kind); this
 * module attaches *source attribution*: the C++ file:line of each racing
 * access, captured via the machine's access-site tracking (ThreadCtx
 * records the std::source_location of every typed load/store when the
 * tracking is armed). The attributed pairs are serialized as JSONL — one
 * race per line — which `icheck-lint --race-log` consumes to cross-check
 * its static lockset findings: a static finding on a dynamically racing
 * line is promoted to error severity, and a dynamic race on a line the
 * static pass believed guarded exposes a lockset blind spot.
 */

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/driver.hpp"
#include "race/race_detector.hpp"
#include "sim/listener.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace icheck::race
{

/** One attributed access endpoint of a race. */
struct AccessSite
{
    std::string file; ///< Source file of the ctx.load/store call ("" if unknown).
    int line = 0;     ///< 1-based source line (0 if unknown).
    ThreadId tid = 0;
};

/** One race with both endpoints attributed. */
struct AttributedRace
{
    RaceRecord record;
    std::string symbol; ///< "global:name+0xOFF" / "site:..." / "addr:...".
    AccessSite first;   ///< The earlier access of the pair.
    AccessSite second;  ///< The later access.
};

/**
 * Listener that remembers, per (thread, granule), the source site of the
 * thread's most recent read and write. Attach alongside a RaceDetector
 * and arm the machine's access-site tracking; after the run,
 * attributeRaces() joins the detector's races against these tables.
 */
class AccessAttributor : public sim::AccessListener
{
  public:
    explicit AccessAttributor(const sim::Machine &machine)
        : machine(machine)
    {}

    void onStore(const sim::StoreEvent &event) override;
    void onLoad(const sim::LoadEvent &event) override;

    /** Site of @p tid's last write to @p granule (empty if none seen). */
    AccessSite lastWrite(ThreadId tid, Addr granule) const;

    /** Site of @p tid's last read of @p granule (empty if none seen). */
    AccessSite lastRead(ThreadId tid, Addr granule) const;

  private:
    void note(std::map<std::pair<ThreadId, Addr>, AccessSite> &table,
              ThreadId tid, Addr addr, unsigned width);

    const sim::Machine &machine;
    std::map<std::pair<ThreadId, Addr>, AccessSite> writes;
    std::map<std::pair<ThreadId, Addr>, AccessSite> reads;
};

/**
 * Join @p detector's races against @p attributor's site tables and the
 * machine's symbol tables. Ordered by (granule, tids, kind) — the
 * detector's own deterministic order.
 */
std::vector<AttributedRace> attributeRaces(
    const RaceDetector &detector, const AccessAttributor &attributor,
    const sim::Machine &machine);

/**
 * Serialize attributed races as JSONL, one object per line:
 *
 *   {"app":"waterSP","kind":"write-write","symbol":"global:kinetic+0x0",
 *    "first":{"tid":0,"file":"src/apps/apps_fp.cpp","line":278},
 *    "second":{"tid":3,"file":"src/apps/apps_fp.cpp","line":275}}
 */
void writeRaceLogJsonl(std::ostream &out, const std::string &app,
                       const std::vector<AttributedRace> &races);

/**
 * Convenience driver for `icheck --race-log`: run @p runs schedules of
 * @p factory's program (seeds base, base+1, ...) with a RaceDetector and
 * an AccessAttributor attached, union the attributed races across runs
 * (deduplicated on the full record + both sites), and append them to
 * @p out. Returns the number of distinct attributed races written.
 */
int exportRaceLog(const check::ProgramFactory &factory,
                  const sim::MachineConfig &config, int runs,
                  std::uint64_t base_seed, const std::string &app,
                  std::ostream &out);

} // namespace icheck::race

#endif // ICHECK_RACE_RACE_LOG_HPP
