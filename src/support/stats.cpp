#include "support/stats.hpp"

#include <cmath>
#include <sstream>

#include "support/logging.hpp"

namespace icheck
{

void
StatGroup::add(const std::string &name, std::uint64_t delta)
{
    counters[name] += delta;
}

std::uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void
StatGroup::reset()
{
    for (auto &entry : counters)
        entry.second = 0;
}

std::string
StatGroup::render() const
{
    std::ostringstream os;
    for (const auto &[name, value] : counters)
        os << name << "=" << value << "\n";
    return os.str();
}

void
SampleStat::record(double value)
{
    if (n == 0) {
        minValue = maxValue = value;
    } else {
        if (value < minValue)
            minValue = value;
        if (value > maxValue)
            maxValue = value;
    }
    ++n;
    sum += value;
}

void
GeoMean::record(double value)
{
    ICHECK_ASSERT(value > 0.0, "geometric mean needs positive samples");
    ++n;
    logSum += std::log(value);
}

double
GeoMean::value() const
{
    if (n == 0)
        return 1.0;
    return std::exp(logSum / static_cast<double>(n));
}

} // namespace icheck
