#ifndef ICHECK_SUPPORT_TYPES_HPP
#define ICHECK_SUPPORT_TYPES_HPP

/**
 * @file
 * Fundamental type aliases shared by every InstantCheck module.
 */

#include <cstddef>
#include <cstdint>

namespace icheck
{

/** A virtual address in the simulated address space. */
using Addr = std::uint64_t;

/** A 64-bit raw hash word (the value held in a TH register). */
using HashWord = std::uint64_t;

/** Identifier of a simulated thread. */
using ThreadId = std::uint32_t;

/** Identifier of a simulated core. */
using CoreId = std::uint32_t;

/** Simulated instruction count. */
using InstCount = std::uint64_t;

/** An invalid thread id sentinel. */
inline constexpr ThreadId invalidThreadId = ~ThreadId{0};

/** An invalid core id sentinel. */
inline constexpr CoreId invalidCoreId = ~CoreId{0};

} // namespace icheck

#endif // ICHECK_SUPPORT_TYPES_HPP
