#ifndef ICHECK_SUPPORT_EXIT_CODES_HPP
#define ICHECK_SUPPORT_EXIT_CODES_HPP

/**
 * @file
 * Process exit codes shared by the `icheck` CLI and the service layer.
 *
 * The campaign service classifies one-shot CLI fallbacks by exit code,
 * so the meaning of each value is part of the tool's contract (and is
 * documented in `icheck --help`):
 *
 *   0  success — and, for verdict-producing commands (`check`,
 *      `verify`), "deterministic within coverage";
 *   1  the check ran to completion and found nondeterminism (or a
 *      Table 1 mismatch for `verify`) — a *result*, not a failure;
 *   2  usage error: unknown command/flag/app, malformed configuration
 *      (also produced by ICHECK_FATAL, the user-error terminator);
 *   3  internal error: an exception escaped the command (a bug in this
 *      library or an unreadable environment, e.g. a corrupt store).
 */

namespace icheck
{

enum ExitCode : int
{
    ExitOk = 0,
    ExitNondeterminism = 1,
    ExitUsage = 2,
    ExitInternal = 3,
};

} // namespace icheck

#endif // ICHECK_SUPPORT_EXIT_CODES_HPP
