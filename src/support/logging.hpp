#ifndef ICHECK_SUPPORT_LOGGING_HPP
#define ICHECK_SUPPORT_LOGGING_HPP

/**
 * @file
 * Minimal logging and error-termination helpers, following the gem5
 * panic/fatal distinction: panic() for internal invariant violations
 * (a bug in this library), fatal() for user errors (bad configuration,
 * invalid arguments).
 */

#include <sstream>
#include <string>

namespace icheck
{

/** Verbosity levels for informational logging. */
enum class LogLevel
{
    Quiet,
    Warn,
    Info,
    Debug,
};

/** Set the global log verbosity. Default is Warn. */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

namespace detail
{

/** Emit a log line if @p level is enabled. */
void logLine(LogLevel level, const std::string &msg);

/** Abort the process with an internal-bug message. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit the process with a user-error message. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Log an informational message (enabled at Info and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logLine(LogLevel::Info,
                    detail::concat(std::forward<Args>(args)...));
}

/** Log a warning (enabled at Warn and above). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logLine(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Log a debug message (enabled at Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::logLine(LogLevel::Debug,
                    detail::concat(std::forward<Args>(args)...));
}

} // namespace icheck

/**
 * Abort on an internal invariant violation (a bug in InstantCheck itself).
 */
#define ICHECK_PANIC(...) \
    ::icheck::detail::panicImpl(__FILE__, __LINE__, \
                                ::icheck::detail::concat(__VA_ARGS__))

/**
 * Exit on a condition that is the user's fault (bad configuration or
 * arguments), not an InstantCheck bug.
 */
#define ICHECK_FATAL(...) \
    ::icheck::detail::fatalImpl(__FILE__, __LINE__, \
                                ::icheck::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define ICHECK_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::icheck::detail::panicImpl(__FILE__, __LINE__, \
                ::icheck::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (false)

#endif // ICHECK_SUPPORT_LOGGING_HPP
