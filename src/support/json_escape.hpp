#ifndef ICHECK_SUPPORT_JSON_ESCAPE_HPP
#define ICHECK_SUPPORT_JSON_ESCAPE_HPP

/**
 * @file
 * Escaping for strings embedded in hand-rendered JSON. Every layer that
 * emits JSON (the runtime result sink, the canonical report renderer,
 * the service protocol) uses this one definition, so identical inputs
 * always produce identical bytes — a prerequisite for the service's
 * byte-identical-report contract.
 */

#include <cstdio>
#include <string>

namespace icheck
{

/** Escape @p text for embedding inside a JSON string literal. */
inline std::string
jsonEscapeText(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            escaped += "\\\"";
            break;
          case '\\':
            escaped += "\\\\";
            break;
          case '\n':
            escaped += "\\n";
            break;
          case '\t':
            escaped += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                escaped += buf;
            } else {
                escaped += c;
            }
        }
    }
    return escaped;
}

} // namespace icheck

#endif // ICHECK_SUPPORT_JSON_ESCAPE_HPP
