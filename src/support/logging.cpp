#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "support/exit_codes.hpp"

namespace icheck
{

namespace
{

// Atomic: the level is set once by the driver but read from pool
// workers, and a plain global here would be a benign-looking race.
std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet: return "quiet";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Info:  return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
logLine(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) >
        static_cast<int>(globalLevel.load(std::memory_order_relaxed)))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    // Fatal means "the user asked for something invalid", which the
    // CLI contract maps to the usage-error exit code (see
    // support/exit_codes.hpp); 1 is reserved for the
    // nondeterminism-found verdict.
    std::exit(ExitUsage);
}

} // namespace detail

} // namespace icheck
