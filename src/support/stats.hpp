#ifndef ICHECK_SUPPORT_STATS_HPP
#define ICHECK_SUPPORT_STATS_HPP

/**
 * @file
 * Lightweight statistics containers used across the simulator: named
 * counters and value distributions with summary statistics.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace icheck
{

/**
 * A group of named monotonically increasing counters.
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if needed. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Current value of counter @p name (zero if never touched). */
    std::uint64_t get(const std::string &name) const;

    /** Reset every counter to zero. */
    void reset();

    /** All counters in name order. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

    /** Render as "name=value" lines. */
    std::string render() const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

/**
 * An online accumulator of scalar samples with min/max/mean and optional
 * full sample retention for percentiles.
 */
class SampleStat
{
  public:
    /** Record one sample. */
    void record(double value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return n; }

    /** Smallest sample (0 if empty). */
    double min() const { return n ? minValue : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return n ? maxValue : 0.0; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }

    /** Sum of all samples. */
    double total() const { return sum; }

  private:
    std::uint64_t n = 0;
    double sum = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;
};

/**
 * Geometric mean accumulator (used for the Figure 6 GEOM column).
 */
class GeoMean
{
  public:
    /** Record a strictly positive sample. */
    void record(double value);

    /** Geometric mean of recorded samples (1.0 if empty). */
    double value() const;

    /** Number of samples. */
    std::uint64_t count() const { return n; }

  private:
    std::uint64_t n = 0;
    double logSum = 0.0;
};

} // namespace icheck

#endif // ICHECK_SUPPORT_STATS_HPP
