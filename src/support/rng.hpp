#ifndef ICHECK_SUPPORT_RNG_HPP
#define ICHECK_SUPPORT_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random number generators.
 *
 * Every source of randomness in the simulator (scheduler decisions,
 * workload data, intercepted library calls) draws from these generators so
 * that a run is a pure function of its seeds. std::mt19937 is avoided on
 * purpose: its state is large and its distributions are not guaranteed to
 * be identical across standard library implementations.
 */

#include <cstdint>

#include "support/logging.hpp"

namespace icheck
{

/**
 * SplitMix64: tiny, high-quality 64-bit generator. Used both directly and
 * to seed Xoshiro256**.
 */
class SplitMix64
{
  public:
    /** Construct with a seed; equal seeds give equal sequences. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256**: fast general-purpose generator with 256-bit state.
 */
class Xoshiro256
{
  public:
    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Xoshiro256(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : state)
            word = sm.next();
    }

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ICHECK_ASSERT(bound > 0, "below() needs a positive bound");
        // Debiased multiply-shift rejection.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ICHECK_ASSERT(lo <= hi, "range() needs lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace icheck

#endif // ICHECK_SUPPORT_RNG_HPP
