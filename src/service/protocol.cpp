#include "service/protocol.hpp"

#include <cctype>

#include "service/frame.hpp"
#include "service/json.hpp"
#include "support/json_escape.hpp"

namespace icheck::service
{

namespace
{

constexpr std::size_t maxIdBytes = 128;

/** Request ids become store keys: printable ASCII, no quotes/newlines. */
bool
validId(const std::string &id)
{
    if (id.empty() || id.size() > maxIdBytes)
        return false;
    for (const char c : id) {
        if (!std::isprint(static_cast<unsigned char>(c)) || c == '"' ||
            c == '\\')
            return false;
    }
    return true;
}

std::optional<check::Scheme>
parseSchemeToken(const std::string &token)
{
    if (token == "hw")
        return check::Scheme::HwInc;
    if (token == "swinc")
        return check::Scheme::SwInc;
    if (token == "swtr")
        return check::Scheme::SwTr;
    return std::nullopt;
}

/** Fields accepted for each op; anything else is rejected by name. */
bool
knownField(RequestOp op, const std::string &key)
{
    if (key == "id" || key == "op")
        return true;
    switch (op) {
      case RequestOp::Check:
        return key == "app" || key == "runs" || key == "scheme" ||
               key == "seed" || key == "input" || key == "rounding" ||
               key == "ignores" || key == "cores";
      case RequestOp::Pull:
        return key == "from" || key == "max";
      case RequestOp::Install:
        return key == "frames";
      default:
        return false;
    }
}

ParsedLine
failParse(std::string id, std::string message)
{
    ParsedLine parsed;
    parsed.error = std::move(message);
    parsed.id = std::move(id);
    return parsed;
}

} // namespace

ParsedLine
parseRequestLine(const std::string &line, std::size_t max_line_bytes)
{
    if (max_line_bytes != 0 && line.size() > max_line_bytes)
        return failParse({}, "oversized request: " +
                                 std::to_string(line.size()) + " bytes (max " +
                                 std::to_string(max_line_bytes) + ")");

    std::string json_error;
    const auto root = parseJson(line, &json_error);
    if (!root.has_value())
        return failParse({}, "malformed JSON: " + json_error);
    if (!root->isObject())
        return failParse({}, "request must be a JSON object");

    const JsonValue *id_field = root->find("id");
    if (id_field == nullptr)
        return failParse({}, "missing required field 'id'");
    if (!id_field->isString() || !validId(id_field->text))
        return failParse(
            {}, "invalid 'id': need 1-128 printable chars without "
                "quotes or backslashes");
    const std::string id = id_field->text;

    const JsonValue *op_field = root->find("op");
    if (op_field == nullptr)
        return failParse(id, "missing required field 'op'");
    if (!op_field->isString())
        return failParse(id, "'op' must be a string");

    Request request;
    request.id = id;
    const std::string &op = op_field->text;
    if (op == "check")
        request.op = RequestOp::Check;
    else if (op == "stats")
        request.op = RequestOp::Stats;
    else if (op == "ping")
        request.op = RequestOp::Ping;
    else if (op == "drain")
        request.op = RequestOp::Drain;
    else if (op == "pull")
        request.op = RequestOp::Pull;
    else if (op == "install")
        request.op = RequestOp::Install;
    else
        return failParse(id, "unknown op '" + op + "'");

    for (const auto &[key, value] : root->members) {
        (void)value;
        if (!knownField(request.op, key))
            return failParse(id, "unknown field '" + key + "' for op '" +
                                     op + "'");
    }

    if (request.op == RequestOp::Pull) {
        if (const JsonValue *from = root->find("from")) {
            const auto value = from->asU64();
            if (!value.has_value())
                return failParse(
                    id, "'from' must be a non-negative integer");
            request.pull.from = *value;
        }
        if (const JsonValue *max = root->find("max")) {
            const auto value = max->asU64();
            if (!value.has_value() || *value < 64 ||
                *value > (1u << 20))
                return failParse(
                    id, "'max' must be an integer in [64, 1048576]");
            request.pull.maxBytes = static_cast<std::uint32_t>(*value);
        }
        return ParsedLine{std::move(request), {}, id};
    }
    if (request.op == RequestOp::Install) {
        const JsonValue *frames = root->find("frames");
        if (frames == nullptr)
            return failParse(id, "op 'install' requires field 'frames'");
        if (!frames->isString())
            return failParse(id, "'frames' must be a hex string");
        auto decoded = hexDecode(frames->text);
        if (!decoded.has_value())
            return failParse(id, "'frames' is not valid hex");
        request.install.frames = std::move(*decoded);
        return ParsedLine{std::move(request), {}, id};
    }
    if (request.op != RequestOp::Check)
        return ParsedLine{std::move(request), {}, id};

    CheckRequest &check = request.check;
    const JsonValue *app = root->find("app");
    if (app == nullptr)
        return failParse(id, "op 'check' requires field 'app'");
    if (!app->isString() || app->text.empty())
        return failParse(id, "'app' must be a non-empty string");
    check.app = app->text;

    if (const JsonValue *runs = root->find("runs")) {
        const auto value = runs->asU64();
        if (!value.has_value() || *value < 2 || *value > 4096)
            return failParse(id, "'runs' must be an integer in [2, 4096]");
        check.runs = static_cast<int>(*value);
    }
    if (const JsonValue *scheme = root->find("scheme")) {
        if (!scheme->isString())
            return failParse(id, "'scheme' must be a string");
        const auto parsed_scheme = parseSchemeToken(scheme->text);
        if (!parsed_scheme.has_value())
            return failParse(id, "unknown scheme '" + scheme->text +
                                     "' (hw | swinc | swtr)");
        check.scheme = *parsed_scheme;
    }
    if (const JsonValue *seed = root->find("seed")) {
        const auto value = seed->asU64();
        if (!value.has_value())
            return failParse(id,
                             "'seed' must be a non-negative integer");
        check.seed = *value;
    }
    if (const JsonValue *input = root->find("input")) {
        if (!input->isString() ||
            (input->text != "dev" && input->text != "medium" &&
             input->text != "large"))
            return failParse(
                id, "'input' must be one of dev | medium | large");
        check.input = input->text;
    }
    if (const JsonValue *rounding = root->find("rounding")) {
        if (!rounding->isBool())
            return failParse(id, "'rounding' must be a boolean");
        check.rounding = rounding->boolean;
    }
    if (const JsonValue *ignores = root->find("ignores")) {
        if (!ignores->isBool())
            return failParse(id, "'ignores' must be a boolean");
        check.ignores = ignores->boolean;
    }
    if (const JsonValue *cores = root->find("cores")) {
        const auto value = cores->asU64();
        if (!value.has_value() || *value < 1 || *value > 64)
            return failParse(id, "'cores' must be an integer in [1, 64]");
        check.cores = static_cast<int>(*value);
    }
    return ParsedLine{std::move(request), {}, id};
}

std::string
schemeToken(check::Scheme scheme)
{
    switch (scheme) {
      case check::Scheme::HwInc: return "hw";
      case check::Scheme::SwInc: return "swinc";
      case check::Scheme::SwTr:  return "swtr";
    }
    return "hw";
}

std::string
canonicalKey(const CheckRequest &request)
{
    // Key shape: app|input|scheme|seed|rounding|ignores|cores. The run
    // count is deliberately absent (units are per-run) and so is the
    // request id (identical work deduplicates across ids).
    std::string key = "check|";
    key += request.app;
    key += '|';
    key += request.input;
    key += '|';
    key += schemeToken(request.scheme);
    key += "|s";
    key += std::to_string(request.seed);
    key += request.rounding ? "|r1" : "|r0";
    key += request.ignores ? "|i1" : "|i0";
    key += "|c";
    key += std::to_string(request.cores);
    return key;
}

std::string
unitKey(const std::string &canonical, int run_index)
{
    return canonical + "#u" + std::to_string(run_index);
}

std::string
logKey(const std::string &canonical)
{
    return canonical + "#log";
}

std::string
responseKey(const std::string &id)
{
    return "resp#" + id;
}

std::string
renderErrorResponse(const std::string &id, const std::string &message)
{
    return "{\"id\":\"" + jsonEscapeText(id) +
           "\",\"status\":\"error\",\"error\":\"" +
           jsonEscapeText(message) + "\"}";
}

std::string
renderBusyResponse(const std::string &id, std::size_t queue_depth)
{
    return "{\"id\":\"" + jsonEscapeText(id) +
           "\",\"status\":\"busy\",\"error\":\"queue full\","
           "\"queueDepth\":" +
           std::to_string(queue_depth) + "}";
}

std::string
renderDrainingResponse(const std::string &id)
{
    return "{\"id\":\"" + jsonEscapeText(id) +
           "\",\"status\":\"draining\",\"error\":\"daemon is "
           "draining\"}";
}

std::string
renderPongResponse(const std::string &id)
{
    return "{\"id\":\"" + jsonEscapeText(id) +
           "\",\"status\":\"ok\",\"pong\":true}";
}

std::string
renderPullResponse(const std::string &id, std::uint64_t from,
                   std::uint64_t next, bool eof,
                   const std::string &frames_hex)
{
    std::string out = "{\"id\":\"" + jsonEscapeText(id) +
                      "\",\"status\":\"ok\",\"from\":" +
                      std::to_string(from) +
                      ",\"next\":" + std::to_string(next) +
                      ",\"eof\":" + (eof ? "true" : "false") +
                      ",\"frames\":\"";
    out += frames_hex; // Hex is JSON-safe by construction.
    out += "\"}";
    return out;
}

std::string
renderInstallResponse(const std::string &id, std::uint64_t installed,
                      std::uint64_t duplicates)
{
    return "{\"id\":\"" + jsonEscapeText(id) +
           "\",\"status\":\"ok\",\"installed\":" +
           std::to_string(installed) +
           ",\"duplicates\":" + std::to_string(duplicates) + "}";
}

} // namespace icheck::service
