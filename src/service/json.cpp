#include "service/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace icheck::service
{

namespace
{

constexpr int maxDepth = 32;

/** Recursive-descent parser over one string; tracks a cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : src(text) {}

    std::optional<JsonValue>
    parse(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value, 0)) {
            if (error != nullptr)
                *error = err;
            return std::nullopt;
        }
        skipSpace();
        if (pos != src.size()) {
            if (error != nullptr)
                *error = "trailing bytes after JSON value";
            return std::nullopt;
        }
        return value;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' || src[pos] == '\r' ||
                src[pos] == '\n'))
            ++pos;
    }

    bool
    expect(char c)
    {
        if (pos >= src.size() || src[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= src.size())
            return fail("unexpected end of input");
        const char c = src[pos];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't' || c == 'f')
            return parseKeyword(out, c == 't' ? "true" : "false");
        if (c == 'n')
            return parseKeyword(out, "null");
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber(out);
        return fail(std::string("unexpected character '") + c + "'");
    }

    bool
    parseKeyword(JsonValue &out, const std::string &word)
    {
        if (src.compare(pos, word.size(), word) != 0)
            return fail("malformed literal");
        pos += word.size();
        if (word == "null") {
            out.kind = JsonValue::Kind::Null;
        } else {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = word == "true";
        }
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        if (pos >= src.size() || !std::isdigit(
                static_cast<unsigned char>(src[pos])))
            return fail("malformed number");
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
        if (pos < src.size() && src[pos] == '.') {
            ++pos;
            if (pos >= src.size() || !std::isdigit(
                    static_cast<unsigned char>(src[pos])))
                return fail("malformed number");
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            ++pos;
            if (pos < src.size() && (src[pos] == '+' || src[pos] == '-'))
                ++pos;
            if (pos >= src.size() || !std::isdigit(
                    static_cast<unsigned char>(src[pos])))
                return fail("malformed number");
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        out.kind = JsonValue::Kind::Number;
        out.text = src.substr(start, pos - start);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < src.size()) {
            const char c = src[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= src.size())
                    return fail("unterminated escape");
                const char esc = src[pos];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      if (pos + 4 >= src.size())
                          return fail("truncated \\u escape");
                      unsigned code = 0;
                      for (int i = 1; i <= 4; ++i) {
                          const char h = src[pos + static_cast<std::size_t>(i)];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(h - 'A' + 10);
                          else
                              return fail("malformed \\u escape");
                      }
                      pos += 4;
                      // The protocol is ASCII; encode BMP code points as
                      // UTF-8 so round-trips are lossless.
                      if (code < 0x80) {
                          out += static_cast<char>(code);
                      } else if (code < 0x800) {
                          out += static_cast<char>(0xc0 | (code >> 6));
                          out += static_cast<char>(0x80 | (code & 0x3f));
                      } else {
                          out += static_cast<char>(0xe0 | (code >> 12));
                          out += static_cast<char>(0x80 |
                                                   ((code >> 6) & 0x3f));
                          out += static_cast<char>(0x80 | (code & 0x3f));
                      }
                      break;
                  }
                  default:
                      return fail("unknown escape");
                }
                ++pos;
                continue;
            }
            out += c;
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        if (!expect('['))
            return false;
        out.kind = JsonValue::Kind::Array;
        skipSpace();
        if (pos < src.size() && src[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            out.items.push_back(std::move(item));
            skipSpace();
            if (pos < src.size() && src[pos] == ',') {
                ++pos;
                continue;
            }
            return expect(']');
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        if (!expect('{'))
            return false;
        out.kind = JsonValue::Kind::Object;
        skipSpace();
        if (pos < src.size() && src[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            for (const auto &[existing, unused] : out.members) {
                (void)unused;
                if (existing == key)
                    return fail("duplicate key '" + key + "'");
            }
            skipSpace();
            if (!expect(':'))
                return false;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos < src.size() && src[pos] == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }

    const std::string &src;
    std::size_t pos = 0;
    std::string err;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::optional<std::uint64_t>
JsonValue::asU64() const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-')
        return std::nullopt;
    for (const char c : text) {
        if (c == '.' || c == 'e' || c == 'E')
            return std::nullopt;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end == nullptr || *end != '\0')
        return std::nullopt;
    return static_cast<std::uint64_t>(value);
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    Parser parser(text);
    return parser.parse(error);
}

} // namespace icheck::service
