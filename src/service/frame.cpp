#include "service/frame.hpp"

#include "hashing/crc64.hpp"
#include "support/logging.hpp"

namespace icheck::service
{

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

std::uint32_t
readU32(const char *bytes)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
readU64(const char *bytes)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
frameCrc(const std::string &key, const std::string &payload)
{
    std::uint64_t crc =
        hashing::Crc64::compute(key.data(), key.size(), 0);
    return hashing::Crc64::compute(payload.data(), payload.size(), crc);
}

std::string
encodeFrame(const std::string &key, const std::string &payload)
{
    ICHECK_ASSERT(!key.empty() && key.size() <= frameMaxKeyLen,
                  "frame key out of bounds");
    ICHECK_ASSERT(payload.size() <= frameMaxPayloadLen,
                  "frame payload out of bounds");
    std::string frame;
    frame.reserve(frameHeaderBytes + key.size() + payload.size());
    putU32(frame, frameMagic);
    putU32(frame, static_cast<std::uint32_t>(key.size()));
    putU32(frame, static_cast<std::uint32_t>(payload.size()));
    putU64(frame, frameCrc(key, payload));
    frame += key;
    frame += payload;
    return frame;
}

std::size_t
decodeFrames(std::string_view bytes, std::vector<Frame> &out,
             bool *corrupt)
{
    if (corrupt != nullptr)
        *corrupt = false;
    std::size_t offset = 0;
    while (offset + frameHeaderBytes <= bytes.size()) {
        const char *header = bytes.data() + offset;
        const std::uint32_t magic = readU32(header);
        const std::uint32_t key_len = readU32(header + 4);
        const std::uint32_t payload_len = readU32(header + 8);
        const std::uint64_t crc = readU64(header + 12);
        if (magic != frameMagic || key_len == 0 ||
            key_len > frameMaxKeyLen || payload_len > frameMaxPayloadLen) {
            if (corrupt != nullptr)
                *corrupt = true;
            return offset;
        }
        const std::uint64_t body =
            static_cast<std::uint64_t>(key_len) + payload_len;
        if (offset + frameHeaderBytes + body > bytes.size())
            return offset; // Torn tail: wait for more bytes.
        Frame frame;
        frame.key.assign(header + frameHeaderBytes, key_len);
        frame.payload.assign(header + frameHeaderBytes + key_len,
                             payload_len);
        if (frameCrc(frame.key, frame.payload) != crc) {
            if (corrupt != nullptr)
                *corrupt = true;
            return offset;
        }
        out.push_back(std::move(frame));
        offset += frameHeaderBytes + static_cast<std::size_t>(body);
    }
    return offset;
}

std::string
hexEncode(std::string_view bytes)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const char c : bytes) {
        const auto b = static_cast<unsigned char>(c);
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

std::optional<std::string>
hexDecode(std::string_view hex)
{
    if (hex.size() % 2 != 0)
        return std::nullopt;
    const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out += static_cast<char>((hi << 4) | lo);
    }
    return out;
}

} // namespace icheck::service
