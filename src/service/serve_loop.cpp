#include "service/serve_loop.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hpp"
#include "support/exit_codes.hpp"
#include "support/logging.hpp"

namespace icheck::service
{

ServeLoop::ServeLoop(Service &service, std::size_t queue_depth,
                     int dispatchers_wanted)
    : service(service), queueDepth(queue_depth == 0 ? 1 : queue_depth)
{
    service.setQueueProbe([this] { return depths(); });
    const int team = dispatchers_wanted < 1 ? 1 : dispatchers_wanted;
    dispatchers.reserve(static_cast<std::size_t>(team));
    for (int i = 0; i < team; ++i)
        dispatchers.emplace_back([this] { dispatcherLoop(); });
}

ServeLoop::~ServeLoop()
{
    shutdown();
    // The Service outlives this transport session; a stats request on a
    // later session must not probe a dead loop.
    service.setQueueProbe({});
}

void
ServeLoop::submit(std::string line, Respond respond)
{
    // The rejection paths answer inline on the reader thread: the whole
    // point of the bound is that a full daemon says so *now* instead of
    // buffering without limit.
    {
        std::lock_guard<std::mutex> lock(mu);
        if (!draining && queue.size() < queueDepth) {
            queue.push_back(Job{std::move(line), std::move(respond)});
            workReady.notify_one();
            return;
        }
    }
    const ParsedLine parsed = parseRequestLine(line);
    const std::string id = parsed.ok() ? parsed.request->id : parsed.id;
    bool was_draining;
    {
        std::lock_guard<std::mutex> lock(mu);
        was_draining = draining;
    }
    if (was_draining) {
        service.noteDrainRejected();
        respond(renderDrainingResponse(id));
    } else {
        service.noteBusyRejected();
        respond(renderBusyResponse(id, queueDepth));
    }
}

void
ServeLoop::beginDrain()
{
    std::lock_guard<std::mutex> lock(mu);
    draining = true;
    workReady.notify_all();
}

void
ServeLoop::awaitIdle()
{
    std::unique_lock<std::mutex> lock(mu);
    idle.wait(lock, [this] { return queue.empty() && inFlight == 0; });
}

void
ServeLoop::shutdown()
{
    beginDrain();
    awaitIdle();
    {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped)
            return;
        stopped = true;
        workReady.notify_all();
    }
    for (std::thread &dispatcher : dispatchers)
        dispatcher.join();
}

std::pair<std::size_t, std::size_t>
ServeLoop::depths() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {queue.size(), inFlight};
}

void
ServeLoop::dispatcherLoop()
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu);
            workReady.wait(lock, [this] {
                return !queue.empty() || draining || stopped;
            });
            if (queue.empty()) {
                if (stopped || draining)
                    return;
                continue;
            }
            job = std::move(queue.front());
            queue.pop_front();
            ++inFlight;
        }
        const std::string response = service.handleLine(job.line);
        job.respond(response);
        {
            std::lock_guard<std::mutex> lock(mu);
            --inFlight;
            if (queue.empty() && inFlight == 0)
                idle.notify_all();
        }
    }
}

int
servePipe(Service &service, std::istream &in, std::ostream &out,
          const volatile std::sig_atomic_t *shutdown_flag)
{
    ServeLoop loop(service, service.config().queueDepth,
                   service.config().dispatchers);
    std::mutex out_mu;
    const ServeLoop::Respond respond = [&out, &out_mu](
                                           const std::string &response) {
        std::lock_guard<std::mutex> lock(out_mu);
        out << response << '\n';
        out.flush();
    };

    std::string line;
    while (!(shutdown_flag != nullptr && *shutdown_flag != 0) &&
           !service.drainRequested() && std::getline(in, line)) {
        if (line.empty())
            continue;
        loop.submit(std::move(line), respond);
        line.clear();
    }
    loop.shutdown();
    return ExitOk;
}

namespace
{

/**
 * Per-connection reader state for the socket transport. Shared-owned:
 * queued jobs answer from dispatcher threads, so each respond closure
 * holds a shared_ptr and the connection (and its fd) outlives its
 * reaped reader thread until the last queued response is written.
 */
struct Connection : public std::enable_shared_from_this<Connection>
{
    int fd = -1;
    std::thread reader;
    std::mutex writeMu;
    std::atomic<bool> done{false}; ///< Reader exited; safe to reap.

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** Write all of @p response + '\n' to @p connection. */
void
writeResponse(Connection &connection, const std::string &response)
{
    std::string framed = response;
    framed += '\n';
    std::lock_guard<std::mutex> lock(connection.writeMu);
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-response must
        // surface as EPIPE below, not SIGPIPE the whole daemon.
        const ssize_t n =
            ::send(connection.fd, framed.data() + written,
                   framed.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // Peer went away; its responses are undeliverable.
        }
        written += static_cast<std::size_t>(n);
    }
}

/**
 * Read lines from @p connection and feed @p loop until EOF/error.
 * Oversized lines (beyond max_line plus slack) earn an error response
 * and close the connection — resyncing inside an unbounded line would
 * mean buffering it.
 */
void
connectionReader(Connection &connection, ServeLoop &loop,
                 std::size_t max_line)
{
    const ServeLoop::Respond respond =
        [self = connection.shared_from_this()](
            const std::string &response) {
            writeResponse(*self, response);
        };
    std::string buffer;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::read(connection.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (n == 0)
            return;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t i = start; i < buffer.size(); ++i) {
            if (buffer[i] != '\n')
                continue;
            std::string line = buffer.substr(start, i - start);
            start = i + 1;
            if (!line.empty())
                loop.submit(std::move(line), respond);
        }
        buffer.erase(0, start);
        if (max_line != 0 && buffer.size() > max_line) {
            respond(renderErrorResponse(
                {}, "oversized request line; closing connection"));
            return;
        }
    }
}

} // namespace

int
serveSocket(Service &service, const std::string &socket_path,
            const volatile std::sig_atomic_t *shutdown_flag)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        warn("serve: socket() failed: ", std::strerror(errno));
        return ExitInternal;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        warn("serve: socket path too long: ", socket_path);
        ::close(listener);
        return ExitUsage;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(socket_path.c_str());
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, 64) != 0) {
        warn("serve: cannot bind/listen on '", socket_path,
             "': ", std::strerror(errno));
        ::close(listener);
        return ExitInternal;
    }
    inform("serving on unix socket ", socket_path);

    ServeLoop loop(service, service.config().queueDepth,
                   service.config().dispatchers);
    std::mutex connections_mu;
    std::vector<std::shared_ptr<Connection>> connections;
    // Reap disconnected clients as we go — a long-lived daemon must not
    // accumulate one dead thread + socket per client that came and went.
    const auto reapFinished = [&connections, &connections_mu] {
        std::lock_guard<std::mutex> lock(connections_mu);
        for (auto it = connections.begin(); it != connections.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                (*it)->reader.join();
                it = connections.erase(it);
            } else {
                ++it;
            }
        }
    };

    while (!(shutdown_flag != nullptr && *shutdown_flag != 0) &&
           !service.drainRequested()) {
        reapFinished();
        pollfd pfd{listener, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: poll failed: ", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept failed: ", std::strerror(errno));
            break;
        }
        auto connection = std::make_shared<Connection>();
        connection->fd = fd;
        Connection *raw = connection.get();
        const std::size_t max_line = service.config().maxLineBytes;
        connection->reader = std::thread([raw, &loop, max_line] {
            connectionReader(*raw, loop, max_line);
            raw->done.store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(connections_mu);
        connections.push_back(std::move(connection));
    }

    // Graceful drain: stop accepting, let queued campaigns finish (the
    // store keeps every completed unit), then unblock the readers.
    ::close(listener);
    loop.beginDrain();
    loop.awaitIdle();
    {
        std::lock_guard<std::mutex> lock(connections_mu);
        for (auto &connection : connections)
            ::shutdown(connection->fd, SHUT_RDWR);
    }
    {
        std::lock_guard<std::mutex> lock(connections_mu);
        for (auto &connection : connections)
            connection->reader.join();
        // Dropping the vector closes each fd once its last in-flight
        // respond closure (if any) has run; loop.shutdown() drains them.
        connections.clear();
    }
    loop.shutdown();
    ::unlink(socket_path.c_str());
    return ExitOk;
}

} // namespace icheck::service
