#ifndef ICHECK_SERVICE_SERVE_LOOP_HPP
#define ICHECK_SERVICE_SERVE_LOOP_HPP

/**
 * @file
 * Transports and queueing for the campaign daemon.
 *
 * ServeLoop is the bounded in-flight queue between transports and the
 * Service: readers submit raw lines with a per-line responder, a small
 * dispatcher team drains the queue, and when the bound is hit the
 * submitting reader gets an immediate "busy" reply — explicit
 * backpressure instead of unbounded buffering. Two transports feed it:
 *
 *   servePipe   — JSONL over stdin/stdout (also what tests drive);
 *   serveSocket — JSONL over a Unix-domain stream socket, one reader
 *                 thread per accepted connection.
 *
 * Both drain gracefully: an op:"drain" request or SIGTERM/SIGINT stops
 * intake, lets queued and in-flight campaigns finish (their units and
 * responses land in the store), answers any late lines with
 * status:"draining", and only then returns.
 */

#include <condition_variable>
#include <cstddef>
#include <csignal>
#include <deque>
#include <functional>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/daemon.hpp"

namespace icheck::service
{

/** Bounded request queue + dispatcher team in front of one Service. */
class ServeLoop
{
  public:
    using Respond = std::function<void(const std::string &response)>;

    ServeLoop(Service &service, std::size_t queue_depth,
              int dispatchers);

    /** Drains and joins (idempotent with an explicit shutdown()). */
    ~ServeLoop();

    /**
     * Enqueue @p line. On a full queue the responder is called inline
     * with a "busy" reply; after drain began, with "draining".
     */
    void submit(std::string line, Respond respond);

    /** Stop accepting; queued work keeps executing. */
    void beginDrain();

    /** Block until the queue is empty and no dispatcher is mid-request. */
    void awaitIdle();

    /** Drain, wait for idle, join dispatchers. */
    void shutdown();

    /** {queued lines, requests executing right now}. */
    std::pair<std::size_t, std::size_t> depths() const;

  private:
    struct Job
    {
        std::string line;
        Respond respond;
    };

    void dispatcherLoop();

    Service &service;
    const std::size_t queueDepth;

    mutable std::mutex mu;
    std::condition_variable workReady;
    std::condition_variable idle;
    std::deque<Job> queue;
    std::size_t inFlight = 0;
    bool draining = false;
    bool stopped = false;

    std::vector<std::thread> dispatchers;
};

/**
 * Serve JSONL over @p in / @p out until EOF, drain, or @p shutdown_flag
 * (a signal-handler flag; may be null). Returns a process exit code.
 */
int servePipe(Service &service, std::istream &in, std::ostream &out,
              const volatile std::sig_atomic_t *shutdown_flag = nullptr);

/**
 * Serve JSONL over a Unix-domain stream socket bound at @p socket_path
 * (an existing file at that path is replaced). Accepts until drain or
 * @p shutdown_flag, then drains and removes the socket file.
 */
int serveSocket(Service &service, const std::string &socket_path,
                const volatile std::sig_atomic_t *shutdown_flag = nullptr);

} // namespace icheck::service

#endif // ICHECK_SERVICE_SERVE_LOOP_HPP
