#ifndef ICHECK_SERVICE_RECORD_CODEC_HPP
#define ICHECK_SERVICE_RECORD_CODEC_HPP

/**
 * @file
 * Binary serialization of per-run campaign state for the result store.
 *
 * Two payload kinds live behind store keys: a run's RunRecord (one
 * "work unit" of a sharded campaign) and a campaign's malloc ReplayLog
 * (recorded by run 0, read by every replay run — persisting it is what
 * lets a restarted daemon resume a campaign without re-executing the
 * record run). The encoding is versioned, little-endian, and
 * self-delimiting; decode failures return nullopt rather than trusting
 * on-disk bytes (the store already CRC-frames payloads, so a decode
 * failure means a version skew, and the unit is simply recomputed).
 */

#include <optional>
#include <string>

#include "check/driver.hpp"
#include "mem/alloc.hpp"

namespace icheck::service
{

/** Serialize @p record into a store payload. */
std::string encodeRunRecord(const check::RunRecord &record);

/** Decode a payload produced by encodeRunRecord. */
std::optional<check::RunRecord> decodeRunRecord(const std::string &bytes);

/** Serialize @p log (entries + high-water mark) into a store payload. */
std::string encodeReplayLog(const mem::ReplayLog &log);

/** Decode a payload produced by encodeReplayLog into @p log. */
bool decodeReplayLog(const std::string &bytes, mem::ReplayLog &log);

} // namespace icheck::service

#endif // ICHECK_SERVICE_RECORD_CODEC_HPP
