#include "service/executor.hpp"

#include <exception>
#include <optional>
#include <vector>

#include "apps/app_registry.hpp"
#include "apps/scales.hpp"
#include "check/report_json.hpp"
#include "runtime/parallel_driver.hpp"
#include "service/record_codec.hpp"
#include "support/json_escape.hpp"

namespace icheck::service
{

namespace
{

apps::InputScale
scaleOf(const std::string &input)
{
    if (input == "dev")
        return apps::InputScale::Dev;
    if (input == "large")
        return apps::InputScale::Large;
    return apps::InputScale::Medium;
}

ExecutionOutcome
errorOutcome(const std::string &id, const std::string &message)
{
    ExecutionOutcome outcome;
    outcome.response = renderErrorResponse(id, message);
    return outcome;
}

std::string
renderOkResponse(const std::string &id, const check::DriverReport &report,
                 int units_executed, int units_reused, bool log_reused)
{
    std::string body = "{\"id\":\"" + jsonEscapeText(id) +
                       "\",\"status\":\"ok\",\"verdict\":\"";
    body += report.deterministic() ? "deterministic" : "nondeterministic";
    body += "\",\"unitsExecuted\":" + std::to_string(units_executed);
    body += ",\"unitsReused\":" + std::to_string(units_reused);
    body += ",\"logReused\":";
    body += log_reused ? "true" : "false";
    body += ",\"report\":";
    body += check::renderReportJson(report);
    body += "}";
    return body;
}

} // namespace

ExecutionOutcome
CampaignExecutor::execute(const Request &request)
{
    const CheckRequest &check_request = request.check;
    const std::string canonical = canonicalKey(check_request);

    // Idempotent replay: a request id that already ran returns its
    // stored response bytes verbatim — unless the id is being reused
    // for different work, which is a client error.
    if (const auto stored = store.get(responseKey(request.id))) {
        const std::size_t sep = stored->find('\n');
        if (sep == std::string::npos ||
            stored->substr(0, sep) != canonical)
            return errorOutcome(request.id,
                                "id '" + request.id +
                                    "' was already used for a different "
                                    "request");
        ExecutionOutcome outcome;
        outcome.response = stored->substr(sep + 1);
        outcome.ok = true;
        outcome.cachedResponse = true;
        outcome.unitsReused = check_request.runs;
        return outcome;
    }

    const apps::AppInfo *app = apps::tryFindApp(check_request.app);
    if (app == nullptr)
        return errorOutcome(request.id,
                            "unknown app '" + check_request.app + "'");

    check::DriverConfig cfg;
    cfg.runs = check_request.runs;
    cfg.scheme = check_request.scheme;
    cfg.baseSchedSeed = check_request.seed;
    cfg.machine.fpRoundingEnabled = check_request.rounding;
    if (check_request.cores > 0)
        cfg.machine.numCores =
            static_cast<CoreId>(check_request.cores);
    if (check_request.ignores)
        cfg.ignores = app->ignores;

    // Shard the campaign into per-run units and pull every unit the
    // seen-state set already holds.
    std::vector<std::optional<check::RunRecord>> cached(
        static_cast<std::size_t>(cfg.runs));
    std::vector<const check::RunRecord *> precomputed(
        static_cast<std::size_t>(cfg.runs), nullptr);
    int units_reused = 0;
    for (int run = 0; run < cfg.runs; ++run) {
        const auto payload = store.get(unitKey(canonical, run));
        if (!payload.has_value())
            continue;
        auto record = decodeRunRecord(*payload);
        if (!record.has_value())
            continue; // Version skew: recompute this unit.
        const auto index = static_cast<std::size_t>(run);
        cached[index] = std::move(*record);
        precomputed[index] = &*cached[index];
        ++units_reused;
    }

    mem::ReplayLog replay_log;
    bool log_reused = false;
    if (const auto log_payload = store.get(logKey(canonical))) {
        mem::ReplayLog decoded;
        if (decodeReplayLog(*log_payload, decoded)) {
            replay_log = std::move(decoded);
            log_reused = true;
        }
    }

    // Without the log, replay runs can't execute, so a cached run 0
    // must re-record whenever any later unit is missing (it stops
    // counting as reused).
    const bool any_missing = units_reused < cfg.runs;
    if (!log_reused && any_missing && precomputed[0] != nullptr) {
        precomputed[0] = nullptr;
        cached[0].reset();
        --units_reused;
    }

    runtime::CampaignOptions options;
    options.pool = pool;
    options.jobs = pool != nullptr ? 0 : 1;
    options.precomputed = &precomputed;
    options.replayLog = &replay_log;
    options.appName = app->name;
    options.onRunComplete = [&](int run, const check::RunRecord &record) {
        store.put(unitKey(canonical, run), encodeRunRecord(record));
        // Run 0 owns the replay log; persist it alongside so a resumed
        // campaign can skip the record run entirely.
        if (run == 0 && !log_reused)
            store.put(logKey(canonical), encodeReplayLog(replay_log));
    };

    check::DriverReport report;
    try {
        report = runtime::runCampaign(
            cfg, apps::scaledFactory(app->name, scaleOf(check_request.input)),
            options);
    } catch (const std::exception &error) {
        return errorOutcome(request.id,
                            std::string("campaign failed: ") +
                                error.what());
    }

    ExecutionOutcome outcome;
    outcome.ok = true;
    outcome.deterministic = report.deterministic();
    outcome.unitsReused = units_reused;
    outcome.unitsExecuted = cfg.runs - units_reused;
    outcome.logReused = log_reused;
    outcome.response =
        renderOkResponse(request.id, report, outcome.unitsExecuted,
                         outcome.unitsReused, log_reused);
    store.put(responseKey(request.id), canonical + '\n' + outcome.response);
    return outcome;
}

} // namespace icheck::service
