#ifndef ICHECK_SERVICE_EXECUTOR_HPP
#define ICHECK_SERVICE_EXECUTOR_HPP

/**
 * @file
 * Campaign execution on behalf of the daemon.
 *
 * A check request shards into per-run work units (run i of the campaign
 * = one unit, keyed by the request's canonical config + i). Before
 * executing anything the executor consults the result store: units a
 * previous request — or a previous daemon process — already computed
 * are decoded and fed to the runtime as precomputed records, the
 * campaign's replay log is restored the same way, and only the missing
 * units fan out across the work-stealing pool. Each freshly executed
 * unit persists the moment it completes, so killing the daemon
 * mid-campaign loses at most in-flight runs.
 *
 * The merged verdict goes through check::analyzeCampaign over
 * seed-ordered records and is rendered with check::renderReportJson —
 * the exact functions behind one-shot `icheck check --json` — which is
 * what makes service reports byte-identical to the CLI's for any
 * jobs/shard count.
 */

#include <cstdint>
#include <string>

#include "runtime/thread_pool.hpp"
#include "service/protocol.hpp"
#include "service/result_store.hpp"

namespace icheck::service
{

/** What executing (or short-circuiting) one check request produced. */
struct ExecutionOutcome
{
    /** Complete response line (without trailing newline). */
    std::string response;

    bool ok = false;              ///< status:"ok" (vs "error").
    bool cachedResponse = false;  ///< Replayed via the idempotent id.
    bool deterministic = false;

    int unitsExecuted = 0; ///< Runs simulated by this request.
    int unitsReused = 0;   ///< Runs served from the store/seen-set.
    bool logReused = false;
};

class CampaignExecutor
{
  public:
    /**
     * @param store Shared unit/response store (seen-state set).
     * @param pool  Shared worker pool; null means execute inline.
     */
    CampaignExecutor(ResultStore &store, runtime::ThreadPool *pool)
        : store(store), pool(pool)
    {}

    /** Execute @p request (op must be Check). */
    ExecutionOutcome execute(const Request &request);

  private:
    ResultStore &store;
    runtime::ThreadPool *pool;
};

} // namespace icheck::service

#endif // ICHECK_SERVICE_EXECUTOR_HPP
