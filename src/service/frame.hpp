#ifndef ICHECK_SERVICE_FRAME_HPP
#define ICHECK_SERVICE_FRAME_HPP

/**
 * @file
 * The CRC frame codec shared by the result store and fleet log
 * shipping.
 *
 * A frame is the store's on-disk append unit:
 *
 *   u32 magic 'ICR1' | u32 keyLen | u32 payloadLen |
 *   u64 crc64(key ++ payload) | key bytes | payload bytes
 *
 * all little-endian. The same bytes travel verbatim over the fleet
 * protocol (`pull` / `install` ops, hex-armored for JSONL), so a
 * router replica is just another store replaying the same frames —
 * every hop re-verifies the CRC, and a frame that survives shipping
 * is bit-identical to the one the backend appended.
 */

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace icheck::service
{

constexpr std::uint32_t frameMagic = 0x31524349; // "ICR1" little-endian.
constexpr std::size_t frameHeaderBytes = 4 + 4 + 4 + 8;

// Guards against frames claiming absurd sizes when a torn header
// happens to keep a valid magic: no key or payload in this repo comes
// near these bounds.
constexpr std::uint32_t frameMaxKeyLen = 1 << 16;
constexpr std::uint32_t frameMaxPayloadLen = 1 << 28;

/** One decoded store frame. */
struct Frame
{
    std::string key;
    std::string payload;
};

/// @name Little-endian integer helpers (exposed for the store replay).
/// @{
void putU32(std::string &out, std::uint32_t value);
void putU64(std::string &out, std::uint64_t value);
std::uint32_t readU32(const char *bytes);
std::uint64_t readU64(const char *bytes);
/// @}

/** CRC64 over key ++ payload, as stored in the frame header. */
std::uint64_t frameCrc(const std::string &key, const std::string &payload);

/** Serialize one frame (header + key + payload). */
std::string encodeFrame(const std::string &key, const std::string &payload);

/**
 * Decode every whole, CRC-valid frame at the front of @p bytes into
 * @p out. Returns the number of bytes consumed; consumption stops at
 * the first torn (incomplete) frame. A structurally invalid or
 * CRC-mismatched frame sets @p corrupt (when non-null) — shipped logs
 * must never contain one, while a torn tail is the expected shape of
 * a killed writer.
 */
std::size_t decodeFrames(std::string_view bytes, std::vector<Frame> &out,
                         bool *corrupt = nullptr);

/** Lowercase hex armor for carrying frame bytes inside a JSON string. */
std::string hexEncode(std::string_view bytes);

/** Inverse of hexEncode(); nullopt on odd length or non-hex chars. */
std::optional<std::string> hexDecode(std::string_view hex);

} // namespace icheck::service

#endif // ICHECK_SERVICE_FRAME_HPP
