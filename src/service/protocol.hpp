#ifndef ICHECK_SERVICE_PROTOCOL_HPP
#define ICHECK_SERVICE_PROTOCOL_HPP

/**
 * @file
 * The JSONL request/response codec of the campaign service.
 *
 * One request per line, one response per line, matched by "id". The
 * parser is strict: every field is type-checked, unknown fields are
 * rejected by name, oversized lines are refused before parsing, and the
 * request id is validated as a store-key-safe token (the id becomes an
 * idempotency key in the result store, so it must be printable, short,
 * and newline-free).
 *
 * Request shapes:
 *   {"id":"r1","op":"check","app":"radix","runs":8,"scheme":"hw",
 *    "seed":1000,"input":"dev","rounding":true,"ignores":true,
 *    "cores":8}
 *   {"id":"s1","op":"stats"}
 *   {"id":"p1","op":"ping"}
 *   {"id":"d1","op":"drain"}
 *   {"id":"l1","op":"pull","from":0,"max":24576}
 *   {"id":"f1","op":"install","frames":"<hex CRC frames>"}
 *
 * `pull` and `install` are the fleet log-shipping pair: pull returns
 * raw store frames (hex-armored, whole frames only) starting at a
 * byte cursor, install idempotently appends shipped frames into the
 * local store. Both speak the result store's CRC frame format, so
 * every hop re-verifies integrity.
 *
 * Response status values: "ok", "error" (request-level failure),
 * "busy" (bounded queue full — explicit backpressure; retry later),
 * "draining" (daemon is shutting down and no longer accepts work).
 */

#include <cstdint>
#include <optional>
#include <string>

#include "check/checker.hpp"

namespace icheck::service
{

/** What a parsed request asks the daemon to do. */
enum class RequestOp
{
    Check,   ///< Run (or resume) a determinism campaign.
    Stats,   ///< Report queue depths, throughput, dedup counters.
    Ping,    ///< Liveness probe.
    Drain,   ///< Finish in-flight work, then shut down gracefully.
    Pull,    ///< Ship store frames from a log cursor (fleet replica).
    Install, ///< Idempotently ingest shipped store frames (failover).
};

/** Validated payload of an op:"check" request. */
struct CheckRequest
{
    std::string app;
    int runs = 8;
    check::Scheme scheme = check::Scheme::HwInc;
    std::uint64_t seed = 1000;
    std::string input = "medium"; ///< dev | medium | large.
    bool rounding = true;
    bool ignores = true;
    int cores = 0; ///< 0 = the machine default.
};

/** Validated payload of an op:"pull" request. */
struct PullRequest
{
    std::uint64_t from = 0;         ///< Log byte cursor (frame boundary).
    std::uint32_t maxBytes = 24576; ///< Raw-frame budget per response.
};

/** Validated payload of an op:"install" request. */
struct InstallRequest
{
    std::string frames; ///< Raw (hex-decoded) frame bytes.
};

/** One validated request. */
struct Request
{
    std::string id;
    RequestOp op = RequestOp::Ping;
    CheckRequest check;     ///< Meaningful only when op == Check.
    PullRequest pull;       ///< Meaningful only when op == Pull.
    InstallRequest install; ///< Meaningful only when op == Install.
};

/** Outcome of parsing one line: a request, or an error with the id. */
struct ParsedLine
{
    std::optional<Request> request;

    /** Human-readable reason when request is empty. */
    std::string error;

    /** Best-effort id recovered from the line (may be empty). */
    std::string id;

    bool ok() const { return request.has_value(); }
};

/**
 * Parse and validate one JSONL request line. @p max_line_bytes bounds
 * the accepted payload size (0 = unlimited).
 */
ParsedLine parseRequestLine(const std::string &line,
                            std::size_t max_line_bytes = 0);

/**
 * Canonical identity of a check campaign: every knob that can change a
 * run record, excluding the run count (so campaigns over the same seed
 * base share per-run units) and the request id (so identical work
 * submitted under different ids deduplicates). Doubles as the store/
 * seen-set key prefix.
 */
std::string canonicalKey(const CheckRequest &request);

/** Store key of run @p run_index's record under @p canonical. */
std::string unitKey(const std::string &canonical, int run_index);

/** Store key of the campaign's replay log under @p canonical. */
std::string logKey(const std::string &canonical);

/** Store key of the response cached for request @p id. */
std::string responseKey(const std::string &id);

/// @name Response rendering (deterministic bytes, no timestamps).
/// @{
std::string renderErrorResponse(const std::string &id,
                                const std::string &message);
std::string renderBusyResponse(const std::string &id,
                               std::size_t queue_depth);
std::string renderDrainingResponse(const std::string &id);
std::string renderPongResponse(const std::string &id);
std::string renderPullResponse(const std::string &id, std::uint64_t from,
                               std::uint64_t next, bool eof,
                               const std::string &frames_hex);
std::string renderInstallResponse(const std::string &id,
                                  std::uint64_t installed,
                                  std::uint64_t duplicates);
/// @}

/** Scheme name as the protocol spells it (hw | swinc | swtr). */
std::string schemeToken(check::Scheme scheme);

} // namespace icheck::service

#endif // ICHECK_SERVICE_PROTOCOL_HPP
