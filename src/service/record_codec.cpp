#include "service/record_codec.hpp"

#include <cstring>

namespace icheck::service
{

namespace
{

constexpr std::uint32_t recordVersion = 1;
constexpr std::uint32_t logVersion = 1;

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
putString(std::string &out, const std::string &text)
{
    putU32(out, static_cast<std::uint32_t>(text.size()));
    out += text;
}

/** Bounds-checked little-endian reader over one payload. */
class Reader
{
  public:
    explicit Reader(const std::string &bytes) : src(bytes) {}

    bool
    u32(std::uint32_t &out)
    {
        if (src.size() - pos < 4)
            return false;
        out = 0;
        for (int shift = 0; shift < 32; shift += 8)
            out |= static_cast<std::uint32_t>(
                       static_cast<unsigned char>(src[pos++]))
                   << shift;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (src.size() - pos < 8)
            return false;
        out = 0;
        for (int shift = 0; shift < 64; shift += 8)
            out |= static_cast<std::uint64_t>(
                       static_cast<unsigned char>(src[pos++]))
                   << shift;
        return true;
    }

    bool
    str(std::string &out)
    {
        std::uint32_t len = 0;
        if (!u32(len) || src.size() - pos < len)
            return false;
        out.assign(src, pos, len);
        pos += len;
        return true;
    }

    bool done() const { return pos == src.size(); }

  private:
    const std::string &src;
    std::size_t pos = 0;
};

} // namespace

std::string
encodeRunRecord(const check::RunRecord &record)
{
    std::string out;
    out.reserve(96 + record.checkpointHashes.size() * 8);
    putU32(out, recordVersion);
    putU64(out, record.checkpointHashes.size());
    for (const HashWord hash : record.checkpointHashes)
        putU64(out, hash);
    putU64(out, record.outputHash);
    putU64(out, record.outputBytes);
    putU64(out, record.result.checkpoints);
    putU64(out, record.result.nativeInstrs);
    putU64(out, record.result.overheadInstrs);
    putU64(out, record.result.cacheHits);
    putU64(out, record.result.cacheMisses);
    putU64(out, record.result.storesHashed);
    putU64(out, record.checkerOverheadInstrs);
    return out;
}

std::optional<check::RunRecord>
decodeRunRecord(const std::string &bytes)
{
    Reader reader(bytes);
    std::uint32_t version = 0;
    if (!reader.u32(version) || version != recordVersion)
        return std::nullopt;
    check::RunRecord record;
    std::uint64_t hash_count = 0;
    if (!reader.u64(hash_count) ||
        hash_count > bytes.size() / 8) // cheap sanity bound
        return std::nullopt;
    record.checkpointHashes.reserve(hash_count);
    for (std::uint64_t i = 0; i < hash_count; ++i) {
        std::uint64_t hash = 0;
        if (!reader.u64(hash))
            return std::nullopt;
        record.checkpointHashes.push_back(hash);
    }
    if (!reader.u64(record.outputHash) ||
        !reader.u64(record.outputBytes) ||
        !reader.u64(record.result.checkpoints) ||
        !reader.u64(record.result.nativeInstrs) ||
        !reader.u64(record.result.overheadInstrs) ||
        !reader.u64(record.result.cacheHits) ||
        !reader.u64(record.result.cacheMisses) ||
        !reader.u64(record.result.storesHashed) ||
        !reader.u64(record.checkerOverheadInstrs) || !reader.done())
        return std::nullopt;
    return record;
}

std::string
encodeReplayLog(const mem::ReplayLog &log)
{
    std::string out;
    putU32(out, logVersion);
    putU64(out, log.highWater());
    putU64(out, log.entriesMap().size());
    for (const auto &[key, addr] : log.entriesMap()) {
        putString(out, key.first);
        putU32(out, key.second);
        putU64(out, addr);
    }
    return out;
}

bool
decodeReplayLog(const std::string &bytes, mem::ReplayLog &log)
{
    Reader reader(bytes);
    std::uint32_t version = 0;
    if (!reader.u32(version) || version != logVersion)
        return false;
    std::uint64_t high_water = 0;
    std::uint64_t entry_count = 0;
    if (!reader.u64(high_water) || !reader.u64(entry_count))
        return false;
    for (std::uint64_t i = 0; i < entry_count; ++i) {
        std::string site;
        std::uint32_t seq = 0;
        std::uint64_t addr = 0;
        if (!reader.str(site) || !reader.u32(seq) || !reader.u64(addr))
            return false;
        log.record(site, seq, addr);
    }
    if (!reader.done())
        return false;
    log.raiseHighWater(high_water);
    return true;
}

} // namespace icheck::service
