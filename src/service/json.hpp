#ifndef ICHECK_SERVICE_JSON_HPP
#define ICHECK_SERVICE_JSON_HPP

/**
 * @file
 * Minimal JSON reader for the service's request codec.
 *
 * The daemon parses untrusted JSONL lines, so the parser is strict
 * rather than permissive: it rejects trailing garbage, duplicate object
 * keys, unterminated literals, and inputs nested deeper than a fixed
 * bound (a hostile 10k-bracket line must not recurse the stack away).
 * Numbers keep their raw lexeme alongside the double so 64-bit seeds
 * round-trip exactly. Members preserve source order, which lets the
 * codec reject unknown fields with a precise message.
 *
 * Writing JSON stays hand-rendered at each call site (result sink
 * idiom) — responses need deterministic bytes, and a format-preserving
 * writer is simpler to audit than a generic one.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace icheck::service
{

/** One parsed JSON value (a tree; arrays/objects own their children). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;

    /** String payload, or the raw number lexeme for Kind::Number. */
    std::string text;

    std::vector<JsonValue> items;                          ///< Array.
    std::vector<std::pair<std::string, JsonValue>> members; ///< Object.

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key, or null if absent. */
    const JsonValue *find(const std::string &key) const;

    /** The number as u64 if it is a non-negative integer lexeme. */
    std::optional<std::uint64_t> asU64() const;

    /** The number as double (0.0 if not a number). */
    double asDouble() const;
};

/**
 * Parse one complete JSON document from @p text. Returns nullopt and
 * sets @p error (if non-null) on any syntax violation, trailing bytes,
 * duplicate keys, or nesting beyond 32 levels.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace icheck::service

#endif // ICHECK_SERVICE_JSON_HPP
