#include "service/daemon.hpp"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "check/report_json.hpp"
#include "service/frame.hpp"
#include "runtime/parallel_driver.hpp"
#include "support/json_escape.hpp"

namespace icheck::service
{

double
ServiceSnapshot::dedupHitRate() const
{
    const double touched =
        static_cast<double>(unitsExecuted + unitsReused);
    if (touched <= 0.0)
        return 0.0;
    return static_cast<double>(unitsReused) / touched;
}

Service::Service(ServiceConfig config)
    : cfg(std::move(config)),
      store(cfg.storePath.empty()
                ? std::make_unique<ResultStore>()
                : std::make_unique<ResultStore>(cfg.storePath)),
      startTime(std::chrono::steady_clock::now())
{
    const int jobs = runtime::resolveJobs(cfg.jobs);
    if (jobs > 1)
        pool = std::make_unique<runtime::ThreadPool>(
            static_cast<unsigned>(jobs));
    executor = std::make_unique<CampaignExecutor>(*store, pool.get());
}

std::string
Service::handleLine(const std::string &line)
{
    ParsedLine parsed = parseRequestLine(line, cfg.maxLineBytes);
    if (!parsed.ok()) {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        requestsCompleted.fetch_add(1, std::memory_order_relaxed);
        return renderErrorResponse(parsed.id, parsed.error);
    }

    const Request &request = *parsed.request;
    std::string response;
    switch (request.op) {
      case RequestOp::Check:
        // Once a drain was accepted, new campaigns are refused — only
        // work that was already in flight when it arrived completes.
        if (drainRequested()) {
            drainRejected.fetch_add(1, std::memory_order_relaxed);
            requestsCompleted.fetch_add(1, std::memory_order_relaxed);
            return renderDrainingResponse(request.id);
        }
        response = handleCheck(request);
        break;
      case RequestOp::Stats:
        response = renderStatsResponse(request.id);
        break;
      case RequestOp::Ping:
        response = renderPongResponse(request.id);
        break;
      case RequestOp::Drain:
        drainFlag.store(true, std::memory_order_release);
        response = "{\"id\":\"" + jsonEscapeText(request.id) +
                   "\",\"status\":\"ok\",\"draining\":true}";
        break;
      case RequestOp::Pull:
        // Read-only: a draining backend keeps serving its log so the
        // router's replica can catch up before the process exits.
        response = handlePull(request);
        break;
      case RequestOp::Install:
        // Installs write to the store; once draining, refuse them just
        // like new campaigns (the backend is about to disappear).
        if (drainRequested()) {
            drainRejected.fetch_add(1, std::memory_order_relaxed);
            requestsCompleted.fetch_add(1, std::memory_order_relaxed);
            return renderDrainingResponse(request.id);
        }
        response = handleInstall(request);
        break;
    }
    requestsCompleted.fetch_add(1, std::memory_order_relaxed);
    return response;
}

std::string
Service::handleCheck(const Request &request)
{
    const ExecutionOutcome outcome = executor->execute(request);
    if (outcome.ok) {
        checksCompleted.fetch_add(1, std::memory_order_relaxed);
        if (outcome.cachedResponse)
            responsesCached.fetch_add(1, std::memory_order_relaxed);
        unitsExecuted.fetch_add(
            static_cast<std::uint64_t>(outcome.unitsExecuted),
            std::memory_order_relaxed);
        unitsReused.fetch_add(
            static_cast<std::uint64_t>(outcome.unitsReused),
            std::memory_order_relaxed);
    } else {
        checkErrors.fetch_add(1, std::memory_order_relaxed);
    }
    return outcome.response;
}

std::string
Service::handlePull(const Request &request)
{
    try {
        std::uint64_t next = 0;
        bool eof = false;
        const std::string frames = store->readLog(
            request.pull.from, request.pull.maxBytes, next, eof);
        return renderPullResponse(request.id, request.pull.from, next,
                                  eof, hexEncode(frames));
    } catch (const StoreError &error) {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        return renderErrorResponse(request.id, error.what());
    }
}

std::string
Service::handleInstall(const Request &request)
{
    std::vector<Frame> frames;
    bool corrupt = false;
    const std::size_t consumed =
        decodeFrames(request.install.frames, frames, &corrupt);
    if (corrupt || consumed != request.install.frames.size()) {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        return renderErrorResponse(
            request.id, corrupt ? "corrupt frame in 'frames'"
                                : "torn frame in 'frames' (whole frames "
                                  "only)");
    }
    std::uint64_t installed = 0;
    std::uint64_t duplicates = 0;
    for (const Frame &frame : frames) {
        if (store->put(frame.key, frame.payload)) {
            ++installed;
        } else {
            ++duplicates;
        }
    }
    framesInstalled.fetch_add(installed, std::memory_order_relaxed);
    return renderInstallResponse(request.id, installed, duplicates);
}

void
Service::noteBusyRejected()
{
    busyRejected.fetch_add(1, std::memory_order_relaxed);
}

void
Service::noteDrainRejected()
{
    drainRejected.fetch_add(1, std::memory_order_relaxed);
}

void
Service::setQueueProbe(
    std::function<std::pair<std::size_t, std::size_t>()> probe)
{
    std::lock_guard<std::mutex> lock(probeMu);
    queueProbe = std::move(probe);
}

ServiceSnapshot
Service::snapshot() const
{
    ServiceSnapshot snap;
    snap.requestsCompleted =
        requestsCompleted.load(std::memory_order_relaxed);
    snap.checksCompleted =
        checksCompleted.load(std::memory_order_relaxed);
    snap.protocolErrors = protocolErrors.load(std::memory_order_relaxed);
    snap.checkErrors = checkErrors.load(std::memory_order_relaxed);
    snap.busyRejected = busyRejected.load(std::memory_order_relaxed);
    snap.drainRejected = drainRejected.load(std::memory_order_relaxed);
    snap.responsesCached =
        responsesCached.load(std::memory_order_relaxed);
    snap.unitsExecuted = unitsExecuted.load(std::memory_order_relaxed);
    snap.unitsReused = unitsReused.load(std::memory_order_relaxed);
    {
        // Held across the call: the probe points into a ServeLoop that
        // uninstalls itself on destruction, and the uninstall must not
        // win while the probe is mid-flight.
        std::lock_guard<std::mutex> lock(probeMu);
        if (queueProbe) {
            const auto [queued, in_flight] = queueProbe();
            snap.queueDepth = queued;
            snap.inFlight = in_flight;
        }
    }
    snap.uptimeSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime)
            .count();
    snap.requestsPerSec =
        snap.uptimeSeconds > 0.0
            ? static_cast<double>(snap.requestsCompleted) /
                  snap.uptimeSeconds
            : 0.0;
    snap.storeKeys = store->keyCount();
    snap.storeBytes = store->logBytes();
    snap.framesInstalled =
        framesInstalled.load(std::memory_order_relaxed);
    snap.store = store->stats();
    return snap;
}

std::string
Service::renderStatsResponse(const std::string &id) const
{
    const ServiceSnapshot snap = snapshot();
    char body[1536];
    std::snprintf(
        body, sizeof body,
        "{\"id\":\"%s\",\"status\":\"ok\",\"stats\":{"
        "\"requestsCompleted\":%" PRIu64 ",\"checksCompleted\":%" PRIu64
        ",\"protocolErrors\":%" PRIu64 ",\"checkErrors\":%" PRIu64
        ",\"busyRejected\":%" PRIu64 ",\"drainRejected\":%" PRIu64
        ",\"responsesCached\":%" PRIu64 ",\"unitsExecuted\":%" PRIu64
        ",\"unitsReused\":%" PRIu64 ",\"dedupHitRate\":%.4f,"
        "\"queueDepth\":%zu,\"inFlight\":%zu,"
        "\"uptimeSeconds\":%.3f,\"requestsPerSec\":%.2f,"
        "\"storeKeys\":%zu,\"storeBytes\":%" PRIu64
        ",\"framesAppended\":%" PRIu64 ",\"framesInstalled\":%" PRIu64
        ",\"storeFramesLoaded\":%" PRIu64
        ",\"storeBytesDropped\":%" PRIu64 "}}",
        jsonEscapeText(id).c_str(), snap.requestsCompleted,
        snap.checksCompleted, snap.protocolErrors, snap.checkErrors,
        snap.busyRejected, snap.drainRejected, snap.responsesCached,
        snap.unitsExecuted, snap.unitsReused, snap.dedupHitRate(),
        snap.queueDepth, snap.inFlight, snap.uptimeSeconds,
        snap.requestsPerSec, snap.storeKeys, snap.storeBytes,
        snap.store.puts, snap.framesInstalled, snap.store.framesLoaded,
        snap.store.bytesDropped);
    return body;
}

} // namespace icheck::service
