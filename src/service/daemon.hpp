#ifndef ICHECK_SERVICE_DAEMON_HPP
#define ICHECK_SERVICE_DAEMON_HPP

/**
 * @file
 * The long-running campaign-checking service behind `icheck serve`.
 *
 * A Service owns the shared execution substrate — one work-stealing
 * pool, one result store (persistent if --store was given), one
 * executor — and turns request lines into response lines. Transport
 * (stdin pipe, Unix socket), queueing, and backpressure live in
 * serve_loop.*; the Service itself is synchronous and safe to call from
 * multiple dispatcher threads, which is also what makes it directly
 * testable without any I/O.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "runtime/thread_pool.hpp"
#include "service/executor.hpp"
#include "service/result_store.hpp"

namespace icheck::service
{

/** Daemon configuration (CLI flags map 1:1 onto these). */
struct ServiceConfig
{
    /** Pool workers shared by all campaigns; 0 = hardware concurrency. */
    int jobs = 0;

    /** Concurrent request dispatchers (campaigns in flight). */
    int dispatchers = 2;

    /** Bound on queued requests before busy replies (backpressure). */
    std::size_t queueDepth = 64;

    /** Bound on one request line's size. */
    std::size_t maxLineBytes = 64 * 1024;

    /** Result store file; empty = in-memory only (no resume). */
    std::string storePath;
};

/** Point-in-time counters for the stats response. */
struct ServiceSnapshot
{
    std::uint64_t requestsCompleted = 0;
    std::uint64_t checksCompleted = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t checkErrors = 0;
    std::uint64_t busyRejected = 0;
    std::uint64_t drainRejected = 0;
    std::uint64_t responsesCached = 0;
    std::uint64_t unitsExecuted = 0;
    std::uint64_t unitsReused = 0;
    std::size_t queueDepth = 0;
    std::size_t inFlight = 0;
    double uptimeSeconds = 0.0;
    double requestsPerSec = 0.0;
    std::size_t storeKeys = 0;
    std::uint64_t storeBytes = 0;      ///< Append-only log length.
    std::uint64_t framesInstalled = 0; ///< Frames ingested via install.
    StoreStats store; ///< store.puts = frames appended since start.

    /** Units served from the seen-set / all units touched; 0..1. */
    double dedupHitRate() const;
};

class Service
{
  public:
    /** Throws StoreError if cfg.storePath exists but is unusable. */
    explicit Service(ServiceConfig cfg);

    /**
     * Handle one request line and return the response line (no
     * trailing newline). Thread-safe; called by dispatchers and tests.
     */
    std::string handleLine(const std::string &line);

    /** True once an op:"drain" request was accepted. */
    bool
    drainRequested() const
    {
        return drainFlag.load(std::memory_order_acquire);
    }

    /** Counted when the serve loop rejects a line with "busy". */
    void noteBusyRejected();

    /** Counted when a line arrives after drain began. */
    void noteDrainRejected();

    /**
     * Install the serve loop's live queue probe (returns {queued,
     * in-flight}) so stats responses can report transport depth. The
     * loop must uninstall it (pass {}) before it dies: the Service
     * outlives any one transport session.
     */
    void setQueueProbe(std::function<std::pair<std::size_t,
                                               std::size_t>()> probe);

    ServiceSnapshot snapshot() const;
    ResultStore &resultStore() { return *store; }
    const ServiceConfig &config() const { return cfg; }

  private:
    std::string handleCheck(const Request &request);
    std::string handlePull(const Request &request);
    std::string handleInstall(const Request &request);
    std::string renderStatsResponse(const std::string &id) const;

    ServiceConfig cfg;
    std::unique_ptr<ResultStore> store;
    std::unique_ptr<runtime::ThreadPool> pool;
    std::unique_ptr<CampaignExecutor> executor;

    std::atomic<bool> drainFlag{false};

    std::atomic<std::uint64_t> requestsCompleted{0};
    std::atomic<std::uint64_t> checksCompleted{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> checkErrors{0};
    std::atomic<std::uint64_t> busyRejected{0};
    std::atomic<std::uint64_t> drainRejected{0};
    std::atomic<std::uint64_t> responsesCached{0};
    std::atomic<std::uint64_t> unitsExecuted{0};
    std::atomic<std::uint64_t> unitsReused{0};
    std::atomic<std::uint64_t> framesInstalled{0};

    mutable std::mutex probeMu;
    std::function<std::pair<std::size_t, std::size_t>()> queueProbe;
    std::chrono::steady_clock::time_point startTime;
};

} // namespace icheck::service

#endif // ICHECK_SERVICE_DAEMON_HPP
