#ifndef ICHECK_SERVICE_RESULT_STORE_HPP
#define ICHECK_SERVICE_RESULT_STORE_HPP

/**
 * @file
 * Append-only, CRC-framed, indexed key→payload store.
 *
 * This is the daemon's persistence substrate and its shared seen-state
 * set in one structure: the sharded in-memory index answers "has any
 * request already computed this unit?" (dedup), and the append-only
 * file behind it makes the answer survive restarts (resume). Frames
 * are:
 *
 *   u32 magic 'ICR1' | u32 keyLen | u32 payloadLen |
 *   u64 crc64(key ++ payload) | key bytes | payload bytes
 *
 * all little-endian. Open() replays the file into the index and stops
 * at the first torn or corrupt frame — a daemon killed mid-append loses
 * at most that frame; the file is truncated back to the last good
 * boundary so subsequent appends produce a clean log. Writes are
 * idempotent by key: putting an existing key is a no-op (unit payloads
 * are deterministic functions of their key, so the first frame is as
 * good as any). A pathless store skips the file and is purely an
 * in-memory seen-set (used by `icheck serve` without --store and by
 * tests).
 */

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace icheck::service
{

/** Raised when the backing file cannot be opened or written. */
class StoreError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Observability counters (monotonic since open). */
struct StoreStats
{
    std::uint64_t framesLoaded = 0;   ///< Recovered at open.
    std::uint64_t bytesDropped = 0;   ///< Torn/corrupt tail discarded.
    std::uint64_t puts = 0;           ///< Frames appended.
    std::uint64_t putDuplicates = 0;  ///< Puts skipped (key present).
    std::uint64_t getHits = 0;
    std::uint64_t getMisses = 0;
};

class ResultStore
{
  public:
    /** In-memory store (no persistence). */
    ResultStore();

    /**
     * Open (creating if needed) the store at @p path and replay its
     * frames into the index. Throws StoreError if the file cannot be
     * opened or created.
     */
    explicit ResultStore(const std::string &path);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** True if @p key has a payload (seen-set membership probe). */
    bool contains(const std::string &key) const;

    /**
     * Payload stored for @p key, if any. File-backed payloads re-read
     * from disk and re-verify their frame CRC.
     */
    std::optional<std::string> get(const std::string &key);

    /**
     * Append @p payload under @p key; a present key is left untouched.
     * @return true if a frame was appended.
     */
    bool put(const std::string &key, const std::string &payload);

    /**
     * Raw append-only log bytes for fleet log shipping: whole frames
     * starting at cursor @p from (a frame boundary — 0, or a @p next
     * value from a previous call), accumulated until adding another
     * frame would exceed @p max_bytes. At least one frame is returned
     * whenever any remains, so a frame larger than @p max_bytes cannot
     * stall a puller. @p next receives the cursor one past the returned
     * bytes and @p eof whether it reached the log end. Throws
     * StoreError when @p from is not a frame boundary.
     */
    std::string readLog(std::uint64_t from, std::size_t max_bytes,
                        std::uint64_t &next, bool &eof);

    /** Total bytes of the append-only frame log (file or in-memory). */
    std::uint64_t logBytes() const;

    std::size_t keyCount() const;
    StoreStats stats() const;
    bool persistent() const { return !filePath.empty(); }
    const std::string &path() const { return filePath; }

  private:
    struct Slot
    {
        /** Payload offset in the log (file, or in-memory journal). */
        std::uint64_t offset = 0;
        std::uint32_t payloadLen = 0;
    };

    /** Shard for @p key (single-writer lock striping on the index). */
    std::size_t shardOf(const std::string &key) const;

    void replayFile();

    static constexpr std::size_t shardCount = 16;

    std::string filePath;
    mutable std::mutex fileMu; ///< Serializes log append/read/seek.
    std::fstream file;
    /** In-memory frame log when pathless: same bytes a file would hold,
     *  so log shipping and payload reads work identically. */
    std::string journal;
    std::uint64_t fileEnd = 0; ///< Log length (file or journal).

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, Slot> map;
    };
    Shard shards[shardCount];

    mutable std::mutex statsMu;
    StoreStats counters;
};

} // namespace icheck::service

#endif // ICHECK_SERVICE_RESULT_STORE_HPP
