#include "service/result_store.hpp"

#include <filesystem>
#include <functional>
#include <vector>

#include "service/frame.hpp"
#include "support/logging.hpp"

namespace icheck::service
{

ResultStore::ResultStore() = default;

ResultStore::ResultStore(const std::string &path) : filePath(path)
{
    // Create the file if missing, then reopen read/write for replay
    // and appends (fstream in|out refuses to create).
    {
        std::ofstream create(path, std::ios::binary | std::ios::app);
        if (!create)
            throw StoreError("cannot create result store at '" + path +
                             "'");
    }
    file.open(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!file)
        throw StoreError("cannot open result store at '" + path + "'");
    replayFile();
}

void
ResultStore::replayFile()
{
    file.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(file.tellg());
    file.seekg(0);

    std::uint64_t offset = 0;
    std::vector<char> header(frameHeaderBytes);
    std::string key;
    std::string payload;
    while (offset + frameHeaderBytes <= file_size) {
        file.seekg(static_cast<std::streamoff>(offset));
        file.read(header.data(),
                  static_cast<std::streamsize>(frameHeaderBytes));
        if (file.gcount() !=
            static_cast<std::streamsize>(frameHeaderBytes))
            break;
        const std::uint32_t magic = readU32(header.data());
        const std::uint32_t key_len = readU32(header.data() + 4);
        const std::uint32_t payload_len = readU32(header.data() + 8);
        const std::uint64_t crc = readU64(header.data() + 12);
        if (magic != frameMagic || key_len == 0 ||
            key_len > frameMaxKeyLen || payload_len > frameMaxPayloadLen)
            break;
        const std::uint64_t body = static_cast<std::uint64_t>(key_len) +
                                   payload_len;
        if (offset + frameHeaderBytes + body > file_size)
            break;
        key.resize(key_len);
        payload.resize(payload_len);
        file.read(key.data(), key_len);
        file.read(payload.data(), payload_len);
        if (file.gcount() != static_cast<std::streamsize>(payload_len))
            break;
        if (frameCrc(key, payload) != crc)
            break;

        Slot slot;
        slot.offset = offset + frameHeaderBytes + key_len;
        slot.payloadLen = payload_len;
        shards[shardOf(key)].map.emplace(key, slot);
        // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
        ++counters.framesLoaded;
        offset += frameHeaderBytes + body;
    }
    file.clear();

    if (offset < file_size) {
        // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
        counters.bytesDropped = file_size - offset;
        warn("result store '", filePath, "': dropping ",
             counters.bytesDropped,
             " torn/corrupt tail bytes (recovered ",
             counters.framesLoaded, " frames)");
        std::error_code ec;
        std::filesystem::resize_file(filePath, offset, ec);
        if (ec)
            throw StoreError("cannot truncate corrupt tail of '" +
                             filePath + "': " + ec.message());
        // Reopen so the stream's idea of the file matches the truncation.
        file.close();
        file.open(filePath,
                  std::ios::binary | std::ios::in | std::ios::out);
        if (!file)
            throw StoreError("cannot reopen result store at '" +
                             filePath + "'");
    }
    // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
    fileEnd = offset;
}

std::size_t
ResultStore::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % shardCount;
}

bool
ResultStore::contains(const std::string &key) const
{
    const Shard &shard = shards[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.find(key) != shard.map.end();
}

std::optional<std::string>
ResultStore::get(const std::string &key)
{
    Slot slot;
    {
        Shard &shard = shards[shardOf(key)];
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.getMisses;
            return std::nullopt;
        }
        slot = it->second;
    }
    {
        std::lock_guard<std::mutex> stats_lock(statsMu);
        ++counters.getHits;
    }
    if (!persistent()) {
        std::lock_guard<std::mutex> lock(fileMu);
        return journal.substr(static_cast<std::size_t>(slot.offset),
                              slot.payloadLen);
    }

    std::string payload(slot.payloadLen, '\0');
    {
        std::lock_guard<std::mutex> lock(fileMu);
        file.seekg(static_cast<std::streamoff>(slot.offset));
        file.read(payload.data(),
                  static_cast<std::streamsize>(slot.payloadLen));
        if (file.gcount() !=
            static_cast<std::streamsize>(slot.payloadLen)) {
            file.clear();
            return std::nullopt;
        }
    }
    return payload;
}

bool
ResultStore::put(const std::string &key, const std::string &payload)
{
    ICHECK_ASSERT(!key.empty() && key.size() <= frameMaxKeyLen,
                  "store key out of bounds");
    ICHECK_ASSERT(payload.size() <= frameMaxPayloadLen,
                  "store payload out of bounds");
    Shard &shard = shards[shardOf(key)];
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.map.find(key) != shard.map.end()) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.putDuplicates;
            return false;
        }
    }

    const std::string frame = encodeFrame(key, payload);
    Slot slot;
    {
        std::lock_guard<std::mutex> lock(fileMu);
        if (persistent()) {
            file.seekp(static_cast<std::streamoff>(fileEnd));
            file.write(frame.data(),
                       static_cast<std::streamsize>(frame.size()));
            file.flush();
            if (!file)
                throw StoreError("write to result store '" + filePath +
                                 "' failed");
        } else {
            journal += frame;
        }
        slot.offset = fileEnd + frameHeaderBytes + key.size();
        slot.payloadLen = static_cast<std::uint32_t>(payload.size());
        fileEnd += frame.size();
    }

    {
        std::lock_guard<std::mutex> lock(shard.mu);
        // A racing put of the same key may have landed first; its frame
        // and ours carry identical deterministic payloads, so either
        // index entry is valid — keep the existing one.
        const auto [it, inserted] = shard.map.emplace(key, slot);
        (void)it;
        if (!inserted) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.putDuplicates;
            return false;
        }
    }
    {
        std::lock_guard<std::mutex> stats_lock(statsMu);
        ++counters.puts;
    }
    return true;
}

std::string
ResultStore::readLog(std::uint64_t from, std::size_t max_bytes,
                     std::uint64_t &next, bool &eof)
{
    std::lock_guard<std::mutex> lock(fileMu);
    if (from > fileEnd)
        throw StoreError("log cursor " + std::to_string(from) +
                         " past log end " + std::to_string(fileEnd));

    // Walk frame headers from the cursor, keeping whole frames only —
    // a puller never has to reassemble a frame split across responses.
    std::string out;
    std::uint64_t offset = from;
    char header[frameHeaderBytes];
    while (offset < fileEnd) {
        if (offset + frameHeaderBytes > fileEnd)
            throw StoreError("log cursor not at a frame boundary");
        if (persistent()) {
            file.seekg(static_cast<std::streamoff>(offset));
            file.read(header,
                      static_cast<std::streamsize>(frameHeaderBytes));
            if (file.gcount() !=
                static_cast<std::streamsize>(frameHeaderBytes)) {
                file.clear();
                throw StoreError("log read failed at offset " +
                                 std::to_string(offset));
            }
        } else {
            journal.copy(header, frameHeaderBytes,
                         static_cast<std::size_t>(offset));
        }
        const std::uint32_t magic = readU32(header);
        const std::uint32_t key_len = readU32(header + 4);
        const std::uint32_t payload_len = readU32(header + 8);
        if (magic != frameMagic || key_len == 0 ||
            key_len > frameMaxKeyLen || payload_len > frameMaxPayloadLen)
            throw StoreError("log cursor not at a frame boundary");
        const std::uint64_t frame_size =
            frameHeaderBytes + static_cast<std::uint64_t>(key_len) +
            payload_len;
        if (offset + frame_size > fileEnd)
            throw StoreError("log cursor not at a frame boundary");
        if (!out.empty() && out.size() + frame_size > max_bytes)
            break;
        const std::size_t start = out.size();
        out.resize(start + static_cast<std::size_t>(frame_size));
        if (persistent()) {
            file.seekg(static_cast<std::streamoff>(offset));
            file.read(out.data() + start,
                      static_cast<std::streamsize>(frame_size));
            if (file.gcount() !=
                static_cast<std::streamsize>(frame_size)) {
                file.clear();
                throw StoreError("log read failed at offset " +
                                 std::to_string(offset));
            }
        } else {
            journal.copy(out.data() + start,
                         static_cast<std::size_t>(frame_size),
                         static_cast<std::size_t>(offset));
        }
        offset += frame_size;
    }
    file.clear();
    next = offset;
    eof = offset == fileEnd;
    return out;
}

std::uint64_t
ResultStore::logBytes() const
{
    std::lock_guard<std::mutex> lock(fileMu);
    return fileEnd;
}

std::size_t
ResultStore::keyCount() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.map.size();
    }
    return total;
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    return counters;
}

} // namespace icheck::service
