#include "service/result_store.hpp"

#include <filesystem>
#include <functional>
#include <vector>

#include "hashing/crc64.hpp"
#include "support/logging.hpp"

namespace icheck::service
{

namespace
{

constexpr std::uint32_t frameMagic = 0x31524349; // "ICR1" little-endian.
constexpr std::size_t headerBytes = 4 + 4 + 4 + 8;

// Guards against frames claiming absurd sizes when a torn header
// happens to keep a valid magic: no key or payload in this repo comes
// near these bounds.
constexpr std::uint32_t maxKeyLen = 1 << 16;
constexpr std::uint32_t maxPayloadLen = 1 << 28;

void
putU32(std::string &out, std::uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
putU64(std::string &out, std::uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

std::uint32_t
readU32(const char *bytes)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
readU64(const char *bytes)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
frameCrc(const std::string &key, const std::string &payload)
{
    std::uint64_t crc =
        hashing::Crc64::compute(key.data(), key.size(), 0);
    return hashing::Crc64::compute(payload.data(), payload.size(), crc);
}

} // namespace

ResultStore::ResultStore() = default;

ResultStore::ResultStore(const std::string &path) : filePath(path)
{
    // Create the file if missing, then reopen read/write for replay
    // and appends (fstream in|out refuses to create).
    {
        std::ofstream create(path, std::ios::binary | std::ios::app);
        if (!create)
            throw StoreError("cannot create result store at '" + path +
                             "'");
    }
    file.open(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!file)
        throw StoreError("cannot open result store at '" + path + "'");
    replayFile();
}

void
ResultStore::replayFile()
{
    file.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(file.tellg());
    file.seekg(0);

    std::uint64_t offset = 0;
    std::vector<char> header(headerBytes);
    std::string key;
    std::string payload;
    while (offset + headerBytes <= file_size) {
        file.seekg(static_cast<std::streamoff>(offset));
        file.read(header.data(), static_cast<std::streamsize>(headerBytes));
        if (file.gcount() != static_cast<std::streamsize>(headerBytes))
            break;
        const std::uint32_t magic = readU32(header.data());
        const std::uint32_t key_len = readU32(header.data() + 4);
        const std::uint32_t payload_len = readU32(header.data() + 8);
        const std::uint64_t crc = readU64(header.data() + 12);
        if (magic != frameMagic || key_len == 0 || key_len > maxKeyLen ||
            payload_len > maxPayloadLen)
            break;
        const std::uint64_t body = static_cast<std::uint64_t>(key_len) +
                                   payload_len;
        if (offset + headerBytes + body > file_size)
            break;
        key.resize(key_len);
        payload.resize(payload_len);
        file.read(key.data(), key_len);
        file.read(payload.data(), payload_len);
        if (file.gcount() != static_cast<std::streamsize>(payload_len))
            break;
        if (frameCrc(key, payload) != crc)
            break;

        Slot slot;
        slot.offset = offset + headerBytes + key_len;
        slot.payloadLen = payload_len;
        shards[shardOf(key)].map.emplace(key, slot);
        // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
        ++counters.framesLoaded;
        offset += headerBytes + body;
    }
    file.clear();

    if (offset < file_size) {
        // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
        counters.bytesDropped = file_size - offset;
        warn("result store '", filePath, "': dropping ",
             counters.bytesDropped,
             " torn/corrupt tail bytes (recovered ",
             counters.framesLoaded, " frames)");
        std::error_code ec;
        std::filesystem::resize_file(filePath, offset, ec);
        if (ec)
            throw StoreError("cannot truncate corrupt tail of '" +
                             filePath + "': " + ec.message());
        // Reopen so the stream's idea of the file matches the truncation.
        file.close();
        file.open(filePath,
                  std::ios::binary | std::ios::in | std::ios::out);
        if (!file)
            throw StoreError("cannot reopen result store at '" +
                             filePath + "'");
    }
    // icheck-lint: allow(L1): replay runs in the ctor, pre-threads
    fileEnd = offset;
}

std::size_t
ResultStore::shardOf(const std::string &key) const
{
    return std::hash<std::string>{}(key) % shardCount;
}

bool
ResultStore::contains(const std::string &key) const
{
    const Shard &shard = shards[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.find(key) != shard.map.end();
}

std::optional<std::string>
ResultStore::get(const std::string &key)
{
    Slot slot;
    {
        Shard &shard = shards[shardOf(key)];
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.getMisses;
            return std::nullopt;
        }
        slot = it->second;
    }
    {
        std::lock_guard<std::mutex> stats_lock(statsMu);
        ++counters.getHits;
    }
    if (!persistent())
        return slot.inlinePayload;

    std::string payload(slot.payloadLen, '\0');
    {
        std::lock_guard<std::mutex> lock(fileMu);
        file.seekg(static_cast<std::streamoff>(slot.offset));
        file.read(payload.data(),
                  static_cast<std::streamsize>(slot.payloadLen));
        if (file.gcount() !=
            static_cast<std::streamsize>(slot.payloadLen)) {
            file.clear();
            return std::nullopt;
        }
    }
    return payload;
}

bool
ResultStore::put(const std::string &key, const std::string &payload)
{
    ICHECK_ASSERT(!key.empty() && key.size() <= maxKeyLen,
                  "store key out of bounds");
    ICHECK_ASSERT(payload.size() <= maxPayloadLen,
                  "store payload out of bounds");
    Shard &shard = shards[shardOf(key)];
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.map.find(key) != shard.map.end()) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.putDuplicates;
            return false;
        }
    }

    Slot slot;
    if (!persistent()) {
        slot.inlinePayload = payload;
        slot.payloadLen = static_cast<std::uint32_t>(payload.size());
    } else {
        std::string frame;
        frame.reserve(headerBytes + key.size() + payload.size());
        putU32(frame, frameMagic);
        putU32(frame, static_cast<std::uint32_t>(key.size()));
        putU32(frame, static_cast<std::uint32_t>(payload.size()));
        putU64(frame, frameCrc(key, payload));
        frame += key;
        frame += payload;

        std::lock_guard<std::mutex> lock(fileMu);
        file.seekp(static_cast<std::streamoff>(fileEnd));
        file.write(frame.data(),
                   static_cast<std::streamsize>(frame.size()));
        file.flush();
        if (!file)
            throw StoreError("write to result store '" + filePath +
                             "' failed");
        slot.offset = fileEnd + headerBytes + key.size();
        slot.payloadLen = static_cast<std::uint32_t>(payload.size());
        fileEnd += frame.size();
    }

    {
        std::lock_guard<std::mutex> lock(shard.mu);
        // A racing put of the same key may have landed first; its frame
        // and ours carry identical deterministic payloads, so either
        // index entry is valid — keep the existing one.
        const auto [it, inserted] = shard.map.emplace(key, slot);
        (void)it;
        if (!inserted) {
            std::lock_guard<std::mutex> stats_lock(statsMu);
            ++counters.putDuplicates;
            return false;
        }
    }
    {
        std::lock_guard<std::mutex> stats_lock(statsMu);
        ++counters.puts;
    }
    return true;
}

std::size_t
ResultStore::keyCount() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        total += shard.map.size();
    }
    return total;
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu);
    return counters;
}

} // namespace icheck::service
