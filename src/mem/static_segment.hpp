#ifndef ICHECK_MEM_STATIC_SEGMENT_HPP
#define ICHECK_MEM_STATIC_SEGMENT_HPP

/**
 * @file
 * The static data segment of a simulated program.
 *
 * InstantCheck hashes "heap and static data" (Section 2.1). Simulated
 * programs declare their globals here during single-threaded setup; each
 * global carries a type descriptor so the traversal checker can apply FP
 * rounding to static FP data too.
 */

#include <map>
#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "mem/type_desc.hpp"
#include "support/types.hpp"

namespace icheck::mem
{

/** One declared global variable. */
struct GlobalVar
{
    std::string name;
    Addr addr = 0;
    TypeRef type;
};

/**
 * Sequential, deterministic layout of named globals starting at staticBase.
 */
class StaticSegment
{
  public:
    /**
     * Reserve space for global @p name of shape @p type; 8-byte aligned.
     * Names must be unique within a program.
     */
    Addr reserve(const std::string &name, const TypeRef &type);

    /** Address of global @p name (panics if absent). */
    Addr addressOf(const std::string &name) const;

    /** The global covering @p addr, if any. */
    const GlobalVar *findContaining(Addr addr) const;

    /** All globals in layout order. */
    const std::vector<GlobalVar> &globals() const { return vars; }

    /** Total reserved bytes. */
    std::size_t bytes() const { return next - staticBase; }

  private:
    std::vector<GlobalVar> vars;
    std::map<std::string, std::size_t> byName;
    Addr next = staticBase;
};

} // namespace icheck::mem

#endif // ICHECK_MEM_STATIC_SEGMENT_HPP
