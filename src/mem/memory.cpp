#include "mem/memory.hpp"

#include <cstring>

#include "support/logging.hpp"

namespace icheck::mem
{

SparseMemory::Page &
SparseMemory::pageFor(Addr addr)
{
    const Addr page_idx = addr / pageSize;
    auto &slot = pages[page_idx];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const SparseMemory::Page *
SparseMemory::pageAt(Addr addr) const
{
    auto it = pages.find(addr / pageSize);
    return it == pages.end() ? nullptr : it->second.get();
}

std::uint8_t
SparseMemory::readByte(Addr addr) const
{
    const Page *page = pageAt(addr);
    return page ? (*page)[addr % pageSize] : 0;
}

void
SparseMemory::writeByte(Addr addr, std::uint8_t value)
{
    pageFor(addr)[addr % pageSize] = value;
}

std::uint64_t
SparseMemory::readValue(Addr addr, unsigned width) const
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "bad read width");
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < width; ++i)
        bits |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return bits;
}

void
SparseMemory::writeValue(Addr addr, unsigned width, std::uint64_t bits)
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "bad write width");
    for (unsigned i = 0; i < width; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(bits >> (8 * i)));
}

void
SparseMemory::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i)
        out[i] = readByte(addr + i);
}

void
SparseMemory::writeBytes(Addr addr, const std::uint8_t *in, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        writeByte(addr + i, in[i]);
}

SparseMemory
SparseMemory::clone() const
{
    SparseMemory copy;
    for (const auto &[idx, page] : pages) {
        auto dup = std::make_unique<Page>(*page);
        copy.pages.emplace(idx, std::move(dup));
    }
    return copy;
}

void
SparseMemory::diff(const SparseMemory &a, const SparseMemory &b,
                   const std::function<void(Addr, std::uint8_t,
                                            std::uint8_t)> &visit)
{
    auto ia = a.pages.begin();
    auto ib = b.pages.begin();
    auto emit_page = [&](Addr page_idx, const Page *pa, const Page *pb) {
        for (std::size_t off = 0; off < pageSize; ++off) {
            const std::uint8_t va = pa ? (*pa)[off] : 0;
            const std::uint8_t vb = pb ? (*pb)[off] : 0;
            if (va != vb)
                visit(page_idx * pageSize + off, va, vb);
        }
    };
    while (ia != a.pages.end() || ib != b.pages.end()) {
        if (ib == b.pages.end() ||
            (ia != a.pages.end() && ia->first < ib->first)) {
            emit_page(ia->first, ia->second.get(), nullptr);
            ++ia;
        } else if (ia == a.pages.end() || ib->first < ia->first) {
            emit_page(ib->first, nullptr, ib->second.get());
            ++ib;
        } else {
            emit_page(ia->first, ia->second.get(), ib->second.get());
            ++ia;
            ++ib;
        }
    }
}

} // namespace icheck::mem
