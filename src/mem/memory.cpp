#include "mem/memory.hpp"

#include <bit>
#include <cstring>

#include "support/logging.hpp"

namespace icheck::mem
{

static_assert(pageSize % 8 == 0, "page-chunk word loops need 8 | pageSize");

const SparseMemory::Page *
SparseMemory::findPage(Addr page_idx) const
{
    CacheSlot &slot = cache[page_idx % cacheSlots];
    if (slot.tag == page_idx)
        return slot.page;
    auto it = pages.find(page_idx);
    if (it == pages.end())
        return nullptr; // unmapped pages are not cached (reads stay free
                        // of side effects and a later materialization
                        // needs no invalidation)
    slot.tag = page_idx;
    slot.page = it->second.get();
    // A read may cache write permission too when the page is exclusive;
    // any later sharing event demotes it.
    slot.writable = it->second.use_count() == 1;
    return slot.page;
}

SparseMemory::Page &
SparseMemory::ensureWritablePage(Addr page_idx)
{
    CacheSlot &slot = cache[page_idx % cacheSlots];
    if (slot.tag == page_idx && slot.writable)
        return *slot.page;
    PageRef &mapped = pages[page_idx];
    if (!mapped) {
        mapped = std::make_shared<Page>();
        mapped->fill(0);
    } else if (mapped.use_count() > 1) {
        // Copy-on-write: the page is shared with a fork; give this image
        // its own copy before mutating.
        mapped = std::make_shared<Page>(*mapped);
        ++cowCloneCount;
    }
    slot.tag = page_idx;
    slot.page = mapped.get();
    slot.writable = true;
    return *mapped;
}

std::uint8_t
SparseMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr / pageSize);
    return page ? (*page)[addr % pageSize] : 0;
}

void
SparseMemory::writeByte(Addr addr, std::uint8_t value)
{
    ensureWritablePage(addr / pageSize)[addr % pageSize] = value;
}

std::uint64_t
SparseMemory::readValue(Addr addr, unsigned width) const
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "bad read width");
    const std::size_t off = addr % pageSize;
    if (off + width <= pageSize) {
        // Fast path: the whole value sits inside one page — one cached
        // translation, one copy.
        const Page *page = findPage(addr / pageSize);
        if (page == nullptr)
            return 0;
        std::uint64_t bits = 0;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&bits, page->data() + off, width);
        } else {
            for (unsigned i = 0; i < width; ++i)
                bits |= static_cast<std::uint64_t>((*page)[off + i])
                        << (8 * i);
        }
        return bits;
    }
    // Page-straddling access: per-byte fallback.
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < width; ++i)
        bits |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return bits;
}

void
SparseMemory::writeValue(Addr addr, unsigned width, std::uint64_t bits)
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "bad write width");
    const std::size_t off = addr % pageSize;
    if (off + width <= pageSize) {
        Page &page = ensureWritablePage(addr / pageSize);
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(page.data() + off, &bits, width);
        } else {
            for (unsigned i = 0; i < width; ++i)
                page[off + i] =
                    static_cast<std::uint8_t>(bits >> (8 * i));
        }
        return;
    }
    for (unsigned i = 0; i < width; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(bits >> (8 * i)));
}

void
SparseMemory::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    while (len > 0) {
        const std::size_t off = addr % pageSize;
        std::size_t chunk = pageSize - off;
        if (chunk > len)
            chunk = len;
        const Page *page = findPage(addr / pageSize);
        if (page != nullptr)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
SparseMemory::writeBytes(Addr addr, const std::uint8_t *in, std::size_t len)
{
    while (len > 0) {
        const std::size_t off = addr % pageSize;
        std::size_t chunk = pageSize - off;
        if (chunk > len)
            chunk = len;
        std::memcpy(ensureWritablePage(addr / pageSize).data() + off, in,
                    chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

SparseMemory
SparseMemory::fork()
{
    SparseMemory child;
    child.pages = pages; // O(mapped pages) shared_ptr copies
    // Every page is shared now; cached translations stay valid but their
    // write permission does not.
    demoteCacheWrites();
    ++forkCount;
    return child;
}

void
SparseMemory::restoreFrom(const SparseMemory &source)
{
    pages = source.pages;
    source.demoteCacheWrites();
    invalidateCache();
}

SparseMemory
SparseMemory::clone() const
{
    SparseMemory copy;
    for (const auto &[idx, page] : pages)
        copy.pages.emplace(idx, std::make_shared<Page>(*page));
    return copy;
}

void
SparseMemory::diff(const SparseMemory &a, const SparseMemory &b,
                   const std::function<void(Addr, std::uint8_t,
                                            std::uint8_t)> &visit)
{
    auto ia = a.pages.begin();
    auto ib = b.pages.begin();
    auto emit_page = [&](Addr page_idx, const Page *pa, const Page *pb) {
        // Compare a word at a time; only mismatching words fall back to
        // the byte walk, preserving the exact visit order.
        for (std::size_t off = 0; off < pageSize; off += 8) {
            std::uint64_t wa = 0;
            std::uint64_t wb = 0;
            if (pa != nullptr)
                std::memcpy(&wa, pa->data() + off, 8);
            if (pb != nullptr)
                std::memcpy(&wb, pb->data() + off, 8);
            if (wa == wb)
                continue;
            for (std::size_t i = 0; i < 8; ++i) {
                const std::uint8_t va = pa ? (*pa)[off + i] : 0;
                const std::uint8_t vb = pb ? (*pb)[off + i] : 0;
                if (va != vb)
                    visit(page_idx * pageSize + off + i, va, vb);
            }
        }
    };
    while (ia != a.pages.end() || ib != b.pages.end()) {
        if (ib == b.pages.end() ||
            (ia != a.pages.end() && ia->first < ib->first)) {
            emit_page(ia->first, ia->second.get(), nullptr);
            ++ia;
        } else if (ia == a.pages.end() || ib->first < ia->first) {
            emit_page(ib->first, nullptr, ib->second.get());
            ++ib;
        } else {
            // Physically shared pages (COW ancestry) are identical by
            // construction: skip the compare without emitting anything,
            // which preserves the visit order.
            if (ia->second != ib->second)
                emit_page(ia->first, ia->second.get(), ib->second.get());
            ++ia;
            ++ib;
        }
    }
}

} // namespace icheck::mem
