#include "mem/alloc.hpp"

#include "support/logging.hpp"

namespace icheck::mem
{

void
ReplayLog::record(const std::string &site, std::uint32_t seq, Addr addr)
{
    entries[{site, seq}] = addr;
}

std::optional<Addr>
ReplayLog::lookup(const std::string &site, std::uint32_t seq) const
{
    auto it = entries.find({site, seq});
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ReplayLog::raiseHighWater(Addr limit)
{
    if (limit > high)
        high = limit;
}

DeterministicAllocator::DeterministicAllocator(ReplayLog &replay_log,
                                               Mode mode)
    : log(replay_log), allocMode(mode)
{
    if (mode == Mode::Replay && log.highWater() > bump)
        bump = log.highWater();
}

namespace
{

/** Round @p n up to 8-byte alignment. */
std::size_t
alignUp(std::size_t n)
{
    return (n + 7) & ~std::size_t{7};
}

} // namespace

Addr
DeterministicAllocator::takeAddress(const std::string &site,
                                    std::uint32_t seq, std::size_t size)
{
    if (allocMode == Mode::Replay) {
        if (auto logged = log.lookup(site, seq))
            return *logged;
        // Allocation not present in the recording run (the program itself
        // is nondeterministic in its allocation behaviour). Fall through to
        // fresh address space above the recorded high-water mark so replayed
        // blocks are never clobbered.
        const Addr addr = bump;
        bump += alignUp(size);
        return addr;
    }
    // Record mode: exact-size LIFO free-list reuse, then bump.
    auto it = freeLists.find(alignUp(size));
    if (it != freeLists.end() && !it->second.empty()) {
        const Addr addr = it->second.back();
        it->second.pop_back();
        return addr;
    }
    const Addr addr = bump;
    bump += alignUp(size);
    log.raiseHighWater(bump);
    return addr;
}

Addr
DeterministicAllocator::allocate(const std::string &site,
                                 const TypeRef &type)
{
    ICHECK_ASSERT(type != nullptr, "allocation needs a type descriptor");
    ICHECK_ASSERT(type->size() > 0, "zero-size allocation at ", site);
    const std::uint32_t seq = siteSeq[site]++;
    const Addr addr = takeAddress(site, seq, type->size());
    if (allocMode == Mode::Record)
        log.record(site, seq, addr);

    Block block;
    block.addr = addr;
    block.size = type->size();
    block.site = site;
    block.seq = seq;
    block.type = type;
    block.live = true;
    blocks[addr] = std::move(block);
    bytesLive += type->size();
    ++allocSeqTotal;
    return addr;
}

void
DeterministicAllocator::free(Addr addr)
{
    auto it = blocks.find(addr);
    ICHECK_ASSERT(it != blocks.end() && it->second.live,
                  "free of non-live block at ", addr);
    it->second.live = false;
    bytesLive -= it->second.size;
    if (allocMode == Mode::Record)
        freeLists[(it->second.size + 7) & ~std::size_t{7}].push_back(addr);
}

const Block *
DeterministicAllocator::findLive(Addr addr) const
{
    const Block *block = findHistorical(addr);
    return block && block->live ? block : nullptr;
}

const Block *
DeterministicAllocator::findHistorical(Addr addr) const
{
    auto it = blocks.upper_bound(addr);
    if (it == blocks.begin())
        return nullptr;
    --it;
    const Block &block = it->second;
    if (addr >= block.addr && addr < block.addr + block.size)
        return &block;
    return nullptr;
}

DeterministicAllocator::State
DeterministicAllocator::saveState() const
{
    State state;
    state.bump = bump;
    state.allocSeqTotal = allocSeqTotal;
    state.siteSeq = siteSeq;
    state.freeLists = freeLists;
    state.blocks = blocks;
    state.bytesLive = bytesLive;
    return state;
}

void
DeterministicAllocator::restoreState(const State &state)
{
    bump = state.bump;
    allocSeqTotal = state.allocSeqTotal;
    siteSeq = state.siteSeq;
    freeLists = state.freeLists;
    blocks = state.blocks;
    bytesLive = state.bytesLive;
}

std::vector<const Block *>
DeterministicAllocator::liveBlocks() const
{
    std::vector<const Block *> live;
    for (const auto &[addr, block] : blocks) {
        if (block.live)
            live.push_back(&block);
    }
    return live;
}

} // namespace icheck::mem
