#ifndef ICHECK_MEM_ALLOC_HPP
#define ICHECK_MEM_ALLOC_HPP

/**
 * @file
 * The deterministic dynamic allocator and live-allocation table
 * (sections 4.2 and 5).
 *
 * Two jobs, straight from the paper:
 *
 *  1. Control allocation nondeterminism: malloc may return different
 *     addresses in different runs, so InstantCheck logs the addresses
 *     returned in a recording run and replays them, keyed by allocation
 *     site and per-site sequence number, in later runs.
 *  2. Feed SW-InstantCheck_Tr: maintain the table of live allocated blocks
 *     together with their recursive type annotations so the traversal
 *     checker can walk the heap and round FP values.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "mem/type_desc.hpp"
#include "support/types.hpp"

namespace icheck::mem
{

/**
 * One live (or historical) heap block.
 */
struct Block
{
    Addr addr = 0;
    std::size_t size = 0;
    std::string site;       ///< Allocation-site label ("file.cpp:func").
    std::uint32_t seq = 0;  ///< Per-site allocation sequence number.
    TypeRef type;           ///< Shape annotation (may be raw bytes).
    bool live = false;
};

/**
 * Address log for malloc replay: (site, per-site seq) -> address.
 *
 * The determinism driver records this during run 0 and hands the same log
 * to every later run so allocation addresses stop being an input
 * nondeterminism source.
 */
class ReplayLog
{
  public:
    /** Record that allocation @p seq at @p site returned @p addr. */
    void record(const std::string &site, std::uint32_t seq, Addr addr);

    /** Address previously recorded for (site, seq), if any. */
    std::optional<Addr> lookup(const std::string &site,
                               std::uint32_t seq) const;

    /** Highest address ever recorded plus the block size, for overflow. */
    Addr highWater() const { return high; }

    /** Extend the high-water mark (record mode bookkeeping). */
    void raiseHighWater(Addr limit);

    /** True if nothing has been recorded yet. */
    bool empty() const { return entries.empty(); }

    std::size_t size() const { return entries.size(); }

    /**
     * The recorded (site, seq) -> address entries, in deterministic map
     * order. The service's result store serializes a campaign's replay
     * log through this so a restarted daemon can resume replay-mode
     * runs without re-executing the record-mode run.
     */
    const std::map<std::pair<std::string, std::uint32_t>, Addr> &
    entriesMap() const
    {
        return entries;
    }

  private:
    std::map<std::pair<std::string, std::uint32_t>, Addr> entries;
    Addr high = 0;
};

/**
 * Deterministic first-fit heap allocator over the simulated heap segment.
 *
 * In Record mode it allocates bump-style with exact-size free-list reuse —
 * which deliberately makes the address layout a function of the allocation
 * *order*, i.e. of the thread interleaving, just like a real malloc. In
 * Replay mode it returns the logged address for each (site, seq) pair, which
 * removes that nondeterminism exactly as Section 5 prescribes.
 */
class DeterministicAllocator
{
  public:
    /** Allocation behaviour. */
    enum class Mode
    {
        Record, ///< Allocate by order; write the log.
        Replay, ///< Serve addresses from the log.
    };

    /**
     * @param replay_log Shared log; written in Record, read in Replay.
     * @param mode       Record or Replay.
     */
    DeterministicAllocator(ReplayLog &replay_log, Mode mode);

    /**
     * Allocate @p type->size() bytes for @p site. Returns the block
     * address. The caller (runtime) is responsible for zero-filling the
     * returned range through the instrumented store path.
     */
    Addr allocate(const std::string &site, const TypeRef &type);

    /** Free the block at @p addr (must be live). */
    void free(Addr addr);

    /** Live block containing @p addr, if any. */
    const Block *findLive(Addr addr) const;

    /**
     * Most recent block (live or freed) that ever covered @p addr; lets the
     * localization tool attribute dangling-pointer bytes.
     */
    const Block *findHistorical(Addr addr) const;

    /** All live blocks in address order (the SW-Tr traversal input). */
    std::vector<const Block *> liveBlocks() const;

    /** Total bytes currently live. */
    std::size_t liveBytes() const { return bytesLive; }

    /** Number of allocations performed. */
    std::uint64_t allocationCount() const { return allocSeqTotal; }

    Mode mode() const { return allocMode; }

    /**
     * Complete value state of the allocator for machine checkpoints:
     * everything except the replay-log reference and the mode, which are
     * identity, not state. TypeRefs inside blocks are shared, immutable
     * descriptors, so the copy is cheap and aliasing them is safe.
     */
    struct State
    {
        Addr bump = heapBase;
        std::uint64_t allocSeqTotal = 0;
        std::map<std::string, std::uint32_t> siteSeq;
        std::map<std::size_t, std::vector<Addr>> freeLists;
        std::map<Addr, Block> blocks;
        std::size_t bytesLive = 0;
    };

    /** Capture the allocator's value state (checkpoint). */
    State saveState() const;

    /** Rewind the allocator to @p state (same log and mode required). */
    void restoreState(const State &state);

  private:
    Addr takeAddress(const std::string &site, std::uint32_t seq,
                     std::size_t size);

    ReplayLog &log;
    Mode allocMode;
    Addr bump = heapBase;
    std::uint64_t allocSeqTotal = 0;
    std::map<std::string, std::uint32_t> siteSeq;
    std::map<std::size_t, std::vector<Addr>> freeLists;
    std::map<Addr, Block> blocks; ///< Keyed by base address; live + dead.
    std::size_t bytesLive = 0;
};

} // namespace icheck::mem

#endif // ICHECK_MEM_ALLOC_HPP
