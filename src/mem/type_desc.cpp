#include "mem/type_desc.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace icheck::mem
{

unsigned
scalarWidth(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::Int8:    return 1;
      case ScalarKind::Int16:   return 2;
      case ScalarKind::Int32:   return 4;
      case ScalarKind::Int64:   return 8;
      case ScalarKind::Float:   return 4;
      case ScalarKind::Double:  return 8;
      case ScalarKind::Pointer: return 8;
      case ScalarKind::Pad:     return 1;
    }
    ICHECK_PANIC("unknown ScalarKind");
}

hashing::ValueClass
scalarClass(ScalarKind kind)
{
    switch (kind) {
      case ScalarKind::Float:  return hashing::ValueClass::Float;
      case ScalarKind::Double: return hashing::ValueClass::Double;
      default:                 return hashing::ValueClass::Integer;
    }
}

std::shared_ptr<const TypeDescriptor>
TypeDescriptor::scalar(ScalarKind kind, std::size_t pad_bytes)
{
    auto desc = std::shared_ptr<TypeDescriptor>(new TypeDescriptor);
    desc->shape = Shape::Scalar;
    desc->kind = kind;
    desc->byteSize = kind == ScalarKind::Pad ? pad_bytes : scalarWidth(kind);
    ICHECK_ASSERT(desc->byteSize > 0, "empty scalar");
    return desc;
}

std::shared_ptr<const TypeDescriptor>
TypeDescriptor::array(std::shared_ptr<const TypeDescriptor> elem,
                      std::size_t count)
{
    ICHECK_ASSERT(elem != nullptr, "array of null element");
    auto desc = std::shared_ptr<TypeDescriptor>(new TypeDescriptor);
    desc->shape = Shape::Array;
    desc->element = std::move(elem);
    desc->count = count;
    desc->byteSize = desc->element->size() * count;
    return desc;
}

std::shared_ptr<const TypeDescriptor>
TypeDescriptor::record(
    std::vector<std::shared_ptr<const TypeDescriptor>> fields)
{
    auto desc = std::shared_ptr<TypeDescriptor>(new TypeDescriptor);
    desc->shape = Shape::Struct;
    desc->fields = std::move(fields);
    desc->byteSize = 0;
    for (const auto &field : desc->fields) {
        ICHECK_ASSERT(field != nullptr, "null struct field");
        desc->byteSize += field->size();
    }
    return desc;
}

void
TypeDescriptor::forEachScalarAt(
    std::size_t base,
    const std::function<void(std::size_t, ScalarKind, unsigned)> &visit)
    const
{
    switch (shape) {
      case Shape::Scalar:
        if (kind == ScalarKind::Pad) {
            visit(base, ScalarKind::Pad, static_cast<unsigned>(byteSize));
        } else {
            visit(base, kind, scalarWidth(kind));
        }
        return;
      case Shape::Array: {
        const std::size_t elem_size = element->size();
        for (std::size_t i = 0; i < count; ++i)
            element->forEachScalarAt(base + i * elem_size, visit);
        return;
      }
      case Shape::Struct: {
        std::size_t offset = base;
        for (const auto &field : fields) {
            field->forEachScalarAt(offset, visit);
            offset += field->size();
        }
        return;
      }
    }
    ICHECK_PANIC("unknown descriptor shape");
}

void
TypeDescriptor::forEachScalar(
    const std::function<void(std::size_t, ScalarKind, unsigned)> &visit)
    const
{
    forEachScalarAt(0, visit);
}

std::string
TypeDescriptor::describe() const
{
    std::ostringstream os;
    switch (shape) {
      case Shape::Scalar:
        switch (kind) {
          case ScalarKind::Int8:    os << "i8"; break;
          case ScalarKind::Int16:   os << "i16"; break;
          case ScalarKind::Int32:   os << "i32"; break;
          case ScalarKind::Int64:   os << "i64"; break;
          case ScalarKind::Float:   os << "f32"; break;
          case ScalarKind::Double:  os << "f64"; break;
          case ScalarKind::Pointer: os << "ptr"; break;
          case ScalarKind::Pad:     os << "pad" << byteSize; break;
        }
        break;
      case Shape::Array:
        os << element->describe() << "[" << count << "]";
        break;
      case Shape::Struct: {
        os << "{";
        bool first = true;
        for (const auto &field : fields) {
            if (!first)
                os << ",";
            os << field->describe();
            first = false;
        }
        os << "}";
        break;
      }
    }
    return os.str();
}

TypeRef tInt8() { return TypeDescriptor::scalar(ScalarKind::Int8); }
TypeRef tInt16() { return TypeDescriptor::scalar(ScalarKind::Int16); }
TypeRef tInt32() { return TypeDescriptor::scalar(ScalarKind::Int32); }
TypeRef tInt64() { return TypeDescriptor::scalar(ScalarKind::Int64); }
TypeRef tFloat() { return TypeDescriptor::scalar(ScalarKind::Float); }
TypeRef tDouble() { return TypeDescriptor::scalar(ScalarKind::Double); }
TypeRef tPointer() { return TypeDescriptor::scalar(ScalarKind::Pointer); }

TypeRef
tPad(std::size_t bytes)
{
    return TypeDescriptor::scalar(ScalarKind::Pad, bytes);
}

TypeRef
tArray(TypeRef elem, std::size_t count)
{
    return TypeDescriptor::array(std::move(elem), count);
}

TypeRef
tStruct(std::vector<TypeRef> fields)
{
    return TypeDescriptor::record(std::move(fields));
}

TypeRef
tBytes(std::size_t bytes)
{
    return tPad(bytes);
}

} // namespace icheck::mem
