#include "mem/static_segment.hpp"

#include "support/logging.hpp"

namespace icheck::mem
{

Addr
StaticSegment::reserve(const std::string &name, const TypeRef &type)
{
    ICHECK_ASSERT(type != nullptr, "global needs a type");
    ICHECK_ASSERT(!byName.contains(name), "duplicate global ", name);
    const Addr addr = next;
    next += (type->size() + 7) & ~std::size_t{7};
    byName[name] = vars.size();
    vars.push_back({name, addr, type});
    return addr;
}

Addr
StaticSegment::addressOf(const std::string &name) const
{
    auto it = byName.find(name);
    ICHECK_ASSERT(it != byName.end(), "unknown global ", name);
    return vars[it->second].addr;
}

const GlobalVar *
StaticSegment::findContaining(Addr addr) const
{
    for (const auto &var : vars) {
        if (addr >= var.addr && addr < var.addr + var.type->size())
            return &var;
    }
    return nullptr;
}

} // namespace icheck::mem
