#ifndef ICHECK_MEM_TYPE_DESC_HPP
#define ICHECK_MEM_TYPE_DESC_HPP

/**
 * @file
 * Recursive allocation-site type descriptors (Section 4.2).
 *
 * SW-InstantCheck_Tr must know, for every allocated byte, whether it starts
 * a float or a double so the round-off can be applied during state
 * traversal. The paper annotates allocation sites with exactly this
 * information, recursively for structs and arrays; TypeDescriptor is that
 * annotation language.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hashing/state_hash.hpp"
#include "support/types.hpp"

namespace icheck::mem
{

/**
 * The leaf kinds a descriptor bottoms out in.
 */
enum class ScalarKind : std::uint8_t
{
    Int8,
    Int16,
    Int32,
    Int64,
    Float,   ///< 32-bit IEEE-754, subject to FP rounding.
    Double,  ///< 64-bit IEEE-754, subject to FP rounding.
    Pointer, ///< 64-bit simulated address.
    Pad,     ///< Opaque filler bytes (alignment padding).
};

/** Byte width of @p kind (Pad widths are per-field). */
unsigned scalarWidth(ScalarKind kind);

/** ValueClass a scalar hashes as. */
hashing::ValueClass scalarClass(ScalarKind kind);

/**
 * A recursive type shape: scalar, fixed-length array, or struct.
 *
 * Descriptors are immutable and shareable; apps build them once per
 * allocation site with the factory functions below.
 */
class TypeDescriptor
{
  public:
    /** A scalar leaf of @p kind; Pad leaves carry an explicit size. */
    static std::shared_ptr<const TypeDescriptor>
    scalar(ScalarKind kind, std::size_t pad_bytes = 1);

    /** An array of @p count elements of shape @p elem. */
    static std::shared_ptr<const TypeDescriptor>
    array(std::shared_ptr<const TypeDescriptor> elem, std::size_t count);

    /** A struct whose fields lay out sequentially. */
    static std::shared_ptr<const TypeDescriptor>
    record(std::vector<std::shared_ptr<const TypeDescriptor>> fields);

    /** Total size in bytes. */
    std::size_t size() const { return byteSize; }

    /**
     * Visit every scalar field as (offset, kind, width) in layout order.
     * Pad fields are visited too (callers typically hash them raw).
     */
    void forEachScalar(
        const std::function<void(std::size_t offset, ScalarKind kind,
                                 unsigned width)> &visit) const;

    /** Short human-readable rendering ("f64[128]" etc.), for reports. */
    std::string describe() const;

  private:
    enum class Shape { Scalar, Array, Struct };

    TypeDescriptor() = default;

    void forEachScalarAt(
        std::size_t base,
        const std::function<void(std::size_t, ScalarKind, unsigned)> &visit)
        const;

    Shape shape = Shape::Scalar;
    ScalarKind kind = ScalarKind::Int8;
    std::size_t byteSize = 1;
    std::size_t count = 0;
    std::shared_ptr<const TypeDescriptor> element;
    std::vector<std::shared_ptr<const TypeDescriptor>> fields;
};

/** Shared handle to an immutable descriptor. */
using TypeRef = std::shared_ptr<const TypeDescriptor>;

/** Convenience leaves. */
TypeRef tInt8();
TypeRef tInt16();
TypeRef tInt32();
TypeRef tInt64();
TypeRef tFloat();
TypeRef tDouble();
TypeRef tPointer();
TypeRef tPad(std::size_t bytes);

/** Convenience array of @p count doubles/floats/etc. */
TypeRef tArray(TypeRef elem, std::size_t count);

/** Convenience struct. */
TypeRef tStruct(std::vector<TypeRef> fields);

/** Raw untyped bytes (hashed bit-by-bit). */
TypeRef tBytes(std::size_t bytes);

} // namespace icheck::mem

#endif // ICHECK_MEM_TYPE_DESC_HPP
