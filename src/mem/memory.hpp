#ifndef ICHECK_MEM_MEMORY_HPP
#define ICHECK_MEM_MEMORY_HPP

/**
 * @file
 * The simulated flat shared-memory address space.
 *
 * SparseMemory backs the simulated machine: a page-granular sparse byte
 * array where unmapped bytes read as zero. Every simulated load and store
 * funnels through this class, which is the substitute for the Pin-observed
 * native address space of the paper's evaluation.
 *
 * Because this is the hottest layer of the whole simulator, page
 * translation is cached: a small direct-mapped table short-circuits the
 * page-map lookup, so an access that fits inside one page touches the
 * std::map only on a cache miss instead of once per byte.
 *
 * Pages are refcounted and immutable-while-shared, which makes forking the
 * whole image O(mapped pages) pointer copies: fork() shares every page
 * with the child, and the first write to a shared page clones it
 * (copy-on-write). The translation cache therefore tracks *write*
 * permission per slot: a slot is writable only while its page is
 * exclusively owned, and every sharing event (fork, restore) demotes the
 * affected caches. Cached page pointers can additionally go stale across a
 * move — the move operations invalidate the source's cache. Each
 * demotion/invalidation bumps a version counter that tests can observe.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "support/types.hpp"

namespace icheck::mem
{

/** Simulated page size in bytes. */
inline constexpr std::size_t pageSize = 4096;

/** Base virtual address of the static data segment. */
inline constexpr Addr staticBase = 0x0001'0000;

/** Base virtual address of the heap segment. */
inline constexpr Addr heapBase = 0x2000'0000;

/** Base virtual address of per-thread output-staging scratch space. */
inline constexpr Addr scratchBase = 0x6000'0000;

/**
 * Page-sparse simulated memory. Reads of unmapped pages return zero
 * without materializing the page; writes materialize zero-filled pages.
 */
class SparseMemory
{
  public:
    SparseMemory() = default;

    SparseMemory(const SparseMemory &) = delete;
    SparseMemory &operator=(const SparseMemory &) = delete;

    /** Moves transfer the page map; the source's page cache would then
     *  point at pages it no longer owns, so it is invalidated. */
    SparseMemory(SparseMemory &&other) noexcept
        : pages(std::move(other.pages)), cache(other.cache),
          cowCloneCount(other.cowCloneCount),
          forkCount(other.forkCount), version(other.version)
    {
        other.invalidateCache();
    }

    SparseMemory &
    operator=(SparseMemory &&other) noexcept
    {
        if (this != &other) {
            pages = std::move(other.pages);
            cache = other.cache;
            cowCloneCount = other.cowCloneCount;
            forkCount = other.forkCount;
            version = other.version;
            other.invalidateCache();
        }
        return *this;
    }

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Read a little-endian value of @p width bytes (1..8) as raw bits in
     * the low bytes of the returned word.
     */
    std::uint64_t readValue(Addr addr, unsigned width) const;

    /** Write the low @p width bytes of @p bits little-endian at @p addr. */
    void writeValue(Addr addr, unsigned width, std::uint64_t bits);

    /** Bulk read into @p out. */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Bulk write from @p in. */
    void writeBytes(Addr addr, const std::uint8_t *in, std::size_t len);

    /** Number of materialized pages. */
    std::size_t mappedPages() const { return pages.size(); }

    /**
     * Copy-on-write fork: the result shares every page with this image,
     * in O(mapped pages) pointer copies. Either side's next write to a
     * shared page clones that page first, so the two images diverge
     * independently. Forking demotes this image's cached write
     * permissions (its pages just became shared).
     */
    SparseMemory fork();

    /**
     * Replace this image's contents with a copy-on-write fork of
     * @p source (checkpoint restore). Existing pages are released; the
     * translation cache is invalidated; @p source's cached write
     * permissions are demoted.
     */
    void restoreFrom(const SparseMemory &source);

    /** Deep-copy the full image (used by the bug-localization tool). */
    SparseMemory clone() const;

    /** Pages cloned by copy-on-write writes so far (monotone). */
    std::uint64_t cowClonedPages() const { return cowCloneCount; }

    /** fork() calls performed so far (monotone). */
    std::uint64_t forks() const { return forkCount; }

    /**
     * Translation-cache generation: bumped whenever cached translations
     * are invalidated or demoted (fork, restore, move). Tests assert on
     * it; no simulation semantics depend on it.
     */
    std::uint64_t cacheVersion() const { return version; }

    /**
     * Visit every address whose byte differs between @p a and @p b, in
     * increasing address order. Pages physically shared between the two
     * images (COW fork ancestry) are skipped without comparison.
     */
    static void diff(const SparseMemory &a, const SparseMemory &b,
                     const std::function<void(Addr, std::uint8_t,
                                              std::uint8_t)> &visit);

  private:
    using Page = std::array<std::uint8_t, pageSize>;
    using PageRef = std::shared_ptr<Page>;

    /** Tag value no real page index reaches (would need a 2^76 space). */
    static constexpr Addr noTag = ~Addr{0};

    /** Direct-mapped page-translation cache size (power of two). */
    static constexpr std::size_t cacheSlots = 64;

    struct CacheSlot
    {
        Addr tag = noTag;     ///< Page index, or noTag while empty.
        Page *page = nullptr; ///< Materialized page for that index.
        bool writable = false; ///< Page exclusively owned at fill time.
    };

    /** Page @p page_idx if materialized (cache-accelerated), else null. */
    const Page *findPage(Addr page_idx) const;

    /**
     * Page @p page_idx, exclusive and safe to mutate: materializes it
     * zero-filled if absent, clones it first if currently shared with a
     * fork (the copy-on-write step).
     */
    Page &ensureWritablePage(Addr page_idx);

    void
    invalidateCache() const
    {
        for (CacheSlot &slot : cache)
            slot = CacheSlot{};
        ++version;
    }

    /** Clear write permission from every cached translation (the pages
     *  just became shared); the translations themselves stay valid. */
    void
    demoteCacheWrites() const
    {
        for (CacheSlot &slot : cache)
            slot.writable = false;
        ++version;
    }

    std::map<Addr, PageRef> pages;

    /** Translation cache; mutable so reads can fill it. */
    mutable std::array<CacheSlot, cacheSlots> cache{};

    std::uint64_t cowCloneCount = 0;
    std::uint64_t forkCount = 0;
    /** Mutable: demotions happen on const sources of fork/restore. */
    mutable std::uint64_t version = 0;
};

} // namespace icheck::mem

#endif // ICHECK_MEM_MEMORY_HPP
