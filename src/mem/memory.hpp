#ifndef ICHECK_MEM_MEMORY_HPP
#define ICHECK_MEM_MEMORY_HPP

/**
 * @file
 * The simulated flat shared-memory address space.
 *
 * SparseMemory backs the simulated machine: a page-granular sparse byte
 * array where unmapped bytes read as zero. Every simulated load and store
 * funnels through this class, which is the substitute for the Pin-observed
 * native address space of the paper's evaluation.
 *
 * Because this is the hottest layer of the whole simulator, page
 * translation is cached: a small direct-mapped table short-circuits the
 * page-map lookup, so an access that fits inside one page touches the
 * std::map only on a cache miss instead of once per byte. Pages are never
 * deallocated while a SparseMemory is alive, so cached page pointers can
 * only go stale across a move — the move operations invalidate the
 * source's cache.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "support/types.hpp"

namespace icheck::mem
{

/** Simulated page size in bytes. */
inline constexpr std::size_t pageSize = 4096;

/** Base virtual address of the static data segment. */
inline constexpr Addr staticBase = 0x0001'0000;

/** Base virtual address of the heap segment. */
inline constexpr Addr heapBase = 0x2000'0000;

/** Base virtual address of per-thread output-staging scratch space. */
inline constexpr Addr scratchBase = 0x6000'0000;

/**
 * Page-sparse simulated memory. Reads of unmapped pages return zero
 * without materializing the page; writes materialize zero-filled pages.
 */
class SparseMemory
{
  public:
    SparseMemory() = default;

    SparseMemory(const SparseMemory &) = delete;
    SparseMemory &operator=(const SparseMemory &) = delete;

    /** Moves transfer the page map; the source's page cache would then
     *  point at pages it no longer owns, so it is invalidated. */
    SparseMemory(SparseMemory &&other) noexcept
        : pages(std::move(other.pages)), cache(other.cache)
    {
        other.invalidateCache();
    }

    SparseMemory &
    operator=(SparseMemory &&other) noexcept
    {
        if (this != &other) {
            pages = std::move(other.pages);
            cache = other.cache;
            other.invalidateCache();
        }
        return *this;
    }

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Read a little-endian value of @p width bytes (1..8) as raw bits in
     * the low bytes of the returned word.
     */
    std::uint64_t readValue(Addr addr, unsigned width) const;

    /** Write the low @p width bytes of @p bits little-endian at @p addr. */
    void writeValue(Addr addr, unsigned width, std::uint64_t bits);

    /** Bulk read into @p out. */
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Bulk write from @p in. */
    void writeBytes(Addr addr, const std::uint8_t *in, std::size_t len);

    /** Number of materialized pages. */
    std::size_t mappedPages() const { return pages.size(); }

    /** Deep-copy the full image (used by the bug-localization tool). */
    SparseMemory clone() const;

    /**
     * Visit every address whose byte differs between @p a and @p b, in
     * increasing address order.
     */
    static void diff(const SparseMemory &a, const SparseMemory &b,
                     const std::function<void(Addr, std::uint8_t,
                                              std::uint8_t)> &visit);

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    /** Tag value no real page index reaches (would need a 2^76 space). */
    static constexpr Addr noTag = ~Addr{0};

    /** Direct-mapped page-translation cache size (power of two). */
    static constexpr std::size_t cacheSlots = 64;

    struct CacheSlot
    {
        Addr tag = noTag;     ///< Page index, or noTag while empty.
        Page *page = nullptr; ///< Materialized page for that index.
    };

    /** Page @p page_idx if materialized (cache-accelerated), else null. */
    Page *findPage(Addr page_idx) const;

    /** Page @p page_idx, materializing it zero-filled if absent. */
    Page &ensurePage(Addr page_idx);

    void
    invalidateCache() const
    {
        for (CacheSlot &slot : cache)
            slot = CacheSlot{};
    }

    std::map<Addr, std::unique_ptr<Page>> pages;

    /** Translation cache; mutable so reads can fill it. */
    mutable std::array<CacheSlot, cacheSlots> cache{};
};

} // namespace icheck::mem

#endif // ICHECK_MEM_MEMORY_HPP
