#include "hashing/crc64.hpp"

namespace icheck::hashing
{

std::uint64_t
Crc64::compute(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t crc = seed;
    // Slicing-by-8 main loop: one table-lookup fan-out per 8 bytes. The
    // block is composed low-byte-first to match feed() consumption order.
    while (len >= 8) {
        const std::uint64_t word =
            static_cast<std::uint64_t>(bytes[0]) |
            static_cast<std::uint64_t>(bytes[1]) << 8 |
            static_cast<std::uint64_t>(bytes[2]) << 16 |
            static_cast<std::uint64_t>(bytes[3]) << 24 |
            static_cast<std::uint64_t>(bytes[4]) << 32 |
            static_cast<std::uint64_t>(bytes[5]) << 40 |
            static_cast<std::uint64_t>(bytes[6]) << 48 |
            static_cast<std::uint64_t>(bytes[7]) << 56;
        crc = feedWordLe(crc, word);
        bytes += 8;
        len -= 8;
    }
    while (len-- > 0)
        crc = feed(crc, *bytes++);
    return crc;
}

} // namespace icheck::hashing
