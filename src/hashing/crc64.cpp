#include "hashing/crc64.hpp"

#include <array>

namespace icheck::hashing
{

namespace
{

constexpr std::uint64_t polynomial = 0x42f0e1eba9ea3693ULL;

std::array<std::uint64_t, 256>
buildTable()
{
    std::array<std::uint64_t, 256> table{};
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t crc = i << 56;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & (1ULL << 63))
                crc = (crc << 1) ^ polynomial;
            else
                crc <<= 1;
        }
        table[i] = crc;
    }
    return table;
}

} // namespace

const std::uint64_t *
Crc64::table()
{
    static const std::array<std::uint64_t, 256> tbl = buildTable();
    return tbl.data();
}

std::uint64_t
Crc64::compute(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t crc = seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = feed(crc, bytes[i]);
    return crc;
}

} // namespace icheck::hashing
