#include "hashing/state_hash.hpp"

#include "support/logging.hpp"

namespace icheck::hashing
{

ModHash
StateHasher::valueHash(Addr addr, std::uint64_t rawBits, unsigned width,
                       ValueClass cls) const
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "store width must be 1..8");
    std::uint64_t bits = rawBits;
    if (isFpClass(cls)) {
        const unsigned fp_width = cls == ValueClass::Float ? 4 : 8;
        ICHECK_ASSERT(width == fp_width, "FP store width mismatch");
        bits = roundFpBits(bits, fp_width, roundMode);
    }
    std::uint8_t bytes[8];
    for (unsigned i = 0; i < width; ++i)
        bytes[i] = static_cast<std::uint8_t>(bits >> (8 * i));
    // One batched call per store instead of one virtual call per byte.
    return locHasher.hashSpan(addr, bytes, width);
}

ModHash
StateHasher::spanHash(Addr addr, const std::uint8_t *bytes,
                      std::size_t len) const
{
    return locHasher.hashSpan(addr, bytes, len);
}

} // namespace icheck::hashing
