#include "hashing/state_hash.hpp"

#include "support/logging.hpp"

namespace icheck::hashing
{

ModHash
StateHasher::valueHash(Addr addr, std::uint64_t rawBits, unsigned width,
                       ValueClass cls) const
{
    ICHECK_ASSERT(width >= 1 && width <= 8, "store width must be 1..8");
    std::uint64_t bits = rawBits;
    if (isFpClass(cls)) {
        const unsigned fp_width = cls == ValueClass::Float ? 4 : 8;
        ICHECK_ASSERT(width == fp_width, "FP store width mismatch");
        bits = roundFpBits(bits, fp_width, roundMode);
    }
    ModHash sum;
    for (unsigned i = 0; i < width; ++i) {
        const auto byte = static_cast<std::uint8_t>(bits >> (8 * i));
        sum += locHasher.hashByte(addr + i, byte);
    }
    return sum;
}

ModHash
StateHasher::spanHash(Addr addr, const std::uint8_t *bytes,
                      std::size_t len) const
{
    ModHash sum;
    for (std::size_t i = 0; i < len; ++i)
        sum += locHasher.hashByte(addr + i, bytes[i]);
    return sum;
}

} // namespace icheck::hashing
