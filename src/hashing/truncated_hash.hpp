#ifndef ICHECK_HASHING_TRUNCATED_HASH_HPP
#define ICHECK_HASHING_TRUNCATED_HASH_HPP

/**
 * @file
 * Width-truncated location hashing, for studying the paper's collision
 * argument empirically.
 *
 * InstantCheck's accuracy claim (Section 1) is that false negatives —
 * two different states with equal hashes — occur with probability 2^-W
 * for a W-bit hash. TruncatedLocationHasher masks an underlying hasher
 * to W bits so tests and the hash-width ablation bench can observe the
 * collision rate grow as W shrinks, which is the empirical footing for
 * choosing 64 bits in hardware.
 *
 * Truncation happens per location hash; the group operations then live in
 * (Z / 2^W, +), which is exactly what a W-bit TH register would compute.
 */

#include <memory>

#include "hashing/location_hash.hpp"

namespace icheck::hashing
{

/**
 * Masks an inner LocationHasher to the low @p width bits.
 */
class TruncatedLocationHasher : public LocationHasher
{
  public:
    /**
     * @param inner Underlying hasher (owned).
     * @param width Hash width in bits, 1..64.
     */
    TruncatedLocationHasher(std::unique_ptr<LocationHasher> inner,
                            unsigned width);

    ModHash hashByte(Addr addr, std::uint8_t value) const override;
    std::string name() const override;

    /** The configured width. */
    unsigned width() const { return bits; }

  private:
    std::unique_ptr<LocationHasher> inner;
    unsigned bits;
    HashWord mask;
};

} // namespace icheck::hashing

#endif // ICHECK_HASHING_TRUNCATED_HASH_HPP
