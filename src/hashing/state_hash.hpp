#ifndef ICHECK_HASHING_STATE_HASH_HPP
#define ICHECK_HASHING_STATE_HASH_HPP

/**
 * @file
 * State-hash algebra shared by every InstantCheck scheme.
 *
 * StateHasher binds a LocationHasher and an FP rounding mode and exposes the
 * three operations everything else is built from:
 *
 *  - valueHash:  hash of a w-byte value at an address (rounded if FP);
 *  - spanHash:   hash of a raw byte span (used by traversal and deletion);
 *  - storeDelta: the incremental update ominus h(a, old) oplus h(a, new)
 *    contributed by one store.
 *
 * The same StateHasher instance drives the hardware MHM model, the
 * software-incremental checker, and the traversal checker, which is what
 * makes "all three schemes compute the same hash" a testable property.
 */

#include <cstdint>

#include "hashing/fp_round.hpp"
#include "hashing/location_hash.hpp"
#include "hashing/mod_hash.hpp"
#include "support/types.hpp"

namespace icheck::hashing
{

/**
 * Value classification a store instruction carries (Section 5: the compiler
 * marks FP writes; the MHM's round-off unit keys off this).
 */
enum class ValueClass : std::uint8_t
{
    Integer, ///< Not floating point; hashed bit-by-bit.
    Float,   ///< 32-bit IEEE-754; subject to rounding.
    Double,  ///< 64-bit IEEE-754; subject to rounding.
};

/** Byte width of a value of class @p cls with raw store width @p width. */
constexpr bool
isFpClass(ValueClass cls)
{
    return cls != ValueClass::Integer;
}

/**
 * Stateless hashing pipeline: FP round-off unit in front of the per-byte
 * location hasher, accumulating into the ModHash group.
 */
class StateHasher
{
  public:
    /**
     * @param hasher Per-location hash function (not owned; must outlive).
     * @param mode   FP rounding applied to Float/Double values.
     */
    StateHasher(const LocationHasher &hasher, FpRoundMode mode)
        : locHasher(hasher), roundMode(mode)
    {}

    /** The rounding mode in effect. */
    const FpRoundMode &mode() const { return roundMode; }

    /** The underlying per-location hasher. */
    const LocationHasher &hasher() const { return locHasher; }

    /**
     * Hash of the @p width -byte value @p rawBits residing at @p addr.
     * Float/Double values pass through the round-off unit first.
     */
    ModHash valueHash(Addr addr, std::uint64_t rawBits, unsigned width,
                      ValueClass cls) const;

    /** Hash of @p len raw bytes at simulated address @p addr. */
    ModHash spanHash(Addr addr, const std::uint8_t *bytes,
                     std::size_t len) const;

    /**
     * Incremental delta contributed by a store: the group element
     * ominus h(addr, old) oplus h(addr, new), per byte.
     */
    ModHash
    storeDelta(Addr addr, std::uint64_t oldBits, std::uint64_t newBits,
               unsigned width, ValueClass cls) const
    {
        return valueHash(addr, newBits, width, cls)
             - valueHash(addr, oldBits, width, cls);
    }

  private:
    const LocationHasher &locHasher;
    FpRoundMode roundMode;
};

} // namespace icheck::hashing

#endif // ICHECK_HASHING_STATE_HASH_HPP
