#include "hashing/location_hash.hpp"

#include "hashing/crc64.hpp"
#include "support/logging.hpp"

namespace icheck::hashing
{

ModHash
Crc64LocationHasher::hashByte(Addr addr, std::uint8_t value) const
{
    if (value == 0)
        return ModHash{};
    std::uint8_t record[9];
    for (int i = 0; i < 8; ++i)
        record[i] = static_cast<std::uint8_t>(addr >> (8 * i));
    record[8] = value;
    return ModHash(Crc64::compute(record, sizeof(record)));
}

ModHash
Mix64LocationHasher::hashByte(Addr addr, std::uint8_t value) const
{
    if (value == 0)
        return ModHash{};
    // Pack the pair and run a SplitMix64-style finalizer. The value byte is
    // rotated into the high bits so that adjacent addresses with adjacent
    // values do not collide structurally.
    std::uint64_t z = addr ^ (static_cast<std::uint64_t>(value) << 56)
                           ^ 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return ModHash(z ^ (z >> 31));
}

std::unique_ptr<LocationHasher>
makeLocationHasher(HasherKind kind)
{
    switch (kind) {
      case HasherKind::Crc64:
        return std::make_unique<Crc64LocationHasher>();
      case HasherKind::Mix64:
        return std::make_unique<Mix64LocationHasher>();
    }
    ICHECK_PANIC("unknown HasherKind");
}

} // namespace icheck::hashing
