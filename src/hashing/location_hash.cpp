#include "hashing/location_hash.hpp"

#include "hashing/crc64.hpp"
#include "support/logging.hpp"

namespace icheck::hashing
{

namespace
{

/**
 * CRC of the seven high address bytes of a 9-byte (address, value) record.
 * crcOfAddr(a) == T7[a & 0xff] ^ addrSuffixCrc(a >> 8); the suffix is
 * constant across a run of addresses that share everything above the low
 * byte, which is what lets hashSpan hoist it out of its inner loop.
 */
inline std::uint64_t
addrSuffixCrc(std::uint64_t hi)
{
    const auto &t = detail::crc64Tables.t;
    return t[6][hi & 0xff] ^ t[5][(hi >> 8) & 0xff] ^
           t[4][(hi >> 16) & 0xff] ^ t[3][(hi >> 24) & 0xff] ^
           t[2][(hi >> 32) & 0xff] ^ t[1][(hi >> 40) & 0xff] ^
           t[0][(hi >> 48) & 0xff];
}

/** SplitMix64-style finalizer over the packed (address, value) word. */
inline std::uint64_t
mix64Pair(Addr addr, std::uint8_t value)
{
    std::uint64_t z = addr ^ (static_cast<std::uint64_t>(value) << 56)
                           ^ 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

ModHash
LocationHasher::hashSpan(Addr addr, const std::uint8_t *bytes,
                         std::size_t len) const
{
    // Generic fold; concrete hashers override with batched versions that
    // must stay bit-identical to this definition.
    ModHash sum;
    for (std::size_t i = 0; i < len; ++i)
        sum += hashByte(addr + i, bytes[i]);
    return sum;
}

ModHash
Crc64LocationHasher::hashByte(Addr addr, std::uint8_t value) const
{
    if (value == 0)
        return ModHash{};
    // CRC-64 of the 9-byte record (8-byte little-endian address, then the
    // value byte): one slicing step for the address, one feed for the
    // value.
    const std::uint64_t addr_crc = Crc64::feedWordLe(0, addr);
    return ModHash(Crc64::feed(addr_crc, value));
}

ModHash
Crc64LocationHasher::hashSpan(Addr addr, const std::uint8_t *bytes,
                              std::size_t len) const
{
    const auto &t = detail::crc64Tables.t;
    ModHash sum;
    std::size_t i = 0;
    while (i < len) {
        // All addresses in [base, base + chunk) share the bytes above the
        // low one, so the CRC of those seven record bytes is loop
        // invariant.
        const Addr base = addr + i;
        const std::uint64_t suffix = addrSuffixCrc(base >> 8);
        const std::size_t low = base & 0xff;
        std::size_t chunk = 0x100 - low;
        if (chunk > len - i)
            chunk = len - i;
        for (std::size_t k = 0; k < chunk; ++k) {
            const std::uint8_t value = bytes[i + k];
            if (value == 0)
                continue;
            const std::uint64_t addr_crc = t[7][low + k] ^ suffix;
            sum += ModHash((addr_crc << 8) ^
                           t[0][((addr_crc >> 56) ^ value) & 0xff]);
        }
        i += chunk;
    }
    return sum;
}

ModHash
Mix64LocationHasher::hashByte(Addr addr, std::uint8_t value) const
{
    if (value == 0)
        return ModHash{};
    // The value byte is rotated into the high bits so that adjacent
    // addresses with adjacent values do not collide structurally.
    return ModHash(mix64Pair(addr, value));
}

ModHash
Mix64LocationHasher::hashSpan(Addr addr, const std::uint8_t *bytes,
                              std::size_t len) const
{
    // Same per-byte math, minus the per-byte virtual dispatch.
    ModHash sum;
    for (std::size_t i = 0; i < len; ++i) {
        if (bytes[i] != 0)
            sum += ModHash(mix64Pair(addr + i, bytes[i]));
    }
    return sum;
}

std::unique_ptr<LocationHasher>
makeLocationHasher(HasherKind kind)
{
    switch (kind) {
      case HasherKind::Crc64:
        return std::make_unique<Crc64LocationHasher>();
      case HasherKind::Mix64:
        return std::make_unique<Mix64LocationHasher>();
    }
    ICHECK_PANIC("unknown HasherKind");
}

} // namespace icheck::hashing
