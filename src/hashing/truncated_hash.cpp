#include "hashing/truncated_hash.hpp"

#include "support/logging.hpp"

namespace icheck::hashing
{

TruncatedLocationHasher::TruncatedLocationHasher(
    std::unique_ptr<LocationHasher> inner_hasher, unsigned width)
    : inner(std::move(inner_hasher)), bits(width),
      mask(width >= 64 ? ~HashWord{0} : ((HashWord{1} << width) - 1))
{
    ICHECK_ASSERT(inner != nullptr, "truncation needs an inner hasher");
    ICHECK_ASSERT(width >= 1 && width <= 64, "width must be 1..64");
}

ModHash
TruncatedLocationHasher::hashByte(Addr addr, std::uint8_t value) const
{
    return ModHash(inner->hashByte(addr, value).raw() & mask);
}

std::string
TruncatedLocationHasher::name() const
{
    return inner->name() + "/" + std::to_string(bits);
}

} // namespace icheck::hashing
