#ifndef ICHECK_HASHING_MOD_HASH_HPP
#define ICHECK_HASHING_MOD_HASH_HPP

/**
 * @file
 * The commutative group underlying incremental hashing.
 *
 * Following Bellare and Micciancio's incremental hashing paradigm, a state
 * hash is a sum of per-location hashes in a commutative group; InstantCheck
 * uses (Z / 2^64, +). ModHash wraps a 64-bit word with the group operations
 * used throughout the paper: oplus (modulo addition), ominus (modulo
 * subtraction, which cancels a previous oplus), and the identity 0.
 */

#include <compare>
#include <cstdint>

#include "support/types.hpp"

namespace icheck::hashing
{

/**
 * A value in the incremental-hash group (Z / 2^64, +).
 *
 * Addition and subtraction wrap modulo 2^64; they are commutative and
 * associative, which is exactly what lets Thread Hashes be combined in any
 * order and lets individual location hashes be cancelled later.
 */
class ModHash
{
  public:
    /** The group identity (the hash of the empty state delta). */
    constexpr ModHash() : word(0) {}

    /** Wrap a raw 64-bit word. */
    explicit constexpr ModHash(HashWord w) : word(w) {}

    /** Raw 64-bit word (what a TH register holds). */
    constexpr HashWord raw() const { return word; }

    /** Group addition (the paper's oplus). */
    constexpr ModHash
    operator+(ModHash other) const
    {
        return ModHash(word + other.word);
    }

    /** Group subtraction (the paper's ominus). */
    constexpr ModHash
    operator-(ModHash other) const
    {
        return ModHash(word - other.word);
    }

    /** In-place oplus. */
    constexpr ModHash &
    operator+=(ModHash other)
    {
        word += other.word;
        return *this;
    }

    /** In-place ominus. */
    constexpr ModHash &
    operator-=(ModHash other)
    {
        word -= other.word;
        return *this;
    }

    /** Group inverse: x + (-x) == identity. */
    constexpr ModHash operator-() const { return ModHash(0 - word); }

    constexpr auto operator<=>(const ModHash &) const = default;

  private:
    HashWord word;
};

/** The group identity, named for readability at call sites. */
inline constexpr ModHash zeroHash{};

} // namespace icheck::hashing

#endif // ICHECK_HASHING_MOD_HASH_HPP
