#ifndef ICHECK_HASHING_LOCATION_HASH_HPP
#define ICHECK_HASHING_LOCATION_HASH_HPP

/**
 * @file
 * The per-location hash function h(a, v) of Section 2.2.
 *
 * InstantCheck defines the State Hash of memory state S as
 *     SH(S) = h(a_1, v_1) oplus ... oplus h(a_m, v_m)
 * where h hashes one (address, value) pair. This repo fixes the canonical
 * granularity at one byte: h maps an (address, byte value) pair to a 64-bit
 * group element, and a k-byte store contributes one term per byte. Per-byte
 * granularity makes incremental hashing agree with traversal hashing no
 * matter how store widths overlap, and makes ignore-deletion well defined.
 *
 * Additionally, h(a, 0) is defined as the group identity for every address:
 * zero bytes contribute nothing to a state hash. With unmapped simulated
 * memory reading as zero, allocations zero-filled, and freed blocks
 * scrubbed, this gives all three InstantCheck schemes (hardware
 * incremental, software incremental, software traversal) bit-identical
 * State Hashes — a property the integration tests assert on every
 * workload.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "hashing/mod_hash.hpp"
#include "support/types.hpp"

namespace icheck::hashing
{

/**
 * Abstract per-location hash function h(a, v).
 *
 * Implementations must be pure functions: equal (address, byte) inputs give
 * equal outputs, with no internal state. That purity is what makes Thread
 * Hash updates core-local and order-free.
 */
class LocationHasher
{
  public:
    virtual ~LocationHasher() = default;

    /** Hash of one (address, byte value) pair. */
    virtual ModHash hashByte(Addr addr, std::uint8_t value) const = 0;

    /**
     * Batched form: the group sum of hashByte(addr + i, bytes[i]) for
     * i in [0, len). One virtual call per store or span instead of one
     * per byte; overrides must be bit-identical to the per-byte fold
     * (tests/hashing/test_equivalence.cpp asserts this exhaustively).
     */
    virtual ModHash hashSpan(Addr addr, const std::uint8_t *bytes,
                             std::size_t len) const;

    /** Human-readable implementation name. */
    virtual std::string name() const = 0;
};

/**
 * h(a, v) built from CRC-64/ECMA over the 9-byte (address, value) record —
 * the paper's suggested CRC-based instantiation.
 */
class Crc64LocationHasher : public LocationHasher
{
  public:
    ModHash hashByte(Addr addr, std::uint8_t value) const override;
    ModHash hashSpan(Addr addr, const std::uint8_t *bytes,
                     std::size_t len) const override;
    std::string name() const override { return "crc64"; }
};

/**
 * h(a, v) built from a SplitMix64-style finalizer over the packed
 * (address, value) word. Cheaper than CRC in software; the ablation bench
 * compares the two.
 */
class Mix64LocationHasher : public LocationHasher
{
  public:
    ModHash hashByte(Addr addr, std::uint8_t value) const override;
    ModHash hashSpan(Addr addr, const std::uint8_t *bytes,
                     std::size_t len) const override;
    std::string name() const override { return "mix64"; }
};

/** Which LocationHasher implementation to instantiate. */
enum class HasherKind
{
    Crc64,
    Mix64,
};

/** Factory for the hasher selected by @p kind. */
std::unique_ptr<LocationHasher> makeLocationHasher(HasherKind kind);

} // namespace icheck::hashing

#endif // ICHECK_HASHING_LOCATION_HASH_HPP
