#ifndef ICHECK_HASHING_CRC64_HPP
#define ICHECK_HASHING_CRC64_HPP

/**
 * @file
 * Table-driven CRC-64/ECMA-182 (polynomial 0x42f0e1eba9ea3693), the "regular
 * hash function h (e.g., CRC)" the paper suggests for hashing individual
 * memory locations.
 */

#include <cstddef>
#include <cstdint>

namespace icheck::hashing
{

/**
 * Stateless CRC-64/ECMA-182 engine over byte spans.
 */
class Crc64
{
  public:
    /** CRC of @p len bytes at @p data, continuing from @p seed. */
    static std::uint64_t compute(const void *data, std::size_t len,
                                 std::uint64_t seed = 0);

    /** Feed one byte into a running CRC value. */
    static std::uint64_t
    feed(std::uint64_t crc, std::uint8_t byte)
    {
        return (crc << 8) ^ table()[((crc >> 56) ^ byte) & 0xff];
    }

  private:
    /** Lazily built 256-entry lookup table. */
    static const std::uint64_t *table();
};

} // namespace icheck::hashing

#endif // ICHECK_HASHING_CRC64_HPP
