#ifndef ICHECK_HASHING_CRC64_HPP
#define ICHECK_HASHING_CRC64_HPP

/**
 * @file
 * Table-driven CRC-64/ECMA-182 (polynomial 0x42f0e1eba9ea3693), the "regular
 * hash function h (e.g., CRC)" the paper suggests for hashing individual
 * memory locations.
 *
 * The engine is slicing-by-8: eight derived lookup tables let `compute`
 * absorb eight bytes per step with independent loads instead of an
 * eight-deep feed dependency chain, while producing bit-identical results
 * to the classic byte-at-a-time recurrence (asserted exhaustively by
 * tests/hashing/test_equivalence.cpp against a tableless bitwise
 * reference). All tables are built at compile time, so the hot path has no
 * static-local initialization guard.
 */

#include <array>
#include <cstddef>
#include <cstdint>

namespace icheck::hashing
{

namespace detail
{

/** The CRC-64/ECMA-182 generator polynomial (MSB-first, non-reflected). */
inline constexpr std::uint64_t crc64Polynomial = 0x42f0e1eba9ea3693ULL;

/** Slicing tables: t[0] is the classic byte table; t[k] advances k zero
 *  bytes further, so eight lookups absorb one aligned 8-byte block. */
struct Crc64Tables
{
    std::uint64_t t[8][256];
};

consteval Crc64Tables
buildCrc64Tables()
{
    Crc64Tables tables{};
    for (std::uint64_t i = 0; i < 256; ++i) {
        std::uint64_t crc = i << 56;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & (1ULL << 63))
                crc = (crc << 1) ^ crc64Polynomial;
            else
                crc <<= 1;
        }
        tables.t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
        for (std::uint64_t i = 0; i < 256; ++i) {
            const std::uint64_t prev = tables.t[k - 1][i];
            tables.t[k][i] =
                (prev << 8) ^ tables.t[0][(prev >> 56) & 0xff];
        }
    }
    return tables;
}

inline constexpr Crc64Tables crc64Tables = buildCrc64Tables();

} // namespace detail

/**
 * Stateless CRC-64/ECMA-182 engine over byte spans.
 */
class Crc64
{
  public:
    /** CRC of @p len bytes at @p data, continuing from @p seed. */
    static std::uint64_t compute(const void *data, std::size_t len,
                                 std::uint64_t seed = 0);

    /** Feed one byte into a running CRC value. */
    static std::uint64_t
    feed(std::uint64_t crc, std::uint8_t byte)
    {
        return (crc << 8) ^
               detail::crc64Tables.t[0][((crc >> 56) ^ byte) & 0xff];
    }

    /**
     * Absorb the 8-byte little-endian representation of @p word into
     * @p crc in one slicing step — identical to eight feed() calls over
     * the word's bytes, low byte first.
     */
    static std::uint64_t
    feedWordLe(std::uint64_t crc, std::uint64_t word)
    {
        const auto &t = detail::crc64Tables.t;
        // feed() consumes the low byte of word first; in the slicing
        // identity the first-consumed byte pairs with the deepest table.
        const std::uint64_t x[8] = {
            (crc >> 56) ^ (word & 0xff),
            (crc >> 48) ^ (word >> 8),
            (crc >> 40) ^ (word >> 16),
            (crc >> 32) ^ (word >> 24),
            (crc >> 24) ^ (word >> 32),
            (crc >> 16) ^ (word >> 40),
            (crc >> 8) ^ (word >> 48),
            crc ^ (word >> 56),
        };
        return t[7][x[0] & 0xff] ^ t[6][x[1] & 0xff] ^
               t[5][x[2] & 0xff] ^ t[4][x[3] & 0xff] ^
               t[3][x[4] & 0xff] ^ t[2][x[5] & 0xff] ^
               t[1][x[6] & 0xff] ^ t[0][x[7] & 0xff];
    }
};

} // namespace icheck::hashing

#endif // ICHECK_HASHING_CRC64_HPP
