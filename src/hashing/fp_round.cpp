#include "hashing/fp_round.hpp"

#include <cmath>
#include <cstring>

#include "support/logging.hpp"

namespace icheck::hashing
{

namespace
{

/** Floor @p value to @p digits decimal digits, stable around zero. */
double
floorToDigits(double value, int digits)
{
    if (!std::isfinite(value))
        return value;
    double scale = std::pow(10.0, digits);
    double scaled = value * scale;
    // Guard against overflow of the scaled value: leave huge magnitudes
    // untouched, their absolute differences dwarf the rounding grain anyway.
    if (std::fabs(scaled) >= 0x1.0p62)
        return value;
    double floored = std::floor(scaled) / scale;
    // Normalize -0.0 to +0.0 so that runs differing only in signed zero
    // compare equal.
    return floored == 0.0 ? 0.0 : floored;
}

} // namespace

double
roundDouble(double value, const FpRoundMode &mode)
{
    switch (mode.kind) {
      case FpRoundKind::None:
        return value;
      case FpRoundKind::MantissaMask: {
        ICHECK_ASSERT(mode.mantissaBits >= 0 && mode.mantissaBits <= 52,
                      "double mantissa mask out of range");
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        const std::uint64_t keep =
            mode.mantissaBits == 0
                ? ~std::uint64_t{0}
                : ~((std::uint64_t{1} << mode.mantissaBits) - 1);
        bits &= keep;
        double out;
        std::memcpy(&out, &bits, sizeof(out));
        return out == 0.0 ? 0.0 : out;
      }
      case FpRoundKind::DecimalFloor:
        return floorToDigits(value, mode.decimalDigits);
    }
    ICHECK_PANIC("unknown FpRoundKind");
}

float
roundFloat(float value, const FpRoundMode &mode)
{
    switch (mode.kind) {
      case FpRoundKind::None:
        return value;
      case FpRoundKind::MantissaMask: {
        // Scale the mask to the float mantissa: masking M bits of a double
        // corresponds to M - 29 bits of a float's 23-bit mantissa.
        int bits_to_mask = mode.mantissaBits - 29;
        if (bits_to_mask < 0)
            bits_to_mask = mode.mantissaBits > 0 ? 1 : 0;
        if (bits_to_mask > 23)
            bits_to_mask = 23;
        std::uint32_t bits;
        std::memcpy(&bits, &value, sizeof(bits));
        const std::uint32_t keep =
            bits_to_mask == 0
                ? ~std::uint32_t{0}
                : ~((std::uint32_t{1} << bits_to_mask) - 1);
        bits &= keep;
        float out;
        std::memcpy(&out, &bits, sizeof(out));
        return out == 0.0f ? 0.0f : out;
      }
      case FpRoundKind::DecimalFloor:
        return static_cast<float>(
            floorToDigits(static_cast<double>(value), mode.decimalDigits));
    }
    ICHECK_PANIC("unknown FpRoundKind");
}

std::uint64_t
roundFpBits(std::uint64_t bits, unsigned width, const FpRoundMode &mode)
{
    if (mode.kind == FpRoundKind::None)
        return bits;
    if (width == 4) {
        std::uint32_t raw = static_cast<std::uint32_t>(bits);
        float value;
        std::memcpy(&value, &raw, sizeof(value));
        value = roundFloat(value, mode);
        std::memcpy(&raw, &value, sizeof(raw));
        return raw;
    }
    if (width == 8) {
        double value;
        std::memcpy(&value, &bits, sizeof(value));
        value = roundDouble(value, mode);
        std::uint64_t out;
        std::memcpy(&out, &value, sizeof(out));
        return out;
    }
    ICHECK_PANIC("FP width must be 4 or 8, got ", width);
}

} // namespace icheck::hashing
