#ifndef ICHECK_HASHING_FP_ROUND_HPP
#define ICHECK_HASHING_FP_ROUND_HPP

/**
 * @file
 * The FP round-off unit of Section 3.1 / Section 5.
 *
 * Parallel code that reassociates floating-point additions produces tiny
 * run-to-run differences. InstantCheck optionally rounds FP values before
 * hashing so such runs still compare equal. Two rounding alternatives are
 * offered, matching the paper:
 *
 *  - MantissaMask: zero out the least-significant M mantissa bits
 *    (discards small *relative* differences; a simple AND in hardware);
 *  - DecimalFloor: floor to N decimal digits (discards small *absolute*
 *    differences; default N = 3, i.e. round to the closest 0.001, as used
 *    in systematic testing).
 */

#include <cstdint>

namespace icheck::hashing
{

/** Which rounding alternative the round-off unit applies. */
enum class FpRoundKind
{
    None,         ///< Bit-by-bit comparison; no rounding.
    MantissaMask, ///< Zero the least-significant M mantissa bits.
    DecimalFloor, ///< Floor to N decimal digits.
};

/**
 * Configuration of the FP round-off unit (the CNTR inputs of Fig 3a).
 */
struct FpRoundMode
{
    FpRoundKind kind = FpRoundKind::None;

    /** M: mantissa bits to zero (MantissaMask). */
    int mantissaBits = 20;

    /** N: decimal digits kept (DecimalFloor). */
    int decimalDigits = 3;

    /** The paper's default: floor to the closest 0.001. */
    static FpRoundMode
    paperDefault()
    {
        return {FpRoundKind::DecimalFloor, 20, 3};
    }

    /** Bit-by-bit mode. */
    static FpRoundMode
    none()
    {
        return {};
    }

    /** Mask @p m low mantissa bits. */
    static FpRoundMode
    mask(int m)
    {
        return {FpRoundKind::MantissaMask, m, 3};
    }

    /** Floor to @p n decimal digits. */
    static FpRoundMode
    floorDigits(int n)
    {
        return {FpRoundKind::DecimalFloor, 20, n};
    }

    bool operator==(const FpRoundMode &) const = default;
};

/** Round one double per @p mode. */
double roundDouble(double value, const FpRoundMode &mode);

/** Round one float per @p mode. */
float roundFloat(float value, const FpRoundMode &mode);

/**
 * Round the raw bit pattern of a float/double value per @p mode.
 *
 * @param bits   Raw IEEE-754 bits (low @p width bytes significant).
 * @param width  4 for float, 8 for double.
 * @param mode   Rounding mode.
 * @return Raw bits of the rounded value.
 */
std::uint64_t roundFpBits(std::uint64_t bits, unsigned width,
                          const FpRoundMode &mode);

} // namespace icheck::hashing

#endif // ICHECK_HASHING_FP_ROUND_HPP
