#ifndef ICHECK_CHECK_DRIVER_HPP
#define ICHECK_CHECK_DRIVER_HPP

/**
 * @file
 * The determinism-checking driver (Section 7 methodology).
 *
 * Runs a program N times for the same input under different scheduler
 * seeds, with a chosen InstantCheck scheme attached, and compares the
 * State Hash sequences across runs. Handles the Section 5 input-
 * nondeterminism control automatically: run 0 records the malloc replay
 * log, later runs replay it; library calls are intercepted by the machine.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/distribution.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/** Factory producing a fresh program instance per run. */
using ProgramFactory = std::function<std::unique_ptr<sim::Program>()>;

/** How run-attached listeners receive events (sim/transport.hpp). */
enum class TransportMode : std::uint8_t
{
    Off,    ///< Synchronous listener dispatch (pre-transport behavior).
    Inline, ///< Ring transport, drained at decision boundaries.
    Async,  ///< Ring transport, drained on a dedicated consumer thread.
};

/** Configuration of one determinism-checking campaign. */
struct DriverConfig
{
    /** Scheme attached to every run. */
    Scheme scheme = Scheme::HwInc;

    /** Event routing for the driver's own listeners (the output hasher).
     *  Reports are byte-identical across all modes and capacities. */
    TransportMode transport = TransportMode::Inline;

    /** Ring slots per simulated core (power of two, min 1). */
    std::size_t transportRingCapacity = 1024;

    /** Use the per-scheme ideal (lower-bound) software cost model. */
    bool idealCostModel = true;

    /** Number of test runs (the paper uses 30). */
    int runs = 30;

    /** Run i uses scheduler seed baseSchedSeed + i. */
    std::uint64_t baseSchedSeed = 1000;

    /** Machine template (input seed, cores, quanta, FP mode, ...). */
    sim::MachineConfig machine{};

    /** Structures deleted from the hash before comparison. */
    IgnoreSpec ignores{};
};

/** Everything recorded about one run. */
struct RunRecord
{
    std::vector<HashWord> checkpointHashes;
    HashWord outputHash = 0;
    std::uint64_t outputBytes = 0;
    sim::RunResult result{};
    InstCount checkerOverheadInstrs = 0;
};

/** Aggregated verdict of a campaign. */
struct DriverReport
{
    std::string app;
    std::string scheme;
    int runs = 0;

    /** Per-run raw data. */
    std::vector<RunRecord> records;

    /** True if every run produced the same number of checkpoints. */
    bool checkpointCountsMatch = true;

    /** Distribution per checkpoint index (over min checkpoint count). */
    std::vector<Distribution> distributions;

    /** Checkpoints deterministic / nondeterministic across all runs. */
    std::uint64_t detPoints = 0;
    std::uint64_t ndetPoints = 0;

    /** Whether the final (program-end) checkpoint was deterministic. */
    bool detAtEnd = false;

    /** Whether the output stream was deterministic. */
    bool outputDeterministic = true;

    /**
     * 1-based index of the first run whose hash sequence differs from any
     * earlier run; 0 if never (deterministic within coverage).
     */
    int firstNdetRun = 0;

    /** Fully deterministic within test coverage. */
    bool
    deterministic() const
    {
        return firstNdetRun == 0 && checkpointCountsMatch &&
               outputDeterministic;
    }

    /** Mean native / overhead instructions per run. */
    double avgNativeInstrs = 0.0;
    double avgOverheadInstrs = 0.0;

    /** Overhead relative to native ((native+overhead)/native). */
    double overheadFactor() const;
};

/**
 * Execute run @p run_index of the campaign described by @p cfg and return
 * its record. Run 0 must execute in Record mode before any Replay run so
 * the malloc replay log is populated; Replay runs only read the log, so
 * they may execute concurrently (the parallel campaign executor in
 * src/runtime relies on exactly this).
 *
 * @param app_name If non-null, receives the program's name.
 */
RunRecord executeCampaignRun(const DriverConfig &cfg,
                             const ProgramFactory &factory, int run_index,
                             mem::ReplayLog &replay_log,
                             mem::DeterministicAllocator::Mode mode,
                             std::string *app_name = nullptr);

/**
 * Derive the campaign verdict from per-run records. Pure function of
 * (cfg, app, records): both the sequential driver and the parallel
 * executor call this, which is what makes their reports bit-identical.
 * @p records must be in seed order (record for run i at index i).
 */
DriverReport analyzeCampaign(const DriverConfig &cfg, std::string app,
                             std::vector<RunRecord> records);

/**
 * The campaign runner. Stateless apart from configuration; each call to
 * check() owns its replay log, so campaigns are independent.
 */
class DeterminismDriver
{
  public:
    explicit DeterminismDriver(DriverConfig config)
        : cfg(std::move(config))
    {}

    /** Run the campaign on programs from @p factory. */
    DriverReport check(const ProgramFactory &factory) const;

    /**
     * Run once natively (no checker, no instrumentation) and return the
     * native instruction count — the Figure 6 baseline.
     */
    sim::RunResult runNative(const ProgramFactory &factory,
                             std::uint64_t sched_seed) const;

    const DriverConfig &config() const { return cfg; }

  private:
    DriverConfig cfg;
};

} // namespace icheck::check

#endif // ICHECK_CHECK_DRIVER_HPP
