#ifndef ICHECK_CHECK_IO_HASH_HPP
#define ICHECK_CHECK_IO_HASH_HPP

/**
 * @file
 * Output-stream determinism hashing (Section 4.3).
 *
 * InstantCheck hashes the bytes passed to write() before the call returns,
 * which fully captures the behaviour of properly-synchronized outputs.
 * OutputHasher subscribes to the machine's output events and keeps a
 * running CRC of the stream in write order.
 */

#include <cstdint>

#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/**
 * Running hash over the program's output stream.
 */
class OutputHasher : public sim::AccessListener
{
  public:
    void onOutput(ThreadId tid, const std::uint8_t *data,
                  std::size_t len) override;

    /** Hash of everything written so far. */
    HashWord value() const { return crc; }

    /** Total bytes written. */
    std::uint64_t bytes() const { return total; }

  private:
    HashWord crc = 0;
    std::uint64_t total = 0;
};

} // namespace icheck::check

#endif // ICHECK_CHECK_IO_HASH_HPP
