#ifndef ICHECK_CHECK_HW_INC_HPP
#define ICHECK_CHECK_HW_INC_HPP

/**
 * @file
 * HW-InstantCheck_Inc: the hardware-supported incremental scheme
 * (Section 3).
 *
 * The per-core MHMs (already wired into the Machine) do all the hashing;
 * this checker merely sums the per-thread TH registers in software when a
 * State Hash is needed — a rare, cheap, global operation that typically
 * overlaps barrier communication. The only runtime overhead is the
 * Section 5 zeroing of allocations (accounted by the Machine) plus the
 * minus_hash/plus_hash deletion work for explicitly ignored structures.
 */

#include "check/checker.hpp"

namespace icheck::check
{

/**
 * Hardware incremental-hashing scheme. See file comment.
 */
class HwInstantCheckInc : public Checker
{
  public:
    explicit HwInstantCheckInc(IgnoreSpec ignore_spec)
        : Checker(std::move(ignore_spec))
    {}

    Scheme scheme() const override { return Scheme::HwInc; }

  protected:
    hashing::ModHash rawStateHash() override;

    /** minus_hash/plus_hash execute in hardware; ~2 instr per byte. */
    double deletionCostPerByte() const override { return 1.0; }
};

} // namespace icheck::check

#endif // ICHECK_CHECK_HW_INC_HPP
