#include "check/report_json.hpp"

#include <cinttypes>
#include <cstdio>

#include "hashing/crc64.hpp"
#include "support/json_escape.hpp"

namespace icheck::check
{

namespace
{

/** Fold one little-endian word into the digest. */
std::uint64_t
digestWord(std::uint64_t crc, std::uint64_t word)
{
    return hashing::Crc64::feedWordLe(crc, word);
}

std::uint64_t
recordsDigest(const DriverReport &report)
{
    std::uint64_t crc = 0;
    for (const RunRecord &record : report.records) {
        crc = digestWord(crc, record.checkpointHashes.size());
        for (const HashWord hash : record.checkpointHashes)
            crc = digestWord(crc, hash);
        crc = digestWord(crc, record.outputHash);
        crc = digestWord(crc, record.outputBytes);
        crc = digestWord(crc, record.result.checkpoints);
        crc = digestWord(crc, record.result.nativeInstrs);
        crc = digestWord(crc, record.result.overheadInstrs);
        crc = digestWord(crc, record.checkerOverheadInstrs);
    }
    return crc;
}

} // namespace

std::string
canonicalDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

std::string
renderReportJson(const DriverReport &report)
{
    char head[256];
    std::snprintf(head, sizeof head,
                  "{\"app\":\"%s\",\"scheme\":\"%s\",\"runs\":%d,"
                  "\"deterministic\":%s,\"firstNdetRun\":%d,"
                  "\"checkpointCountsMatch\":%s,"
                  "\"detPoints\":%" PRIu64 ",\"ndetPoints\":%" PRIu64
                  ",\"detAtEnd\":%s,\"outputDeterministic\":%s,"
                  "\"recordsDigest\":\"%016" PRIx64 "\"",
                  jsonEscapeText(report.app).c_str(),
                  jsonEscapeText(report.scheme).c_str(), report.runs,
                  report.deterministic() ? "true" : "false",
                  report.firstNdetRun,
                  report.checkpointCountsMatch ? "true" : "false",
                  report.detPoints, report.ndetPoints,
                  report.detAtEnd ? "true" : "false",
                  report.outputDeterministic ? "true" : "false",
                  recordsDigest(report));
    std::string json(head);
    json += ",\"avgNativeInstrs\":" +
            canonicalDouble(report.avgNativeInstrs);
    json += ",\"avgOverheadInstrs\":" +
            canonicalDouble(report.avgOverheadInstrs);
    json += ",\"overheadFactor\":" +
            canonicalDouble(report.overheadFactor());
    json += "}";
    return json;
}

} // namespace icheck::check
