#include "check/io_hash.hpp"

#include "hashing/crc64.hpp"

namespace icheck::check
{

void
OutputHasher::onOutput(ThreadId, const std::uint8_t *data, std::size_t len)
{
    crc = hashing::Crc64::compute(data, len, crc);
    total += len;
}

} // namespace icheck::check
