#include "check/sw_tr.hpp"

#include "check/region.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

namespace
{

constexpr InstCount hashInstrPerByte = 5;
constexpr InstCount tableUpdateInstrs = 30; ///< Non-ideal malloc/free cost.
constexpr InstCount blockLookupInstrs = 20; ///< Non-ideal per-block cost.

} // namespace

void
SwInstantCheckTr::attach(sim::Machine &m)
{
    Checker::attach(m);
    m.addListener(this);
}

void
SwInstantCheckTr::onRunStart()
{
    Checker::onRunStart();
    // The initial-state traversal anchors all later hashes as deltas; the
    // paper's prototype compares absolute hashes, which is equivalent when
    // initial states match — deltas additionally make this scheme's output
    // bit-identical to the incremental schemes, which tests exploit.
    initialHash = traverse();
}

void
SwInstantCheckTr::onAlloc(const mem::Block &)
{
    if (!ideal)
        addOverhead(tableUpdateInstrs);
}

void
SwInstantCheckTr::onFree(const mem::Block &)
{
    if (!ideal)
        addOverhead(tableUpdateInstrs);
}

hashing::ModHash
SwInstantCheckTr::traverse()
{
    sim::Machine &m = machine();
    const mem::SparseMemory &image = m.memory();
    hashing::ModHash sum;
    std::size_t bytes = 0;

    for (const mem::GlobalVar &var : m.staticSegment().globals()) {
        sum += hashTypedRegion(pipeline(), image, var.addr, var.type,
                               var.type->size());
        bytes += var.type->size();
    }
    for (const mem::Block *block : m.allocator().liveBlocks()) {
        sum += hashTypedRegion(pipeline(), image, block->addr, block->type,
                               block->size);
        bytes += block->size;
        if (!ideal)
            addOverhead(blockLookupInstrs);
    }
    addOverhead(bytes * hashInstrPerByte);
    lastBytes = bytes;
    return sum;
}

hashing::ModHash
SwInstantCheckTr::rawStateHash()
{
    return traverse() - initialHash;
}

} // namespace icheck::check
