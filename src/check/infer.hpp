#ifndef ICHECK_CHECK_INFER_HPP
#define ICHECK_CHECK_INFER_HPP

/**
 * @file
 * Automatic inference of nondeterministic structures.
 *
 * The paper's small-struct applications require the programmer to name
 * the structures to ignore (cholesky's freeTask list, pbzip2's result
 * pointers, sphinx3's scratch — "easy to identify" by looking at the
 * memory that differs, Section 7.2.1). This module automates that look:
 * run the program under several schedules, diff the final memory states
 * FP-rounding-aware (so benign reassociation noise is not misattributed),
 * attribute every real difference to its owning allocation site or
 * global, and emit the IgnoreSpec that isolates them.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "check/ignore.hpp"
#include "check/localize.hpp"

namespace icheck::check
{

/** Outcome of an inference pass. */
struct InferenceResult
{
    /** The proposed isolation (whole sites and whole globals). */
    IgnoreSpec spec;

    /** Attribution evidence, most-differing owner first. */
    std::vector<DiffSite> evidence;

    /** Pairs of runs compared. */
    int comparisons = 0;

    bool empty() const { return spec.empty(); }
};

/**
 * Infer the nondeterministic structures of programs from @p factory by
 * comparing the final states of @p runs schedules against the first.
 * The machine template's FP rounding settings decide which FP
 * differences count: under rounding, reassociation noise is filtered out
 * before attribution, so only genuinely nondeterministic structures are
 * proposed.
 */
InferenceResult inferIgnores(const ProgramFactory &factory,
                             const sim::MachineConfig &machine_template,
                             int runs, std::uint64_t base_seed = 1000);

} // namespace icheck::check

#endif // ICHECK_CHECK_INFER_HPP
