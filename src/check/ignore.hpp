#ifndef ICHECK_CHECK_IGNORE_HPP
#define ICHECK_CHECK_IGNORE_HPP

/**
 * @file
 * Explicit specification of nondeterministic structures to delete from the
 * State Hash (sections 2.2 and 5).
 *
 * "For advanced users, InstantCheck allows explicitly specifying
 * nondeterministic structures" — e.g., cholesky's freeTask linked list,
 * pbzip2's dangling pointer fields, sphinx3's scratch allocations. Deletion
 * works by adding the hashed initial value of every ignored byte and
 * subtracting its hashed current value.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "mem/alloc.hpp"
#include "mem/static_segment.hpp"
#include "mem/type_desc.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/** A field slice ignored inside every block of one allocation site. */
struct IgnoreField
{
    std::string site;
    std::size_t offset = 0;
    std::size_t width = 0;
};

/**
 * Which parts of the state to delete from the hash before comparison.
 */
struct IgnoreSpec
{
    /** Whole live blocks from these allocation sites. */
    std::vector<std::string> sites;

    /** Field slices within live blocks of a site. */
    std::vector<IgnoreField> fields;

    /** Whole globals by name. */
    std::vector<std::string> globals;

    bool
    empty() const
    {
        return sites.empty() && fields.empty() && globals.empty();
    }
};

/** One concrete address range to delete, with optional type info. */
struct IgnoreRange
{
    Addr addr = 0;
    std::size_t len = 0;
    mem::TypeRef type; ///< Null for raw (bit-by-bit) ranges.
};

/**
 * Resolve @p spec against the current allocator/static-segment state.
 * Called at every checkpoint, because site-based ignores cover blocks
 * allocated at any point during the run.
 */
std::vector<IgnoreRange>
resolveIgnores(const IgnoreSpec &spec,
               const mem::DeterministicAllocator &allocator,
               const mem::StaticSegment &statics);

} // namespace icheck::check

#endif // ICHECK_CHECK_IGNORE_HPP
