#include "check/sw_inc.hpp"

#include "support/logging.hpp"

namespace icheck::check
{

namespace
{

/** The paper's software hashing cost (Jenkins): 5 instructions per byte. */
constexpr InstCount hashInstrPerByte = 5;

/** Non-ideal per-store trampoline: call, loads, branch. */
constexpr InstCount trampolineInstrs = 12;

} // namespace

void
SwInstantCheckInc::attach(sim::Machine &m)
{
    Checker::attach(m);
    m.addListener(this);
}

void
SwInstantCheckInc::onStore(const sim::StoreEvent &event)
{
    // Stores inside a stop_hashing window bypass instrumentation too.
    if (!event.hashed)
        return;
    if (event.tid >= thByThread.size())
        thByThread.resize(event.tid + 1);
    thByThread[event.tid] +=
        pipeline().storeDelta(event.addr, event.oldBits, event.newBits,
                              event.width, event.cls);
    // Old and new value bytes both pass through the software hash.
    addOverhead(2ULL * event.width * hashInstrPerByte);
    if (!ideal)
        addOverhead(trampolineInstrs);
}

hashing::ModHash
SwInstantCheckInc::threadHash(ThreadId tid) const
{
    if (tid >= thByThread.size())
        return hashing::ModHash{};
    return thByThread[tid];
}

hashing::ModHash
SwInstantCheckInc::rawStateHash()
{
    hashing::ModHash sum;
    for (const auto &th : thByThread)
        sum += th;
    addOverhead(thByThread.size());
    return sum;
}

} // namespace icheck::check
