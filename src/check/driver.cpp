#include "check/driver.hpp"

#include <algorithm>
#include <optional>

#include "check/io_hash.hpp"
#include "sim/transport.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

double
DriverReport::overheadFactor() const
{
    if (avgNativeInstrs <= 0.0)
        return 1.0;
    return (avgNativeInstrs + avgOverheadInstrs) / avgNativeInstrs;
}

RunRecord
executeCampaignRun(const DriverConfig &cfg, const ProgramFactory &factory,
                   int run_index, mem::ReplayLog &replay_log,
                   mem::DeterministicAllocator::Mode mode,
                   std::string *app_name)
{
    sim::MachineConfig mc = cfg.machine;
    mc.schedSeed =
        cfg.baseSchedSeed + static_cast<std::uint64_t>(run_index);

    // Declared before the machine so it is destroyed after it: ~Machine
    // drains and detaches the transport while both are still alive.
    std::optional<sim::EventTransport> transport;
    sim::Machine machine(mc, &replay_log, mode);

    auto checker = makeChecker(cfg.scheme, cfg.ignores, cfg.idealCostModel);
    checker->attach(machine);
    OutputHasher output_hasher;
    if (cfg.transport != TransportMode::Off) {
        sim::TransportConfig tc;
        tc.ringCapacity = cfg.transportRingCapacity;
        tc.async = cfg.transport == TransportMode::Async;
        transport.emplace(tc);
        // The output hasher only consumes onOutput: declaring no interest
        // in the access stream at all lets the producer skip record
        // production for every load and store — the transport's headline
        // hot-path win for plain `icheck check` runs.
        sim::ConsumerInterest interest;
        interest.loads = false;
        interest.stores = false;
        interest.storeValues = false;
        transport->addListener(&output_hasher, interest);
        machine.setTransport(&*transport);
    } else {
        machine.addListener(&output_hasher);
    }

    RunRecord record;
    machine.setRunStartHandler([&] { checker->onRunStart(); });
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        record.checkpointHashes.push_back(checker->checkpointHash().raw());
    });

    auto program = factory();
    ICHECK_ASSERT(program != nullptr, "factory returned null");
    if (app_name != nullptr)
        *app_name = program->name();
    record.result = machine.run(*program);
    record.outputHash = output_hasher.value();
    record.outputBytes = output_hasher.bytes();
    record.checkerOverheadInstrs = checker->overheadInstrs();
    return record;
}

DriverReport
analyzeCampaign(const DriverConfig &cfg, std::string app,
                std::vector<RunRecord> records_in)
{
    DriverReport report;
    report.app = std::move(app);
    report.scheme = schemeName(cfg.scheme);
    report.runs = cfg.runs;
    report.records = std::move(records_in);

    const auto &records = report.records;
    ICHECK_ASSERT(!records.empty(), "campaign produced no records");
    std::size_t min_checkpoints = records[0].checkpointHashes.size();
    for (const RunRecord &record : records) {
        if (record.checkpointHashes.size() !=
            records[0].checkpointHashes.size())
            report.checkpointCountsMatch = false;
        min_checkpoints =
            std::min(min_checkpoints, record.checkpointHashes.size());
    }

    report.distributions.reserve(min_checkpoints);
    for (std::size_t cp = 0; cp < min_checkpoints; ++cp) {
        std::vector<HashWord> hashes;
        hashes.reserve(records.size());
        for (const RunRecord &record : records)
            hashes.push_back(record.checkpointHashes[cp]);
        Distribution dist = distributionOf(hashes);
        if (dist.deterministic())
            ++report.detPoints;
        else
            ++report.ndetPoints;
        report.distributions.push_back(std::move(dist));
    }

    // Determinism at the end: the last checkpoint is always ProgramEnd.
    if (min_checkpoints > 0 && report.checkpointCountsMatch) {
        std::vector<HashWord> finals;
        for (const RunRecord &record : records)
            finals.push_back(record.checkpointHashes.back());
        report.detAtEnd = distributionOf(finals).deterministic();
    }

    for (std::size_t i = 1; i < records.size(); ++i) {
        if (records[i].outputHash != records[0].outputHash ||
            records[i].outputBytes != records[0].outputBytes) {
            report.outputDeterministic = false;
            break;
        }
    }

    // First run at which nondeterminism was detectable: the smallest r
    // (1-based) whose hash sequence differs from some earlier run's.
    for (std::size_t r = 1; r < records.size(); ++r) {
        bool differs = false;
        for (std::size_t earlier = 0; earlier < r && !differs; ++earlier) {
            differs =
                records[r].checkpointHashes !=
                    records[earlier].checkpointHashes ||
                records[r].outputHash != records[earlier].outputHash;
        }
        if (differs) {
            report.firstNdetRun = static_cast<int>(r) + 1;
            break;
        }
    }

    double native_sum = 0.0;
    double overhead_sum = 0.0;
    for (const RunRecord &record : records) {
        native_sum += static_cast<double>(record.result.nativeInstrs);
        overhead_sum +=
            static_cast<double>(record.result.overheadInstrs) +
            static_cast<double>(record.checkerOverheadInstrs);
    }
    report.avgNativeInstrs = native_sum / static_cast<double>(cfg.runs);
    report.avgOverheadInstrs = overhead_sum / static_cast<double>(cfg.runs);
    return report;
}

DriverReport
DeterminismDriver::check(const ProgramFactory &factory) const
{
    ICHECK_ASSERT(cfg.runs >= 2, "need at least two runs to compare");

    mem::ReplayLog replay_log;
    std::string app;
    std::vector<RunRecord> records;
    records.reserve(static_cast<std::size_t>(cfg.runs));
    for (int run = 0; run < cfg.runs; ++run) {
        const auto mode = run == 0
                              ? mem::DeterministicAllocator::Mode::Record
                              : mem::DeterministicAllocator::Mode::Replay;
        records.push_back(executeCampaignRun(
            cfg, factory, run, replay_log, mode,
            run == 0 ? &app : nullptr));
    }
    return analyzeCampaign(cfg, std::move(app), std::move(records));
}

sim::RunResult
DeterminismDriver::runNative(const ProgramFactory &factory,
                             std::uint64_t sched_seed) const
{
    sim::MachineConfig mc = cfg.machine;
    mc.schedSeed = sched_seed;
    sim::Machine machine(mc);
    auto program = factory();
    return machine.run(*program);
}

} // namespace icheck::check
