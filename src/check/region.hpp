#ifndef ICHECK_CHECK_REGION_HPP
#define ICHECK_CHECK_REGION_HPP

/**
 * @file
 * Type-aware hashing of memory regions out of a (possibly snapshotted)
 * memory image. Shared by the traversal checker, the ignore-deletion
 * machinery, and the initial-state hashing.
 */

#include "hashing/state_hash.hpp"
#include "mem/memory.hpp"
#include "mem/type_desc.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/**
 * Hash @p len raw bytes at @p addr from @p image (no FP rounding).
 */
hashing::ModHash hashRawRegion(const hashing::StateHasher &hasher,
                               const mem::SparseMemory &image, Addr addr,
                               std::size_t len);

/**
 * Hash a region of shape @p type at @p addr from @p image: float/double
 * scalars pass through the hasher's round-off unit, everything else is
 * hashed bit-by-bit. A null @p type falls back to raw hashing of @p len
 * bytes.
 */
hashing::ModHash hashTypedRegion(const hashing::StateHasher &hasher,
                                 const mem::SparseMemory &image, Addr addr,
                                 const mem::TypeRef &type, std::size_t len);

} // namespace icheck::check

#endif // ICHECK_CHECK_REGION_HPP
