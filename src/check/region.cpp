#include "check/region.hpp"

#include <vector>

#include "support/logging.hpp"

namespace icheck::check
{

hashing::ModHash
hashRawRegion(const hashing::StateHasher &hasher,
              const mem::SparseMemory &image, Addr addr, std::size_t len)
{
    hashing::ModHash sum;
    std::vector<std::uint8_t> buffer(len);
    image.readBytes(addr, buffer.data(), len);
    sum += hasher.spanHash(addr, buffer.data(), len);
    return sum;
}

hashing::ModHash
hashTypedRegion(const hashing::StateHasher &hasher,
                const mem::SparseMemory &image, Addr addr,
                const mem::TypeRef &type, std::size_t len)
{
    if (!type)
        return hashRawRegion(hasher, image, addr, len);

    hashing::ModHash sum;
    type->forEachScalar([&](std::size_t offset, mem::ScalarKind kind,
                            unsigned width) {
        const Addr at = addr + offset;
        if (kind == mem::ScalarKind::Pad) {
            sum += hashRawRegion(hasher, image, at, width);
            return;
        }
        const std::uint64_t bits = image.readValue(at, width);
        sum += hasher.valueHash(at, bits, width, mem::scalarClass(kind));
    });
    return sum;
}

} // namespace icheck::check
