#ifndef ICHECK_CHECK_REPORT_JSON_HPP
#define ICHECK_CHECK_REPORT_JSON_HPP

/**
 * @file
 * Canonical JSON rendering of a campaign verdict.
 *
 * Exactly one function turns a DriverReport into bytes, and both report
 * producers — the one-shot CLI (`icheck check --json`) and the campaign
 * service (`icheck serve`) — call it. Byte-identical reports across the
 * two paths is a tested contract (the service merges sharded work back
 * into the same DriverReport the sequential driver computes, so the
 * rendered bytes must match for any jobs/shard count); keep this
 * renderer deterministic: fixed key order, fixed float formatting, no
 * locale dependence, no timestamps.
 */

#include <string>

#include "check/driver.hpp"

namespace icheck::check
{

/**
 * Render @p report as a single-line JSON object.
 *
 * `recordsDigest` folds every per-run checkpoint hash, output hash, and
 * instruction count into one CRC64, so two reports with equal rendered
 * bytes also agree on the full per-run raw data without embedding it.
 */
std::string renderReportJson(const DriverReport &report);

/** Format a double the way the canonical renderer does ("%.17g"). */
std::string canonicalDouble(double value);

} // namespace icheck::check

#endif // ICHECK_CHECK_REPORT_JSON_HPP
