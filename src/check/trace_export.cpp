#include "check/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "check/checker.hpp"
#include "sim/chrome_trace.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

namespace
{

std::string
hexWord(HashWord word)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(word));
    return buf;
}

/** One traced run: the checkpoint-hash sequence plus the trace builder. */
struct TracedRun
{
    std::vector<HashWord> checkpointHashes;
    sim::ChromeTraceBuilder builder;

    explicit TracedRun(std::string label) : builder(std::move(label)) {}
};

void
traceOneRun(const DriverConfig &cfg, const ProgramFactory &factory,
            int run_index, mem::ReplayLog &replay_log,
            mem::DeterministicAllocator::Mode mode, TracedRun &out)
{
    sim::MachineConfig mc = cfg.machine;
    mc.schedSeed =
        cfg.baseSchedSeed + static_cast<std::uint64_t>(run_index);
    sim::Machine machine(mc, &replay_log, mode);

    auto checker = makeChecker(cfg.scheme, cfg.ignores, cfg.idealCostModel);
    checker->attach(machine);
    machine.addListener(&out.builder);

    machine.setRunStartHandler([&] { checker->onRunStart(); });
    machine.setCheckpointHandler([&](const sim::CheckpointInfo &) {
        out.checkpointHashes.push_back(checker->checkpointHash().raw());
    });

    auto program = factory();
    ICHECK_ASSERT(program != nullptr, "factory returned null");
    machine.run(*program);
}

} // namespace

TraceExportResult
exportCampaignTrace(const DriverConfig &cfg, const ProgramFactory &factory,
                    const DriverReport &report, const std::string &path)
{
    // Run 0 anchors the comparison; the partner is the first run the
    // campaign found to diverge (firstNdetRun is 1-based), or run 1 when
    // everything matched.
    const int partner =
        report.firstNdetRun > 1 ? report.firstNdetRun - 1 : 1;

    mem::ReplayLog replay_log;
    TracedRun first("run 0 (seed " + std::to_string(cfg.baseSchedSeed) +
                    ")");
    TracedRun second("run " + std::to_string(partner) + " (seed " +
                     std::to_string(cfg.baseSchedSeed +
                                    static_cast<std::uint64_t>(partner)) +
                     ")");
    traceOneRun(cfg, factory, 0, replay_log,
                mem::DeterministicAllocator::Mode::Record, first);
    traceOneRun(cfg, factory, partner, replay_log,
                mem::DeterministicAllocator::Mode::Replay, second);

    TraceExportResult result;
    result.runsTraced = 2;
    const std::size_t common = std::min(first.checkpointHashes.size(),
                                        second.checkpointHashes.size());
    for (std::size_t cp = 0; cp < common; ++cp) {
        if (first.checkpointHashes[cp] == second.checkpointHashes[cp])
            continue;
        ++result.divergences;
        const std::string detail =
            hexWord(first.checkpointHashes[cp]) + " vs " +
            hexWord(second.checkpointHashes[cp]);
        first.builder.markDivergence(cp, detail);
        second.builder.markDivergence(cp, detail);
    }
    if (first.checkpointHashes.size() != second.checkpointHashes.size()) {
        ++result.divergences;
        const std::string detail =
            "checkpoint counts differ: " +
            std::to_string(first.checkpointHashes.size()) + " vs " +
            std::to_string(second.checkpointHashes.size());
        first.builder.markDivergence(common, detail);
        second.builder.markDivergence(common, detail);
    }

    const bool ok = sim::writeChromeTraceFile(
        path, {&first.builder, &second.builder});
    if (!ok)
        ICHECK_FATAL("cannot write --trace file '", path, "'");
    return result;
}

} // namespace icheck::check
