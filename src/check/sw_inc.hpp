#ifndef ICHECK_CHECK_SW_INC_HPP
#define ICHECK_CHECK_SW_INC_HPP

/**
 * @file
 * SW-InstantCheck_Inc: software incremental hashing (Section 4.1).
 *
 * Every store is instrumented to subtract the hash of the old value and
 * add the hash of the new value. Under the serializing test scheduler the
 * instrumentation is atomic with the store for free (this is exactly how
 * the paper's prototype achieves atomicity "without using locks").
 * Cost model: 5 instructions per byte hashed; the non-ideal model adds a
 * fixed per-store instrumentation trampoline.
 */

#include <vector>

#include "check/checker.hpp"
#include "sim/listener.hpp"

namespace icheck::check
{

/**
 * Software incremental-hashing scheme. See file comment.
 */
class SwInstantCheckInc : public Checker, public sim::AccessListener
{
  public:
    SwInstantCheckInc(IgnoreSpec ignore_spec, bool ideal_cost_model)
        : Checker(std::move(ignore_spec)), ideal(ideal_cost_model)
    {}

    Scheme scheme() const override { return Scheme::SwInc; }

    void attach(sim::Machine &machine) override;

    void onStore(const sim::StoreEvent &event) override;

    /** Per-thread software Thread Hash (mirrors the TH registers). */
    hashing::ModHash threadHash(ThreadId tid) const;

  protected:
    hashing::ModHash rawStateHash() override;

    /** Two software passes at 5 instr/byte, plus reads. */
    double deletionCostPerByte() const override { return 10.0; }

  private:
    bool ideal;
    std::vector<hashing::ModHash> thByThread;
};

} // namespace icheck::check

#endif // ICHECK_CHECK_SW_INC_HPP
