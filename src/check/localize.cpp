#include "check/localize.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "mem/memory.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

namespace
{

/** One run up to the target checkpoint, with machine kept alive. */
struct SnapshotRun
{
    std::unique_ptr<sim::Machine> machine;
    mem::SparseMemory image;
    bool captured = false;
};

SnapshotRun
runAndSnapshot(const ProgramFactory &factory,
               const sim::MachineConfig &mc, mem::ReplayLog &log,
               mem::DeterministicAllocator::Mode mode,
               std::uint64_t checkpoint_index)
{
    SnapshotRun out;
    out.machine = std::make_unique<sim::Machine>(mc, &log, mode);
    // Instrumentation keeps the memory image canonical (zeroed allocs,
    // scrubbed frees) exactly as during checking.
    out.machine->setInstrumentation(true);
    out.machine->setCheckpointHandler(
        [&](const sim::CheckpointInfo &info) {
            if (info.index == checkpoint_index && !out.captured) {
                out.image = out.machine->memory().clone();
                out.captured = true;
            }
        });
    auto program = factory();
    out.machine->run(*program);
    return out;
}

} // namespace

LocalizeReport
localizeNondeterminism(const ProgramFactory &factory,
                       const sim::MachineConfig &machine_template,
                       std::uint64_t seed_a, std::uint64_t seed_b,
                       std::uint64_t checkpoint_index)
{
    mem::ReplayLog log;

    sim::MachineConfig mc_a = machine_template;
    mc_a.schedSeed = seed_a;
    SnapshotRun run_a =
        runAndSnapshot(factory, mc_a, log,
                       mem::DeterministicAllocator::Mode::Record,
                       checkpoint_index);

    sim::MachineConfig mc_b = machine_template;
    mc_b.schedSeed = seed_b;
    SnapshotRun run_b =
        runAndSnapshot(factory, mc_b, log,
                       mem::DeterministicAllocator::Mode::Replay,
                       checkpoint_index);

    ICHECK_ASSERT(run_a.captured && run_b.captured,
                  "checkpoint ", checkpoint_index, " not reached");

    LocalizeReport report;
    report.checkpointIndex = checkpoint_index;

    struct Accum
    {
        std::string type;
        std::size_t lo = ~std::size_t{0};
        std::size_t hi = 0;
        std::uint64_t bytes = 0;
    };
    std::map<std::string, Accum> by_owner;

    // Attribution uses run A's machine: replayed allocation addresses are
    // identical across the two runs by construction.
    const auto &allocator = run_a.machine->allocator();
    const auto &statics = run_a.machine->staticSegment();

    mem::SparseMemory::diff(
        run_a.image, run_b.image,
        [&](Addr addr, std::uint8_t, std::uint8_t) {
            ++report.totalDiffBytes;
            std::string owner = "unknown";
            std::string type = "?";
            std::size_t offset = 0;
            if (const mem::Block *block = allocator.findHistorical(addr)) {
                owner = "site:" + block->site;
                type = block->type->describe();
                offset = addr - block->addr;
            } else if (const mem::GlobalVar *var =
                           statics.findContaining(addr)) {
                owner = "global:" + var->name;
                type = var->type->describe();
                offset = addr - var->addr;
            }
            Accum &acc = by_owner[owner];
            acc.type = type;
            acc.lo = std::min(acc.lo, offset);
            acc.hi = std::max(acc.hi, offset);
            ++acc.bytes;
        });

    for (const auto &[owner, acc] : by_owner) {
        report.sites.push_back(
            {owner, acc.type, acc.lo, acc.hi, acc.bytes});
    }
    std::sort(report.sites.begin(), report.sites.end(),
              [](const DiffSite &a, const DiffSite &b) {
                  return a.bytes > b.bytes;
              });
    return report;
}

} // namespace icheck::check
