#include "check/checker.hpp"

#include "check/hw_inc.hpp"
#include "check/region.hpp"
#include "check/sw_inc.hpp"
#include "check/sw_tr.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::HwInc: return "HW-InstantCheck-Inc";
      case Scheme::SwInc: return "SW-InstantCheck-Inc";
      case Scheme::SwTr:  return "SW-InstantCheck-Tr";
    }
    ICHECK_PANIC("unknown Scheme");
}

void
Checker::attach(sim::Machine &m)
{
    ICHECK_ASSERT(boundMachine == nullptr, "checker already attached");
    boundMachine = &m;
    hasherPipeline.emplace(m.hasher(), m.effectiveFpMode());
    m.setInstrumentation(true);
}

void
Checker::onRunStart()
{
    // Snapshot the initial image so that ignore deletion can restore the
    // hashed initial bytes of any range, including globals initialized
    // during setup.
    if (!ignores.empty())
        initialImage.emplace(machine().memory().clone());
}

sim::Machine &
Checker::machine()
{
    ICHECK_ASSERT(boundMachine != nullptr, "checker not attached");
    return *boundMachine;
}

const hashing::StateHasher &
Checker::pipeline() const
{
    ICHECK_ASSERT(hasherPipeline.has_value(), "checker not attached");
    return *hasherPipeline;
}

hashing::ModHash
Checker::deletionAdjustment()
{
    if (ignores.empty())
        return hashing::ModHash{};

    const auto ranges =
        resolveIgnores(ignores, machine().allocator(),
                       machine().staticSegment());
    hashing::ModHash adjust;
    std::size_t bytes = 0;
    for (const IgnoreRange &range : ranges) {
        // ominus the current contents...
        adjust -= hashTypedRegion(pipeline(), machine().memory(),
                                  range.addr, range.type, range.len);
        // ...oplus the initial contents. Heap ranges born during the run
        // are zero-initialized, and the snapshot reads them as zero, so
        // using the snapshot is correct for both cases.
        if (initialImage.has_value()) {
            adjust += hashTypedRegion(pipeline(), *initialImage,
                                      range.addr, range.type, range.len);
        }
        bytes += range.len;
    }
    addOverhead(static_cast<InstCount>(
        static_cast<double>(2 * bytes) * deletionCostPerByte()));
    return adjust;
}

hashing::ModHash
Checker::checkpointHash()
{
    return rawStateHash() + deletionAdjustment();
}

std::unique_ptr<Checker>
makeChecker(Scheme scheme, IgnoreSpec ignores, bool ideal_cost_model)
{
    switch (scheme) {
      case Scheme::HwInc:
        return std::make_unique<HwInstantCheckInc>(std::move(ignores));
      case Scheme::SwInc:
        return std::make_unique<SwInstantCheckInc>(std::move(ignores),
                                                   ideal_cost_model);
      case Scheme::SwTr:
        return std::make_unique<SwInstantCheckTr>(std::move(ignores),
                                                  ideal_cost_model);
    }
    ICHECK_PANIC("unknown Scheme");
}

} // namespace icheck::check
