#ifndef ICHECK_CHECK_TRACE_EXPORT_HPP
#define ICHECK_CHECK_TRACE_EXPORT_HPP

/**
 * @file
 * Chrome trace export of a determinism campaign (`icheck check --trace`).
 *
 * Like `--race-log`, this is a side artifact that never changes the
 * verdict: after the campaign it re-runs two representative seeds — run 0
 * and the first nondeterministic run (or run 1 when the campaign was
 * clean) — over the shared malloc-replay log, with a ChromeTraceBuilder
 * attached, and writes one JSON file that chrome://tracing or Perfetto
 * loads directly. Checkpoint hashes of the two runs are compared and any
 * mismatch becomes a "HASH DIVERGENCE" instant marker at that
 * checkpoint's trace time in both runs.
 */

#include <string>

#include "check/driver.hpp"

namespace icheck::check
{

/** What exportCampaignTrace() did, for the CLI's stderr note. */
struct TraceExportResult
{
    int runsTraced = 0;
    int divergences = 0; ///< Checkpoints whose hashes differ across runs.
};

/**
 * Re-run the two selected seeds of the campaign described by (@p cfg,
 * @p factory) and write the combined trace to @p path. @p report is the
 * finished campaign report (selects the second run to trace).
 */
TraceExportResult exportCampaignTrace(const DriverConfig &cfg,
                                      const ProgramFactory &factory,
                                      const DriverReport &report,
                                      const std::string &path);

} // namespace icheck::check

#endif // ICHECK_CHECK_TRACE_EXPORT_HPP
