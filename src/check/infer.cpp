#include "check/infer.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>

#include "hashing/fp_round.hpp"
#include "mem/memory.hpp"
#include "support/logging.hpp"

namespace icheck::check
{

namespace
{

/** One run to completion, capturing the final memory image. */
struct FinalState
{
    std::unique_ptr<sim::Machine> machine;
    mem::SparseMemory image;
};

FinalState
runToEnd(const ProgramFactory &factory, const sim::MachineConfig &mc,
         mem::ReplayLog &log, mem::DeterministicAllocator::Mode mode)
{
    FinalState out;
    out.machine = std::make_unique<sim::Machine>(mc, &log, mode);
    out.machine->setInstrumentation(true);
    out.machine->setCheckpointHandler(
        [&](const sim::CheckpointInfo &info) {
            if (info.kind == sim::CheckpointKind::ProgramEnd)
                out.image = out.machine->memory().clone();
        });
    auto program = factory();
    out.machine->run(*program);
    return out;
}

/** The scalar field layout of one owner, for byte -> field lookup. */
struct ScalarMap
{
    struct Field
    {
        std::size_t offset;
        mem::ScalarKind kind;
        unsigned width;
    };
    std::vector<Field> fields; ///< Sorted by offset.

    const Field *
    containing(std::size_t offset) const
    {
        auto it = std::upper_bound(
            fields.begin(), fields.end(), offset,
            [](std::size_t off, const Field &field) {
                return off < field.offset;
            });
        if (it == fields.begin())
            return nullptr;
        --it;
        return offset < it->offset + it->width ? &*it : nullptr;
    }
};

ScalarMap
scalarMapOf(const mem::TypeRef &type)
{
    ScalarMap map;
    type->forEachScalar([&](std::size_t offset, mem::ScalarKind kind,
                            unsigned width) {
        map.fields.push_back({offset, kind, width});
    });
    return map;
}

} // namespace

InferenceResult
inferIgnores(const ProgramFactory &factory,
             const sim::MachineConfig &machine_template, int runs,
             std::uint64_t base_seed)
{
    ICHECK_ASSERT(runs >= 2, "inference needs at least two runs");

    mem::ReplayLog log;
    sim::MachineConfig mc0 = machine_template;
    mc0.schedSeed = base_seed;
    FinalState reference =
        runToEnd(factory, mc0, log,
                 mem::DeterministicAllocator::Mode::Record);

    const hashing::FpRoundMode mode =
        reference.machine->effectiveFpMode();
    const auto &allocator = reference.machine->allocator();
    const auto &statics = reference.machine->staticSegment();

    struct Accum
    {
        std::string type;
        std::size_t lo = ~std::size_t{0};
        std::size_t hi = 0;
        std::uint64_t bytes = 0;
    };
    std::map<std::string, Accum> by_owner;
    std::map<std::string, ScalarMap> scalar_maps;
    int comparisons = 0;

    for (int run = 1; run < runs; ++run) {
        sim::MachineConfig mc = machine_template;
        mc.schedSeed = base_seed + static_cast<std::uint64_t>(run);
        FinalState other =
            runToEnd(factory, mc, log,
                     mem::DeterministicAllocator::Mode::Replay);
        ++comparisons;

        mem::SparseMemory::diff(
            reference.image, other.image,
            [&](Addr addr, std::uint8_t, std::uint8_t) {
                std::string owner = "unknown";
                std::string type_name = "?";
                Addr base = addr;
                mem::TypeRef type;
                if (const mem::Block *block =
                        allocator.findHistorical(addr)) {
                    owner = "site:" + block->site;
                    type = block->type;
                    base = block->addr;
                } else if (const mem::GlobalVar *var =
                               statics.findContaining(addr)) {
                    owner = "global:" + var->name;
                    type = var->type;
                    base = var->addr;
                }
                if (type) {
                    type_name = type->describe();
                    auto [it, inserted] =
                        scalar_maps.try_emplace(owner);
                    if (inserted)
                        it->second = scalarMapOf(type);
                    // FP-rounding-aware filtering: a differing byte
                    // inside an FP scalar whose *rounded* values agree is
                    // reassociation noise, not nondeterminism.
                    if (const ScalarMap::Field *field =
                            it->second.containing(addr - base)) {
                        const auto cls = mem::scalarClass(field->kind);
                        if (hashing::isFpClass(cls)) {
                            const Addr faddr = base + field->offset;
                            const std::uint64_t a =
                                reference.image.readValue(faddr,
                                                          field->width);
                            const std::uint64_t b =
                                other.image.readValue(faddr,
                                                      field->width);
                            if (hashing::roundFpBits(a, field->width,
                                                     mode) ==
                                hashing::roundFpBits(b, field->width,
                                                     mode)) {
                                return; // noise under the active mode
                            }
                        }
                    }
                }
                Accum &acc = by_owner[owner];
                acc.type = type_name;
                acc.lo = std::min(acc.lo, std::size_t(addr - base));
                acc.hi = std::max(acc.hi, std::size_t(addr - base));
                ++acc.bytes;
            });
    }

    InferenceResult result;
    result.comparisons = comparisons;
    for (const auto &[owner, acc] : by_owner) {
        result.evidence.push_back(
            {owner, acc.type, acc.lo, acc.hi, acc.bytes});
        if (owner.rfind("site:", 0) == 0)
            result.spec.sites.push_back(owner.substr(5));
        else if (owner.rfind("global:", 0) == 0)
            result.spec.globals.push_back(owner.substr(7));
    }
    std::sort(result.evidence.begin(), result.evidence.end(),
              [](const DiffSite &a, const DiffSite &b) {
                  return a.bytes > b.bytes;
              });
    return result;
}

} // namespace icheck::check
