#ifndef ICHECK_CHECK_LOCALIZE_HPP
#define ICHECK_CHECK_LOCALIZE_HPP

/**
 * @file
 * The bug-localization prototype of Section 2.3.
 *
 * When InstantCheck flags a nondeterministic checkpoint, this tool
 * re-executes the two differing runs, stores the *entire* memory state at
 * that checkpoint (not just the hash), diffs the two states, and maps each
 * differing address back to the allocation site (plus offset within the
 * block) or global variable that owns it.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "check/driver.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/** One differing region attributed to its owner. */
struct DiffSite
{
    std::string owner;      ///< "site:<alloc site>" or "global:<name>".
    std::string type;       ///< Declared shape of the owning region.
    std::size_t offsetLo;   ///< First differing offset within the owner.
    std::size_t offsetHi;   ///< Last differing offset within the owner.
    std::uint64_t bytes;    ///< Number of differing bytes attributed.
};

/** Result of one localization. */
struct LocalizeReport
{
    std::uint64_t checkpointIndex = 0;
    std::uint64_t totalDiffBytes = 0;
    std::vector<DiffSite> sites; ///< Sorted by bytes, descending.
};

/**
 * Re-execute runs with scheduler seeds @p seed_a and @p seed_b, snapshot
 * memory at checkpoint @p checkpoint_index, and attribute the differences.
 *
 * @param factory          Program factory.
 * @param machine_template Machine configuration (input seed, cores, ...).
 * @param seed_a           Scheduler seed of the first run.
 * @param seed_b           Scheduler seed of the second run.
 * @param checkpoint_index Index of the nondeterministic checkpoint.
 */
LocalizeReport localizeNondeterminism(const ProgramFactory &factory,
                                      const sim::MachineConfig
                                          &machine_template,
                                      std::uint64_t seed_a,
                                      std::uint64_t seed_b,
                                      std::uint64_t checkpoint_index);

} // namespace icheck::check

#endif // ICHECK_CHECK_LOCALIZE_HPP
