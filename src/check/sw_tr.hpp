#ifndef ICHECK_CHECK_SW_TR_HPP
#define ICHECK_CHECK_SW_TR_HPP

/**
 * @file
 * SW-InstantCheck_Tr: software traversal hashing (Section 4.2).
 *
 * At every checkpoint this scheme walks the entire state — static data and
 * the table of live allocated blocks — hashing each byte, with FP fields
 * located via the allocation-site type annotations and rounded before
 * hashing. Reported hashes are deltas from the initial-state traversal so
 * they are directly comparable (and, by construction, bit-identical) to
 * the incremental schemes' hashes.
 *
 * Cost model: 5 instructions per traversed byte; the non-ideal model adds
 * allocation-table maintenance (per malloc/free) and per-block lookups.
 */

#include "check/checker.hpp"
#include "sim/listener.hpp"

namespace icheck::check
{

/**
 * Software traversal scheme. See file comment.
 */
class SwInstantCheckTr : public Checker, public sim::AccessListener
{
  public:
    SwInstantCheckTr(IgnoreSpec ignore_spec, bool ideal_cost_model)
        : Checker(std::move(ignore_spec)), ideal(ideal_cost_model)
    {}

    Scheme scheme() const override { return Scheme::SwTr; }

    void attach(sim::Machine &machine) override;
    void onRunStart() override;

    void onAlloc(const mem::Block &block) override;
    void onFree(const mem::Block &block) override;

    /** Bytes visited by the most recent traversal. */
    std::size_t lastTraversalBytes() const { return lastBytes; }

  protected:
    hashing::ModHash rawStateHash() override;

    /** Deletion is a skip during traversal; already paid for. */
    double deletionCostPerByte() const override { return 0.0; }

  private:
    /** Hash statics plus all live blocks out of current memory. */
    hashing::ModHash traverse();

    bool ideal;
    hashing::ModHash initialHash;
    std::size_t lastBytes = 0;
};

} // namespace icheck::check

#endif // ICHECK_CHECK_SW_TR_HPP
