#include "check/ignore.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace icheck::check
{

std::vector<IgnoreRange>
resolveIgnores(const IgnoreSpec &spec,
               const mem::DeterministicAllocator &allocator,
               const mem::StaticSegment &statics)
{
    std::vector<IgnoreRange> ranges;
    if (spec.empty())
        return ranges;

    const auto live = allocator.liveBlocks();
    for (const std::string &site : spec.sites) {
        for (const mem::Block *block : live) {
            if (block->site == site)
                ranges.push_back({block->addr, block->size, block->type});
        }
    }
    for (const IgnoreField &field : spec.fields) {
        for (const mem::Block *block : live) {
            if (block->site != field.site)
                continue;
            ICHECK_ASSERT(field.offset + field.width <= block->size,
                          "ignore field outside block from ", field.site);
            ranges.push_back({block->addr + field.offset, field.width,
                              nullptr});
        }
    }
    for (const std::string &name : spec.globals) {
        const Addr addr = statics.addressOf(name);
        const mem::GlobalVar *var = statics.findContaining(addr);
        ICHECK_ASSERT(var != nullptr, "unknown ignore global ", name);
        ranges.push_back({var->addr, var->type->size(), var->type});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const IgnoreRange &a, const IgnoreRange &b) {
                  return a.addr < b.addr;
              });
    return ranges;
}

} // namespace icheck::check
