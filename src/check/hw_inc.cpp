#include "check/hw_inc.hpp"

namespace icheck::check
{

hashing::ModHash
HwInstantCheckInc::rawStateHash()
{
    // SH = TH_0 oplus TH_1 oplus ... (Section 2.2). Every parked thread's
    // TH is architectural in its SimThread; the machine synced the
    // checkpointing thread's TH before invoking us.
    sim::Machine &m = machine();
    hashing::ModHash sum;
    for (ThreadId tid = 0; tid < m.numThreads(); ++tid)
        sum += hashing::ModHash(m.threadHash(tid));
    // Summing N 64-bit registers in software: a handful of instructions.
    addOverhead(m.numThreads());
    return sum;
}

} // namespace icheck::check
