#ifndef ICHECK_CHECK_CHECKER_HPP
#define ICHECK_CHECK_CHECKER_HPP

/**
 * @file
 * The InstantCheck scheme interface and shared machinery.
 *
 * Three schemes compute the same State Hash with different costs:
 *   - HwInstantCheckInc  (Section 3): per-core MHM hardware; negligible
 *     overhead (only the Section 5 allocation zeroing).
 *   - SwInstantCheckInc  (Section 4.1): instrumented stores hashed in
 *     software at 5 instructions per byte.
 *   - SwInstantCheckTr   (Section 4.2): full state traversal at every
 *     checkpoint, using the allocation table's type annotations.
 *
 * All schemes report hashes as deltas from the run's initial state, so two
 * runs from the same input state compare equal exactly when their states
 * are equal (modulo FP rounding and ignored structures).
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "check/ignore.hpp"
#include "hashing/mod_hash.hpp"
#include "hashing/state_hash.hpp"
#include "sim/machine.hpp"
#include "support/types.hpp"

namespace icheck::check
{

/** Which InstantCheck scheme to use. */
enum class Scheme
{
    HwInc,
    SwInc,
    SwTr,
};

/** Printable scheme name. */
std::string schemeName(Scheme scheme);

/**
 * One attached determinism checker. Lifecycle:
 *   attach(machine) -> machine.run() { onRunStart(); checkpointHash()* }.
 * A checker instance serves exactly one run.
 */
class Checker
{
  public:
    virtual ~Checker() = default;

    /** Scheme identity. */
    virtual Scheme scheme() const = 0;

    /**
     * Bind to @p machine: subscribe listeners and enable the Section 5
     * instrumentation (zero-on-allocate, scrub-on-free).
     */
    virtual void attach(sim::Machine &machine);

    /** Called after setup, before the first thread runs. */
    virtual void onRunStart();

    /**
     * The State Hash at the current quiescent point, as a delta from the
     * initial state, with ignored structures deleted.
     */
    hashing::ModHash checkpointHash();

    /**
     * Software instructions this scheme spent so far (hashing, traversal,
     * deletion). The machine separately accounts the zeroing stores, which
     * are common to all schemes.
     */
    InstCount overheadInstrs() const { return swOverhead; }

  protected:
    explicit Checker(IgnoreSpec ignore_spec)
        : ignores(std::move(ignore_spec))
    {}

    /** Raw State Hash delta, before ignore deletion. */
    virtual hashing::ModHash rawStateHash() = 0;

    /** Per-byte software cost of the scheme's deletion pass. */
    virtual double deletionCostPerByte() const = 0;

    /** The machine this checker is attached to. */
    sim::Machine &machine();

    /** The hashing pipeline matching the machine's MHM configuration. */
    const hashing::StateHasher &pipeline() const;

    /** Account @p n software instructions to this scheme. */
    void addOverhead(InstCount n) { swOverhead += n; }

    /**
     * Deletion adjustment: oplus hash(initial bytes) ominus hash(current
     * bytes) over every resolved ignore range (Section 2.2).
     */
    hashing::ModHash deletionAdjustment();

    IgnoreSpec ignores;

  private:
    sim::Machine *boundMachine = nullptr;
    std::optional<hashing::StateHasher> hasherPipeline;
    std::optional<mem::SparseMemory> initialImage;
    InstCount swOverhead = 0;
};

/** Construct a checker of @p scheme with @p ignores. */
std::unique_ptr<Checker> makeChecker(Scheme scheme, IgnoreSpec ignores = {},
                                     bool ideal_cost_model = true);

} // namespace icheck::check

#endif // ICHECK_CHECK_CHECKER_HPP
