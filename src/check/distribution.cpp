#include "check/distribution.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace icheck::check
{

std::string
Distribution::render() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i > 0)
            os << "-";
        os << counts[i];
    }
    return os.str();
}

Distribution
distributionOf(const std::vector<HashWord> &hashes)
{
    // Ordered map, not unordered: the bucket walk below feeds counts
    // whose grouping reaches DriverReport, so its order must not depend
    // on hash-table layout.
    std::map<HashWord, std::uint32_t> buckets;
    for (HashWord hash : hashes)
        ++buckets[hash];
    Distribution dist;
    dist.counts.reserve(buckets.size());
    for (const auto &[hash, count] : buckets)
        dist.counts.push_back(count);
    std::sort(dist.counts.begin(), dist.counts.end(),
              std::greater<std::uint32_t>());
    return dist;
}

std::map<Distribution, std::uint64_t>
groupDistributions(const std::vector<Distribution> &per_checkpoint)
{
    std::map<Distribution, std::uint64_t> groups;
    for (const Distribution &dist : per_checkpoint)
        ++groups[dist];
    return groups;
}

} // namespace icheck::check
