#ifndef ICHECK_CHECK_DISTRIBUTION_HPP
#define ICHECK_CHECK_DISTRIBUTION_HPP

/**
 * @file
 * Nondeterminism distributions (figures 5 and 8).
 *
 * For one checkpoint observed across N runs, the distribution is the
 * multiset of "how many runs produced each distinct state", sorted
 * descending — e.g. {16, 11, 3} means three distinct states were seen, in
 * 16, 11, and 3 runs respectively. {30} means the checkpoint was
 * deterministic across all 30 runs. The figures group checkpoints that
 * share a distribution.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace icheck::check
{

/**
 * Distribution of distinct states at one checkpoint across runs.
 */
struct Distribution
{
    /** Run counts per distinct state, descending. */
    std::vector<std::uint32_t> counts;

    /** True if a single state was observed. */
    bool deterministic() const { return counts.size() <= 1; }

    /** Render as "16-11-3". */
    std::string render() const;

    bool operator==(const Distribution &) const = default;
    bool operator<(const Distribution &other) const
    {
        return counts < other.counts;
    }
};

/** Distribution of the hashes observed at one checkpoint. */
Distribution distributionOf(const std::vector<HashWord> &hashes);

/**
 * Group checkpoints by identical distribution: distribution -> number of
 * checkpoints exhibiting it (the D_1..D_k groups of Fig 5).
 */
std::map<Distribution, std::uint64_t>
groupDistributions(const std::vector<Distribution> &per_checkpoint);

} // namespace icheck::check

#endif // ICHECK_CHECK_DISTRIBUTION_HPP
