#include "sim/machine.hpp"

#include <algorithm>
#include <sstream>

#include "sim/context.hpp"
#include "sim/transport.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace icheck::sim
{

namespace
{

/** Modeled instruction cost of a synchronization operation. */
constexpr InstCount syncCost = 10;

/** Modeled instruction cost of one allocator call. */
constexpr InstCount allocCost = 50;

/** Modeled instruction cost of one intercepted library call. */
constexpr InstCount libCallCost = 5;

/** Slice-end classification of a thread's yield reason. */
SliceEnd
sliceEndFor(YieldReason reason)
{
    switch (reason) {
      case YieldReason::Quantum:
        return SliceEnd::Preempted;
      case YieldReason::Sync:
        return SliceEnd::Yielded;
      case YieldReason::BlockedMutex:
      case YieldReason::BlockedBarrier:
      case YieldReason::BlockedCond:
        return SliceEnd::Blocked;
      case YieldReason::Finished:
        return SliceEnd::Finished;
    }
    return SliceEnd::Yielded;
}

/** Mix one word into a running signature hash. */
std::uint64_t
mixSig(std::uint64_t acc, std::uint64_t word)
{
    std::uint64_t z = acc ^ (word + 0x9e3779b97f4a7c15ULL +
                             (acc << 6) + (acc >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 31);
}

} // namespace

Machine::Machine(const MachineConfig &config, mem::ReplayLog *shared_log,
                 mem::DeterministicAllocator::Mode alloc_mode)
    : cfg(config),
      heap(shared_log ? *shared_log : privateLog, alloc_mode),
      locHasher(hashing::makeLocationHasher(config.hasherKind)),
      usesPrivateLog(shared_log == nullptr)
{
    ICHECK_ASSERT(cfg.numCores > 0, "machine needs at least one core");
    cores.reserve(cfg.numCores);
    for (CoreId id = 0; id < cfg.numCores; ++id) {
        cores.push_back(std::make_unique<Core>(
            id, cfg.cacheCfg, cfg.wbCapacity, cfg.wbPolicy,
            cfg.schedSeed ^ (0x9e37ULL + id),
            mhm::makeMhm(*locHasher, cfg.mhmCfg)));
    }
}

Machine::~Machine()
{
    if (threadsLive)
        abortAll();
    // Backstop: never leave a transport holding a dangling machine
    // pointer (its drain stage replays access sites into the machine).
    if (transport != nullptr)
        setTransport(nullptr);
}

void
Machine::setScheduler(std::unique_ptr<Scheduler> sched)
{
    scheduler = std::move(sched);
}

void
Machine::addListener(AccessListener *listener)
{
    ICHECK_ASSERT(listener != nullptr, "null listener");
    listeners.push_back(listener);
}

void
Machine::removeListener(AccessListener *listener)
{
    listeners.erase(
        std::remove(listeners.begin(), listeners.end(), listener),
        listeners.end());
}

void
Machine::setTransport(EventTransport *t)
{
    if (transport == t)
        return;
    if (transport != nullptr)
        transport->unbind();
    transport = t;
    if (transport != nullptr)
        transport->bind(*this);
}

void
Machine::setRunStartHandler(std::function<void()> handler)
{
    runStartHandler = std::move(handler);
}

void
Machine::setCheckpointHandler(
    std::function<void(const CheckpointInfo &)> handler)
{
    checkpointHandler = std::move(handler);
}

void
Machine::setDecisionHandler(
    std::function<void(const std::vector<ThreadId> &)> handler)
{
    decisionHandler = std::move(handler);
}

hashing::FpRoundMode
Machine::effectiveFpMode() const
{
    return cfg.fpRoundingEnabled ? cfg.mhmCfg.fpMode
                                 : hashing::FpRoundMode::none();
}

HashWord
Machine::threadHash(ThreadId tid) const
{
    ICHECK_ASSERT(tid < threads.size(), "bad thread id");
    return threads[tid]->savedTh;
}

std::uint64_t
Machine::threadProgress(ThreadId tid) const
{
    ICHECK_ASSERT(tid < threads.size(), "bad thread id");
    return threads[tid]->progress;
}

std::uint64_t
Machine::stateSignature() const
{
    // A sound (modulo hash collisions) fingerprint of the whole simulated
    // state while every thread is parked: memory (sum of TH registers),
    // each thread's local state (progress + load history + scheduling
    // state), and the synchronization-object states.
    std::uint64_t sig = 0x1c5;
    std::uint64_t th_sum = 0;
    for (const auto &thread : threads) {
        th_sum += thread->savedTh;
        sig = mixSig(sig, thread->progress);
        sig = mixSig(sig, thread->loadHash);
        sig = mixSig(sig, static_cast<std::uint64_t>(thread->state));
        sig = mixSig(sig, thread->randCalls);
        sig = mixSig(sig, thread->timeCalls);
    }
    sig = mixSig(sig, th_sum);
    for (const auto &mutex : mutexes) {
        sig = mixSig(sig, mutex.owner);
        for (ThreadId waiter : mutex.waiters)
            sig = mixSig(sig, waiter + 1);
    }
    for (const auto &barrier : barriers) {
        sig = mixSig(sig, barrier.arrived);
        sig = mixSig(sig, barrier.epoch);
        for (ThreadId waiter : barrier.waiters)
            sig = mixSig(sig, waiter + 1);
    }
    for (const auto &cond : conds) {
        sig = mixSig(sig, cond.waiters.size());
        for (ThreadId waiter : cond.waiters)
            sig = mixSig(sig, waiter + 1);
    }
    return sig;
}

MutexId
Machine::createMutex()
{
    mutexes.emplace_back();
    return static_cast<MutexId>(mutexes.size() - 1);
}

BarrierId
Machine::createBarrier(std::uint32_t parties)
{
    ICHECK_ASSERT(parties > 0, "barrier needs parties");
    SimBarrier barrier;
    barrier.parties = parties;
    barriers.push_back(barrier);
    return static_cast<BarrierId>(barriers.size() - 1);
}

CondId
Machine::createCond()
{
    conds.emplace_back();
    return static_cast<CondId>(conds.size() - 1);
}

void
Machine::beginRun(Program &prog)
{
    ICHECK_ASSERT(!ran, "a Machine executes exactly one run");
    ran = true;
    program = &prog;

    // Phase 1: single-threaded setup builds the input state.
    {
        SetupCtx sctx(*this);
        prog.setup(sctx);
    }

    // Phase 2: arm hashing hardware.
    for (auto &core : cores) {
        core->mhm->reset();
        if (cfg.hashingArmed)
            core->mhm->startHashing();
        if (cfg.fpRoundingEnabled)
            core->mhm->startFpRounding();
        else
            core->mhm->stopFpRounding();
    }
    if (runStartHandler)
        runStartHandler();

    // Phase 3: spawn simulated threads.
    if (!scheduler) {
        scheduler = std::make_unique<RandomScheduler>(
            cfg.schedSeed, cfg.minQuantum, cfg.maxQuantum, cfg.migrateProb);
    }
    const ThreadId n_threads = prog.numThreads();
    ICHECK_ASSERT(n_threads > 0, "program needs threads");
    threads.clear();
    for (ThreadId tid = 0; tid < n_threads; ++tid)
        threads.push_back(std::make_unique<SimThread>(tid));
    threadsLive = true;
    for (ThreadId tid = 0; tid < n_threads; ++tid)
        threads[tid]->fiber.start([this, tid] { threadEntry(tid); });
}

RunResult
Machine::finishRun()
{
    ICHECK_ASSERT(ran && program != nullptr,
                  "finishRun() before beginRun()");

    // Phase 4: the serializing scheduler loop. Alive/runnable are derived
    // from the thread states each iteration (not carried across
    // iterations), so the loop resumes correctly from any restored
    // mid-run state.
    std::vector<ThreadId> runnable;
    for (;;) {
        std::uint32_t alive = 0;
        runnable.clear();
        for (const auto &thread : threads) {
            if (thread->state != ThreadState::Finished)
                ++alive;
            if (thread->state == ThreadState::Ready)
                runnable.push_back(thread->tid);
        }
        if (alive == 0)
            break;
        if (runnable.empty()) {
            abortAll();
            throw SimError("deadlock: no runnable thread (" +
                           std::to_string(alive) + " alive)");
        }
        // Decision-coupled transport consumers (DporTracker, HbTracker)
        // must have observed every event of the closed slice before the
        // decision handler reads them.
        if (transport != nullptr)
            transport->drainAtDecision();
        if (decisionHandler)
            decisionHandler(runnable);
        const ThreadId tid = scheduler->pick(runnable);
        SimThread &thread = *threads[tid];
        const CoreId home = tid % cfg.numCores;
        const CoreId core_id = scheduler->coreFor(tid, home, cfg.numCores);

        switchIn(tid, core_id);
        emitSlice(tid, core_id, /*begin=*/true, SliceEnd::Running);
        thread.quantum = static_cast<std::int64_t>(scheduler->quantum());
        thread.state = ThreadState::Running;
        thread.fiber.resume();
        switchOut(tid);
        emitSlice(tid, core_id, /*begin=*/false,
                  sliceEndFor(thread.lastReason));

        switch (thread.lastReason) {
          case YieldReason::Quantum:
          case YieldReason::Sync:
            thread.state = ThreadState::Ready;
            break;
          case YieldReason::BlockedMutex:
            thread.state = ThreadState::BlockedMutex;
            break;
          case YieldReason::BlockedBarrier:
            thread.state = ThreadState::BlockedBarrier;
            break;
          case YieldReason::BlockedCond:
            thread.state = ThreadState::BlockedCond;
            break;
          case YieldReason::Finished:
            thread.state = ThreadState::Finished;
            break;
        }
        statistics.add("slices");
    }

    for (auto &thread : threads)
        thread->fiber.join();
    threadsLive = false;

    // Phase 5: program-end determinism checkpoint.
    fireCheckpoint(CheckpointKind::ProgramEnd, invalidThreadId);

    // Every published record must reach its consumers before the caller
    // reads listener state off the finished run.
    if (transport != nullptr)
        transport->drainAll();

    RunResult result;
    result.checkpoints = checkpointIndex;
    for (const auto &core : cores) {
        result.nativeInstrs += core->nativeInstrs;
        result.overheadInstrs += core->overheadInstrs;
        result.cacheHits += core->l1.hits();
        result.cacheMisses += core->l1.misses();
        result.storesHashed += core->mhm->storesHashed();
    }
    return result;
}

RunResult
Machine::run(Program &prog)
{
    beginRun(prog);
    return finishRun();
}

bool
Machine::snapshotSupported()
{
    return SimFiber::snapshotSupported();
}

std::shared_ptr<const MachineSnapshot>
Machine::checkpoint()
{
    ICHECK_ASSERT(snapshotSupported(),
                  "checkpoint() in a build without fiber snapshots");
    ICHECK_ASSERT(ran && curTid == invalidThreadId,
                  "checkpoint() outside a quiescent point");
    ICHECK_ASSERT(usesPrivateLog,
                  "checkpoint() requires a private malloc-replay log");

    // Consumer state is part of what the snapshot captures conceptually;
    // make sure nothing is still in flight before forking the machine.
    if (transport != nullptr)
        transport->drainAll();

    auto snap = std::make_shared<MachineSnapshot>();
    snap->mem = mem.fork();
    snap->logState = privateLog;
    snap->heapState = heap.saveState();

    snap->coreStates.reserve(cores.size());
    for (const auto &core : cores) {
        MachineSnapshot::CoreState cs;
        cs.nativeInstrs = core->nativeInstrs;
        cs.overheadInstrs = core->overheadInstrs;
        cs.l1 = core->l1;
        cs.wb = core->wb;
        cs.mhm = core->mhm->saveState();
        cs.currentThread = core->currentThread;
        snap->coreStates.push_back(std::move(cs));
    }

    snap->threadStates.reserve(threads.size());
    std::size_t fiber_bytes = 0;
    for (const auto &thread : threads) {
        MachineSnapshot::ThreadSnap ts;
        ts.state = thread->state;
        ts.lastReason = thread->lastReason;
        ts.hashingPaused = thread->hashingPaused;
        ts.quantum = thread->quantum;
        ts.savedTh = thread->savedTh;
        ts.lastCore = thread->lastCore;
        ts.randCalls = thread->randCalls;
        ts.timeCalls = thread->timeCalls;
        ts.progress = thread->progress;
        ts.loadHash = thread->loadHash;
        ts.fiber = thread->fiber.snapshot();
        fiber_bytes += ts.fiber.bytes();
        snap->threadStates.push_back(std::move(ts));
    }

    snap->mutexes = mutexes;
    snap->barriers = barriers;
    snap->conds = conds;
    snap->outputBytes = outputBytes;
    snap->statistics = statistics;
    snap->checkpointIndex = checkpointIndex;

    // Footprint estimate for cache budgeting: fiber images and output
    // dominate; shared COW pages cost only their map entries until a
    // write clones them, and the allocator tables are approximated per
    // block.
    snap->footprint = sizeof(MachineSnapshot) + fiber_bytes +
                      snap->outputBytes.capacity() +
                      mem.mappedPages() * 64 +
                      snap->heapState.blocks.size() * 192;
    return snap;
}

void
Machine::restore(const MachineSnapshot &snap)
{
    ICHECK_ASSERT(ran && curTid == invalidThreadId,
                  "restore() while a thread is running");
    ICHECK_ASSERT(snap.coreStates.size() == cores.size() &&
                      snap.threadStates.size() == threads.size(),
                  "snapshot from a different machine shape");

    if (transport != nullptr)
        transport->drainAll();

    mem.restoreFrom(snap.mem);
    privateLog = snap.logState;
    heap.restoreState(snap.heapState);

    for (std::size_t i = 0; i < cores.size(); ++i) {
        const MachineSnapshot::CoreState &cs = snap.coreStates[i];
        cores[i]->nativeInstrs = cs.nativeInstrs;
        cores[i]->overheadInstrs = cs.overheadInstrs;
        cores[i]->l1 = cs.l1;
        cores[i]->wb = cs.wb;
        cores[i]->mhm->restoreState(cs.mhm);
        cores[i]->currentThread = cs.currentThread;
    }

    for (std::size_t i = 0; i < threads.size(); ++i) {
        const MachineSnapshot::ThreadSnap &ts = snap.threadStates[i];
        SimThread &thread = *threads[i];
        thread.state = ts.state;
        thread.lastReason = ts.lastReason;
        thread.aborting = false;
        thread.hashingPaused = ts.hashingPaused;
        thread.quantum = ts.quantum;
        thread.savedTh = ts.savedTh;
        thread.lastCore = ts.lastCore;
        thread.randCalls = ts.randCalls;
        thread.timeCalls = ts.timeCalls;
        thread.progress = ts.progress;
        thread.loadHash = ts.loadHash;
        thread.fiber.restore(ts.fiber);
    }

    mutexes = snap.mutexes;
    barriers = snap.barriers;
    conds = snap.conds;
    outputBytes = snap.outputBytes;
    statistics = snap.statistics;
    checkpointIndex = snap.checkpointIndex;

    curTid = invalidThreadId;
    curCore = invalidCoreId;
    threadsLive = true;
}

void
Machine::threadEntry(ThreadId tid)
{
    SimThread &thread = *threads[tid];
    if (thread.aborting)
        return;
    try {
        ThreadCtx ctx(*this, tid);
        emitSync(SyncKind::ThreadStart, tid);
        program->threadMain(ctx);
        emitSync(SyncKind::ThreadFinish, tid);
    } catch (const AbortRun &) {
        return;
    }
    // Returning ends the fiber's slice; the scheduler sees Finished.
    thread.lastReason = YieldReason::Finished;
}

void
Machine::yieldCurrent(YieldReason reason)
{
    SimThread &thread = cur();
    thread.lastReason = reason;
    thread.fiber.yield();
    if (thread.aborting)
        throw AbortRun{};
}

void
Machine::step()
{
    SimThread &thread = cur();
    if (--thread.quantum <= 0)
        yieldCurrent(YieldReason::Quantum);
}

SimThread &
Machine::cur()
{
    ICHECK_ASSERT(curTid != invalidThreadId, "no current thread");
    return *threads[curTid];
}

Core &
Machine::curCoreRef()
{
    ICHECK_ASSERT(curCore != invalidCoreId, "no current core");
    return *cores[curCore];
}

void
Machine::switchIn(ThreadId tid, CoreId core_id)
{
    SimThread &thread = *threads[tid];
    Core &core = *cores[core_id];
    // restore_hash: the thread's TH becomes architectural on this core.
    core.mhm->restoreHash(thread.savedTh);
    if (thread.hashingPaused || !cfg.hashingArmed)
        core.mhm->stopHashing();
    else
        core.mhm->startHashing();
    core.currentThread = tid;
    if (thread.lastCore != invalidCoreId && thread.lastCore != core_id)
        statistics.add("migrations");
    thread.lastCore = core_id;
    curTid = tid;
    curCore = core_id;
}

void
Machine::switchOut(ThreadId tid)
{
    SimThread &thread = *threads[tid];
    Core &core = *cores[thread.lastCore];
    drainWriteBuffer(core);
    // save_hash: park the TH register value with the thread.
    thread.savedTh = core.mhm->saveHash();
    curTid = invalidThreadId;
    curCore = invalidCoreId;
}

void
Machine::drainWriteBuffer(Core &core)
{
    core.wb.drainAll([this, &core](const cache::WriteBufferEntry &entry) {
        drainEntry(core, entry);
    });
}

void
Machine::drainEntry(Core &core, const cache::WriteBufferEntry &entry)
{
    // The write updates the L1 (write-allocate: hit or fill, either way
    // Data_old is available to the MHM without an extra access).
    core.l1.access(entry.paddr, true);
    // Stores retired inside a stop_hashing window bypass the MHM.
    if (entry.hashed) {
        core.mhm->observeStore(entry.vaddr(), entry.oldBits,
                               entry.newBits, entry.width, entry.cls);
    }
}

std::uint64_t
Machine::loadAccess(Addr addr, unsigned width)
{
    Core &core = curCoreRef();
    SimThread &thread = cur();
    const std::uint64_t bits = mem.readValue(addr, width);
    ++core.nativeInstrs;
    ++thread.progress;
    thread.loadHash = mixSig(thread.loadHash, bits);
    core.l1.access(cache::translate(addr), false);
    if (!listeners.empty()) {
        LoadEvent event{curTid, core.id, addr, width};
        for (auto *listener : listeners)
            listener->onLoad(event);
    }
    if (transport != nullptr && transport->wantsLoads()) {
        if (trackAccessSites && transport->wantsSites())
            transport->publishSite(core.id, siteFile, siteLine);
        // Build the listener event in place in the ring slot: the same
        // stores the synchronous path pays, plus only the commit.
        EventRecord *slot = transport->beginPublish(core.id);
        slot->kind = EventKind::Load;
        slot->load = LoadEvent{curTid, core.id, addr, width};
        transport->commitPublish(core.id);
    }
    step();
    return bits;
}

void
Machine::storeAccess(Addr addr, unsigned width, std::uint64_t bits,
                     hashing::ValueClass cls, CostDomain domain)
{
    Core &core = curCoreRef();
    SimThread &thread = cur();
    const bool hashed = cfg.hashingArmed && !thread.hashingPaused;
    const bool viaTransport =
        transport != nullptr && transport->wantsStores();
    // The old value is consumed only by the MHM and by event consumers.
    // When the hash gate is closed, nobody listens synchronously, and no
    // transport consumer declared an interest in store values, skip the
    // read entirely — safe because write buffers are drained before the
    // gate ever flips, so no hashed=true entry can be in flight while
    // hashed is false here. The interest mask is the transport's hot-path
    // win: synchronous dispatch had to materialize the old value for
    // every listener, values-blind ones (the race detector) included.
    const bool observed = hashed || !listeners.empty() ||
                          (viaTransport && transport->wantsStoreValues());
    const std::uint64_t old_bits =
        observed ? mem.readValue(addr, width) : 0;
    mem.writeValue(addr, width, bits);
    if (domain == CostDomain::Native) {
        ++core.nativeInstrs;
        ++thread.progress;
        cache::WriteBufferEntry entry;
        entry.paddr = cache::translate(addr);
        entry.vpn = addr / cache::vpnPageSize;
        entry.width = width;
        entry.oldBits = old_bits;
        entry.newBits = bits;
        entry.cls = cls;
        entry.hashed = hashed;
        core.wb.push(entry,
                     [this, &core](const cache::WriteBufferEntry &e) {
                         drainEntry(core, e);
                     });
    } else {
        // InstantCheck-added store (zeroing/scrubbing): modeled as software
        // writes, so they bypass the cache model but still update the hash.
        ++core.overheadInstrs;
        core.mhm->observeStore(addr, old_bits, bits, width, cls);
    }

    if (!listeners.empty()) {
        StoreEvent event{curTid, core.id, addr, old_bits, bits,
                         width, cls, domain, hashed};
        for (auto *listener : listeners)
            listener->onStore(event);
    }
    if (viaTransport) {
        if (trackAccessSites && transport->wantsSites())
            transport->publishSite(core.id, siteFile, siteLine);
        EventRecord *slot = transport->beginPublish(core.id);
        slot->kind = EventKind::Store;
        slot->store = StoreEvent{curTid, core.id,   addr,
                                 old_bits, bits,    width,
                                 cls,      domain,  hashed};
        transport->commitPublish(core.id);
    }

    if (domain == CostDomain::Native)
        step();
}

void
Machine::tick(InstCount n)
{
    curCoreRef().nativeInstrs += n;
}

void
Machine::zeroRange(Addr addr, std::size_t len)
{
    Addr cursor = addr;
    std::size_t remaining = len;
    while (remaining > 0) {
        const unsigned width =
            remaining >= 8 ? 8 : static_cast<unsigned>(remaining);
        storeAccess(cursor, width, 0, hashing::ValueClass::Integer,
                    CostDomain::Overhead);
        cursor += width;
        remaining -= width;
    }
}

void
Machine::scrubTyped(Addr addr, const mem::TypeRef &type)
{
    // Scrubbing must cancel exactly what incremental hashing accumulated:
    // FP fields were hashed through the round-off unit, so their zeroing
    // stores must carry the same value class (old value rounded, new value
    // 0.0 — which rounds to itself).
    type->forEachScalar([&](std::size_t offset, mem::ScalarKind kind,
                            unsigned width) {
        const Addr at = addr + offset;
        if (kind == mem::ScalarKind::Float ||
            kind == mem::ScalarKind::Double) {
            storeAccess(at, width, 0, mem::scalarClass(kind),
                        CostDomain::Overhead);
        } else {
            zeroRange(at, width);
        }
    });
}

Addr
Machine::allocBlock(const std::string &site, const mem::TypeRef &type)
{
    Core &core = curCoreRef();
    // A real allocator serializes internally; model its lock so the
    // happens-before race detector sees the edge that orders a block's
    // free (by one thread) before its reuse (by another).
    emitSync(SyncKind::LockAcquire, curTid, allocatorLockId);
    const Addr addr = heap.allocate(site, type);
    core.nativeInstrs += allocCost;
    const mem::Block *block = heap.findLive(addr);
    ICHECK_ASSERT(block != nullptr, "allocation lost");
    for (auto *listener : listeners)
        listener->onAlloc(*block);
    if (transport != nullptr && transport->armed())
        transport->publishBlock(eventRing(), EventKind::Alloc, *block);
    if (instrumentation)
        zeroRange(addr, type->size());
    emitSync(SyncKind::LockRelease, curTid, allocatorLockId);
    statistics.add("allocs");
    return addr;
}

void
Machine::freeBlock(Addr addr)
{
    Core &core = curCoreRef();
    emitSync(SyncKind::LockAcquire, curTid, allocatorLockId);
    const mem::Block *block = heap.findLive(addr);
    ICHECK_ASSERT(block != nullptr, "free of unknown block at ", addr);
    for (auto *listener : listeners)
        listener->onFree(*block);
    if (transport != nullptr && transport->armed())
        transport->publishBlock(eventRing(), EventKind::Free, *block);
    // Scrub the freed contents through the hashed store path so that freed
    // memory leaves the tracked state (and the hash never sees stale
    // garbage on reuse).
    if (instrumentation)
        scrubTyped(addr, block->type);
    heap.free(addr);
    emitSync(SyncKind::LockRelease, curTid, allocatorLockId);
    core.nativeInstrs += allocCost / 2;
    statistics.add("frees");
}

void
Machine::lockMutex(MutexId id)
{
    ICHECK_ASSERT(id < mutexes.size(), "bad mutex id");
    // The pre-acquire switch point executes nothing, but it moves this
    // thread to a new resume position; count it so state signatures can
    // tell "parked at the acquire" from "not yet called lock" (otherwise
    // state pruning merges the two and silently drops schedules).
    ++cur().progress;
    yieldCurrent(YieldReason::Sync);
    SimThread &thread = cur();
    SimMutex &mutex = mutexes[id];
    while (mutex.owner != invalidThreadId) {
        ICHECK_ASSERT(mutex.owner != thread.tid,
                      "recursive lock of mutex ", id);
        mutex.waiters.push_back(thread.tid);
        yieldCurrent(YieldReason::BlockedMutex);
    }
    mutex.owner = thread.tid;
    ++thread.progress;
    curCoreRef().nativeInstrs += syncCost;
    emitSync(SyncKind::LockAcquire, thread.tid, id);
}

void
Machine::unlockMutex(MutexId id)
{
    ICHECK_ASSERT(id < mutexes.size(), "bad mutex id");
    SimThread &thread = cur();
    SimMutex &mutex = mutexes[id];
    ICHECK_ASSERT(mutex.owner == thread.tid,
                  "unlock by non-owner of mutex ", id);
    emitSync(SyncKind::LockRelease, thread.tid, id);
    mutex.owner = invalidThreadId;
    ++thread.progress;
    for (ThreadId waiter : mutex.waiters)
        threads[waiter]->state = ThreadState::Ready;
    mutex.waiters.clear();
    curCoreRef().nativeInstrs += syncCost;
}

void
Machine::barrierWait(BarrierId id)
{
    ICHECK_ASSERT(id < barriers.size(), "bad barrier id");
    // Pre-arrival switch point: same progress accounting as lockMutex.
    ++cur().progress;
    yieldCurrent(YieldReason::Sync);
    SimThread &thread = cur();
    SimBarrier &barrier = barriers[id];
    const std::uint64_t epoch = barrier.epoch;
    emitSync(SyncKind::BarrierArrive, thread.tid, id, epoch);
    ++thread.progress;
    curCoreRef().nativeInstrs += syncCost;
    ++barrier.arrived;
    if (barrier.arrived == barrier.parties) {
        barrier.arrived = 0;
        ++barrier.epoch;
        // The last arriver computes the determinism checkpoint while every
        // other participant is parked — the state is quiescent, and the
        // hash gathering overlaps the barrier as described in Section 2.2.
        fireCheckpoint(CheckpointKind::Barrier, thread.tid);
        for (ThreadId waiter : barrier.waiters)
            threads[waiter]->state = ThreadState::Ready;
        barrier.waiters.clear();
        emitSync(SyncKind::BarrierLeave, thread.tid, id, epoch);
        yieldCurrent(YieldReason::Sync);
    } else {
        barrier.waiters.push_back(thread.tid);
        yieldCurrent(YieldReason::BlockedBarrier);
        emitSync(SyncKind::BarrierLeave, thread.tid, id, epoch);
    }
}

void
Machine::condWait(CondId cond, MutexId mutex)
{
    ICHECK_ASSERT(cond < conds.size(), "bad cond id");
    SimThread &thread = cur();
    emitSync(SyncKind::CondWait, thread.tid, cond);
    unlockMutex(mutex);
    conds[cond].waiters.push_back(thread.tid);
    yieldCurrent(YieldReason::BlockedCond);
    lockMutex(mutex);
}

void
Machine::condSignal(CondId cond)
{
    ICHECK_ASSERT(cond < conds.size(), "bad cond id");
    emitSync(SyncKind::CondSignal, cur().tid, cond);
    auto &waiters = conds[cond].waiters;
    if (!waiters.empty()) {
        threads[waiters.front()]->state = ThreadState::Ready;
        waiters.erase(waiters.begin());
    }
    curCoreRef().nativeInstrs += syncCost;
}

void
Machine::condBroadcast(CondId cond)
{
    ICHECK_ASSERT(cond < conds.size(), "bad cond id");
    emitSync(SyncKind::CondSignal, cur().tid, cond);
    for (ThreadId waiter : conds[cond].waiters)
        threads[waiter]->state = ThreadState::Ready;
    conds[cond].waiters.clear();
    curCoreRef().nativeInstrs += syncCost;
}

void
Machine::manualCheckpoint()
{
    fireCheckpoint(CheckpointKind::Manual, cur().tid);
}

void
Machine::setThreadHashing(bool enabled)
{
    // start_hashing / stop_hashing (Fig 4): tool code running in the
    // checked thread's address space is excluded from hashing. Applies to
    // the current core's MHM immediately and travels with the thread
    // across context switches.
    SimThread &thread = cur();
    thread.hashingPaused = !enabled;
    Core &core = curCoreRef();
    // Drain buffered (hashed) stores before flipping the gate so they
    // still reach the MHM with their original status.
    drainWriteBuffer(core);
    if (enabled && cfg.hashingArmed)
        core.mhm->startHashing();
    else
        core.mhm->stopHashing();
}

void
Machine::fireCheckpoint(CheckpointKind kind, ThreadId tid)
{
    if (tid != invalidThreadId) {
        // Make the current thread's TH architectural before summing: drain
        // its write buffer and save the register.
        SimThread &thread = *threads[tid];
        Core &core = *cores[thread.lastCore];
        drainWriteBuffer(core);
        thread.savedTh = core.mhm->saveHash();
    }
    CheckpointInfo info{kind, checkpointIndex++, tid};
    statistics.add("checkpoints");
    for (auto *listener : listeners)
        listener->onCheckpoint(info);
    if (transport != nullptr && transport->armed()) {
        EventRecord rec{};
        rec.kind = EventKind::Checkpoint;
        rec.checkpoint.index = info.index;
        rec.checkpoint.tid = tid;
        rec.checkpoint.kind = static_cast<std::uint8_t>(kind);
        const std::size_t ring =
            tid != invalidThreadId ? threads[tid]->lastCore : 0;
        transport->publish(ring, rec);
    }
    if (checkpointHandler)
        checkpointHandler(info);
}

void
Machine::emitSync(SyncKind kind, ThreadId tid, std::uint32_t object,
                  std::uint64_t epoch)
{
    if (!listeners.empty()) {
        SyncEvent event{kind, tid, object, epoch};
        for (auto *listener : listeners)
            listener->onSync(event);
    }
    if (transport != nullptr && transport->armed()) {
        EventRecord rec{};
        rec.kind = EventKind::Sync;
        rec.sync.epoch = epoch;
        rec.sync.tid = tid;
        rec.sync.object = object;
        rec.sync.kind = static_cast<std::uint8_t>(kind);
        transport->publish(eventRing(), rec);
    }
}

void
Machine::emitSlice(ThreadId tid, CoreId core_id, bool begin,
                   SliceEnd reason)
{
    if (!listeners.empty()) {
        SliceEvent event{tid, core_id, begin, reason};
        for (auto *listener : listeners)
            listener->onSlice(event);
    }
    if (transport != nullptr && transport->armed()) {
        EventRecord rec{};
        rec.kind = EventKind::Slice;
        rec.slice.tid = tid;
        rec.slice.core = core_id;
        rec.slice.begin = begin ? 1 : 0;
        rec.slice.reason = static_cast<std::uint8_t>(reason);
        transport->publish(core_id, rec);
    }
}

std::uint64_t
Machine::interceptedRand()
{
    // Section 5: results of nondeterministic library calls are treated as
    // input and repeat across runs — keyed by (input seed, tid, call #) so
    // each thread's sequence is schedule-independent.
    SimThread &thread = cur();
    SplitMix64 gen(cfg.inputSeed ^ (0x517cc1b727220a95ULL *
                                    (thread.tid + 1)) ^
                   thread.randCalls);
    ++thread.randCalls;
    curCoreRef().nativeInstrs += libCallCost;
    const std::uint64_t value = gen.next();
    thread.loadHash = mixSig(thread.loadHash, value);
    return value;
}

std::uint64_t
Machine::interceptedTimeUs()
{
    SimThread &thread = cur();
    const std::uint64_t value = 1'000'000'000ULL +
        static_cast<std::uint64_t>(thread.tid) * 1'000'000ULL +
        thread.timeCalls * 37ULL;
    ++thread.timeCalls;
    curCoreRef().nativeInstrs += libCallCost;
    return value;
}

void
Machine::writeOutput(const std::uint8_t *data, std::size_t len)
{
    outputBytes.insert(outputBytes.end(), data, data + len);
    for (auto *listener : listeners)
        listener->onOutput(curTid, data, len);
    if (transport != nullptr && transport->armed())
        transport->publishOutput(eventRing(), curTid, data, len);
    curCoreRef().nativeInstrs += len / 8 + 1;
}

std::string
Machine::renderStats() const
{
    std::ostringstream os;
    os << "---------- machine ----------\n";
    os << statistics.render();
    os << "memory.mapped_pages=" << mem.mappedPages() << "\n";
    os << "memory.static_bytes=" << statics.bytes() << "\n";
    os << "heap.live_bytes=" << heap.liveBytes() << "\n";
    os << "heap.allocations=" << heap.allocationCount() << "\n";
    os << "output.bytes=" << outputBytes.size() << "\n";
    for (const auto &core : cores) {
        os << "---------- core " << core->id << " ----------\n";
        os << "instrs.native=" << core->nativeInstrs << "\n";
        os << "instrs.overhead=" << core->overheadInstrs << "\n";
        os << "l1.hits=" << core->l1.hits() << "\n";
        os << "l1.misses=" << core->l1.misses() << "\n";
        os << "l1.writebacks=" << core->l1.writebacks() << "\n";
        os << "mhm.stores_hashed=" << core->mhm->storesHashed() << "\n";
        os << "mhm.bytes_hashed=" << core->mhm->bytesHashed() << "\n";
        os << "mhm.th=" << core->mhm->th().raw() << "\n";
    }
    return os.str();
}

void
Machine::abortAll()
{
    // Resume every unfinished body once with the abort flag set: a parked
    // one throws AbortRun from its yield and unwinds its stack (running
    // destructors of everything it holds); a never-started one sees the
    // flag on entry and returns immediately.
    for (auto &thread : threads) {
        if (thread->state != ThreadState::Finished &&
            !thread->fiber.finished()) {
            thread->aborting = true;
            thread->fiber.resume();
        }
    }
    for (auto &thread : threads)
        thread->fiber.join();
    threadsLive = false;
}

} // namespace icheck::sim
