#include "sim/transport.hpp"

#include <algorithm>

#include "sim/machine.hpp"
#include "support/logging.hpp"

namespace icheck::sim
{

EventTransport::EventTransport(TransportConfig config) : cfg(config) {}

EventTransport::~EventTransport()
{
    // The machine detaches on destruction, but guard against a transport
    // outliving an explicit setTransport(nullptr) race-free anyway.
    if (machine != nullptr)
        unbind();
    stopConsumer();
}

void
EventTransport::addListener(AccessListener *listener,
                            ConsumerInterest interest)
{
    ICHECK_ASSERT(machine == nullptr,
                  "register transport consumers before bind()");
    ICHECK_ASSERT(listener != nullptr, "null transport consumer");
    consumers.push_back(Consumer{listener, interest});
    recomputeInterest();
}

void
EventTransport::removeListener(AccessListener *listener)
{
    consumers.erase(
        std::remove_if(consumers.begin(), consumers.end(),
                       [listener](const Consumer &c) {
                           return c.listener == listener;
                       }),
        consumers.end());
    recomputeInterest();
}

void
EventTransport::recomputeInterest()
{
    unionInterest = ConsumerInterest{false, false, false, false, false};
    anyDecisionCoupled = false;
    for (const Consumer &c : consumers) {
        unionInterest.loads |= c.interest.loads;
        unionInterest.stores |= c.interest.stores || c.interest.storeValues;
        unionInterest.storeValues |= c.interest.storeValues;
        unionInterest.accessSites |= c.interest.accessSites;
        anyDecisionCoupled |= c.interest.decisionCoupled;
    }
    // Site replay writes into the machine's attribution slot, which only
    // makes sense from the producing thread between its own accesses.
    ICHECK_ASSERT(!(cfg.async && unionInterest.accessSites),
                  "access-site replay requires the inline drain");
}

void
EventTransport::bind(Machine &m)
{
    ICHECK_ASSERT(machine == nullptr, "transport already bound");
    machine = &m;
    // With the inline drain and no consumer on the access stream every
    // surviving event is delivered by its own producer in program order,
    // so the rings would only ever hold one record at a time: dispatch
    // synchronously instead and skip the per-run ring allocation. Fixed
    // for the whole bind — interests cannot grow while bound, so a
    // ring-mode bind never needs to become direct mid-run.
    direct = !cfg.async && !unionInterest.loads && !unionInterest.stores &&
             !unionInterest.storeValues && !unionInterest.accessSites;
    if (!direct) {
        const std::size_t n = std::max<std::size_t>(m.numCores(), 1);
        rings = std::make_unique<EventRing[]>(n);
        ringCount = n;
        for (std::size_t i = 0; i < n; ++i)
            rings[i].init(cfg.ringCapacity);
    }
    published.store(0, std::memory_order_relaxed);
    delivered.store(0, std::memory_order_relaxed);
    fullStalls = 0;
    lastRing = 0;
    if (cfg.async && armed())
        startConsumer();
}

void
EventTransport::unbind()
{
    if (machine == nullptr)
        return;
    drainAll();
    stopConsumer();
    machine = nullptr;
    rings.reset();
    ringCount = 0;
    direct = false;
}

void
EventTransport::deliverDirect(const EventRecord &rec)
{
    published.store(published.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    deliver(rec);
    delivered.store(delivered.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
}

EventRecord *
EventTransport::reserveSlow(EventRing &ring)
{
    ++fullStalls;
    if (!cfg.async) {
        // Inline overflow policy: the producer is the consumer, so drain
        // everything published so far and retry. Delivery happens in seq
        // order either way, so a mid-slice drain is invisible.
        drainReadyNow();
        EventRecord *slot = ring.tryReserve();
        ICHECK_ASSERT(slot != nullptr,
                      "ring still full after an inline drain");
        return slot;
    }
    // Async overflow policy: block (never drop) until the drain thread
    // frees a slot.
    for (;;) {
        EventRecord *slot = ring.tryReserve();
        if (slot != nullptr)
            return slot;
        std::this_thread::yield();
    }
}

void
EventTransport::publishSite(std::size_t ring, const char *file,
                            std::int32_t line)
{
    EventRecord rec{};
    rec.kind = EventKind::Site;
    rec.site.file = file;
    rec.site.line = line;
    publish(ring, rec);
}

void
EventTransport::publishBlock(std::size_t ring, EventKind kind,
                             const mem::Block &block)
{
    if (direct) {
        published.store(published.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
        for (const Consumer &c : consumers) {
            if (kind == EventKind::Alloc)
                c.listener->onAlloc(block);
            else
                c.listener->onFree(block);
        }
        delivered.store(delivered.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
        return;
    }
    std::uint64_t index;
    {
        std::lock_guard<std::mutex> lock(side.mu);
        index = side.blocks.size();
        side.blocks.push_back(block);
    }
    EventRecord rec{};
    rec.kind = kind;
    rec.block.sideIndex = index;
    publish(ring, rec);
}

void
EventTransport::publishOutput(std::size_t ring, ThreadId tid,
                              const std::uint8_t *data, std::size_t len)
{
    if (direct) {
        published.store(published.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
        for (const Consumer &c : consumers)
            c.listener->onOutput(tid, data, len);
        delivered.store(delivered.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
        return;
    }
    std::uint64_t index;
    {
        std::lock_guard<std::mutex> lock(side.mu);
        index = side.outputs.size();
        side.outputs.emplace_back(data, data + len);
    }
    EventRecord rec{};
    rec.kind = EventKind::Output;
    rec.output.sideIndex = index;
    rec.output.tid = tid;
    rec.output.len = static_cast<std::uint32_t>(len);
    publish(ring, rec);
}

const EventRecord *
EventTransport::peekSeq(std::uint64_t want, std::size_t &ring)
{
    // Production is serialized (exactly one simulated thread runs at a
    // time) and seq numbers are dense, so exactly one ring fronts the
    // record with seq == want. Start at the ring that produced the
    // previous record — schedule slices make runs of same-ring records
    // the common case, so the scan usually stops on its first probe.
    const std::size_t n = ringCount;
    std::size_t r = lastRing;
    for (std::size_t i = 0; i < n; ++i) {
        const EventRecord *front = rings[r].front();
        if (front != nullptr && front->seq == want) {
            lastRing = r;
            ring = r;
            return front;
        }
        if (++r == n)
            r = 0;
    }
    return nullptr;
}

void
EventTransport::deliver(const EventRecord &rec)
{
    switch (rec.kind) {
      case EventKind::Store: {
        // The record embeds the listener event verbatim: dispatch
        // straight from the ring slot, no decode.
        for (const Consumer &c : consumers)
            if (c.interest.stores || c.interest.storeValues)
                c.listener->onStore(rec.store);
        break;
      }
      case EventKind::Load: {
        for (const Consumer &c : consumers)
            if (c.interest.loads)
                c.listener->onLoad(rec.load);
        break;
      }
      case EventKind::Site: {
        // Attribution for the access record that follows, replayed into
        // the machine's site slot just as the producer set it.
        if (machine != nullptr)
            machine->noteAccessSite(rec.site.file, rec.site.line);
        break;
      }
      case EventKind::Sync: {
        SyncEvent event{static_cast<SyncKind>(rec.sync.kind),
                        rec.sync.tid, rec.sync.object, rec.sync.epoch};
        for (const Consumer &c : consumers)
            c.listener->onSync(event);
        break;
      }
      case EventKind::Alloc:
      case EventKind::Free: {
        const mem::Block *block;
        {
            std::lock_guard<std::mutex> lock(side.mu);
            block = &side.blocks[rec.block.sideIndex];
        }
        // Deque references are stable; reading outside the lock is fine
        // because entries are append-only and never mutated.
        for (const Consumer &c : consumers) {
            if (rec.kind == EventKind::Alloc)
                c.listener->onAlloc(*block);
            else
                c.listener->onFree(*block);
        }
        break;
      }
      case EventKind::Output: {
        const std::vector<std::uint8_t> *bytes;
        {
            std::lock_guard<std::mutex> lock(side.mu);
            bytes = &side.outputs[rec.output.sideIndex];
        }
        for (const Consumer &c : consumers)
            c.listener->onOutput(rec.output.tid, bytes->data(),
                                 bytes->size());
        break;
      }
      case EventKind::Slice: {
        SliceEvent event{rec.slice.tid, rec.slice.core,
                         rec.slice.begin != 0,
                         static_cast<SliceEnd>(rec.slice.reason)};
        for (const Consumer &c : consumers)
            c.listener->onSlice(event);
        break;
      }
      case EventKind::Checkpoint: {
        CheckpointInfo info{static_cast<CheckpointKind>(
                                rec.checkpoint.kind),
                            rec.checkpoint.index, rec.checkpoint.tid};
        for (const Consumer &c : consumers)
            c.listener->onCheckpoint(info);
        break;
      }
    }
}

void
EventTransport::drainReadyNow()
{
    // The drainer here is the producing thread itself (inline mode, or
    // async before/after the consumer thread's lifetime), so every
    // published record is immediately visible: deliver straight from the
    // ring slots with plain counters and write `delivered` back once at
    // the end, instead of paying atomic bookkeeping per event.
    std::uint64_t done = delivered.load(std::memory_order_relaxed);
    const std::uint64_t target =
        published.load(std::memory_order_acquire);
    if (done == target)
        return;
    std::size_t r = 0;
    while (done < target) {
        const EventRecord *rec = peekSeq(done + 1, r);
        ICHECK_ASSERT(rec != nullptr,
                      "published record missing from every ring front");
        deliver(*rec);
        rings[r].popFront();
        ++done;
    }
    delivered.store(target, std::memory_order_release);
}

void
EventTransport::waitDelivered(std::uint64_t target)
{
    while (delivered.load(std::memory_order_acquire) < target)
        std::this_thread::yield();
}

void
EventTransport::consumerLoop()
{
    std::uint64_t done = delivered.load(std::memory_order_relaxed);
    std::size_t r = 0;
    for (;;) {
        if (done < published.load(std::memory_order_acquire)) {
            // The acquire read of `published` synchronizes with the
            // producer's release store, which follows the slot write, so
            // the record is visible; the yield branch is pure defense.
            const EventRecord *rec = peekSeq(done + 1, r);
            if (rec != nullptr) {
                deliver(*rec);
                rings[r].popFront();
                ++done;
                // Per-event (not batched): the producer blocks on this
                // counter at decision boundaries and run end.
                delivered.store(done, std::memory_order_release);
                continue;
            }
            std::this_thread::yield();
            continue;
        }
        if (stopRequested.load(std::memory_order_acquire))
            return;
        std::this_thread::yield();
    }
}

void
EventTransport::startConsumer()
{
    if (consumerRunning)
        return;
    stopRequested.store(false, std::memory_order_relaxed);
    drainThread = std::thread([this] { consumerLoop(); });
    consumerRunning = true;
}

void
EventTransport::stopConsumer()
{
    if (!consumerRunning)
        return;
    stopRequested.store(true, std::memory_order_release);
    drainThread.join();
    consumerRunning = false;
}

void
EventTransport::drainAtDecision()
{
    if (!armed() || direct)
        return;
    if (!cfg.async) {
        drainReadyNow();
        return;
    }
    // Async: only decision-coupled consumers (DPOR, HB pruning) need
    // their state current before the decision handler runs.
    if (anyDecisionCoupled)
        waitDelivered(published.load(std::memory_order_relaxed));
}

void
EventTransport::drainAll()
{
    if (!armed() || direct)
        return;
    if (cfg.async && consumerRunning)
        waitDelivered(published.load(std::memory_order_relaxed));
    else
        drainReadyNow();
}

} // namespace icheck::sim
