#ifndef ICHECK_SIM_TRANSPORT_HPP
#define ICHECK_SIM_TRANSPORT_HPP

/**
 * @file
 * Ring-buffer event transport: the decoupled alternative to the machine's
 * synchronous listener dispatch.
 *
 * The machine publishes POD EventRecords into one SPSC ring per simulated
 * core with plain index arithmetic; a consumer stage replays them — in
 * global sequence order — into ordinary AccessListeners, so FastTrack,
 * DporTracker, AccessAttributor, the trace listeners, and the output
 * hasher all work unchanged. Two drain modes:
 *
 *  - inline (default): the producing thread drains every ring at each
 *    scheduling decision and whenever a ring fills. Deterministic by
 *    construction — there is only one thread.
 *  - async: a dedicated drain thread consumes continuously; the producer
 *    blocks when a ring is full and at decision boundaries if any
 *    consumer is decision-coupled. Overflow policy: block, never drop.
 *
 * Either way every record is delivered exactly once in seq order, so the
 * listener end-state — and therefore every checker/race report — is
 * byte-identical to the synchronous path, at any ring capacity and with
 * any number of campaign jobs (each run owns its private transport).
 *
 * Consumers declare an interest mask. Production is gated on the union of
 * interests, which is where the hot-path win comes from: a run whose only
 * consumer is the race detector (no store values needed) skips the
 * old-value memory read that synchronous dispatch always paid for.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/alloc.hpp"
#include "sim/event_ring.hpp"
#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

class Machine;

/** What a consumer needs from the record stream. */
struct ConsumerInterest
{
    /** Deliver loads (they dominate event volume). */
    bool loads = true;

    /** Deliver stores. A consumer that keys off neither kind of access
     *  (the output hasher) lets the producer skip record production for
     *  the entire access stream — the biggest interest-mask win. */
    bool stores = true;

    /** Records must carry old/new store values (forces the producer's
     *  old-value read, exactly like synchronous dispatch did). Implies
     *  stores. */
    bool storeValues = true;

    /** Records carry the access call site; replayed into the machine's
     *  attribution slot before each dispatch. Inline drain only. */
    bool accessSites = false;

    /** Consumer state is read at scheduling decisions (DporTracker,
     *  HbTracker under --prune hb): async drain must catch up before
     *  every decision handler runs. */
    bool decisionCoupled = false;
};

/** Transport shape; embedded in check::DriverConfig and the CLI flags. */
struct TransportConfig
{
    /** Slots per core ring (rounded up to a power of two, min 1). */
    std::size_t ringCapacity = 1024;

    /** Drain on a dedicated consumer thread instead of inline. */
    bool async = false;
};

/**
 * The transport instance: per-core rings, the global sequence counter,
 * the consumer registry, and the drain stage. One per Machine per run;
 * bind with Machine::setTransport().
 */
class EventTransport
{
  public:
    explicit EventTransport(TransportConfig config = {});
    ~EventTransport();

    EventTransport(const EventTransport &) = delete;
    EventTransport &operator=(const EventTransport &) = delete;

    /** Register @p listener (not owned) with its interest mask. Must
     *  happen before bind(). */
    void addListener(AccessListener *listener,
                     ConsumerInterest interest = {});

    /** Remove a previously added listener (pending records are still
     *  delivered to the remaining consumers). */
    void removeListener(AccessListener *listener);

    /// @name Machine-facing API.
    /// @{

    /** Size the rings for @p machine and start the async consumer if
     *  configured. Called by Machine::setTransport(). */
    void bind(Machine &machine);

    /** Drain everything published, then detach from the machine. Called
     *  by Machine::setTransport(nullptr) and ~Machine(). */
    void unbind();

    bool armed() const { return !consumers.empty(); }

    /** True when records bypass the rings entirely: with the inline
     *  drain and no consumer interest in the access stream, every event
     *  left (sync/slice/checkpoint/alloc/free/output) is produced and
     *  consumed by the producing thread in program order, so the
     *  transport dispatches it synchronously — no per-run ring
     *  allocation, no side-table copy, no drain at decisions. The
     *  daemon and plain `icheck check` (output hasher only) land here. */
    bool directDispatch() const { return direct; }

    bool wantsLoads() const { return unionInterest.loads; }
    bool wantsStores() const { return unionInterest.stores; }
    bool wantsStoreValues() const { return unionInterest.storeValues; }
    bool wantsSites() const { return unionInterest.accessSites; }

    /**
     * Producer hot path, two-phase: reserve the next slot of @p ring with
     * the sequence number already stamped, fill the payload in place, and
     * commitPublish(). Building the record directly in the slot costs
     * exactly what the synchronous path paid to build its listener event
     * — no copy, no second build at delivery. On a full ring the overflow
     * policy kicks in: inline mode drains everything now (delivery order
     * is seq order either way, so mid-slice drains are invisible to
     * consumers), async mode blocks until the drain thread frees a slot.
     */
    EventRecord *
    beginPublish(std::size_t ring)
    {
        EventRing &r = rings[ring];
        EventRecord *slot = r.tryReserve();
        if (slot == nullptr)
            slot = reserveSlow(r);
        slot->seq = published.load(std::memory_order_relaxed) + 1;
        return slot;
    }

    /** Make the slot from beginPublish() visible to the consumer. */
    void
    commitPublish(std::size_t ring)
    {
        rings[ring].commit();
        published.store(published.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
    }

    /** Single-shot publish of a prebuilt record (cold event kinds). */
    void
    publish(std::size_t ring, const EventRecord &rec)
    {
        if (direct) {
            deliverDirect(rec);
            return;
        }
        EventRecord *slot = beginPublish(ring);
        const std::uint64_t seq = slot->seq;
        *slot = rec;
        slot->seq = seq;
        commitPublish(ring);
    }

    /** Publish the call-site attribution for the access record that
     *  immediately follows (lint runs; inline drain only). */
    void publishSite(std::size_t ring, const char *file,
                     std::int32_t line);

    /** Copy @p block into the side table and publish an alloc/free
     *  record (rare events; the Block payload is not a POD). */
    void publishBlock(std::size_t ring, EventKind kind,
                      const mem::Block &block);

    /** Copy @p data into the side table and publish an output record. */
    void publishOutput(std::size_t ring, ThreadId tid,
                       const std::uint8_t *data, std::size_t len);

    /**
     * Decision-boundary hook, called by the machine while every thread is
     * parked. Inline mode drains all rings; async mode waits for the
     * drain thread only when a decision-coupled consumer is registered.
     */
    void drainAtDecision();

    /** Deliver every published record (blocks until the async consumer
     *  catches up). The run-end and checkpoint barrier. */
    void drainAll();
    /// @}

    /// @name Observability.
    /// @{
    std::uint64_t publishedCount() const
    {
        return published.load(std::memory_order_relaxed);
    }
    std::uint64_t deliveredCount() const
    {
        return delivered.load(std::memory_order_relaxed);
    }
    /** Times a producer hit a full ring (inline: forced drains; async:
     *  blocking waits). */
    std::uint64_t overflowStalls() const { return fullStalls; }
    /// @}

  private:
    struct Consumer
    {
        AccessListener *listener;
        ConsumerInterest interest;
    };

    void recomputeInterest();

    /** Direct-dispatch path of publish(): deliver @p rec synchronously
     *  and keep the published/delivered counters truthful. */
    void deliverDirect(const EventRecord &rec);

    /** Full-ring path of beginPublish(): drain (inline) or wait (async)
     *  until a slot frees up, then return it. */
    EventRecord *reserveSlow(EventRing &ring);

    /**
     * Peek the record with sequence number @p want, in place in its ring
     * slot; null when it is not yet visible. @p ring receives the slot's
     * ring so the caller can popFront() after delivering — no copy-out
     * needed, the producer cannot reuse the slot until then.
     */
    const EventRecord *peekSeq(std::uint64_t want, std::size_t &ring);

    /** Decode @p rec and replay it into every consumer. The caller owns
     *  the `delivered` bookkeeping (batched in the inline drain). */
    void deliver(const EventRecord &rec);

    void drainReadyNow(); ///< Inline: deliver everything published.
    void waitDelivered(std::uint64_t target); ///< Async: block until.
    void consumerLoop();
    void startConsumer();
    void stopConsumer();

    TransportConfig cfg;
    Machine *machine = nullptr;
    /** One ring per core, flat so the hot path pays one indirection. */
    std::unique_ptr<EventRing[]> rings;
    std::size_t ringCount = 0;
    std::vector<Consumer> consumers;
    ConsumerInterest unionInterest{false, false, false, false, false};
    bool anyDecisionCoupled = false;
    bool direct = false; ///< Fixed at bind(); see directDispatch().

    std::atomic<std::uint64_t> published{0};
    std::atomic<std::uint64_t> delivered{0};
    std::uint64_t fullStalls = 0;
    std::size_t lastRing = 0; ///< Consumer-side scan hint.

    /**
     * Side table for payloads that are not trivially copyable. Alloc,
     * free, and output events are orders of magnitude rarer than memory
     * accesses, so a small mutex here never shows up on the hot path.
     */
    struct SidePayloads
    {
        std::mutex mu;
        std::deque<mem::Block> blocks;
        std::deque<std::vector<std::uint8_t>> outputs;
    };
    SidePayloads side;

    std::thread drainThread;
    std::atomic<bool> stopRequested{false};
    bool consumerRunning = false;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_TRANSPORT_HPP
