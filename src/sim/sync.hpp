#ifndef ICHECK_SIM_SYNC_HPP
#define ICHECK_SIM_SYNC_HPP

/**
 * @file
 * Simulated synchronization objects.
 *
 * These are plain data manipulated by the machine under the one-runs-at-a-
 * time invariant of the serializing scheduler, so they need no host
 * synchronization. Semantics mirror pthreads: Mesa-style mutexes and
 * condition variables, counting barriers with epochs (the determinism
 * checkpoints of Section 2.3 hang off barrier completion).
 */

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace icheck::sim
{

/** Identifier types for synchronization objects. */
using MutexId = std::uint32_t;
using BarrierId = std::uint32_t;
using CondId = std::uint32_t;

/** A simulated mutex. */
struct SimMutex
{
    ThreadId owner = invalidThreadId;
    std::vector<ThreadId> waiters;
};

/** A simulated counting barrier. */
struct SimBarrier
{
    std::uint32_t parties = 0;
    std::uint32_t arrived = 0;
    std::uint64_t epoch = 0;
    std::vector<ThreadId> waiters;
};

/** A simulated condition variable. */
struct SimCond
{
    std::vector<ThreadId> waiters;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_SYNC_HPP
