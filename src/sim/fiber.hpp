#ifndef ICHECK_SIM_FIBER_HPP
#define ICHECK_SIM_FIBER_HPP

/**
 * @file
 * The control-transfer primitive under the serializing scheduler.
 *
 * A SimFiber runs one simulated thread's body and hands control back and
 * forth with the scheduler: resume() runs the body until its next yield()
 * (or until it returns), yield() parks it until the next resume(). Exactly
 * one side executes at a time, so the mechanism is invisible to simulation
 * semantics — every run produces bit-identical events and hashes no matter
 * how the handoff is implemented.
 *
 * Two implementations exist behind this interface:
 *
 *  - user-level contexts (ucontext): a cooperative switch costs a few
 *    hundred nanoseconds, which matters because the scheduler switches
 *    every quantum (~100 simulated accesses). Under AddressSanitizer the
 *    switches carry the sanitizer fiber annotations.
 *  - host threads + semaphore handoff: the original mechanism, kept for
 *    ThreadSanitizer builds (TSan models the semaphores natively but has
 *    no stable story for ucontext stacks). A semaphore round trip costs
 *    microseconds, so this path is for checking, not for throughput.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#if defined(__SANITIZE_THREAD__)
#define ICHECK_FIBER_THREADS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ICHECK_FIBER_THREADS 1
#else
#define ICHECK_FIBER_THREADS 0
#endif
#else
#define ICHECK_FIBER_THREADS 0
#endif

#if ICHECK_FIBER_THREADS
#include <semaphore>
#include <thread>
#else
#include <ucontext.h>

#include <memory>
#endif

namespace icheck::sim
{

/**
 * The captured execution state of one fiber: its saved machine context
 * plus an image of the live portion of its stack. Machine-affine by
 * construction — the image contains frame and context pointers into the
 * fiber's own stack buffer, so a snapshot is only meaningful restored
 * into the *same* SimFiber object it was taken from (whose stack buffer
 * is never reallocated once created). Only parked fibers can be
 * snapshotted: the scheduler side owns control, so the saved context is
 * complete and stable.
 *
 * The host-thread implementation (TSan builds) cannot capture a stack it
 * does not own; SimFiber::snapshotSupported() reports false there and
 * callers fall back to cold re-execution.
 */
struct FiberSnapshot
{
    bool started = false;
    bool done = false;
#if !ICHECK_FIBER_THREADS
    ucontext_t context{};
    /** Identity of the stack the image belongs to (restore asserts it). */
    const std::uint8_t *stackBase = nullptr;
    /** Offset of the image's first byte within the stack buffer. */
    std::size_t imageOffset = 0;
    /** Live stack bytes: [stackBase+imageOffset, stackBase+stackBytes). */
    std::vector<std::uint8_t> image;
#endif

    /** Approximate heap footprint, for checkpoint-cache budgeting. */
    std::size_t
    bytes() const
    {
#if ICHECK_FIBER_THREADS
        return sizeof(*this);
#else
        return sizeof(*this) + image.capacity();
#endif
    }
};

/**
 * One suspendable simulated-thread body. See file comment.
 */
class SimFiber
{
  public:
    SimFiber() = default;
    ~SimFiber();

    SimFiber(const SimFiber &) = delete;
    SimFiber &operator=(const SimFiber &) = delete;

    /**
     * Bind the body. It does not run until the first resume(); a body
     * that is never resumed simply never executes.
     */
    void start(std::function<void()> body);

    /**
     * Run the body until its next yield() or until it returns. Must be
     * called from the scheduler side.
     */
    void resume();

    /**
     * Park the body and return control to the resume() that started this
     * slice. Must be called from inside the body.
     */
    void yield();

    /** True once the body has returned. */
    bool finished() const { return done; }

    /**
     * Release whatever the implementation holds for a body that has
     * returned (or was never resumed). For the host-thread
     * implementation this wakes and joins the thread; the caller must
     * first ensure the body will exit promptly when resumed (e.g. an
     * abort flag it checks on wake).
     */
    void join();

    /**
     * Whether snapshot()/restore() work in this build. False for the
     * host-thread (TSan) implementation.
     */
    static bool snapshotSupported();

    /**
     * Capture the parked fiber's context and live stack. Must be called
     * from the scheduler side (the fiber must not be running). See
     * FiberSnapshot for the affinity contract.
     */
    FiberSnapshot snapshot() const;

    /**
     * Rewind this fiber to @p snap, which must have been taken from this
     * same SimFiber. Whatever the fiber was doing is abandoned *without*
     * unwinding: destructors of frames live at abandonment never run, so
     * bodies that are snapshotted must keep only trivially-destructible
     * state on the fiber stack (true of the simulated programs, whose
     * real state lives in simulated memory).
     */
    void restore(const FiberSnapshot &snap);

  private:
    std::function<void()> entry;
    bool done = false;

#if ICHECK_FIBER_THREADS
    std::thread host;
    std::binary_semaphore runSem{0};
    std::binary_semaphore doneSem{0};
#else
    static void trampoline(unsigned hi, unsigned lo);
    void bodyMain();

    /** Default fiber stack; simulated program bodies are shallow, and
     *  sanitizer redzones inflate frames, so be generous. Allocated
     *  uninitialized — zero-filling a megabyte per short-lived Machine
     *  would dominate small runs. */
    static constexpr std::size_t stackBytes = 1 << 20;

    std::unique_ptr<std::uint8_t[]> stack;
    ucontext_t self{};
    ucontext_t ret{};
    bool started = false;
    /** Scheduler-side stack bounds captured on first entry (ASan). */
    const void *parentStackBottom = nullptr;
    std::size_t parentStackSize = 0;
#endif
};

} // namespace icheck::sim

#endif // ICHECK_SIM_FIBER_HPP
