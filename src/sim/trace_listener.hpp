#ifndef ICHECK_SIM_TRACE_LISTENER_HPP
#define ICHECK_SIM_TRACE_LISTENER_HPP

/**
 * @file
 * Human-readable event tracing — the debugging companion of the event
 * stream. Attach a TraceListener to a Machine to dump every access,
 * synchronization operation, allocation, and output write to a stream
 * (or capture them as lines for test assertions). The analogue of a
 * simulator's exec-trace debug flag.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/listener.hpp"

namespace icheck::sim
{

class Machine;

/**
 * Formats run events as one line each and hands them to a sink.
 */
class TraceListener : public AccessListener
{
  public:
    using Sink = std::function<void(const std::string &)>;

    /** @param sink Receives each formatted event line. */
    explicit TraceListener(Sink sink);

    /** Capture-to-vector convenience: lines() holds everything seen. */
    TraceListener();

    /**
     * Attach a machine for source attribution: when its access-site
     * tracking is armed, every load/store line gains an " @file:line"
     * suffix naming the C++ call site of the typed access — the same
     * attribution the race-log export serializes.
     */
    void setSourceMachine(const Machine *m) { machine = m; }

    void onStore(const StoreEvent &event) override;
    void onLoad(const LoadEvent &event) override;
    void onSync(const SyncEvent &event) override;
    void onAlloc(const mem::Block &block) override;
    void onFree(const mem::Block &block) override;
    void onOutput(ThreadId tid, const std::uint8_t *data,
                  std::size_t len) override;

    /** Toggle tracing of loads (they dominate volume). */
    void setTraceLoads(bool on) { traceLoads = on; }

    /** Captured lines (when built with the capturing constructor). */
    const std::vector<std::string> &lines() const { return captured; }

  private:
    void emit(const std::string &line);

    /** " @file:line" when attribution is armed and known, else "". */
    std::string siteSuffix() const;

    Sink sink;
    bool traceLoads = true;
    std::vector<std::string> captured;
    bool capture = false;
    const Machine *machine = nullptr;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_TRACE_LISTENER_HPP
