#include "sim/chrome_trace.hpp"

#include <fstream>
#include <sstream>

namespace icheck::sim
{

namespace
{

const char *
sliceEndName(SliceEnd reason)
{
    switch (reason) {
      case SliceEnd::Running:
        return "running";
      case SliceEnd::Preempted:
        return "preempted";
      case SliceEnd::Yielded:
        return "yielded";
      case SliceEnd::Blocked:
        return "blocked";
      case SliceEnd::Finished:
        return "finished";
    }
    return "unknown";
}

const char *
checkpointKindName(CheckpointKind kind)
{
    switch (kind) {
      case CheckpointKind::Barrier:
        return "barrier";
      case CheckpointKind::Manual:
        return "manual";
      case CheckpointKind::ProgramEnd:
        return "program-end";
    }
    return "unknown";
}

/** Minimal JSON string escaping — names here are ASCII we control, but
 *  run labels may carry user paths. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

} // namespace

ChromeTraceBuilder::ChromeTraceBuilder(std::string run_label)
    : runLabel(std::move(run_label))
{
}

void
ChromeTraceBuilder::noteThread(ThreadId tid)
{
    if (tid == invalidThreadId || seenThread[tid])
        return;
    seenThread[tid] = true;
    TraceEvent meta;
    meta.name = "thread_name";
    meta.ph = 'M';
    meta.tid = tid;
    meta.args = "\"name\":\"sim thread " + std::to_string(tid) + "\"";
    out.push_back(std::move(meta));
}

void
ChromeTraceBuilder::onSync(const SyncEvent &event)
{
    const std::uint64_t now = tick();
    noteThread(event.tid);
    switch (event.kind) {
      case SyncKind::LockAcquire:
        lockStart[{event.tid, event.object}] = now;
        break;
      case SyncKind::LockRelease: {
        const auto it = lockStart.find({event.tid, event.object});
        if (it == lockStart.end())
            break;
        TraceEvent ev;
        ev.name = "lock " + std::to_string(event.object);
        ev.ph = 'X';
        ev.ts = it->second;
        ev.dur = now - it->second;
        ev.tid = event.tid;
        ev.args = "\"object\":" + std::to_string(event.object);
        out.push_back(std::move(ev));
        lockStart.erase(it);
        break;
      }
      case SyncKind::BarrierArrive:
        barrierStart[event.tid] = now;
        break;
      case SyncKind::BarrierLeave: {
        const auto it = barrierStart.find(event.tid);
        if (it == barrierStart.end())
            break;
        TraceEvent ev;
        ev.name = "barrier " + std::to_string(event.object) + " epoch " +
                  std::to_string(event.epoch);
        ev.ph = 'X';
        ev.ts = it->second;
        ev.dur = now - it->second;
        ev.tid = event.tid;
        ev.args = "\"object\":" + std::to_string(event.object) +
                  ",\"epoch\":" + std::to_string(event.epoch);
        out.push_back(std::move(ev));
        barrierStart.erase(it);
        break;
      }
      case SyncKind::CondWait:
      case SyncKind::CondSignal:
      case SyncKind::ThreadStart:
      case SyncKind::ThreadFinish: {
        TraceEvent ev;
        ev.name = event.kind == SyncKind::CondWait     ? "cond wait"
                  : event.kind == SyncKind::CondSignal ? "cond signal"
                  : event.kind == SyncKind::ThreadStart
                      ? "thread start"
                      : "thread finish";
        ev.ph = 'I';
        ev.ts = now;
        ev.tid = event.tid;
        out.push_back(std::move(ev));
        break;
      }
    }
}

void
ChromeTraceBuilder::onSlice(const SliceEvent &event)
{
    const std::uint64_t now = tick();
    noteThread(event.tid);
    if (event.begin) {
        sliceStart[event.tid] = now;
        return;
    }
    const auto it = sliceStart.find(event.tid);
    const std::uint64_t start = it != sliceStart.end() ? it->second : now;
    TraceEvent ev;
    ev.name = "slice core " + std::to_string(event.core);
    ev.ph = 'X';
    ev.ts = start;
    ev.dur = now > start ? now - start : 1;
    ev.tid = event.tid;
    ev.args = "\"core\":" + std::to_string(event.core) + ",\"end\":\"" +
              sliceEndName(event.reason) + "\"";
    out.push_back(std::move(ev));
    if (it != sliceStart.end())
        sliceStart.erase(it);
    if (event.reason == SliceEnd::Preempted) {
        TraceEvent mark;
        mark.name = "preempt";
        mark.ph = 'I';
        mark.ts = now;
        mark.tid = event.tid;
        out.push_back(std::move(mark));
    }
}

void
ChromeTraceBuilder::onCheckpoint(const CheckpointInfo &info)
{
    const std::uint64_t now = tick();
    const ThreadId tid = info.tid != invalidThreadId ? info.tid : 0;
    noteThread(tid);
    TraceEvent ev;
    ev.name = "checkpoint " + std::to_string(info.index);
    ev.ph = 'I';
    ev.ts = now;
    ev.tid = tid;
    ev.args = std::string("\"kind\":\"") + checkpointKindName(info.kind) +
              "\",\"index\":" + std::to_string(info.index);
    out.push_back(std::move(ev));
    marks.push_back(CheckpointMark{info.index, now, info.tid, info.kind});
}

void
ChromeTraceBuilder::markDivergence(std::uint64_t checkpoint_index,
                                   const std::string &detail)
{
    std::uint64_t ts = ticks + 1;
    for (const CheckpointMark &mark : marks) {
        if (mark.index == checkpoint_index) {
            ts = mark.ts;
            break;
        }
    }
    TraceEvent ev;
    ev.name = "HASH DIVERGENCE @ checkpoint " +
              std::to_string(checkpoint_index);
    ev.ph = 'I';
    ev.ts = ts;
    ev.tid = 0;
    ev.args = "\"detail\":\"" + jsonEscape(detail) + "\"";
    out.push_back(std::move(ev));
}

std::string
renderChromeTrace(const std::vector<const ChromeTraceBuilder *> &runs)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::uint32_t pid = 0;
    for (const ChromeTraceBuilder *run : runs) {
        if (run == nullptr)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << jsonEscape(run->label()) << "\"}}";
        for (const TraceEvent &ev : run->events()) {
            os << ",{\"name\":\"" << jsonEscape(ev.name) << "\",\"ph\":\""
               << ev.ph << "\",\"pid\":" << pid << ",\"tid\":" << ev.tid;
            if (ev.ph != 'M')
                os << ",\"ts\":" << ev.ts;
            if (ev.ph == 'X')
                os << ",\"dur\":" << (ev.dur > 0 ? ev.dur : 1);
            if (ev.ph == 'I')
                os << ",\"s\":\"t\"";
            if (!ev.args.empty())
                os << ",\"args\":{" << ev.args << "}";
            os << "}";
        }
        ++pid;
    }
    os << "]}";
    return os.str();
}

bool
writeChromeTraceFile(const std::string &path,
                     const std::vector<const ChromeTraceBuilder *> &runs)
{
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        return false;
    file << renderChromeTrace(runs);
    return static_cast<bool>(file);
}

} // namespace icheck::sim
