#ifndef ICHECK_SIM_EVENT_RING_HPP
#define ICHECK_SIM_EVENT_RING_HPP

/**
 * @file
 * Fixed-capacity single-producer/single-consumer ring queue of POD event
 * records — the lock-free lane between the simulated machine's hot path
 * and the listener drain stage (src/sim/transport.hpp).
 *
 * The producer is the simulated machine (exactly one OS thread executes
 * simulated code at a time), the consumer is either the same thread at a
 * decision boundary (inline drain) or a dedicated drain thread (async
 * drain). Each side touches its own index with plain arithmetic and
 * publishes it with a release store; a cached copy of the opposite index
 * keeps the common case free of any shared-cache-line traffic. Head and
 * tail live on separate cache lines so producer and consumer never
 * false-share.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** Discriminator of the EventRecord tagged union. */
enum class EventKind : std::uint8_t
{
    Store,
    Load,
    Site,
    Sync,
    Alloc,
    Free,
    Output,
    Slice,
    Checkpoint,
};

/**
 * One event in flight, as a 64-byte POD tagged union. Stores and loads —
 * the hot kinds — embed the AccessListener event structs verbatim, so the
 * producer builds the event exactly once (in place in the ring slot) and
 * the consumer dispatches it with zero decoding. Anything non-trivially
 * copyable (allocation/free payloads, output bytes) travels through a
 * side table (see transport.hpp) and the record carries only the index;
 * access call sites ride as a separate rare Site record preceding the
 * access they attribute.
 */
struct EventRecord
{
    /** Call-site attribution for the next access record (lint runs). */
    struct SiteRec
    {
        const char *file;
        std::int32_t line;
    };

    struct SyncRec
    {
        std::uint64_t epoch;
        ThreadId tid;
        std::uint32_t object;
        std::uint8_t kind; ///< SyncKind
    };

    /** Alloc/free: the Block itself (std::string site) is in the side
     *  table at this index. */
    struct BlockRec
    {
        std::uint64_t sideIndex;
    };

    /** Output: the bytes are in the side table at this index. */
    struct OutputRec
    {
        std::uint64_t sideIndex;
        ThreadId tid;
        std::uint32_t len;
    };

    struct SliceRec
    {
        ThreadId tid;
        CoreId core;
        std::uint8_t begin;
        std::uint8_t reason; ///< SliceEnd
    };

    struct CheckpointRec
    {
        std::uint64_t index;
        ThreadId tid;
        std::uint8_t kind; ///< CheckpointKind
    };

    /** Global order: assigned by the transport, dense from 1. */
    std::uint64_t seq;
    EventKind kind;

    union
    {
        StoreEvent store;
        LoadEvent load;
        SiteRec site;
        SyncRec sync;
        BlockRec block;
        OutputRec output;
        SliceRec slice;
        CheckpointRec checkpoint;
    };
};

static_assert(std::is_trivially_copyable_v<EventRecord>,
              "event records are memcpy'd through the ring");
static_assert(std::is_trivially_copyable_v<StoreEvent> &&
                  std::is_trivially_copyable_v<LoadEvent>,
              "listener events are embedded in the record union");
static_assert(sizeof(EventRecord) <= 64,
              "one record per cache line keeps the ring write cheap");

/**
 * The SPSC ring. Capacity is rounded up to a power of two (minimum 1) so
 * indices wrap with a mask instead of a modulo.
 */
class EventRing
{
  public:
    /** An unusable empty ring; init() before first push (two-phase so the
     *  transport can hold rings in one flat array, one indirection). */
    EventRing() = default;

    explicit EventRing(std::size_t capacity) { init(capacity); }

    /** (Re)size to @p capacity slots; discards anything queued. */
    void
    init(std::size_t capacity)
    {
        std::size_t rounded = 1;
        while (rounded < capacity)
            rounded <<= 1;
        mask = rounded - 1;
        slots = std::make_unique<EventRecord[]>(rounded);
        head.store(0, std::memory_order_relaxed);
        tail.store(0, std::memory_order_relaxed);
        cachedHead = 0;
        cachedTail = 0;
    }

    EventRing(const EventRing &) = delete;
    EventRing &operator=(const EventRing &) = delete;

    std::size_t capacity() const { return mask + 1; }

    /**
     * Producer: the next free slot to fill in place, or null when the
     * ring is full (the caller owns the overflow policy — drain inline or
     * wait, never drop). The slot is invisible to the consumer until
     * commit(); building the record directly in the cache-line-aligned
     * slot is what keeps the hot path copy-free.
     */
    EventRecord *
    tryReserve()
    {
        const std::uint64_t t = tail.load(std::memory_order_relaxed);
        if (t - cachedHead == capacity()) {
            cachedHead = head.load(std::memory_order_acquire);
            if (t - cachedHead == capacity())
                return nullptr;
        }
        return &slots[t & mask];
    }

    /** Producer: publish the slot returned by tryReserve(). */
    void
    commit()
    {
        const std::uint64_t t = tail.load(std::memory_order_relaxed);
        tail.store(t + 1, std::memory_order_release);
    }

    /** Producer: enqueue a copy of @p rec; false when the ring is full. */
    bool
    tryPush(const EventRecord &rec)
    {
        EventRecord *slot = tryReserve();
        if (slot == nullptr)
            return false;
        *slot = rec;
        commit();
        return true;
    }

    /** Consumer: the oldest record, or null when empty. Stays valid until
     *  popFront(). */
    const EventRecord *
    front()
    {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        if (h == cachedTail) {
            cachedTail = tail.load(std::memory_order_acquire);
            if (h == cachedTail)
                return nullptr;
        }
        return &slots[h & mask];
    }

    /** Consumer: release the slot returned by front(). */
    void
    popFront()
    {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        head.store(h + 1, std::memory_order_release);
    }

    /** Consumer: pop into @p out; false when empty. */
    bool
    tryPop(EventRecord &out)
    {
        const EventRecord *rec = front();
        if (rec == nullptr)
            return false;
        out = *rec;
        popFront();
        return true;
    }

    /** Records currently queued (exact only from one side at a time). */
    std::size_t
    size() const
    {
        return static_cast<std::size_t>(
            tail.load(std::memory_order_acquire) -
            head.load(std::memory_order_acquire));
    }

    bool empty() const { return size() == 0; }

  private:
    // Consumer-owned line: head plus the producer-index cache.
    alignas(64) std::atomic<std::uint64_t> head{0};
    std::uint64_t cachedTail = 0;
    // Producer-owned line: tail plus the consumer-index cache.
    alignas(64) std::atomic<std::uint64_t> tail{0};
    std::uint64_t cachedHead = 0;
    alignas(64) std::size_t mask = 0;
    std::unique_ptr<EventRecord[]> slots;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_EVENT_RING_HPP
