#ifndef ICHECK_SIM_MACHINE_HPP
#define ICHECK_SIM_MACHINE_HPP

/**
 * @file
 * The simulated multicore machine.
 *
 * A Machine owns the shared memory, the cores (each with an L1 cache,
 * write buffer, and MHM), the simulated threads, and the synchronization
 * objects of one program run. It executes a Program under a serializing
 * scheduler: exactly one simulated thread runs at any time, and every
 * scheduling decision comes from the (seeded) Scheduler, making the whole
 * run a pure function of (program, input seed, scheduler seed).
 *
 * A Machine instance executes exactly one run; the determinism driver
 * constructs a fresh Machine per run.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/write_buffer.hpp"
#include "hashing/location_hash.hpp"
#include "mem/alloc.hpp"
#include "mem/memory.hpp"
#include "mem/static_segment.hpp"
#include "mhm/mhm.hpp"
#include "sim/core.hpp"
#include "sim/listener.hpp"
#include "sim/program.hpp"
#include "sim/sched.hpp"
#include "sim/sync.hpp"
#include "sim/thread.hpp"
#include "support/stats.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** Full configuration of one simulated run. */
struct MachineConfig
{
    CoreId numCores = 8;

    /** Seed for the default RandomScheduler (ignored if one is injected). */
    std::uint64_t schedSeed = 1;

    /** Seed for program input data and intercepted library calls. */
    std::uint64_t inputSeed = 42;

    std::uint64_t minQuantum = 20;
    std::uint64_t maxQuantum = 200;
    double migrateProb = 0.05;

    cache::CacheConfig cacheCfg{};
    std::size_t wbCapacity = 16;
    cache::DrainPolicy wbPolicy = cache::DrainPolicy::Fifo;

    mhm::MhmConfig mhmCfg{};
    hashing::HasherKind hasherKind = hashing::HasherKind::Crc64;

    /** Whether the FP round-off unit is active during this run. */
    bool fpRoundingEnabled = true;

    /**
     * Whether the MHM hardware is armed at all this run. False models a
     * stock machine with the hashing hardware fused off: TH registers
     * stay zero and drained stores skip the MHM entirely — the native
     * baseline of the overhead benchmarks.
     */
    bool hashingArmed = true;
};

// CheckpointKind / CheckpointInfo live in sim/listener.hpp (they are
// delivered through AccessListener::onCheckpoint as well as the handler).

/** Aggregate results of one run. */
struct RunResult
{
    std::uint64_t checkpoints = 0;
    InstCount nativeInstrs = 0;
    InstCount overheadInstrs = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t storesHashed = 0;
};

/**
 * Pseudo lock id used for the allocator's internal serialization in sync
 * events (real mallocs take a lock; the happens-before detector needs
 * that edge to order frees before reuses).
 */
inline constexpr std::uint32_t allocatorLockId = 0xffffffffu;

/** Thrown when a run cannot proceed (e.g., deadlock). */
class SimError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class SetupCtx;
class ThreadCtx;
class Machine;
class EventTransport;

/**
 * The complete captured architectural state of a Machine at one scheduling
 * decision: a copy-on-write fork of the memory image, the allocator and
 * malloc-replay state, every core's microarchitecture (instruction
 * counters, L1 tags, write buffer, MHM registers), every thread's
 * architectural state plus its fiber stack image, the synchronization
 * objects, and the run-level byproducts (output stream, statistics,
 * checkpoint index).
 *
 * Snapshots are machine-affine: the fiber images inside them are bound to
 * the stacks of the Machine that produced them, so a snapshot may only be
 * restored into that same Machine (restore() asserts the shapes match and
 * the fibers assert their stack identity). Produced by Machine::checkpoint()
 * and consumed by Machine::restore(); the explorer's checkpoint tree holds
 * them behind shared_ptr leases.
 */
class MachineSnapshot
{
  public:
    MachineSnapshot() = default;

    /** Approximate incremental heap footprint, for cache budgeting. */
    std::size_t bytes() const { return footprint; }

  private:
    friend class Machine;

    struct CoreState
    {
        InstCount nativeInstrs = 0;
        InstCount overheadInstrs = 0;
        cache::L1Cache l1;
        cache::WriteBuffer wb;
        mhm::MhmState mhm;
        ThreadId currentThread = invalidThreadId;
    };

    struct ThreadSnap
    {
        ThreadState state = ThreadState::Ready;
        YieldReason lastReason = YieldReason::Sync;
        bool hashingPaused = false;
        std::int64_t quantum = 0;
        HashWord savedTh = 0;
        CoreId lastCore = invalidCoreId;
        std::uint64_t randCalls = 0;
        std::uint64_t timeCalls = 0;
        std::uint64_t progress = 0;
        std::uint64_t loadHash = 0;
        FiberSnapshot fiber;
    };

    mem::SparseMemory mem;
    mem::ReplayLog logState;
    mem::DeterministicAllocator::State heapState;
    std::vector<CoreState> coreStates;
    std::vector<ThreadSnap> threadStates;
    std::vector<SimMutex> mutexes;
    std::vector<SimBarrier> barriers;
    std::vector<SimCond> conds;
    std::vector<std::uint8_t> outputBytes;
    StatGroup statistics;
    std::uint64_t checkpointIndex = 0;
    std::size_t footprint = 0;
};

/**
 * One simulated machine executing one run. See file comment.
 */
class Machine
{
  public:
    /**
     * @param config     Run configuration.
     * @param shared_log Malloc-replay log shared across runs (may be null,
     *                   in which case a private log is used).
     * @param alloc_mode Record (log addresses) or Replay (serve them).
     */
    explicit Machine(
        const MachineConfig &config,
        mem::ReplayLog *shared_log = nullptr,
        mem::DeterministicAllocator::Mode alloc_mode =
            mem::DeterministicAllocator::Mode::Record);

    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Inject a scheduler (default: RandomScheduler from schedSeed). */
    void setScheduler(std::unique_ptr<Scheduler> sched);

    /** Subscribe @p listener to run events (not owned). */
    void addListener(AccessListener *listener);

    /** Unsubscribe a previously added listener (no-op if absent). */
    void removeListener(AccessListener *listener);

    /**
     * Route events through @p transport (see sim/transport.hpp) instead
     * of — or in addition to — the synchronous listener list: records go
     * into per-core rings and a drain stage replays them into the
     * transport's own listeners in order. Pass null to detach (pending
     * records are delivered first). The transport must outlive the
     * machine or be detached before the machine is destroyed; the
     * destructor detaches automatically as a backstop.
     */
    void setTransport(EventTransport *t);
    EventTransport *transportAttached() const { return transport; }

    /** Called after setup(), before the first thread runs. */
    void setRunStartHandler(std::function<void()> handler);

    /** Called at every determinism checkpoint. */
    void
    setCheckpointHandler(std::function<void(const CheckpointInfo &)> handler);

    /**
     * Called at every scheduling decision with the runnable set, while
     * every thread is parked (write buffers drained, TH registers saved).
     * Used by the systematic-testing explorer to compute state-pruning
     * signatures.
     */
    void setDecisionHandler(
        std::function<void(const std::vector<ThreadId> &)> handler);

    /**
     * Enable InstantCheck instrumentation: allocations are zero-filled and
     * freed blocks scrubbed through the hashed store path (the Section 5
     * "set allocated values to zero" behaviour whose cost is the HW
     * scheme's only overhead).
     */
    void setInstrumentation(bool on) { instrumentation = on; }

    /** Execute @p program to completion. May be called once. */
    RunResult run(Program &program);

    /// @name Checkpoint/restore session API (prefix-sharing exploration).
    ///
    /// run() is equivalent to beginRun() + finishRun(). Splitting it lets
    /// a caller that holds MachineSnapshots rewind the machine between
    /// finishRun() calls: beginRun() once, then any number of
    /// { [restore(snapshot);] finishRun() } rounds, each completing the
    /// run from the machine's current (possibly restored) state. Every
    /// such completion is bit-identical to a cold run that made the same
    /// scheduling decisions — memory, hashes, output, statistics, and
    /// reports all match byte for byte.
    /// @{

    /** Whether checkpoint()/restore() work in this build (false under the
     *  host-thread fiber implementation used by TSan). */
    static bool snapshotSupported();

    /** Phases 1-3 of run(): setup, arming, thread spawn. Once per
     *  Machine. */
    void beginRun(Program &program);

    /** Phase 4-5 of run(): drive the scheduler loop from the machine's
     *  current state until every thread finishes, then fire the
     *  program-end checkpoint and assemble the result. */
    RunResult finishRun();

    /**
     * Capture the machine's complete architectural state. Only valid at a
     * quiescent point — inside a decision handler or between finishRun()
     * calls — when no thread is running and every write buffer has
     * drained through switchOut(). Requires a private malloc-replay log
     * (a shared log cannot be rewound without affecting other runs).
     */
    std::shared_ptr<const MachineSnapshot> checkpoint();

    /**
     * Rewind the machine to @p snap, which must have been produced by
     * this Machine's checkpoint(). Only valid while no thread is running
     * (between finishRun() calls or before the next decision executes).
     */
    void restore(const MachineSnapshot &snap);
    /// @}

    /// @name Accessors for checkers and tools.
    /// @{
    mem::SparseMemory &memory() { return mem; }
    const mem::SparseMemory &memory() const { return mem; }
    const mem::DeterministicAllocator &allocator() const { return heap; }
    const mem::StaticSegment &staticSegment() const { return statics; }
    const hashing::LocationHasher &hasher() const { return *locHasher; }

    /** Rounding in effect for FP stores this run. */
    hashing::FpRoundMode effectiveFpMode() const;

    const MachineConfig &config() const { return cfg; }
    CoreId numCores() const { return static_cast<CoreId>(cores.size()); }
    Core &core(CoreId id) { return *cores[id]; }
    const Core &core(CoreId id) const { return *cores[id]; }

    ThreadId numThreads() const
    {
        return static_cast<ThreadId>(threads.size());
    }

    /** Architectural TH of thread @p tid (valid whenever it is parked). */
    HashWord threadHash(ThreadId tid) const;

    /** Progress counter of thread @p tid (accesses + sync ops executed). */
    std::uint64_t threadProgress(ThreadId tid) const;

    /**
     * Fingerprint of the complete simulated state (memory via TH sums,
     * per-thread local state via progress + load-history hashes, and
     * synchronization-object states). Only meaningful while all threads
     * are parked, i.e. inside a decision or checkpoint handler. Used for
     * state pruning in systematic testing (Section 6.2).
     */
    std::uint64_t stateSignature() const;

    /** Output stream written through ctx.output() (Section 4.3). */
    const std::vector<std::uint8_t> &output() const { return outputBytes; }

    /// @name Access-site attribution (race-log export).
    ///
    /// When armed, ThreadCtx::load/store record their C++ call site
    /// (std::source_location of the app code) here just before issuing
    /// the access, so listeners running inside the access callback can
    /// attribute the event to a file:line. Disarmed (the default) the
    /// only cost is one predictable branch per typed access.
    /// @{
    void setAccessSiteTracking(bool on) { trackAccessSites = on; }
    bool accessSiteTrackingArmed() const { return trackAccessSites; }
    void noteAccessSite(const char *file, int line)
    {
        siteFile = file;
        siteLine = line;
    }
    /** File of the in-flight access's call site (null when unarmed). */
    const char *accessSiteFile() const { return siteFile; }
    int accessSiteLine() const { return siteLine; }
    /// @}

    StatGroup &stats() { return statistics; }
    bool instrumentationActive() const { return instrumentation; }

    /**
     * Render a full post-run statistics report: machine-level counters,
     * per-core instruction/cache/MHM numbers, allocator and memory
     * footprint — in the spirit of a simulator stats dump.
     */
    std::string renderStats() const;
    /// @}

  private:
    friend class SetupCtx;
    friend class ThreadCtx;

    /// @name Internal API used by the contexts (simulated-thread side).
    /// @{
    std::uint64_t loadAccess(Addr addr, unsigned width);
    void storeAccess(Addr addr, unsigned width, std::uint64_t bits,
                     hashing::ValueClass cls, CostDomain domain);
    void tick(InstCount n);
    Addr allocBlock(const std::string &site, const mem::TypeRef &type);
    void freeBlock(Addr addr);
    void lockMutex(MutexId id);
    void unlockMutex(MutexId id);
    void barrierWait(BarrierId id);
    void condWait(CondId cond, MutexId mutex);
    void condSignal(CondId cond);
    void condBroadcast(CondId cond);
    void manualCheckpoint();
    void setThreadHashing(bool enabled);
    std::uint64_t interceptedRand();
    std::uint64_t interceptedTimeUs();
    void writeOutput(const std::uint8_t *data, std::size_t len);
    /// @}

    MutexId createMutex();
    BarrierId createBarrier(std::uint32_t parties);
    CondId createCond();

    void threadEntry(ThreadId tid);
    void yieldCurrent(YieldReason reason);
    void step();
    SimThread &cur();
    Core &curCoreRef();

    void switchIn(ThreadId tid, CoreId core_id);
    void switchOut(ThreadId tid);
    void drainWriteBuffer(Core &core);
    void drainEntry(Core &core, const cache::WriteBufferEntry &entry);
    void fireCheckpoint(CheckpointKind kind, ThreadId tid);
    void emitSync(SyncKind kind, ThreadId tid, std::uint32_t object = 0,
                  std::uint64_t epoch = 0);
    void emitSlice(ThreadId tid, CoreId core_id, bool begin,
                   SliceEnd reason);
    /** Ring index for the current event (core 0 when no core is live). */
    std::size_t eventRing() const
    {
        return curCore != invalidCoreId ? curCore : 0;
    }
    void zeroRange(Addr addr, std::size_t len);
    void scrubTyped(Addr addr, const mem::TypeRef &type);
    void abortAll();

    MachineConfig cfg;
    mem::SparseMemory mem;
    mem::StaticSegment statics;
    mem::ReplayLog privateLog;
    mem::DeterministicAllocator heap;
    std::unique_ptr<hashing::LocationHasher> locHasher;
    std::unique_ptr<Scheduler> scheduler;

    std::vector<std::unique_ptr<Core>> cores;
    std::vector<std::unique_ptr<SimThread>> threads;
    std::vector<SimMutex> mutexes;
    std::vector<SimBarrier> barriers;
    std::vector<SimCond> conds;

    std::vector<AccessListener *> listeners;
    EventTransport *transport = nullptr;
    std::function<void()> runStartHandler;
    std::function<void(const CheckpointInfo &)> checkpointHandler;
    std::function<void(const std::vector<ThreadId> &)> decisionHandler;

    Program *program = nullptr;
    ThreadId curTid = invalidThreadId;
    CoreId curCore = invalidCoreId;
    std::uint64_t checkpointIndex = 0;
    bool instrumentation = false;
    bool ran = false;
    bool threadsLive = false;
    /** True when the malloc-replay log is this machine's own (checkpoint
     *  precondition: a shared log cannot be rewound per machine). */
    bool usesPrivateLog = true;

    /// @name Access-site attribution state (see the public accessors).
    /// @{
    bool trackAccessSites = false;
    const char *siteFile = nullptr;
    int siteLine = 0;
    /// @}

    std::vector<std::uint8_t> outputBytes;
    StatGroup statistics;
};

/**
 * RAII listener attachment: subscribes on construction, unsubscribes on
 * destruction. The idiomatic way to observe part of a run without
 * reconstructing the machine to detach.
 */
class ScopedListener
{
  public:
    ScopedListener(Machine &m, AccessListener &l) : machine(m), listener(&l)
    {
        machine.addListener(listener);
    }

    ~ScopedListener() { machine.removeListener(listener); }

    ScopedListener(const ScopedListener &) = delete;
    ScopedListener &operator=(const ScopedListener &) = delete;

  private:
    Machine &machine;
    AccessListener *listener;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_MACHINE_HPP
