#ifndef ICHECK_SIM_PROGRAM_HPP
#define ICHECK_SIM_PROGRAM_HPP

/**
 * @file
 * The interface a simulated parallel program implements.
 *
 * A Program is the analogue of one of the paper's benchmark applications:
 * it declares its globals and initial state in setup() (single-threaded,
 * before hashing starts — this *is* the input state), then runs numThreads
 * copies of threadMain() under the serializing scheduler.
 */

#include <cstdint>
#include <string>

#include "support/types.hpp"

namespace icheck::sim
{

class SetupCtx;
class ThreadCtx;

/**
 * A parallel program under test. Instances are single-run: the determinism
 * driver constructs a fresh instance (via a factory) for every run.
 */
class Program
{
  public:
    virtual ~Program() = default;

    /** Short name (used in reports). */
    virtual std::string name() const = 0;

    /** Number of worker threads. */
    virtual ThreadId numThreads() const = 0;

    /**
     * Single-threaded initialization: declare globals, build the initial
     * memory state, create sync objects. Runs before hashing begins; two
     * runs with equal input seeds must produce identical initial states.
     */
    virtual void setup(SetupCtx &ctx) = 0;

    /** Body of worker thread ctx.tid(). */
    virtual void threadMain(ThreadCtx &ctx) = 0;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_PROGRAM_HPP
