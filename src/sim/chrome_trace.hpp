#ifndef ICHECK_SIM_CHROME_TRACE_HPP
#define ICHECK_SIM_CHROME_TRACE_HPP

/**
 * @file
 * Chrome trace-event-format export of a simulated run.
 *
 * ChromeTraceBuilder is an ordinary AccessListener (attach directly or as
 * a transport consumer) that turns schedule slices, lock hold spans,
 * barrier epochs, preemptions, and determinism checkpoints into
 * trace-event records. renderChromeTrace() serializes one or more runs
 * into the JSON object format that chrome://tracing and Perfetto load
 * directly: each run becomes a pid, each simulated thread a tid.
 *
 * Timestamps are the builder's own event-count clock (one tick per
 * observed event), which makes traces deterministic and independent of
 * the transport mode — wall time on the simulated machine is meaningless
 * anyway.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/listener.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** One trace-event entry, pre-baked for JSON serialization. */
struct TraceEvent
{
    std::string name;
    char ph = 'I';         ///< 'X' duration, 'I' instant, 'M' metadata.
    std::uint64_t ts = 0;  ///< Event-count ticks (rendered as us).
    std::uint64_t dur = 0; ///< 'X' events only.
    std::uint32_t tid = 0; ///< Simulated thread (or numCores for machine).
    std::string args;      ///< Pre-rendered JSON object body, may be empty.
};

/** A determinism checkpoint observed during the run, with its trace
 *  time — the anchor for cross-run hash-divergence markers. */
struct CheckpointMark
{
    std::uint64_t index = 0;
    std::uint64_t ts = 0;
    ThreadId tid = invalidThreadId;
    CheckpointKind kind = CheckpointKind::Manual;
};

/** Listener that accumulates trace events for one run. */
class ChromeTraceBuilder : public AccessListener
{
  public:
    /** @p run_label names the process row in the viewer. */
    explicit ChromeTraceBuilder(std::string run_label = "run");

    void onStore(const StoreEvent &) override { ++ticks; }
    void onLoad(const LoadEvent &) override { ++ticks; }
    void onSync(const SyncEvent &event) override;
    void onSlice(const SliceEvent &event) override;
    void onCheckpoint(const CheckpointInfo &info) override;

    /** Drop an instant divergence marker at the trace time of checkpoint
     *  @p checkpoint_index (called after cross-run hash comparison). */
    void markDivergence(std::uint64_t checkpoint_index,
                        const std::string &detail);

    const std::string &label() const { return runLabel; }
    const std::vector<TraceEvent> &events() const { return out; }
    const std::vector<CheckpointMark> &checkpoints() const
    {
        return marks;
    }

  private:
    std::uint64_t tick() { return ++ticks; }
    void noteThread(ThreadId tid);

    std::string runLabel;
    std::uint64_t ticks = 0;
    std::vector<TraceEvent> out;
    std::vector<CheckpointMark> marks;

    std::map<ThreadId, std::uint64_t> sliceStart;
    std::map<std::pair<ThreadId, std::uint32_t>, std::uint64_t> lockStart;
    std::map<ThreadId, std::uint64_t> barrierStart;
    std::map<ThreadId, bool> seenThread;
};

/** Serialize @p runs (one pid each, in order) to trace-event JSON. */
std::string
renderChromeTrace(const std::vector<const ChromeTraceBuilder *> &runs);

/** Render and write to @p path; false (with errno intact) on I/O error. */
bool writeChromeTraceFile(const std::string &path,
                          const std::vector<const ChromeTraceBuilder *> &runs);

} // namespace icheck::sim

#endif // ICHECK_SIM_CHROME_TRACE_HPP
