#include "sim/trace_listener.hpp"

#include <sstream>

#include "sim/machine.hpp"

namespace icheck::sim
{

namespace
{

const char *
syncKindName(SyncKind kind)
{
    switch (kind) {
      case SyncKind::LockAcquire:   return "lock";
      case SyncKind::LockRelease:   return "unlock";
      case SyncKind::BarrierArrive: return "barrier-arrive";
      case SyncKind::BarrierLeave:  return "barrier-leave";
      case SyncKind::CondWait:      return "cond-wait";
      case SyncKind::CondSignal:    return "cond-signal";
      case SyncKind::ThreadStart:   return "thread-start";
      case SyncKind::ThreadFinish:  return "thread-finish";
    }
    return "?";
}

} // namespace

TraceListener::TraceListener(Sink out) : sink(std::move(out)) {}

TraceListener::TraceListener() : capture(true) {}

std::string
TraceListener::siteSuffix() const
{
    if (machine == nullptr || !machine->accessSiteTrackingArmed() ||
        machine->accessSiteFile() == nullptr)
        return "";
    std::ostringstream os;
    os << " @" << machine->accessSiteFile() << ":"
       << machine->accessSiteLine();
    return os.str();
}

void
TraceListener::emit(const std::string &line)
{
    if (capture)
        captured.push_back(line);
    else if (sink)
        sink(line);
}

void
TraceListener::onStore(const StoreEvent &event)
{
    std::ostringstream os;
    os << "t" << event.tid << " store" << 8 * event.width << " 0x"
       << std::hex << event.addr << std::dec << " " << event.oldBits
       << "->" << event.newBits;
    if (event.domain == CostDomain::Overhead)
        os << " [instr]";
    if (!event.hashed)
        os << " [unhashed]";
    if (event.domain == CostDomain::Native)
        os << siteSuffix();
    emit(os.str());
}

void
TraceListener::onLoad(const LoadEvent &event)
{
    if (!traceLoads)
        return;
    std::ostringstream os;
    os << "t" << event.tid << " load" << 8 * event.width << " 0x"
       << std::hex << event.addr << std::dec << siteSuffix();
    emit(os.str());
}

void
TraceListener::onSync(const SyncEvent &event)
{
    std::ostringstream os;
    os << "t" << event.tid << " " << syncKindName(event.kind);
    if (event.kind != SyncKind::ThreadStart &&
        event.kind != SyncKind::ThreadFinish)
        os << " #" << event.object;
    if (event.kind == SyncKind::BarrierArrive ||
        event.kind == SyncKind::BarrierLeave)
        os << " epoch " << event.epoch;
    emit(os.str());
}

void
TraceListener::onAlloc(const mem::Block &block)
{
    std::ostringstream os;
    os << "alloc " << block.site << "#" << block.seq << " 0x" << std::hex
       << block.addr << std::dec << " " << block.size << "B";
    emit(os.str());
}

void
TraceListener::onFree(const mem::Block &block)
{
    std::ostringstream os;
    os << "free " << block.site << "#" << block.seq << " 0x" << std::hex
       << block.addr << std::dec;
    emit(os.str());
}

void
TraceListener::onOutput(ThreadId tid, const std::uint8_t *, std::size_t len)
{
    std::ostringstream os;
    os << "t" << tid << " output " << len << "B";
    emit(os.str());
}

} // namespace icheck::sim
