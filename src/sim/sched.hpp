#ifndef ICHECK_SIM_SCHED_HPP
#define ICHECK_SIM_SCHED_HPP

/**
 * @file
 * Serializing thread schedulers (Section 7.1 methodology).
 *
 * The paper evaluates InstantCheck under a testing technique that runs one
 * thread at a time and switches at synchronization points — the approach of
 * PCT and CHESS — choosing the next thread randomly. The scheduler is
 * explicitly *not* part of InstantCheck: in real usage it is whatever tool
 * the programmer already uses. These schedulers play that role.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/**
 * Picks which runnable thread executes next, for how many native memory
 * accesses (the preemption quantum), and on which core.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Choose one of @p runnable (non-empty, ascending tid order). */
    virtual ThreadId pick(const std::vector<ThreadId> &runnable) = 0;

    /** Preemption quantum in native accesses for the chosen slice. */
    virtual std::uint64_t quantum() = 0;

    /**
     * Core for this slice of @p tid. @p home is the thread's affinity core
     * (tid mod cores); schedulers may occasionally migrate.
     */
    virtual CoreId
    coreFor(ThreadId tid, CoreId home, CoreId num_cores)
    {
        (void)tid;
        (void)num_cores;
        return home;
    }
};

/**
 * The paper's random serializing scheduler: uniform thread choice,
 * uniform quantum in [minQuantum, maxQuantum], occasional migration.
 */
class RandomScheduler : public Scheduler
{
  public:
    RandomScheduler(std::uint64_t seed, std::uint64_t min_quantum = 20,
                    std::uint64_t max_quantum = 200,
                    double migrate_prob = 0.05);

    ThreadId pick(const std::vector<ThreadId> &runnable) override;
    std::uint64_t quantum() override;
    CoreId coreFor(ThreadId tid, CoreId home, CoreId num_cores) override;

  private:
    Xoshiro256 rng;
    std::uint64_t minQuantum;
    std::uint64_t maxQuantum;
    double migrateProb;
};

/**
 * Deterministic round-robin with a fixed quantum; useful as a baseline
 * "one boring interleaving" scheduler in tests.
 */
class RoundRobinScheduler : public Scheduler
{
  public:
    explicit RoundRobinScheduler(std::uint64_t fixed_quantum = 100);

    ThreadId pick(const std::vector<ThreadId> &runnable) override;
    std::uint64_t quantum() override;

  private:
    std::uint64_t fixedQuantum;
    ThreadId lastPicked = invalidThreadId;
};

/**
 * Follows a script of choice indices into the runnable list (used by the
 * systematic-testing explorer of Section 6.2). Once the script is
 * exhausted, falls back to index 0 — or, with prefer_previous (used for
 * CHESS-style preemption bounding), to the previously running thread
 * whenever it is still runnable, making the default continuation
 * preemption-free.
 */
class ScriptedScheduler : public Scheduler
{
  public:
    ScriptedScheduler(std::vector<std::uint32_t> choices,
                      std::uint64_t fixed_quantum,
                      bool prefer_previous = false);

    ThreadId pick(const std::vector<ThreadId> &runnable) override;
    std::uint64_t quantum() override;

    /** Number of scripted choices consumed so far. */
    std::size_t consumed() const { return cursor; }

    /** Sizes of the runnable sets seen at each decision (for DFS). */
    const std::vector<std::uint32_t> &decisionFanout() const
    {
        return fanout;
    }

    /** Index actually chosen at each decision. */
    const std::vector<std::uint32_t> &chosenIndices() const
    {
        return chosen;
    }

    /**
     * Per decision: index of the previously running thread in that
     * decision's runnable set, or -1 if it was not runnable (finished or
     * blocked — choosing someone else is then not a preemption).
     */
    const std::vector<std::int32_t> &previousIndices() const
    {
        return prevIdx;
    }

    /** Thread chosen at the most recent decision (preemption detection). */
    ThreadId lastPicked() const { return lastPick; }

    /**
     * Prime the scheduler as if it had already replayed a prefix of
     * @p chosen_prefix decisions (checkpoint restore): the recorded
     * history is preloaded, the cursor skips past the prefix so the
     * remaining scripted choices apply to the suffix, and the
     * prefer-previous fallback resumes from @p last_pick. The three
     * history vectors must all be @p chosen_prefix-sized views of the
     * same decisions.
     */
    void resumeAt(std::vector<std::uint32_t> fanout_prefix,
                  std::vector<std::uint32_t> chosen_prefix,
                  std::vector<std::int32_t> prev_prefix,
                  ThreadId last_pick);

  private:
    std::vector<std::uint32_t> choices;
    std::size_t cursor = 0;
    std::uint64_t fixedQuantum;
    bool preferPrevious;
    ThreadId lastPick = invalidThreadId;
    std::vector<std::uint32_t> fanout;
    std::vector<std::uint32_t> chosen;
    std::vector<std::int32_t> prevIdx;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_SCHED_HPP
