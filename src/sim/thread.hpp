#ifndef ICHECK_SIM_THREAD_HPP
#define ICHECK_SIM_THREAD_HPP

/**
 * @file
 * A simulated thread: a SimFiber running the thread body plus the
 * per-thread architectural state.
 *
 * The scheduler resumes a thread's fiber; the body runs until it yields
 * (quantum expiry, sync point, blocking, or finish), which hands control
 * back to the scheduler. Exactly one simulated thread runs at a time, so
 * every run is a pure function of the scheduler's decisions.
 */

#include <cstdint>

#include "sim/fiber.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** Scheduling state of a simulated thread. */
enum class ThreadState : std::uint8_t
{
    Ready,
    Running,
    BlockedMutex,
    BlockedBarrier,
    BlockedCond,
    Finished,
};

/** Why a running thread handed control back to the scheduler. */
enum class YieldReason : std::uint8_t
{
    Quantum,        ///< Preemption quantum expired.
    Sync,           ///< Voluntary yield at a synchronization point.
    BlockedMutex,   ///< Waiting for a mutex.
    BlockedBarrier, ///< Waiting at a barrier.
    BlockedCond,    ///< Waiting on a condition variable.
    Finished,       ///< threadMain returned.
};

/** Thrown inside a simulated thread when the machine aborts the run. */
struct AbortRun
{
};

/**
 * Fiber container and per-thread architectural state.
 */
class SimThread
{
  public:
    explicit SimThread(ThreadId id) : tid(id) {}

    SimThread(const SimThread &) = delete;
    SimThread &operator=(const SimThread &) = delete;

    ThreadId tid;
    SimFiber fiber;

    ThreadState state = ThreadState::Ready;
    YieldReason lastReason = YieldReason::Sync;
    bool aborting = false;

    /**
     * True while the thread executes inside a stop_hashing window
     * (Section 3.3): its stores bypass hashing in every scheme.
     */
    bool hashingPaused = false;

    /** Remaining native accesses in the current quantum. */
    std::int64_t quantum = 0;

    /** Architectural TH register content while descheduled. */
    HashWord savedTh = 0;

    /** Core the thread last ran on (for migration accounting). */
    CoreId lastCore = invalidCoreId;

    /** Per-thread counters for intercepted library calls (Section 5). */
    std::uint64_t randCalls = 0;
    std::uint64_t timeCalls = 0;

    /**
     * Monotone progress counter (accesses + sync ops executed). Serves as
     * a deterministic program-counter proxy for state-pruning signatures
     * in the systematic-testing explorer.
     */
    std::uint64_t progress = 0;

    /**
     * Order-sensitive hash of every value this thread has loaded (plus
     * intercepted library-call results). Together with progress it
     * captures the thread's local state: a thread's continuation is a
     * deterministic function of its load history. Used by the explorer's
     * state-pruning signature (and conceptually identical to Light64's
     * load-value hashing).
     */
    std::uint64_t loadHash = 0;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_THREAD_HPP
