#include "sim/fiber.hpp"

#include "support/logging.hpp"

#if !ICHECK_FIBER_THREADS && defined(__SANITIZE_ADDRESS__)
#include <sanitizer/common_interface_defs.h>
#define ICHECK_FIBER_ASAN 1
#else
#define ICHECK_FIBER_ASAN 0
#endif

namespace icheck::sim
{

#if ICHECK_FIBER_THREADS

SimFiber::~SimFiber()
{
    ICHECK_ASSERT(!host.joinable(),
                  "SimFiber destroyed without join()");
}

void
SimFiber::start(std::function<void()> body)
{
    ICHECK_ASSERT(!entry, "SimFiber started twice");
    entry = std::move(body);
    host = std::thread([this] {
        runSem.acquire();
        entry();
        done = true;
        doneSem.release();
    });
}

void
SimFiber::resume()
{
    ICHECK_ASSERT(entry && !done, "resume of an unstarted/finished fiber");
    runSem.release();
    doneSem.acquire();
}

void
SimFiber::yield()
{
    doneSem.release();
    runSem.acquire();
}

void
SimFiber::join()
{
    if (!host.joinable())
        return;
    if (!done)
        runSem.release(); // wake a parked body so it can exit
    host.join();
}

#else // ucontext implementation

SimFiber::~SimFiber() = default;

void
SimFiber::trampoline(unsigned hi, unsigned lo)
{
    auto *fiber = reinterpret_cast<SimFiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    fiber->bodyMain();
    // Returning resumes uc_link (the scheduler-side context saved by the
    // resume() that ran this slice).
}

void
SimFiber::bodyMain()
{
#if ICHECK_FIBER_ASAN
    // First entry onto this stack: tell ASan where we came from so the
    // switch back is annotated with real bounds.
    __sanitizer_finish_switch_fiber(nullptr, &parentStackBottom,
                                    &parentStackSize);
#endif
    entry();
    done = true;
#if ICHECK_FIBER_ASAN
    // This stack dies now (uc_link return): null fake_stack_save tells
    // ASan to destroy its fake stack instead of preserving it.
    __sanitizer_start_switch_fiber(nullptr, parentStackBottom,
                                   parentStackSize);
#endif
}

void
SimFiber::start(std::function<void()> body)
{
    ICHECK_ASSERT(!entry, "SimFiber started twice");
    entry = std::move(body);
}

void
SimFiber::resume()
{
    ICHECK_ASSERT(entry && !done, "resume of an unstarted/finished fiber");
    if (!started) {
        started = true;
        // Uninitialized on purpose: only the pages the body actually
        // touches get faulted in, so a Machine with many mostly-idle
        // fibers does not pay for megabytes of zero-fill.
        stack = std::make_unique_for_overwrite<std::uint8_t[]>(stackBytes);
        const int got = getcontext(&self);
        ICHECK_ASSERT(got == 0, "getcontext failed");
        self.uc_stack.ss_sp = stack.get();
        self.uc_stack.ss_size = stackBytes;
        self.uc_link = &ret;
        const auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&self, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
    }
#if ICHECK_FIBER_ASAN
    void *fakeStack = nullptr;
    __sanitizer_start_switch_fiber(&fakeStack, stack.get(), stackBytes);
#endif
    const int swapped = swapcontext(&ret, &self);
    ICHECK_ASSERT(swapped == 0, "swapcontext failed");
#if ICHECK_FIBER_ASAN
    __sanitizer_finish_switch_fiber(fakeStack, nullptr, nullptr);
#endif
}

void
SimFiber::yield()
{
#if ICHECK_FIBER_ASAN
    void *fakeStack = nullptr;
    __sanitizer_start_switch_fiber(&fakeStack, parentStackBottom,
                                   parentStackSize);
#endif
    const int swapped = swapcontext(&self, &ret);
    ICHECK_ASSERT(swapped == 0, "swapcontext failed");
#if ICHECK_FIBER_ASAN
    __sanitizer_finish_switch_fiber(fakeStack, nullptr, nullptr);
#endif
}

void
SimFiber::join()
{
    // Nothing to release: an unfinished fiber's stack and context die
    // with the object, and a parked one is simply never resumed again.
}

#endif

} // namespace icheck::sim
