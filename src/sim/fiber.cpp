#include "sim/fiber.hpp"

#include "support/logging.hpp"

#if !ICHECK_FIBER_THREADS && defined(__SANITIZE_ADDRESS__)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#define ICHECK_FIBER_ASAN 1
#else
#define ICHECK_FIBER_ASAN 0
#endif

#if !ICHECK_FIBER_THREADS
#include <cstring>
#endif

namespace icheck::sim
{

#if !ICHECK_FIBER_THREADS
namespace
{

/**
 * memcpy for stack images. Under ASan the parked stack carries poisoned
 * redzones that a plain memcpy would trip over, so the copy helpers are
 * exempted from instrumentation; restore() additionally unpoisons the
 * whole stack buffer so the resurrected frames (whose redzone layout no
 * longer matches the shadow state of the abandoned frames) do not raise
 * false positives. The cost is reduced ASan precision *within* restored
 * fiber stacks — documented in DESIGN.md §9.
 */
#if ICHECK_FIBER_ASAN
__attribute__((no_sanitize("address")))
#endif
void
copyStackBytes(void *dst, const void *src, std::size_t len)
{
    std::memcpy(dst, src, len);
}

/** Bytes below the saved stack pointer also captured: the System V ABI
 *  red zone (128 bytes) plus margin for any deeper scratch use. */
constexpr std::size_t stackRedzone = 512;

/** Saved stack pointer of a parked context, or 0 when the architecture
 *  is not recognized (the caller then images the whole stack). */
std::uintptr_t
contextSp(const ucontext_t &context)
{
#if defined(__x86_64__)
    return static_cast<std::uintptr_t>(
        context.uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
    return static_cast<std::uintptr_t>(context.uc_mcontext.sp);
#else
    (void)context;
    return 0;
#endif
}

} // namespace
#endif // !ICHECK_FIBER_THREADS

#if ICHECK_FIBER_THREADS

SimFiber::~SimFiber()
{
    ICHECK_ASSERT(!host.joinable(),
                  "SimFiber destroyed without join()");
}

void
SimFiber::start(std::function<void()> body)
{
    ICHECK_ASSERT(!entry, "SimFiber started twice");
    entry = std::move(body);
    host = std::thread([this] {
        runSem.acquire();
        entry();
        done = true;
        doneSem.release();
    });
}

void
SimFiber::resume()
{
    ICHECK_ASSERT(entry && !done, "resume of an unstarted/finished fiber");
    runSem.release();
    doneSem.acquire();
}

void
SimFiber::yield()
{
    doneSem.release();
    runSem.acquire();
}

void
SimFiber::join()
{
    if (!host.joinable())
        return;
    if (!done)
        runSem.release(); // wake a parked body so it can exit
    host.join();
}

bool
SimFiber::snapshotSupported()
{
    return false;
}

FiberSnapshot
SimFiber::snapshot() const
{
    ICHECK_PANIC("fiber snapshots are unavailable with host-thread "
                 "fibers (TSan builds)");
}

void
SimFiber::restore(const FiberSnapshot &)
{
    ICHECK_PANIC("fiber snapshots are unavailable with host-thread "
                 "fibers (TSan builds)");
}

#else // ucontext implementation

SimFiber::~SimFiber() = default;

void
SimFiber::trampoline(unsigned hi, unsigned lo)
{
    auto *fiber = reinterpret_cast<SimFiber *>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    fiber->bodyMain();
    // Returning resumes uc_link (the scheduler-side context saved by the
    // resume() that ran this slice).
}

void
SimFiber::bodyMain()
{
#if ICHECK_FIBER_ASAN
    // First entry onto this stack: tell ASan where we came from so the
    // switch back is annotated with real bounds.
    __sanitizer_finish_switch_fiber(nullptr, &parentStackBottom,
                                    &parentStackSize);
#endif
    entry();
    done = true;
#if ICHECK_FIBER_ASAN
    // This stack dies now (uc_link return): null fake_stack_save tells
    // ASan to destroy its fake stack instead of preserving it.
    __sanitizer_start_switch_fiber(nullptr, parentStackBottom,
                                   parentStackSize);
#endif
}

void
SimFiber::start(std::function<void()> body)
{
    ICHECK_ASSERT(!entry, "SimFiber started twice");
    entry = std::move(body);
}

void
SimFiber::resume()
{
    ICHECK_ASSERT(entry && !done, "resume of an unstarted/finished fiber");
    if (!started) {
        started = true;
        // Uninitialized on purpose: only the pages the body actually
        // touches get faulted in, so a Machine with many mostly-idle
        // fibers does not pay for megabytes of zero-fill. The buffer is
        // allocated once and never moves afterwards — even a restart
        // after a checkpoint restore to the pre-start state reuses it,
        // because outstanding FiberSnapshots hold images bound to this
        // address.
        if (!stack) {
            stack = std::make_unique_for_overwrite<std::uint8_t[]>(
                stackBytes);
        }
        const int got = getcontext(&self);
        ICHECK_ASSERT(got == 0, "getcontext failed");
        self.uc_stack.ss_sp = stack.get();
        self.uc_stack.ss_size = stackBytes;
        self.uc_link = &ret;
        const auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&self, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
    }
#if ICHECK_FIBER_ASAN
    void *fakeStack = nullptr;
    __sanitizer_start_switch_fiber(&fakeStack, stack.get(), stackBytes);
#endif
    const int swapped = swapcontext(&ret, &self);
    ICHECK_ASSERT(swapped == 0, "swapcontext failed");
#if ICHECK_FIBER_ASAN
    __sanitizer_finish_switch_fiber(fakeStack, nullptr, nullptr);
#endif
}

void
SimFiber::yield()
{
#if ICHECK_FIBER_ASAN
    void *fakeStack = nullptr;
    __sanitizer_start_switch_fiber(&fakeStack, parentStackBottom,
                                   parentStackSize);
#endif
    const int swapped = swapcontext(&self, &ret);
    ICHECK_ASSERT(swapped == 0, "swapcontext failed");
#if ICHECK_FIBER_ASAN
    __sanitizer_finish_switch_fiber(fakeStack, nullptr, nullptr);
#endif
}

void
SimFiber::join()
{
    // Nothing to release: an unfinished fiber's stack and context die
    // with the object, and a parked one is simply never resumed again.
}

bool
SimFiber::snapshotSupported()
{
    return true;
}

FiberSnapshot
SimFiber::snapshot() const
{
    FiberSnapshot snap;
    snap.started = started;
    snap.done = done;
    if (!started || done)
        return snap; // no live frames: flags are the whole state
    ICHECK_ASSERT(stack != nullptr, "started fiber without a stack");
    snap.context = self;
    snap.stackBase = stack.get();
    // Image only the live region: [sp - redzone, stack top). The saved
    // stack pointer comes from the context swapcontext() filled when the
    // fiber parked; if the architecture is unrecognized, fall back to
    // imaging the whole buffer (correct, just larger).
    const auto base = reinterpret_cast<std::uintptr_t>(stack.get());
    const std::uintptr_t top = base + stackBytes;
    std::uintptr_t low = contextSp(self);
    low = low >= base + stackRedzone ? low - stackRedzone : base;
    if (low < base || low > top)
        low = base;
    snap.imageOffset = low - base;
    snap.image.resize(top - low);
    copyStackBytes(snap.image.data(),
                   reinterpret_cast<const void *>(low), top - low);
    return snap;
}

void
SimFiber::restore(const FiberSnapshot &snap)
{
    ICHECK_ASSERT(entry, "restore of an unstarted SimFiber");
    if (!snap.started || snap.done) {
        // Pre-start or post-finish state: no frames to resurrect. A
        // restored pre-start fiber re-runs makecontext on its next
        // resume (on the same, preserved stack buffer).
        started = snap.started;
        done = snap.done;
        return;
    }
    ICHECK_ASSERT(stack != nullptr && stack.get() == snap.stackBase,
                  "fiber snapshot restored into a different fiber");
    ICHECK_ASSERT(snap.imageOffset + snap.image.size() == stackBytes,
                  "malformed fiber stack image");
#if ICHECK_FIBER_ASAN
    // The abandoned frames' redzone poisoning no longer describes the
    // resurrected frames; clear it wholesale (see copyStackBytes).
    __asan_unpoison_memory_region(stack.get(), stackBytes);
#endif
    copyStackBytes(stack.get() + snap.imageOffset, snap.image.data(),
                   snap.image.size());
    // The context is rewound by value. Its internal pointers stay valid
    // because they refer to this object's own members (glibc points
    // uc_mcontext.fpregs at the context's embedded FP save area, and
    // uc_link at this->ret), whose addresses are stable for the life of
    // the fiber.
    self = snap.context;
    started = true;
    done = false;
}

#endif

} // namespace icheck::sim
