#ifndef ICHECK_SIM_CORE_HPP
#define ICHECK_SIM_CORE_HPP

/**
 * @file
 * A simulated core: instruction counters, private L1, write buffer, and
 * the per-core Memory-State Hashing Module.
 */

#include <memory>

#include "cache/l1_cache.hpp"
#include "cache/write_buffer.hpp"
#include "mhm/mhm.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/**
 * Per-core microarchitectural state. Owned by the Machine; mutated only
 * while the core's current thread (or the scheduler) runs.
 */
struct Core
{
    Core(CoreId core_id, const cache::CacheConfig &cache_cfg,
         std::size_t wb_capacity, cache::DrainPolicy wb_policy,
         std::uint64_t wb_seed, std::unique_ptr<mhm::Mhm> module)
        : id(core_id), l1(cache_cfg), wb(wb_capacity, wb_policy, wb_seed),
          mhm(std::move(module))
    {}

    CoreId id;

    /** Instructions retired on behalf of the program under test. */
    InstCount nativeInstrs = 0;

    /** Instructions retired on behalf of InstantCheck instrumentation. */
    InstCount overheadInstrs = 0;

    cache::L1Cache l1;
    cache::WriteBuffer wb;
    std::unique_ptr<mhm::Mhm> mhm;

    /** Thread currently resident (invalid when idle). */
    ThreadId currentThread = invalidThreadId;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_CORE_HPP
