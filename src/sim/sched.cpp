#include "sim/sched.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace icheck::sim
{

RandomScheduler::RandomScheduler(std::uint64_t seed,
                                 std::uint64_t min_quantum,
                                 std::uint64_t max_quantum,
                                 double migrate_prob)
    : rng(seed), minQuantum(min_quantum), maxQuantum(max_quantum),
      migrateProb(migrate_prob)
{
    ICHECK_ASSERT(min_quantum >= 1 && min_quantum <= max_quantum,
                  "bad quantum range");
}

ThreadId
RandomScheduler::pick(const std::vector<ThreadId> &runnable)
{
    ICHECK_ASSERT(!runnable.empty(), "pick() from empty runnable set");
    return runnable[rng.below(runnable.size())];
}

std::uint64_t
RandomScheduler::quantum()
{
    return rng.range(minQuantum, maxQuantum);
}

CoreId
RandomScheduler::coreFor(ThreadId tid, CoreId home, CoreId num_cores)
{
    (void)tid;
    if (num_cores > 1 && rng.chance(migrateProb))
        return static_cast<CoreId>(rng.below(num_cores));
    return home;
}

RoundRobinScheduler::RoundRobinScheduler(std::uint64_t fixed_quantum)
    : fixedQuantum(fixed_quantum)
{
    ICHECK_ASSERT(fixed_quantum >= 1, "quantum must be positive");
}

ThreadId
RoundRobinScheduler::pick(const std::vector<ThreadId> &runnable)
{
    ICHECK_ASSERT(!runnable.empty(), "pick() from empty runnable set");
    // The smallest tid strictly greater than the last pick, wrapping.
    for (ThreadId tid : runnable) {
        if (lastPicked == invalidThreadId || tid > lastPicked) {
            lastPicked = tid;
            return tid;
        }
    }
    lastPicked = runnable.front();
    return lastPicked;
}

std::uint64_t
RoundRobinScheduler::quantum()
{
    return fixedQuantum;
}

ScriptedScheduler::ScriptedScheduler(std::vector<std::uint32_t> script,
                                     std::uint64_t fixed_quantum,
                                     bool prefer_previous)
    : choices(std::move(script)), fixedQuantum(fixed_quantum),
      preferPrevious(prefer_previous)
{
    ICHECK_ASSERT(fixed_quantum >= 1, "quantum must be positive");
}

ThreadId
ScriptedScheduler::pick(const std::vector<ThreadId> &runnable)
{
    ICHECK_ASSERT(!runnable.empty(), "pick() from empty runnable set");
    fanout.push_back(static_cast<std::uint32_t>(runnable.size()));

    std::int32_t prev_index = -1;
    if (lastPick != invalidThreadId) {
        const auto it =
            std::find(runnable.begin(), runnable.end(), lastPick);
        if (it != runnable.end())
            prev_index =
                static_cast<std::int32_t>(it - runnable.begin());
    }
    prevIdx.push_back(prev_index);

    std::size_t idx = 0;
    if (cursor < choices.size()) {
        idx = std::min<std::size_t>(choices[cursor], runnable.size() - 1);
        ++cursor;
    } else if (preferPrevious && prev_index >= 0) {
        idx = static_cast<std::size_t>(prev_index);
    }
    chosen.push_back(static_cast<std::uint32_t>(idx));
    lastPick = runnable[idx];
    return lastPick;
}

std::uint64_t
ScriptedScheduler::quantum()
{
    return fixedQuantum;
}

void
ScriptedScheduler::resumeAt(std::vector<std::uint32_t> fanout_prefix,
                            std::vector<std::uint32_t> chosen_prefix,
                            std::vector<std::int32_t> prev_prefix,
                            ThreadId last_pick)
{
    ICHECK_ASSERT(fanout_prefix.size() == chosen_prefix.size() &&
                      prev_prefix.size() == chosen_prefix.size(),
                  "inconsistent decision-history prefix");
    ICHECK_ASSERT(fanout.empty() && chosen.empty(),
                  "resumeAt on a scheduler that already ran");
    cursor = std::min(chosen_prefix.size(), choices.size());
    fanout = std::move(fanout_prefix);
    chosen = std::move(chosen_prefix);
    prevIdx = std::move(prev_prefix);
    lastPick = last_pick;
}

} // namespace icheck::sim
