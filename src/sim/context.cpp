#include "sim/context.hpp"

#include "support/logging.hpp"

namespace icheck::sim
{

SetupCtx::SetupCtx(Machine &owner)
    : machine(owner), inputRng(owner.cfg.inputSeed)
{}

Addr
SetupCtx::global(const std::string &name, const mem::TypeRef &type)
{
    return machine.statics.reserve(name, type);
}

Addr
SetupCtx::addressOf(const std::string &name) const
{
    return machine.statics.addressOf(name);
}

Addr
SetupCtx::alloc(const std::string &site, const mem::TypeRef &type)
{
    const Addr addr = machine.heap.allocate(site, type);
    const mem::Block *block = machine.heap.findLive(addr);
    for (auto *listener : machine.listeners)
        listener->onAlloc(*block);
    return addr;
}

MutexId
SetupCtx::mutex()
{
    return machine.createMutex();
}

BarrierId
SetupCtx::barrier(std::uint32_t parties)
{
    return machine.createBarrier(parties);
}

CondId
SetupCtx::cond()
{
    return machine.createCond();
}

ThreadId
SetupCtx::threadsPlanned() const
{
    ICHECK_ASSERT(machine.program != nullptr, "setup outside run()");
    return machine.program->numThreads();
}

ThreadCtx::ThreadCtx(Machine &owner, ThreadId tid)
    : machine(owner), threadId(tid)
{}

ThreadId
ThreadCtx::nthreads() const
{
    return machine.numThreads();
}

std::uint64_t
ThreadCtx::inputSeed() const
{
    return machine.cfg.inputSeed;
}

Addr
ThreadCtx::global(const std::string &name) const
{
    return machine.statics.addressOf(name);
}

} // namespace icheck::sim
