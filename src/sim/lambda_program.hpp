#ifndef ICHECK_SIM_LAMBDA_PROGRAM_HPP
#define ICHECK_SIM_LAMBDA_PROGRAM_HPP

/**
 * @file
 * A Program assembled from closures — the quickest way to express the
 * small parallel fragments used in tests, examples, and the systematic-
 * testing explorer (e.g. the Figure 1 "G += L" example).
 */

#include <functional>
#include <string>
#include <utility>

#include "sim/context.hpp"
#include "sim/program.hpp"

namespace icheck::sim
{

/**
 * Program whose setup and thread body are std::functions.
 */
class LambdaProgram : public Program
{
  public:
    using SetupFn = std::function<void(SetupCtx &)>;
    using MainFn = std::function<void(ThreadCtx &)>;

    /**
     * @param name     Report name.
     * @param threads  Worker count.
     * @param setup_fn Runs single-threaded before hashing.
     * @param main_fn  Body of every worker (dispatch on ctx.tid()).
     */
    LambdaProgram(std::string name, ThreadId threads, SetupFn setup_fn,
                  MainFn main_fn)
        : progName(std::move(name)), threads(threads),
          setupFn(std::move(setup_fn)), mainFn(std::move(main_fn))
    {}

    std::string name() const override { return progName; }
    ThreadId numThreads() const override { return threads; }

    void
    setup(SetupCtx &ctx) override
    {
        if (setupFn)
            setupFn(ctx);
    }

    void
    threadMain(ThreadCtx &ctx) override
    {
        mainFn(ctx);
    }

  private:
    std::string progName;
    ThreadId threads;
    SetupFn setupFn;
    MainFn mainFn;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_LAMBDA_PROGRAM_HPP
