#ifndef ICHECK_SIM_LISTENER_HPP
#define ICHECK_SIM_LISTENER_HPP

/**
 * @file
 * Observation interface onto a simulated run.
 *
 * Software InstantCheck schemes, the race detector, and ad-hoc analysis
 * tools subscribe here. This is the repo's substitute for Pin
 * instrumentation callbacks: every simulated memory access, allocation,
 * synchronization operation, and output write is reported.
 */

#include <cstdint>

#include "hashing/state_hash.hpp"
#include "mem/alloc.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** Whose cost account an access belongs to. */
enum class CostDomain : std::uint8_t
{
    Native,   ///< The program under test.
    Overhead, ///< Instrumentation added by InstantCheck (zeroing etc.).
};

/**
 * One store, observed after the value is in simulated memory.
 *
 * Deliberately a plain aggregate with no member initializers: the event
 * transport (sim/event_ring.hpp) embeds this struct verbatim inside the
 * EventRecord union, which requires a trivial default constructor, and the
 * hot path fills every field in place in the ring slot.
 */
struct StoreEvent
{
    ThreadId tid;
    CoreId core;
    Addr addr;
    std::uint64_t oldBits;
    std::uint64_t newBits;
    unsigned width;
    hashing::ValueClass cls;
    CostDomain domain;

    /**
     * False when the store happened inside a stop_hashing window
     * (Section 3.3): software incremental checkers must skip it, exactly
     * as the MHM does.
     */
    bool hashed;
};

/** One load. Plain aggregate for the same reason as StoreEvent. */
struct LoadEvent
{
    ThreadId tid;
    CoreId core;
    Addr addr;
    unsigned width;
};

/** Synchronization event kinds. */
enum class SyncKind : std::uint8_t
{
    LockAcquire,
    LockRelease,
    BarrierArrive,
    BarrierLeave,
    CondWait,
    CondSignal,
    ThreadStart,
    ThreadFinish,
};

/** One synchronization operation. */
struct SyncEvent
{
    SyncKind kind;
    ThreadId tid = 0;
    std::uint32_t object = 0; ///< Mutex/barrier/cond id (0 for thread ops).
    std::uint64_t epoch = 0;  ///< Barrier epoch, when applicable.
};

/** Kind of a determinism checkpoint (Section 2.3). */
enum class CheckpointKind : std::uint8_t
{
    Barrier,    ///< A pthread-style barrier completed.
    Manual,     ///< Programmer-specified point (e.g., loop iteration end).
    ProgramEnd, ///< All threads finished.
};

/** Information passed to the checkpoint handler and onCheckpoint(). */
struct CheckpointInfo
{
    CheckpointKind kind;
    std::uint64_t index; ///< 0-based sequence number within the run.
    ThreadId tid;        ///< Thread at the checkpoint (invalid at end).
};

/** How a schedule slice ended (mapped from the thread's YieldReason). */
enum class SliceEnd : std::uint8_t
{
    Running,   ///< Slice-begin events: nothing ended yet.
    Preempted, ///< Quantum expiry while still runnable.
    Yielded,   ///< Voluntary yield at a sync point.
    Blocked,   ///< Blocked on a mutex/barrier/condvar.
    Finished,  ///< The thread body returned.
};

/** One schedule slice boundary: a thread switching onto or off a core. */
struct SliceEvent
{
    ThreadId tid = 0;
    CoreId core = 0;
    bool begin = true; ///< True at switch-in, false at switch-out.
    SliceEnd reason = SliceEnd::Running; ///< Why it ended (end events).
};

/**
 * Subscriber to run events. All callbacks fire on the currently running
 * simulated thread; because execution is serialized, no locking is
 * needed. (Under the async event transport they fire on the drain thread
 * instead — still one at a time, in event order.)
 */
class AccessListener
{
  public:
    virtual ~AccessListener() = default;

    virtual void onStore(const StoreEvent &) {}
    virtual void onLoad(const LoadEvent &) {}
    virtual void onSync(const SyncEvent &) {}
    virtual void onAlloc(const mem::Block &) {}
    virtual void onFree(const mem::Block &) {}
    virtual void onOutput(ThreadId, const std::uint8_t *, std::size_t) {}
    virtual void onSlice(const SliceEvent &) {}
    virtual void onCheckpoint(const CheckpointInfo &) {}
};

} // namespace icheck::sim

#endif // ICHECK_SIM_LISTENER_HPP
