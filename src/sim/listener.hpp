#ifndef ICHECK_SIM_LISTENER_HPP
#define ICHECK_SIM_LISTENER_HPP

/**
 * @file
 * Observation interface onto a simulated run.
 *
 * Software InstantCheck schemes, the race detector, and ad-hoc analysis
 * tools subscribe here. This is the repo's substitute for Pin
 * instrumentation callbacks: every simulated memory access, allocation,
 * synchronization operation, and output write is reported.
 */

#include <cstdint>

#include "hashing/state_hash.hpp"
#include "mem/alloc.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

/** Whose cost account an access belongs to. */
enum class CostDomain : std::uint8_t
{
    Native,   ///< The program under test.
    Overhead, ///< Instrumentation added by InstantCheck (zeroing etc.).
};

/** One store, observed after the value is in simulated memory. */
struct StoreEvent
{
    ThreadId tid = 0;
    CoreId core = 0;
    Addr addr = 0;
    std::uint64_t oldBits = 0;
    std::uint64_t newBits = 0;
    unsigned width = 0;
    hashing::ValueClass cls = hashing::ValueClass::Integer;
    CostDomain domain = CostDomain::Native;

    /**
     * False when the store happened inside a stop_hashing window
     * (Section 3.3): software incremental checkers must skip it, exactly
     * as the MHM does.
     */
    bool hashed = true;
};

/** One load. */
struct LoadEvent
{
    ThreadId tid = 0;
    CoreId core = 0;
    Addr addr = 0;
    unsigned width = 0;
};

/** Synchronization event kinds. */
enum class SyncKind : std::uint8_t
{
    LockAcquire,
    LockRelease,
    BarrierArrive,
    BarrierLeave,
    CondWait,
    CondSignal,
    ThreadStart,
    ThreadFinish,
};

/** One synchronization operation. */
struct SyncEvent
{
    SyncKind kind;
    ThreadId tid = 0;
    std::uint32_t object = 0; ///< Mutex/barrier/cond id (0 for thread ops).
    std::uint64_t epoch = 0;  ///< Barrier epoch, when applicable.
};

/**
 * Subscriber to run events. All callbacks fire on the currently running
 * simulated thread; because execution is serialized, no locking is needed.
 */
class AccessListener
{
  public:
    virtual ~AccessListener() = default;

    virtual void onStore(const StoreEvent &) {}
    virtual void onLoad(const LoadEvent &) {}
    virtual void onSync(const SyncEvent &) {}
    virtual void onAlloc(const mem::Block &) {}
    virtual void onFree(const mem::Block &) {}
    virtual void onOutput(ThreadId, const std::uint8_t *, std::size_t) {}
};

} // namespace icheck::sim

#endif // ICHECK_SIM_LISTENER_HPP
