#ifndef ICHECK_SIM_CONTEXT_HPP
#define ICHECK_SIM_CONTEXT_HPP

/**
 * @file
 * The APIs a simulated program uses to touch the machine.
 *
 * SetupCtx is the single-threaded initialization facade: it declares
 * globals, builds the initial memory image directly (before hashing
 * starts), creates synchronization objects, and provides the deterministic
 * input RNG.
 *
 * ThreadCtx is the worker-thread facade: typed loads/stores that flow
 * through the cache/MHM/listener pipeline, malloc/free with
 * zero-on-allocate, pthreads-style synchronization, intercepted library
 * calls, compute-cost ticks, and the hashed output stream.
 */

#include <bit>
#include <cstdint>
#include <source_location>
#include <string>
#include <type_traits>

#include "mem/type_desc.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace icheck::sim
{

namespace detail
{

/** Raw little-endian bits of a storable value. */
template <typename T>
std::uint64_t
toBits(T value)
{
    static_assert(std::is_arithmetic_v<T> && sizeof(T) <= 8,
                  "storable types are arithmetic and at most 8 bytes");
    if constexpr (std::is_same_v<T, float>) {
        return std::bit_cast<std::uint32_t>(value);
    } else if constexpr (std::is_same_v<T, double>) {
        return std::bit_cast<std::uint64_t>(value);
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<std::uint64_t>(static_cast<U>(value));
    }
}

/** Reverse of toBits. */
template <typename T>
T
fromBits(std::uint64_t bits)
{
    if constexpr (std::is_same_v<T, float>) {
        return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
    } else if constexpr (std::is_same_v<T, double>) {
        return std::bit_cast<double>(bits);
    } else {
        using U = std::make_unsigned_t<T>;
        return static_cast<T>(static_cast<U>(bits));
    }
}

/** ValueClass a store of T carries (the compiler's FP marking, Section 5). */
template <typename T>
constexpr hashing::ValueClass
classOf()
{
    if constexpr (std::is_same_v<T, float>)
        return hashing::ValueClass::Float;
    else if constexpr (std::is_same_v<T, double>)
        return hashing::ValueClass::Double;
    else
        return hashing::ValueClass::Integer;
}

} // namespace detail

/**
 * Single-threaded program-initialization facade. Valid only inside
 * Program::setup().
 */
class SetupCtx
{
  public:
    explicit SetupCtx(Machine &machine);

    /** Declare a global of shape @p type; returns its address. */
    Addr global(const std::string &name, const mem::TypeRef &type);

    /** Address of a previously declared global. */
    Addr addressOf(const std::string &name) const;

    /** Initialize memory directly (pre-hashing; part of the input state). */
    template <typename T>
    void
    init(Addr addr, T value)
    {
        machine.mem.writeValue(addr, sizeof(T), detail::toBits(value));
    }

    /** Read back a value written during setup. */
    template <typename T>
    T
    peek(Addr addr) const
    {
        return detail::fromBits<T>(machine.mem.readValue(addr, sizeof(T)));
    }

    /** Allocate an initial-state heap block (fresh memory is zero). */
    Addr alloc(const std::string &site, const mem::TypeRef &type);

    MutexId mutex();
    BarrierId barrier(std::uint32_t parties);
    CondId cond();

    /** Deterministic input-data RNG (same across runs/schedules). */
    Xoshiro256 &rng() { return inputRng; }

    /** The run's input seed. */
    std::uint64_t inputSeed() const { return machine.cfg.inputSeed; }

    /** Number of worker threads the machine will run. */
    ThreadId threadsPlanned() const;

  private:
    Machine &machine;
    Xoshiro256 inputRng;
};

/**
 * Worker-thread facade. Valid only inside Program::threadMain(); all calls
 * execute on the simulated thread under the serializing scheduler.
 */
class ThreadCtx
{
  public:
    ThreadCtx(Machine &machine, ThreadId tid);

    /** This thread's id. */
    ThreadId tid() const { return threadId; }

    /** Total worker threads. */
    ThreadId nthreads() const;

    /** The run's input seed (for thread-local algorithmic RNGs). */
    std::uint64_t inputSeed() const;

    /** Typed load through the cache model. */
    template <typename T>
    T
    load(Addr addr,
         const std::source_location loc = std::source_location::current())
    {
        if (machine.accessSiteTrackingArmed()) [[unlikely]]
            machine.noteAccessSite(loc.file_name(),
                                   static_cast<int>(loc.line()));
        return detail::fromBits<T>(machine.loadAccess(addr, sizeof(T)));
    }

    /** Typed store through the write buffer / MHM pipeline. */
    template <typename T>
    void
    store(Addr addr, T value,
          const std::source_location loc = std::source_location::current())
    {
        if (machine.accessSiteTrackingArmed()) [[unlikely]]
            machine.noteAccessSite(loc.file_name(),
                                   static_cast<int>(loc.line()));
        machine.storeAccess(addr, sizeof(T), detail::toBits(value),
                            detail::classOf<T>(), CostDomain::Native);
    }

    /** Load a simulated pointer. */
    Addr
    loadPtr(Addr addr,
            const std::source_location loc = std::source_location::current())
    {
        return load<std::uint64_t>(addr, loc);
    }

    /** Store a simulated pointer. */
    void
    storePtr(Addr addr, Addr value,
             const std::source_location loc = std::source_location::current())
    {
        store<std::uint64_t>(addr, value, loc);
    }

    /** Address of a global declared in setup. */
    Addr global(const std::string &name) const;

    /** Account @p n instructions of pure compute. */
    void tick(InstCount n) { machine.tick(n); }

    /** malloc with site annotation; zero-filled under instrumentation. */
    Addr malloc(const std::string &site, const mem::TypeRef &type)
    {
        return machine.allocBlock(site, type);
    }

    /** free; scrubbed under instrumentation. */
    void free(Addr addr) { machine.freeBlock(addr); }

    void lock(MutexId id) { machine.lockMutex(id); }
    void unlock(MutexId id) { machine.unlockMutex(id); }
    void barrier(BarrierId id) { machine.barrierWait(id); }
    void condWait(CondId cond, MutexId mutex)
    {
        machine.condWait(cond, mutex);
    }
    void condSignal(CondId cond) { machine.condSignal(cond); }
    void condBroadcast(CondId cond) { machine.condBroadcast(cond); }

    /** Programmer-specified determinism checkpoint (Section 2.3). */
    void checkpoint() { machine.manualCheckpoint(); }

    /**
     * stop_hashing (Fig 4): subsequent stores by this thread are not
     * hashed by any scheme — for tool code running in the checked
     * thread's address space (Section 3.3). Unhashed stores should
     * target scratch space (see scratch()) so the traversal scheme's
     * view stays consistent.
     */
    void stopHashing() { machine.setThreadHashing(false); }

    /** start_hashing: resume hashing this thread's stores. */
    void startHashing() { machine.setThreadHashing(true); }

    /**
     * Base of this thread's 1 MiB tool-scratch region: outside the
     * checked state (not part of heap or statics, never traversed).
     */
    Addr
    scratch() const
    {
        return mem::scratchBase +
               static_cast<Addr>(threadId) * (1u << 20);
    }

    /** Intercepted rand(): same sequence per thread across runs. */
    std::uint64_t rand64() { return machine.interceptedRand(); }

    /** Intercepted gettimeofday() in microseconds (virtual time). */
    std::uint64_t timeOfDayUs() { return machine.interceptedTimeUs(); }

    /** Write to the program output stream (hashed per Section 4.3). */
    void output(const void *data, std::size_t len)
    {
        machine.writeOutput(static_cast<const std::uint8_t *>(data), len);
    }

    /** Convenience: write one value to the output stream. */
    template <typename T>
    void
    outputValue(T value)
    {
        output(&value, sizeof(T));
    }

  private:
    Machine &machine;
    ThreadId threadId;
};

} // namespace icheck::sim

#endif // ICHECK_SIM_CONTEXT_HPP
