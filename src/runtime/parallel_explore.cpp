#include "runtime/parallel_explore.hpp"

#include <array>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "explore/dpor.hpp"
#include "explore/snapshot_tree.hpp"
#include "runtime/parallel_driver.hpp"

namespace icheck::runtime
{

namespace
{

/**
 * Shard-locked signature set: a state reached by any worker immediately
 * prunes every worker's branches, without a single hot lock. Signatures
 * are already avalanche-mixed by the explorer, so the low bits pick the
 * shard uniformly.
 */
class ShardedSignatureSet
{
  public:
    bool
    insert(std::uint64_t sig)
    {
        Shard &shard = shards[sig % shards.size()];
        std::lock_guard<std::mutex> lock(shard.mu);
        return shard.seen.insert(sig).second;
    }

  private:
    struct Shard
    {
        std::mutex mu;
        std::unordered_set<std::uint64_t> seen;
    };
    std::array<Shard, 64> shards;
};

/** Shared LIFO frontier plus the merged result, all under one lock. */
struct Frontier
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<explore::detail::PendingNode> pending;
    int inFlight = 0;
    int claimed = 0; ///< Runs handed to workers (capped at maxRuns).
    bool done = false;
    explore::ExploreResult result;
};

void
workerLoop(Frontier &frontier, ShardedSignatureSet &seen,
           const check::ProgramFactory &factory,
           const sim::MachineConfig &machine_template,
           const explore::ExploreConfig &config,
           explore::CheckpointTree *tree, explore::BranchLedger *ledger,
           std::size_t worker_id)
{
    explore::ExploreStats local;
    const explore::detail::SignatureInsert insert_sig =
        [&seen, &local](std::uint64_t sig) {
            // icheck-lint: allow(C2): `local` is worker-private; merged
            // into the shared result under frontier.mu by flush_stats.
            ++local.sigInserts;
            const bool fresh = seen.insert(sig);
            if (fresh)
                ++local.sigUnique;
            return fresh;
        };

    // With a checkpoint tree, this worker drives a persistent machine
    // whose snapshots it shares (keyed by worker id: snapshots are
    // machine-affine, so workers never restore each other's).
    std::unique_ptr<explore::PrefixEngine> engine;
    if (tree != nullptr) {
        engine = std::make_unique<explore::PrefixEngine>(
            factory, machine_template, config, *tree, worker_id);
    }

    // Called with frontier.mu held, on every exit path.
    const auto flush_stats = [&]() {
        if (engine)
            local.merge(engine->stats());
        frontier.result.stats.merge(local);
        local = explore::ExploreStats{};
    };

    for (;;) {
        explore::detail::PendingNode node;
        int run_ordinal = 0;
        {
            std::unique_lock<std::mutex> lock(frontier.mu);
            for (;;) {
                if (frontier.done) {
                    flush_stats();
                    return;
                }
                if (frontier.claimed >= config.maxRuns) {
                    frontier.done = true;
                    flush_stats();
                    frontier.cv.notify_all();
                    return;
                }
                if (!frontier.pending.empty()) {
                    node = std::move(frontier.pending.back());
                    frontier.pending.pop_back();
                    ++frontier.inFlight;
                    run_ordinal = frontier.claimed;
                    ++frontier.claimed;
                    break;
                }
                if (frontier.inFlight == 0) {
                    // Nothing queued, nothing running: search complete.
                    frontier.done = true;
                    flush_stats();
                    frontier.cv.notify_all();
                    return;
                }
                frontier.cv.wait(lock);
            }
        }

        std::unique_ptr<sim::ChromeTraceBuilder> trace;
        if (!config.traceDir.empty()) {
            trace = std::make_unique<sim::ChromeTraceBuilder>(
                "run " + std::to_string(run_ordinal) + " (depth " +
                std::to_string(node.prefix.size()) + ")");
        }
        const explore::detail::RunObservation obs =
            engine ? engine->runOnce(node.prefix, insert_sig, &node.sleep)
                   : explore::detail::runOnce(factory, machine_template,
                                              config, node.prefix,
                                              insert_sig, &node.sleep,
                                              trace.get());
        if (trace != nullptr)
            explore::detail::writeRunTrace(config.traceDir, run_ordinal,
                                           *trace);
        if (!engine) {
            ++local.nodesExpanded;
            local.decisionsExecuted += obs.fanout.size();
        }
        std::vector<explore::detail::PendingNode> children;
        const auto emit = [&children](explore::detail::PendingNode child) {
            children.push_back(std::move(child));
        };
        const explore::detail::ExpandCounts counts =
            ledger != nullptr
                ? explore::detail::expandDpor(obs, node, config, *ledger,
                                              local, emit)
                : explore::detail::expandBranches(
                      obs, node.prefix.size(), config,
                      [&children](std::vector<std::uint32_t> next) {
                          children.push_back({std::move(next), {}});
                      });

        {
            std::lock_guard<std::mutex> lock(frontier.mu);
            ++frontier.result.runsExecuted;
            frontier.result.finalStates.insert(obs.finalState);
            frontier.result.branchesPruned += counts.pruned;
            frontier.result.branchesBoundedOut += counts.boundedOut;
            for (explore::detail::PendingNode &child : children)
                frontier.pending.push_back(std::move(child));
            --frontier.inFlight;
        }
        frontier.cv.notify_all();
    }
}

} // namespace

explore::ExploreResult
exploreParallel(const check::ProgramFactory &factory,
                const sim::MachineConfig &machine_template,
                const explore::ExploreConfig &config, int jobs)
{
    jobs = resolveJobs(jobs);
    if (jobs <= 1 || config.maxRuns <= 1)
        return explore::explore(factory, machine_template, config);

    Frontier frontier;
    frontier.pending.push_back({});
    frontier.result.stats.dporActive = config.dpor;
    ShardedSignatureSet seen;

    const bool warm = config.checkpoints &&
                      explore::PrefixEngine::supported() &&
                      !config.transport && config.traceDir.empty();
    std::unique_ptr<explore::CheckpointTree> tree;
    if (warm) {
        tree = std::make_unique<explore::CheckpointTree>(
            config.checkpointBudgetBytes);
    }
    std::unique_ptr<explore::BranchLedger> ledger;
    if (config.dpor)
        ledger = std::make_unique<explore::BranchLedger>();

    ThreadPool pool(static_cast<unsigned>(jobs));
    pool.parallelFor(static_cast<std::size_t>(jobs), [&](std::size_t w) {
        workerLoop(frontier, seen, factory, machine_template, config,
                   tree.get(), ledger.get(), w);
    });

    frontier.result.exhausted = frontier.pending.empty();
    if (warm) {
        frontier.result.stats.checkpointsCreated = tree->createdCount();
        frontier.result.stats.checkpointsEvicted = tree->evictedCount();
        frontier.result.stats.checkpointBytes = tree->residentBytes();
    }
    return frontier.result;
}

} // namespace icheck::runtime
