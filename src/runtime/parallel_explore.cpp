#include "runtime/parallel_explore.hpp"

#include <array>
#include <condition_variable>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "runtime/parallel_driver.hpp"

namespace icheck::runtime
{

namespace
{

/**
 * Shard-locked signature set: a state reached by any worker immediately
 * prunes every worker's branches, without a single hot lock. Signatures
 * are already avalanche-mixed by the explorer, so the low bits pick the
 * shard uniformly.
 */
class ShardedSignatureSet
{
  public:
    bool
    insert(std::uint64_t sig)
    {
        Shard &shard = shards[sig % shards.size()];
        std::lock_guard<std::mutex> lock(shard.mu);
        return shard.seen.insert(sig).second;
    }

  private:
    struct Shard
    {
        std::mutex mu;
        std::unordered_set<std::uint64_t> seen;
    };
    std::array<Shard, 64> shards;
};

/** Shared LIFO frontier plus the merged result, all under one lock. */
struct Frontier
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::vector<std::uint32_t>> pending;
    int inFlight = 0;
    int claimed = 0; ///< Runs handed to workers (capped at maxRuns).
    bool done = false;
    explore::ExploreResult result;
};

void
workerLoop(Frontier &frontier, ShardedSignatureSet &seen,
           const check::ProgramFactory &factory,
           const sim::MachineConfig &machine_template,
           const explore::ExploreConfig &config)
{
    const explore::detail::SignatureInsert insert_sig =
        [&seen](std::uint64_t sig) { return seen.insert(sig); };

    for (;;) {
        std::vector<std::uint32_t> prefix;
        {
            std::unique_lock<std::mutex> lock(frontier.mu);
            for (;;) {
                if (frontier.done)
                    return;
                if (frontier.claimed >= config.maxRuns) {
                    frontier.done = true;
                    frontier.cv.notify_all();
                    return;
                }
                if (!frontier.pending.empty()) {
                    prefix = std::move(frontier.pending.back());
                    frontier.pending.pop_back();
                    ++frontier.inFlight;
                    ++frontier.claimed;
                    break;
                }
                if (frontier.inFlight == 0) {
                    // Nothing queued, nothing running: search complete.
                    frontier.done = true;
                    frontier.cv.notify_all();
                    return;
                }
                frontier.cv.wait(lock);
            }
        }

        const explore::detail::RunObservation obs =
            explore::detail::runOnce(factory, machine_template, config,
                                     prefix, insert_sig);
        std::vector<std::vector<std::uint32_t>> children;
        const explore::detail::ExpandCounts counts =
            explore::detail::expandBranches(
                obs, prefix.size(), config,
                [&children](std::vector<std::uint32_t> next) {
                    children.push_back(std::move(next));
                });

        {
            std::lock_guard<std::mutex> lock(frontier.mu);
            ++frontier.result.runsExecuted;
            frontier.result.finalStates.insert(obs.finalState);
            frontier.result.branchesPruned += counts.pruned;
            frontier.result.branchesBoundedOut += counts.boundedOut;
            for (std::vector<std::uint32_t> &child : children)
                frontier.pending.push_back(std::move(child));
            --frontier.inFlight;
        }
        frontier.cv.notify_all();
    }
}

} // namespace

explore::ExploreResult
exploreParallel(const check::ProgramFactory &factory,
                const sim::MachineConfig &machine_template,
                const explore::ExploreConfig &config, int jobs)
{
    jobs = resolveJobs(jobs);
    if (jobs <= 1 || config.maxRuns <= 1)
        return explore::explore(factory, machine_template, config);

    Frontier frontier;
    frontier.pending.push_back({});
    ShardedSignatureSet seen;

    ThreadPool pool(static_cast<unsigned>(jobs));
    pool.parallelFor(static_cast<std::size_t>(jobs), [&](std::size_t) {
        workerLoop(frontier, seen, factory, machine_template, config);
    });

    frontier.result.exhausted = frontier.pending.empty();
    return frontier.result;
}

} // namespace icheck::runtime
