#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/logging.hpp"

namespace icheck::runtime
{

unsigned
ThreadPool::hardwareWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned worker_count)
{
    if (worker_count == 0)
        worker_count = hardwareWorkers();
    deques.resize(worker_count);
    workers.reserve(worker_count);
    for (unsigned w = 0; w < worker_count; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true; // workers drain their queues before exiting
    }
    cv.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        ICHECK_ASSERT(!stopping, "submit on a stopping pool");
        deques[nextDeque++ % deques.size()].push_back(std::move(task));
        ++queuedTotal;
        counters.maxQueueDepth =
            std::max(counters.maxQueueDepth, queuedTotal);
    }
    cv.notify_one();
}

bool
ThreadPool::takeTask(unsigned self, std::function<void()> &task,
                     bool &stolen)
{
    // Caller holds mu. Execution counters are committed here, at dequeue
    // time, so a caller observing a task's completion (e.g. through its
    // future or parallelFor) is guaranteed to see it counted.
    if (!deques[self].empty()) {
        task = std::move(deques[self].front());
        deques[self].pop_front();
        stolen = false;
        // takeTask's contract is that the caller holds mu (see the
        // workerLoop call sites), so these updates are serialized.
        --queuedTotal;            // icheck-lint: allow(C2): caller holds mu allow(L1): caller holds mu
        ++counters.tasksExecuted; // icheck-lint: allow(C2): caller holds mu allow(L1): caller holds mu
        return true;
    }
    // Steal from the victim with the most queued work: the fullest deque
    // is where a backlog is building, and taking from its back disturbs
    // the owner's front-of-queue ordering the least.
    std::size_t victim = deques.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < deques.size(); ++v) {
        if (v != self && deques[v].size() > best) {
            best = deques[v].size();
            victim = v;
        }
    }
    if (victim == deques.size())
        return false;
    task = std::move(deques[victim].back());
    deques[victim].pop_back();
    stolen = true;
    --queuedTotal;            // icheck-lint: allow(C2): caller holds mu allow(L1): caller holds mu
    ++counters.tasksExecuted; // icheck-lint: allow(C2): caller holds mu allow(L1): caller holds mu
    ++counters.tasksStolen;   // icheck-lint: allow(C2): caller holds mu allow(L1): caller holds mu
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        std::function<void()> task;
        bool stolen = false;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock,
                    [this] { return queuedTotal > 0 || stopping; });
            if (!takeTask(self, task, stolen)) {
                if (stopping)
                    return; // every deque empty: drained
                continue;
            }
        }
        const auto start = std::chrono::steady_clock::now();
        task(); // packaged_task captures exceptions into the future
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        {
            std::lock_guard<std::mutex> lock(mu);
            counters.busySeconds += elapsed.count();
        }
        // A drained deque may unblock stealers or the destructor.
        cv.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    struct Join
    {
        std::mutex mu;
        std::condition_variable done;
        std::size_t remaining;
        std::exception_ptr firstError;
        std::size_t firstErrorIndex;
    };
    auto join = std::make_shared<Join>();
    join->remaining = n;
    join->firstErrorIndex = n;

    for (std::size_t i = 0; i < n; ++i) {
        enqueue([join, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(join->mu);
                if (i < join->firstErrorIndex) {
                    join->firstError = std::current_exception();
                    join->firstErrorIndex = i;
                }
            }
            std::lock_guard<std::mutex> lock(join->mu);
            if (--join->remaining == 0)
                join->done.notify_all();
        });
    }

    std::unique_lock<std::mutex> lock(join->mu);
    join->done.wait(lock, [&join] { return join->remaining == 0; });
    if (join->firstError)
        std::rethrow_exception(join->firstError);
}

PoolStats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

} // namespace icheck::runtime
