#ifndef ICHECK_RUNTIME_THREAD_POOL_HPP
#define ICHECK_RUNTIME_THREAD_POOL_HPP

/**
 * @file
 * Work-stealing thread pool for campaign execution.
 *
 * InstantCheck workloads are coarse: one task is one full simulated run
 * (milliseconds of work spanning thousands of simulated accesses), so the
 * pool optimizes for correctness and observability over lock-freedom.
 * Each worker owns a deque; submissions are distributed round-robin,
 * owners pop from the front (preserving submission order per deque), and
 * idle workers steal from the back of the fullest victim. Counters
 * (executed, stolen, peak depth, busy time) feed the result sink's
 * utilization report.
 *
 * Guarantees:
 *  - a pool with one worker executes tasks in submission order;
 *  - exceptions thrown by a task propagate through its future, and
 *    parallelFor rethrows the lowest-index exception after all
 *    iterations settle;
 *  - the destructor drains every queued task before joining (shutdown
 *    never drops work).
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace icheck::runtime
{

/**
 * Aggregate execution counters of one pool (for the result sink).
 * tasksExecuted/tasksStolen are committed when a task is dequeued, so a
 * caller that observed a task complete also observes it counted;
 * busySeconds is committed after each task and may trail in-flight work.
 */
struct PoolStats
{
    std::uint64_t tasksExecuted = 0;
    std::uint64_t tasksStolen = 0;   ///< Ran on a non-owning worker.
    std::uint64_t maxQueueDepth = 0; ///< Peak total queued tasks.
    double busySeconds = 0.0;        ///< Summed task execution time.
};

/**
 * The pool. Construction spawns the workers; destruction drains the
 * queues and joins them.
 */
class ThreadPool
{
  public:
    /** @param workers Worker count; 0 means hardwareWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Host parallelism available to a default-sized pool (>= 1). */
    static unsigned hardwareWorkers();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /**
     * Queue @p fn for execution. The returned future yields fn's result
     * and rethrows anything it throws.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run fn(i) for every i in [0, n) across the pool and block until all
     * iterations finish. If iterations throw, the exception of the lowest
     * index is rethrown (after every iteration has settled). Must be
     * called from outside the pool's own workers.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** Snapshot of the execution counters. */
    PoolStats stats() const;

  private:
    void enqueue(std::function<void()> task);
    void workerLoop(unsigned self);

    /** Pop own front, else steal from the fullest victim's back. */
    bool takeTask(unsigned self, std::function<void()> &task,
                  bool &stolen);

    mutable std::mutex mu; ///< Guards deques, counters, and stopping.
    std::condition_variable cv;
    std::vector<std::deque<std::function<void()>>> deques;
    std::vector<std::thread> workers;
    std::uint64_t nextDeque = 0; ///< Round-robin submission cursor.
    std::uint64_t queuedTotal = 0;
    bool stopping = false;

    PoolStats counters;
};

} // namespace icheck::runtime

#endif // ICHECK_RUNTIME_THREAD_POOL_HPP
