#ifndef ICHECK_RUNTIME_RESULT_SINK_HPP
#define ICHECK_RUNTIME_RESULT_SINK_HPP

/**
 * @file
 * Streaming results sink for campaign execution.
 *
 * Runs complete out of order under the parallel executor, so the sink
 * receives each run record the moment it finishes (tagged with its seed
 * index) and appends one JSONL line per run plus a final campaign line
 * with the aggregate counters: runs per second, worker utilization,
 * steal count, and peak queue depth. The JSONL stream is the
 * machine-readable perf trajectory consumed by tools/run_bench.sh; the
 * counters alone (null stream) make the sink a cheap in-memory probe for
 * tests and benches.
 */

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "check/driver.hpp"

namespace icheck::runtime
{

/** Aggregate counters of one finished campaign. */
struct CampaignCounters
{
    std::string app;
    std::string scheme;
    int runs = 0;
    int jobs = 1;
    double wallSeconds = 0.0;
    double runsPerSec = 0.0;

    /** Busy time across workers / (wall time * workers); 0..1. */
    double workerUtilization = 0.0;

    std::uint64_t tasksStolen = 0;
    std::uint64_t maxQueueDepth = 0;
};

/**
 * Thread-safe sink. All callbacks may be invoked concurrently from pool
 * workers; output lines are written atomically under an internal lock.
 */
class ResultSink
{
  public:
    /** @param jsonl Optional JSONL stream (not owned; may be null). */
    explicit ResultSink(std::ostream *jsonl = nullptr) : out(jsonl) {}

    /** One run finished (in any order). @p seconds is its wall time. */
    void onRun(const std::string &app, const std::string &scheme, int run,
               const check::RunRecord &record, double seconds);

    /** The campaign finished; emits the aggregate line. */
    void onCampaignEnd(const CampaignCounters &counters);

    /// @name Introspection for tests and benches.
    /// @{
    int runsRecorded() const;
    CampaignCounters lastCampaign() const;
    /// @}

  private:
    mutable std::mutex mu;
    std::ostream *out;
    int runCount = 0;
    CampaignCounters last;
};

/** Escape a string for embedding in a JSON value. */
std::string jsonEscape(const std::string &text);

} // namespace icheck::runtime

#endif // ICHECK_RUNTIME_RESULT_SINK_HPP
