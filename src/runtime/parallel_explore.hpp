#ifndef ICHECK_RUNTIME_PARALLEL_EXPLORE_HPP
#define ICHECK_RUNTIME_PARALLEL_EXPLORE_HPP

/**
 * @file
 * Parallel systematic-testing frontier.
 *
 * Shards the Section 6.2 explorer's scheduling-decision tree across
 * workers: a shared LIFO frontier of schedule prefixes feeds the pool,
 * each worker executes one scripted run (explore::detail::runOnce),
 * expands its unexplored branches, and pushes them back. The pruning
 * signature set is shared and shard-locked, so a state reached by any
 * worker prunes every other worker's branches.
 *
 * Determinism contract: with pruning off, the set of executed prefixes
 * is exactly the sequential explorer's (each prefix is generated once,
 * by its designated parent), so runsExecuted and finalStates match the
 * sequential result whenever the search completes within maxRuns. With
 * pruning on, *which* run first claims a signature depends on worker
 * timing, so runsExecuted may differ run to run — but pruning only ever
 * skips continuations of already-seen states, so an exhausted search
 * still reports the same finalStates.
 */

#include "explore/explorer.hpp"
#include "runtime/thread_pool.hpp"

namespace icheck::runtime
{

/**
 * Explore interleavings like explore::explore(), fanning runs out over
 * @p jobs workers (0 = hardware concurrency; 1 = sequential engine).
 */
explore::ExploreResult
exploreParallel(const check::ProgramFactory &factory,
                const sim::MachineConfig &machine_template,
                const explore::ExploreConfig &config, int jobs = 0);

} // namespace icheck::runtime

#endif // ICHECK_RUNTIME_PARALLEL_EXPLORE_HPP
