#include "runtime/parallel_driver.hpp"

#include <chrono>
#include <memory>
#include <vector>

#include "support/logging.hpp"

namespace icheck::runtime
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs <= 0)
        return static_cast<int>(ThreadPool::hardwareWorkers());
    return jobs;
}

check::DriverReport
runCampaign(const check::DriverConfig &cfg,
            const check::ProgramFactory &factory,
            const CampaignOptions &options)
{
    ICHECK_ASSERT(cfg.runs >= 2, "need at least two runs to compare");

    const auto campaign_start = Clock::now();
    const int jobs = options.pool != nullptr
                         ? static_cast<int>(options.pool->workerCount())
                         : resolveJobs(options.jobs);

    mem::ReplayLog local_log;
    mem::ReplayLog &replay_log =
        options.replayLog != nullptr ? *options.replayLog : local_log;
    // A pre-populated log means run 0 replays like everyone else; an
    // empty one means run 0 must record it before anyone replays.
    const bool log_ready = !replay_log.empty();

    std::string app = options.appName;
    std::vector<check::RunRecord> records(
        static_cast<std::size_t>(cfg.runs));

    const auto precomputedFor =
        [&options](int run) -> const check::RunRecord * {
        if (options.precomputed == nullptr)
            return nullptr;
        const auto index = static_cast<std::size_t>(run);
        if (index >= options.precomputed->size())
            return nullptr;
        return (*options.precomputed)[index];
    };

    // Runs the service (or a resumed campaign) already has records for
    // are copied in place; everything else still needs executing. A
    // cached run 0 must nonetheless re-execute in Record mode when the
    // log is absent and any Replay run remains — replays read the log.
    std::vector<int> to_execute;
    for (int run = 0; run < cfg.runs; ++run) {
        if (const check::RunRecord *cached = precomputedFor(run))
            records[static_cast<std::size_t>(run)] = *cached;
        else
            to_execute.push_back(run);
    }
    const bool need_record_rerun =
        !log_ready && !to_execute.empty() && to_execute.front() != 0;
    if (need_record_rerun)
        to_execute.insert(to_execute.begin(), 0);

    // Per-run wall time summed across workers; the utilization
    // denominator (pool busy time would trail the last tasks).
    std::mutex busy_mu;
    double busy_seconds = 0.0;

    const auto execute = [&](int run) {
        const auto run_start = Clock::now();
        const auto mode = run == 0 && !log_ready
                              ? mem::DeterministicAllocator::Mode::Record
                              : mem::DeterministicAllocator::Mode::Replay;
        records[static_cast<std::size_t>(run)] = check::executeCampaignRun(
            cfg, factory, run, replay_log, mode,
            run == 0 ? &app : nullptr);
        const double seconds = secondsSince(run_start);
        {
            std::lock_guard<std::mutex> lock(busy_mu);
            busy_seconds += seconds;
        }
        if (options.onRunComplete)
            options.onRunComplete(
                run, records[static_cast<std::size_t>(run)]);
        if (options.sink != nullptr)
            options.sink->onRun(app, check::schemeName(cfg.scheme), run,
                                records[static_cast<std::size_t>(run)],
                                seconds);
    };

    // Record-then-fan-out: an un-replayable run 0 writes the replay log
    // on the calling thread; every later run only reads it, so they fan
    // out freely. With a ready log there is no record run and the whole
    // remainder fans out at once.
    std::size_t first_parallel = 0;
    if (!to_execute.empty() && to_execute.front() == 0 && !log_ready) {
        execute(0);
        first_parallel = 1;
    }

    PoolStats pool_stats;
    const std::size_t remaining = to_execute.size() - first_parallel;
    if (jobs <= 1) {
        for (std::size_t i = first_parallel; i < to_execute.size(); ++i)
            execute(to_execute[i]);
    } else if (remaining > 0) {
        ThreadPool *pool = options.pool;
        std::unique_ptr<ThreadPool> owned;
        if (pool == nullptr) {
            owned = std::make_unique<ThreadPool>(
                static_cast<unsigned>(jobs));
            pool = owned.get();
        }
        pool->parallelFor(remaining,
                          [&execute, &to_execute,
                           first_parallel](std::size_t i) {
                              execute(to_execute[i + first_parallel]);
                          });
        pool_stats = pool->stats();
    }

    check::DriverReport report =
        check::analyzeCampaign(cfg, std::move(app), std::move(records));

    if (options.sink != nullptr) {
        CampaignCounters counters;
        counters.app = report.app;
        counters.scheme = report.scheme;
        counters.runs = cfg.runs;
        counters.jobs = jobs;
        counters.wallSeconds = secondsSince(campaign_start);
        counters.runsPerSec =
            counters.wallSeconds > 0.0
                ? static_cast<double>(cfg.runs) / counters.wallSeconds
                : 0.0;
        counters.workerUtilization =
            counters.wallSeconds > 0.0 && jobs > 1
                ? busy_seconds /
                      (counters.wallSeconds * static_cast<double>(jobs))
                : 1.0;
        counters.tasksStolen = pool_stats.tasksStolen;
        counters.maxQueueDepth = pool_stats.maxQueueDepth;
        options.sink->onCampaignEnd(counters);
    }
    return report;
}

} // namespace icheck::runtime
