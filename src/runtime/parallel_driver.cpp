#include "runtime/parallel_driver.hpp"

#include <chrono>
#include <memory>
#include <vector>

#include "support/logging.hpp"

namespace icheck::runtime
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
resolveJobs(int jobs)
{
    if (jobs <= 0)
        return static_cast<int>(ThreadPool::hardwareWorkers());
    return jobs;
}

check::DriverReport
runCampaign(const check::DriverConfig &cfg,
            const check::ProgramFactory &factory,
            const CampaignOptions &options)
{
    ICHECK_ASSERT(cfg.runs >= 2, "need at least two runs to compare");

    const auto campaign_start = Clock::now();
    const int jobs = options.pool != nullptr
                         ? static_cast<int>(options.pool->workerCount())
                         : resolveJobs(options.jobs);

    mem::ReplayLog replay_log;
    std::string app;
    std::vector<check::RunRecord> records(
        static_cast<std::size_t>(cfg.runs));

    // Per-run wall time summed across workers; the utilization
    // denominator (pool busy time would trail the last tasks).
    std::mutex busy_mu;
    double busy_seconds = 0.0;

    const auto execute = [&](int run) {
        const auto run_start = Clock::now();
        const auto mode = run == 0
                              ? mem::DeterministicAllocator::Mode::Record
                              : mem::DeterministicAllocator::Mode::Replay;
        records[static_cast<std::size_t>(run)] = check::executeCampaignRun(
            cfg, factory, run, replay_log, mode,
            run == 0 ? &app : nullptr);
        const double seconds = secondsSince(run_start);
        {
            std::lock_guard<std::mutex> lock(busy_mu);
            busy_seconds += seconds;
        }
        if (options.sink != nullptr)
            options.sink->onRun(app, check::schemeName(cfg.scheme), run,
                                records[static_cast<std::size_t>(run)],
                                seconds);
    };

    // Record-then-fan-out: run 0 writes the replay log on the calling
    // thread; every later run only reads it, so they fan out freely.
    execute(0);

    PoolStats pool_stats;
    if (jobs <= 1) {
        for (int run = 1; run < cfg.runs; ++run)
            execute(run);
    } else {
        ThreadPool *pool = options.pool;
        std::unique_ptr<ThreadPool> owned;
        if (pool == nullptr) {
            owned = std::make_unique<ThreadPool>(
                static_cast<unsigned>(jobs));
            pool = owned.get();
        }
        pool->parallelFor(static_cast<std::size_t>(cfg.runs) - 1,
                          [&execute](std::size_t i) {
                              execute(static_cast<int>(i) + 1);
                          });
        pool_stats = pool->stats();
    }

    check::DriverReport report =
        check::analyzeCampaign(cfg, std::move(app), std::move(records));

    if (options.sink != nullptr) {
        CampaignCounters counters;
        counters.app = report.app;
        counters.scheme = report.scheme;
        counters.runs = cfg.runs;
        counters.jobs = jobs;
        counters.wallSeconds = secondsSince(campaign_start);
        counters.runsPerSec =
            counters.wallSeconds > 0.0
                ? static_cast<double>(cfg.runs) / counters.wallSeconds
                : 0.0;
        counters.workerUtilization =
            counters.wallSeconds > 0.0 && jobs > 1
                ? busy_seconds /
                      (counters.wallSeconds * static_cast<double>(jobs))
                : 1.0;
        counters.tasksStolen = pool_stats.tasksStolen;
        counters.maxQueueDepth = pool_stats.maxQueueDepth;
        options.sink->onCampaignEnd(counters);
    }
    return report;
}

} // namespace icheck::runtime
