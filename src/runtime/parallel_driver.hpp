#ifndef ICHECK_RUNTIME_PARALLEL_DRIVER_HPP
#define ICHECK_RUNTIME_PARALLEL_DRIVER_HPP

/**
 * @file
 * Parallel campaign executor.
 *
 * A determinism campaign is embarrassingly parallel: every seeded run is
 * a pure function of (program, input seed, scheduler seed) — except that
 * run 0 records the malloc replay log the later runs replay (Section 5
 * input-nondeterminism control). The executor therefore follows a
 * record-then-fan-out protocol:
 *
 *   1. run 0 executes on the calling thread in Record mode, writing the
 *      replay log;
 *   2. runs 1..N-1 fan out across the thread pool in Replay mode, which
 *      only *reads* the shared log — no synchronization needed;
 *   3. records land in a pre-sized vector at their seed index, and the
 *      verdict comes from check::analyzeCampaign over that seed-ordered
 *      vector.
 *
 * Because both execution (check::executeCampaignRun) and analysis
 * (check::analyzeCampaign) are the exact functions the sequential
 * DeterminismDriver uses, the resulting DriverReport is bit-identical to
 * the sequential one for any worker count.
 */

#include "check/driver.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/thread_pool.hpp"

namespace icheck::runtime
{

/** Execution options of one parallel campaign. */
struct CampaignOptions
{
    /** Worker count; 0 = hardware concurrency, 1 = run on the caller. */
    int jobs = 0;

    /** Optional per-run streaming and aggregate counters. */
    ResultSink *sink = nullptr;

    /** Optional externally owned pool (jobs is ignored if set). */
    ThreadPool *pool = nullptr;

    /**
     * Previously computed records, indexed by run; a non-null entry is
     * copied into the report instead of executing that run. The campaign
     * service feeds store-resident units through this so a resumed or
     * deduplicated campaign only executes the missing runs. May be
     * shorter than cfg.runs (missing tail entries mean "not cached").
     */
    const std::vector<const check::RunRecord *> *precomputed = nullptr;

    /**
     * Externally owned replay log. If it arrives non-empty, run 0 is
     * treated like every other run (Replay mode, may be skipped when
     * precomputed); if empty, run 0 records into it as usual. Without
     * this option a cached run 0 must still be re-executed whenever any
     * later run is missing, because Replay runs need the log.
     */
    mem::ReplayLog *replayLog = nullptr;

    /**
     * App name to stamp on the report when run 0 never executes (the
     * name is otherwise captured from the record-mode run).
     */
    std::string appName;

    /**
     * Called once per *executed* run with its fresh record, from the
     * worker that ran it (precomputed runs are not re-announced). The
     * service persists each unit the moment it completes, which is what
     * makes a killed-and-restarted campaign resume instead of recheck.
     */
    std::function<void(int run, const check::RunRecord &record)>
        onRunComplete;
};

/**
 * Run the campaign described by @p cfg across workers and return a
 * DriverReport bit-identical to DeterminismDriver(cfg).check(factory).
 */
check::DriverReport runCampaign(const check::DriverConfig &cfg,
                                const check::ProgramFactory &factory,
                                const CampaignOptions &options = {});

/** Resolve a --jobs value: 0 means hardware concurrency; minimum 1. */
int resolveJobs(int jobs);

} // namespace icheck::runtime

#endif // ICHECK_RUNTIME_PARALLEL_DRIVER_HPP
