#ifndef ICHECK_RUNTIME_PARALLEL_DRIVER_HPP
#define ICHECK_RUNTIME_PARALLEL_DRIVER_HPP

/**
 * @file
 * Parallel campaign executor.
 *
 * A determinism campaign is embarrassingly parallel: every seeded run is
 * a pure function of (program, input seed, scheduler seed) — except that
 * run 0 records the malloc replay log the later runs replay (Section 5
 * input-nondeterminism control). The executor therefore follows a
 * record-then-fan-out protocol:
 *
 *   1. run 0 executes on the calling thread in Record mode, writing the
 *      replay log;
 *   2. runs 1..N-1 fan out across the thread pool in Replay mode, which
 *      only *reads* the shared log — no synchronization needed;
 *   3. records land in a pre-sized vector at their seed index, and the
 *      verdict comes from check::analyzeCampaign over that seed-ordered
 *      vector.
 *
 * Because both execution (check::executeCampaignRun) and analysis
 * (check::analyzeCampaign) are the exact functions the sequential
 * DeterminismDriver uses, the resulting DriverReport is bit-identical to
 * the sequential one for any worker count.
 */

#include "check/driver.hpp"
#include "runtime/result_sink.hpp"
#include "runtime/thread_pool.hpp"

namespace icheck::runtime
{

/** Execution options of one parallel campaign. */
struct CampaignOptions
{
    /** Worker count; 0 = hardware concurrency, 1 = run on the caller. */
    int jobs = 0;

    /** Optional per-run streaming and aggregate counters. */
    ResultSink *sink = nullptr;

    /** Optional externally owned pool (jobs is ignored if set). */
    ThreadPool *pool = nullptr;
};

/**
 * Run the campaign described by @p cfg across workers and return a
 * DriverReport bit-identical to DeterminismDriver(cfg).check(factory).
 */
check::DriverReport runCampaign(const check::DriverConfig &cfg,
                                const check::ProgramFactory &factory,
                                const CampaignOptions &options = {});

/** Resolve a --jobs value: 0 means hardware concurrency; minimum 1. */
int resolveJobs(int jobs);

} // namespace icheck::runtime

#endif // ICHECK_RUNTIME_PARALLEL_DRIVER_HPP
