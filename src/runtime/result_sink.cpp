#include "runtime/result_sink.hpp"

#include <cstdio>
#include <ostream>

#include "support/json_escape.hpp"

namespace icheck::runtime
{

std::string
jsonEscape(const std::string &text)
{
    return jsonEscapeText(text);
}

void
ResultSink::onRun(const std::string &app, const std::string &scheme,
                  int run, const check::RunRecord &record, double seconds)
{
    std::lock_guard<std::mutex> lock(mu);
    ++runCount;
    if (out == nullptr)
        return;
    const HashWord final_hash = record.checkpointHashes.empty()
                                    ? HashWord{0}
                                    : record.checkpointHashes.back();
    char line[512];
    std::snprintf(
        line, sizeof line,
        "{\"type\":\"run\",\"app\":\"%s\",\"scheme\":\"%s\","
        "\"run\":%d,\"checkpoints\":%zu,"
        "\"finalHash\":\"%016llx\",\"outputHash\":\"%016llx\","
        "\"outputBytes\":%llu,\"nativeInstrs\":%llu,"
        "\"overheadInstrs\":%llu,\"seconds\":%.6f}",
        jsonEscape(app).c_str(), jsonEscape(scheme).c_str(), run,
        record.checkpointHashes.size(),
        static_cast<unsigned long long>(final_hash),
        static_cast<unsigned long long>(record.outputHash),
        static_cast<unsigned long long>(record.outputBytes),
        static_cast<unsigned long long>(record.result.nativeInstrs),
        static_cast<unsigned long long>(
            record.result.overheadInstrs +
            record.checkerOverheadInstrs),
        seconds);
    *out << line << '\n';
}

void
ResultSink::onCampaignEnd(const CampaignCounters &counters)
{
    std::lock_guard<std::mutex> lock(mu);
    last = counters;
    if (out == nullptr)
        return;
    char line[512];
    std::snprintf(
        line, sizeof line,
        "{\"type\":\"campaign\",\"app\":\"%s\",\"scheme\":\"%s\","
        "\"runs\":%d,\"jobs\":%d,\"wallSeconds\":%.6f,"
        "\"runsPerSec\":%.2f,\"workerUtilization\":%.4f,"
        "\"tasksStolen\":%llu,\"maxQueueDepth\":%llu}",
        jsonEscape(counters.app).c_str(),
        jsonEscape(counters.scheme).c_str(), counters.runs, counters.jobs,
        counters.wallSeconds, counters.runsPerSec,
        counters.workerUtilization,
        static_cast<unsigned long long>(counters.tasksStolen),
        static_cast<unsigned long long>(counters.maxQueueDepth));
    *out << line << '\n';
    out->flush();
}

int
ResultSink::runsRecorded() const
{
    std::lock_guard<std::mutex> lock(mu);
    return runCount;
}

CampaignCounters
ResultSink::lastCampaign() const
{
    std::lock_guard<std::mutex> lock(mu);
    return last;
}

} // namespace icheck::runtime
