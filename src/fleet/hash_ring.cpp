#include "fleet/hash_ring.hpp"

#include <algorithm>

#include "hashing/crc64.hpp"
#include "support/logging.hpp"

namespace icheck::fleet
{

namespace
{

std::uint64_t
hashBytes(const std::string &bytes)
{
    return hashing::Crc64::compute(bytes.data(), bytes.size(), 0);
}

} // namespace

HashRing::HashRing(std::size_t vnodes_per_member)
    : vnodes(std::max<std::size_t>(vnodes_per_member, 1))
{
}

void
HashRing::add(const std::string &name)
{
    ICHECK_ASSERT(!name.empty(), "ring member name must be non-empty");
    if (contains(name))
        return;
    members.push_back(name);
    rebuild();
}

void
HashRing::remove(const std::string &name)
{
    const auto it = std::find(members.begin(), members.end(), name);
    if (it == members.end())
        return;
    members.erase(it);
    rebuild();
}

bool
HashRing::contains(const std::string &name) const
{
    return std::find(members.begin(), members.end(), name) !=
           members.end();
}

void
HashRing::rebuild()
{
    // Rebuilding from scratch keeps point positions a pure function of
    // the membership set: surviving members' points never move, so a
    // remove only remaps arcs the dead member used to front.
    points.clear();
    points.reserve(members.size() * vnodes);
    for (std::uint32_t m = 0; m < members.size(); ++m) {
        for (std::size_t v = 0; v < vnodes; ++v) {
            const std::string label =
                members[m] + '#' + std::to_string(v);
            points.push_back(Point{hashBytes(label), m});
        }
    }
    std::sort(points.begin(), points.end(),
              [this](const Point &a, const Point &b) {
                  if (a.hash != b.hash)
                      return a.hash < b.hash;
                  return members[a.member] < members[b.member];
              });
}

const std::string *
HashRing::ownerOf(const std::string &key) const
{
    if (points.empty())
        return nullptr;
    const std::uint64_t h = hashBytes(key);
    const auto it = std::lower_bound(
        points.begin(), points.end(), h,
        [](const Point &p, std::uint64_t value) { return p.hash < value; });
    const Point &point = it == points.end() ? points.front() : *it;
    return &members[point.member];
}

} // namespace icheck::fleet
