#include "fleet/fleet_config.hpp"

#include <cctype>
#include <unordered_set>

#include "service/json.hpp"

namespace icheck::fleet
{

namespace
{

ParsedFleetConfig
fail(std::string message)
{
    ParsedFleetConfig parsed;
    parsed.error = std::move(message);
    return parsed;
}

/** Backend names become ring labels and log prefixes: keep them as
 *  strict as request ids (printable, short, no quotes/backslashes). */
bool
validName(const std::string &name)
{
    if (name.empty() || name.size() > 64)
        return false;
    for (const char c : name) {
        if (!std::isprint(static_cast<unsigned char>(c)) || c == '"' ||
            c == '\\' || c == '#')
            return false;
    }
    return true;
}

} // namespace

ParsedFleetConfig
parseFleetConfig(const std::string &text)
{
    std::string json_error;
    const auto root = service::parseJson(text, &json_error);
    if (!root.has_value())
        return fail("malformed fleet config: " + json_error);
    if (!root->isObject())
        return fail("fleet config must be a JSON object");

    for (const auto &[key, value] : root->members) {
        (void)value;
        if (key != "backends" && key != "vnodes" && key != "ship" &&
            key != "pullMaxBytes" && key != "pullIntervalMs")
            return fail("unknown fleet config field '" + key + "'");
    }

    FleetTopology topology;
    const service::JsonValue *backends = root->find("backends");
    if (backends == nullptr)
        return fail("fleet config requires field 'backends'");
    if (!backends->isArray() || backends->items.empty())
        return fail("'backends' must be a non-empty array");

    std::unordered_set<std::string> names;
    std::unordered_set<std::string> sockets;
    for (const service::JsonValue &entry : backends->items) {
        if (!entry.isObject())
            return fail("each backend must be a JSON object");
        for (const auto &[key, value] : entry.members) {
            (void)value;
            if (key != "name" && key != "socket")
                return fail("unknown backend field '" + key + "'");
        }
        const service::JsonValue *name = entry.find("name");
        if (name == nullptr || !name->isString() ||
            !validName(name->text))
            return fail("backend 'name' must be 1-64 printable chars "
                        "without quotes, backslashes, or '#'");
        const service::JsonValue *socket = entry.find("socket");
        if (socket == nullptr || !socket->isString() ||
            socket->text.empty())
            return fail("backend 'socket' must be a non-empty string");
        if (!names.insert(name->text).second)
            return fail("duplicate backend name '" + name->text + "'");
        if (!sockets.insert(socket->text).second)
            return fail("duplicate backend socket '" + socket->text +
                        "'");
        topology.backends.push_back(
            BackendAddress{name->text, socket->text});
    }

    if (const service::JsonValue *vnodes = root->find("vnodes")) {
        const auto value = vnodes->asU64();
        if (!value.has_value() || *value < 1 || *value > 1024)
            return fail("'vnodes' must be an integer in [1, 1024]");
        topology.vnodes = static_cast<std::size_t>(*value);
    }
    if (const service::JsonValue *ship = root->find("ship")) {
        if (!ship->isString() ||
            (ship->text != "sync" && ship->text != "async"))
            return fail("'ship' must be \"sync\" or \"async\"");
        topology.syncShip = ship->text == "sync";
    }
    if (const service::JsonValue *max = root->find("pullMaxBytes")) {
        const auto value = max->asU64();
        if (!value.has_value() || *value < 64 || *value > (1u << 20))
            return fail(
                "'pullMaxBytes' must be an integer in [64, 1048576]");
        topology.pullMaxBytes = static_cast<std::uint32_t>(*value);
    }
    if (const service::JsonValue *interval =
            root->find("pullIntervalMs")) {
        const auto value = interval->asU64();
        if (!value.has_value() || *value < 1 || *value > 60000)
            return fail(
                "'pullIntervalMs' must be an integer in [1, 60000]");
        topology.pullIntervalMs = static_cast<int>(*value);
    }

    ParsedFleetConfig parsed;
    parsed.topology = std::move(topology);
    return parsed;
}

} // namespace icheck::fleet
