#ifndef ICHECK_FLEET_HASH_RING_HPP
#define ICHECK_FLEET_HASH_RING_HPP

/**
 * @file
 * Consistent-hash ring over backend names.
 *
 * Each member contributes `vnodes` points at crc64("name#<i>"); a key
 * owned by the first point clockwise of crc64(key). Membership changes
 * remap only the arcs adjacent to the changed member's points — about
 * 1/N of the key space for N members — so cross-request dedup locality
 * survives backend loss, which is the whole reason the router shards
 * on the canonical campaign key instead of round-robining.
 *
 * Point order ties (identical 64-bit hashes) break by member name, so
 * ownership is a pure function of the membership set: every router
 * instance with the same members routes every key identically.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace icheck::fleet
{

class HashRing
{
  public:
    explicit HashRing(std::size_t vnodes_per_member = 64);

    /** Add @p name (no-op if present). */
    void add(const std::string &name);

    /** Remove @p name (no-op if absent). */
    void remove(const std::string &name);

    bool contains(const std::string &name) const;
    bool empty() const { return members.empty(); }
    std::size_t memberCount() const { return members.size(); }
    std::size_t vnodesPerMember() const { return vnodes; }

    /** Members in insertion order (stable across add/remove churn). */
    std::vector<std::string> memberNames() const { return members; }

    /**
     * Owner of @p key; nullptr when the ring is empty. The pointer is
     * valid until the next membership change.
     */
    const std::string *ownerOf(const std::string &key) const;

  private:
    struct Point
    {
        std::uint64_t hash;
        std::uint32_t member; ///< Index into members.
    };

    void rebuild();

    std::size_t vnodes;
    std::vector<std::string> members;
    std::vector<Point> points; ///< Sorted by (hash, member name).
};

} // namespace icheck::fleet

#endif // ICHECK_FLEET_HASH_RING_HPP
