#ifndef ICHECK_FLEET_FLEET_CONFIG_HPP
#define ICHECK_FLEET_FLEET_CONFIG_HPP

/**
 * @file
 * The fleet topology document (`icheck route --config`).
 *
 * A strict JSON object naming every backend and the router knobs:
 *
 *   {"vnodes":64,"ship":"sync","pullMaxBytes":24576,
 *    "pullIntervalMs":20,
 *    "backends":[{"name":"b0","socket":"/tmp/b0.sock"},
 *                {"name":"b1","socket":"/tmp/b1.sock"}]}
 *
 * Parsing mirrors the request codec's posture: every field is
 * type-checked and bounded, unknown fields are rejected by name, and
 * any truncation of a valid document must parse to a clean error —
 * the config travels through shells and CI artifacts, where torn
 * writes are a matter of time.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace icheck::fleet
{

/** One backend the router fronts. */
struct BackendAddress
{
    std::string name;   ///< Ring member name (store-key-safe token).
    std::string socket; ///< Unix socket path of its `icheck serve`.
};

/** Validated fleet topology + router knobs. */
struct FleetTopology
{
    std::vector<BackendAddress> backends;
    std::size_t vnodes = 64;
    std::uint32_t pullMaxBytes = 24576;
    int pullIntervalMs = 20;
    bool syncShip = false; ///< "ship":"sync" — replicate before respond.
};

/** Outcome of parsing a config document. */
struct ParsedFleetConfig
{
    std::optional<FleetTopology> topology;
    std::string error; ///< Human-readable reason when topology is empty.

    bool ok() const { return topology.has_value(); }
};

/** Parse and validate a fleet config document. */
ParsedFleetConfig parseFleetConfig(const std::string &text);

} // namespace icheck::fleet

#endif // ICHECK_FLEET_FLEET_CONFIG_HPP
