#include "fleet/router.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/frame.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "support/exit_codes.hpp"
#include "support/json_escape.hpp"
#include "support/logging.hpp"

namespace icheck::fleet
{

namespace
{

/** Client ids with this prefix are reserved for router traffic. */
constexpr const char *reservedIdPrefix = "__fleet";
constexpr const char *pullId = "__fleet:pull";
constexpr const char *installId = "__fleet:install";

/** Client request lines are bounded like a single daemon's. */
constexpr std::size_t clientMaxLineBytes = 64 * 1024;

/**
 * Id of a response line. Every service response renders the id first
 * (`{"id":"..."`), and valid ids contain no quotes or backslashes, so
 * a prefix scan recovers it without parsing the (possibly large) rest.
 */
std::string
extractResponseId(const std::string &line)
{
    constexpr const char *prefix = "{\"id\":\"";
    constexpr std::size_t prefixLen = 7;
    if (line.compare(0, prefixLen, prefix) != 0)
        return {};
    const std::size_t end = line.find('"', prefixLen);
    if (end == std::string::npos)
        return {};
    return line.substr(prefixLen, end - prefixLen);
}

/**
 * Routing key of a replicated frame: store keys are either
 * `<canonical>#<suffix>` (unit / log frames) or `resp#<id>` whose
 * payload leads with the canonical key — both route by canonical, so
 * a campaign's units, log, and cached responses always travel to the
 * same owner.
 */
std::string
routingKeyOf(const service::Frame &frame)
{
    if (frame.key.compare(0, 5, "resp#") == 0) {
        const std::size_t sep = frame.payload.find('\n');
        return sep == std::string::npos ? frame.payload
                                        : frame.payload.substr(0, sep);
    }
    const std::size_t sep = frame.key.find('#');
    return sep == std::string::npos ? frame.key
                                    : frame.key.substr(0, sep);
}

std::string
renderPullRequest(std::uint64_t from, std::uint32_t max_bytes)
{
    return std::string("{\"id\":\"") + pullId +
           "\",\"op\":\"pull\",\"from\":" + std::to_string(from) +
           ",\"max\":" + std::to_string(max_bytes) + "}";
}

std::string
renderInstallRequest(const std::string &frames)
{
    return std::string("{\"id\":\"") + installId +
           "\",\"op\":\"install\",\"frames\":\"" +
           service::hexEncode(frames) + "\"}";
}

/** The verbatim `"stats":{...}` object of a backend stats response
 *  (the object is flat, so the first '}' closes it). Empty if absent. */
std::string
extractStatsObject(const std::string &response)
{
    const std::size_t start = response.find("\"stats\":{");
    if (start == std::string::npos)
        return {};
    const std::size_t open = start + 8;
    const std::size_t close = response.find('}', open);
    if (close == std::string::npos)
        return {};
    return response.substr(open, close - open + 1);
}

} // namespace

Router::Router(FleetTopology topo, std::string listen_socket)
    : topology(std::move(topo)), listenSocket(std::move(listen_socket)),
      ring(topology.vnodes)
{
    for (const BackendAddress &address : topology.backends) {
        auto backend = std::make_unique<Backend>();
        backend->name = address.name;
        backend->socketPath = address.socket;
        backends.push_back(std::move(backend));
    }
}

Router::~Router() { stop(); }

Router::Backend *
Router::backendByName(const std::string &name)
{
    for (const auto &backend : backends)
        if (backend->name == name)
            return backend.get();
    return nullptr;
}

bool
Router::connectBackend(Backend &backend)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("route: socket() failed: ", std::strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (backend.socketPath.size() >= sizeof addr.sun_path) {
        warn("route: backend socket path too long: ",
             backend.socketPath);
        ::close(fd);
        return false;
    }
    std::strncpy(addr.sun_path, backend.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        warn("route: cannot connect backend '", backend.name, "' at '",
             backend.socketPath, "': ", std::strerror(errno));
        ::close(fd);
        return false;
    }
    backend.fd = fd;
    backend.alive.store(true, std::memory_order_release);
    return true;
}

bool
Router::start()
{
    for (const auto &backend : backends) {
        if (!connectBackend(*backend)) {
            // `started` never flips on this path, so stop() would not
            // close the peers that did connect — close them here.
            for (const auto &connected : backends) {
                if (connected->fd < 0)
                    continue;
                ::close(connected->fd);
                connected->fd = -1;
                connected->alive.store(false,
                                       std::memory_order_release);
            }
            return false;
        }
        {
            std::lock_guard<std::mutex> lock(ringMu);
            ring.add(backend->name);
        }
    }
    for (const auto &backend : backends) {
        Backend *raw = backend.get();
        backend->reader =
            std::thread([this, raw] { backendReaderLoop(*raw); });
    }
    shipper = std::thread([this] { shipperLoop(); });
    started.store(true, std::memory_order_release);
    return true;
}

bool
Router::sendLine(Backend &backend, const std::string &line)
{
    if (!backend.alive.load(std::memory_order_acquire))
        return false;
    std::string framed = line;
    framed += '\n';
    std::lock_guard<std::mutex> lock(backend.writeMu);
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-write must surface as
        // EPIPE (handled by the failover path), not a fatal SIGPIPE.
        const ssize_t n = ::send(backend.fd, framed.data() + written,
                                 framed.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

void
Router::handleClientLine(const std::string &line, Respond respond)
{
    const service::ParsedLine parsed =
        service::parseRequestLine(line, clientMaxLineBytes);
    if (!parsed.ok()) {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        respond(service::renderErrorResponse(parsed.id, parsed.error));
        return;
    }
    const service::Request &request = *parsed.request;
    if (request.id.compare(0, std::strlen(reservedIdPrefix),
                           reservedIdPrefix) == 0) {
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        respond(service::renderErrorResponse(
            request.id, "ids with prefix '__fleet' are reserved for "
                        "router traffic"));
        return;
    }

    switch (request.op) {
      case service::RequestOp::Ping:
        respond(service::renderPongResponse(request.id));
        return;
      case service::RequestOp::Pull:
      case service::RequestOp::Install:
        protocolErrors.fetch_add(1, std::memory_order_relaxed);
        respond(service::renderErrorResponse(
            request.id, "op is backend-internal; the router does not "
                        "serve it"));
        return;
      case service::RequestOp::Check: {
        if (draining.load(std::memory_order_acquire)) {
            respond(service::renderDrainingResponse(request.id));
            return;
        }
        Waiter waiter;
        waiter.id = request.id;
        waiter.line = line;
        waiter.canonical = service::canonicalKey(request.check);
        waiter.respond = std::move(respond);
        waiter.isCheck = true;
        dispatchCheck(std::move(waiter));
        return;
      }
      case service::RequestOp::Stats:
        handleStats(request.id, line, respond);
        return;
      case service::RequestOp::Drain:
        handleDrain(request.id, line, respond);
        return;
    }
}

void
Router::dispatchCheck(Waiter waiter)
{
    Backend *backend = nullptr;
    {
        std::lock_guard<std::mutex> lock(ringMu);
        const std::string *owner = ring.ownerOf(waiter.canonical);
        if (owner != nullptr)
            backend = backendByName(*owner);
    }
    if (backend == nullptr ||
        !backend->alive.load(std::memory_order_acquire)) {
        waiter.respond(service::renderErrorResponse(
            waiter.id, "no live backend for this key"));
        return;
    }
    if (waiter.attempts >= static_cast<int>(backends.size()) + 1) {
        waiter.respond(service::renderErrorResponse(
            waiter.id, "request kept landing on dying backends"));
        return;
    }
    ++waiter.attempts;
    requestsRouted.fetch_add(1, std::memory_order_relaxed);

    const std::string line = waiter.line;
    const std::string id = waiter.id;
    {
        std::lock_guard<std::mutex> lock(backend->pendingMu);
        backend->pending[id].push_back(std::move(waiter));
    }
    if (!sendLine(*backend, line))
        markDead(*backend); // Failover re-dispatches the waiter.
    // The reader thread may have run failover() — and drained pending —
    // between the alive check above and our push; such a waiter would
    // never be answered. If the backend died, reclaim it ourselves.
    if (!backend->alive.load(std::memory_order_acquire))
        reclaimStranded(*backend, id);
}

void
Router::reclaimStranded(Backend &backend, const std::string &id)
{
    // If failover()'s drain ran before the caller's push, the waiter
    // is still in pending (and pendingMu ordering made the caller's
    // alive load observe false, which is why it reached us). If the
    // drain runs after the push, it finds and handles the waiter and
    // this extraction comes up empty. Either way: exactly once.
    Waiter stranded;
    bool reclaimed = false;
    {
        std::lock_guard<std::mutex> lock(backend.pendingMu);
        const auto it = backend.pending.find(id);
        if (it != backend.pending.end() && !it->second.empty()) {
            stranded = std::move(it->second.back());
            it->second.pop_back();
            if (it->second.empty())
                backend.pending.erase(it);
            reclaimed = true;
        }
    }
    if (!reclaimed)
        return;
    if (stranded.isCheck) {
        requestsRetried.fetch_add(1, std::memory_order_relaxed);
        dispatchCheck(std::move(stranded));
    } else {
        stranded.respond(service::renderErrorResponse(
            stranded.id,
            "backend '" + backend.name + "' died mid-request"));
    }
}

void
Router::backendReaderLoop(Backend &backend)
{
    std::string buffer;
    char chunk[16 * 1024];
    while (true) {
        const ssize_t n = ::read(backend.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t i = start; i < buffer.size(); ++i) {
            if (buffer[i] != '\n')
                continue;
            std::string line = buffer.substr(start, i - start);
            start = i + 1;
            if (line.empty())
                continue;
            const std::string id = extractResponseId(line);
            if (id == pullId)
                handlePullResponse(backend, line);
            else if (id == installId)
                ; // Idempotent install acks carry no actionable state.
            else
                completeResponse(backend, id, line);
        }
        buffer.erase(0, start);
    }
    markDead(backend);
    failover(backend);
}

void
Router::completeResponse(Backend &backend, const std::string &id,
                         const std::string &line)
{
    Waiter waiter;
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(backend.pendingMu);
        const auto it = backend.pending.find(id);
        if (it != backend.pending.end() && !it->second.empty()) {
            waiter = std::move(it->second.front());
            it->second.erase(it->second.begin());
            if (it->second.empty())
                backend.pending.erase(it);
            found = true;
        }
    }
    if (!found) {
        warn("route: backend '", backend.name,
             "' sent a response for unknown id '", id, "'");
        return;
    }
    if (waiter.isCheck && topology.syncShip) {
        // Sync replication: hold the response until this backend's log
        // has been pulled past the frames this campaign appended, so a
        // crash after the client sees "ok" can never lose its units.
        // Only a pull sent from here on can stand witness — the backend
        // appended the frames before it sent this response — so record
        // the next generation; a pull already in flight may have been
        // sent before the frames existed, and startPullLocked() queues
        // a fresh one behind it.
        std::lock_guard<std::mutex> lock(backend.shipMu);
        backend.held.push_back(HeldResponse{std::move(waiter.respond),
                                            line,
                                            backend.pullsSent + 1});
        startPullLocked(backend);
        return;
    }
    waiter.respond(line);
}

void
Router::startPullLocked(Backend &backend)
{
    if (!backend.alive.load(std::memory_order_acquire))
        return;
    if (backend.pullInFlight) {
        backend.pullQueued = true;
        return;
    }
    backend.pullInFlight = true;
    // An actual send satisfies every queued request: queuers only need
    // *some* pull sent after their request time, and this is one.
    backend.pullQueued = false;
    ++backend.pullsSent;
    if (!sendLine(backend, renderPullRequest(backend.cursor,
                                             topology.pullMaxBytes))) {
        // A failed write means the peer is gone; its reader observes
        // EOF and runs the death path — calling markDead() here would
        // re-enter shipMu, which every caller of this method holds.
        // Count the generation as landed so waiters unblock; failover
        // flushes the held responses.
        backend.pullInFlight = false;
        backend.lastEofGen = backend.pullsSent;
        backend.shipCv.notify_all();
    }
}

void
Router::handlePullResponse(Backend &backend, const std::string &line)
{
    std::string frames_raw;
    std::uint64_t next = backend.cursor;
    bool eof = true;
    bool usable = false;

    std::string json_error;
    const auto root = service::parseJson(line, &json_error);
    if (root.has_value() && root->isObject()) {
        const service::JsonValue *status = root->find("status");
        const service::JsonValue *next_field = root->find("next");
        const service::JsonValue *eof_field = root->find("eof");
        const service::JsonValue *frames = root->find("frames");
        if (status != nullptr && status->isString() &&
            status->text == "ok" && next_field != nullptr &&
            eof_field != nullptr && eof_field->isBool() &&
            frames != nullptr && frames->isString()) {
            const auto next_value = next_field->asU64();
            auto decoded = service::hexDecode(frames->text);
            if (next_value.has_value() && decoded.has_value()) {
                next = *next_value;
                eof = eof_field->boolean;
                frames_raw = std::move(*decoded);
                usable = true;
            }
        }
    }
    if (!usable)
        warn("route: unusable pull response from backend '",
             backend.name, "'");

    if (!frames_raw.empty()) {
        std::vector<service::Frame> frames;
        bool corrupt = false;
        service::decodeFrames(frames_raw, frames, &corrupt);
        if (corrupt)
            warn("route: CRC-corrupt frame pulled from backend '",
                 backend.name, "' — dropping the bad tail");
        for (const service::Frame &frame : frames) {
            if (backend.replica.put(frame.key, frame.payload))
                backend.framesReplicated.fetch_add(
                    1, std::memory_order_relaxed);
        }
    }

    std::vector<HeldResponse> flush;
    {
        std::lock_guard<std::mutex> lock(backend.shipMu);
        backend.cursor = next;
        const std::uint64_t gen = backend.pullsSent;
        backend.pullInFlight = false;
        if (usable && !eof) {
            startPullLocked(backend); // Keep draining the log tail.
        } else {
            backend.lastEofGen = gen;
            // Flush only responses whose witness pull has landed.
            // requiredGen rises monotonically down `held` (it snapshots
            // the monotone pullsSent), so the flushable ones are a
            // prefix; younger holds wait for the fresh pull below.
            std::size_t count = 0;
            while (count < backend.held.size() &&
                   backend.held[count].requiredGen <= gen)
                ++count;
            flush.assign(
                std::make_move_iterator(backend.held.begin()),
                std::make_move_iterator(backend.held.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            count)));
            backend.held.erase(backend.held.begin(),
                               backend.held.begin() +
                                   static_cast<std::ptrdiff_t>(count));
            if (!backend.held.empty() || backend.pullQueued)
                startPullLocked(backend);
            backend.shipCv.notify_all();
        }
    }
    for (HeldResponse &held : flush)
        held.respond(held.response);
}

void
Router::shipToEof(Backend &backend)
{
    std::unique_lock<std::mutex> lock(backend.shipMu);
    // "Fully replicated" means a pull sent after this point hit eof;
    // an in-flight pull's eof may predate log bytes already written.
    const std::uint64_t required = backend.pullsSent + 1;
    startPullLocked(backend);
    backend.shipCv.wait(lock, [&backend, required] {
        return backend.lastEofGen >= required ||
               !backend.alive.load(std::memory_order_acquire);
    });
}

void
Router::shipperLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(shipperMu);
            shipperCv.wait_for(
                lock,
                std::chrono::milliseconds(topology.pullIntervalMs),
                [this] { return stopShipper; });
            if (stopShipper)
                return;
        }
        for (const auto &backend : backends) {
            if (!backend->alive.load(std::memory_order_acquire))
                continue;
            std::lock_guard<std::mutex> lock(backend->shipMu);
            startPullLocked(*backend);
        }
    }
}

void
Router::markDead(Backend &backend)
{
    if (!backend.alive.exchange(false, std::memory_order_acq_rel))
        return;
    // Unblock the backend's reader; it runs failover() exactly once.
    ::shutdown(backend.fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(backend.shipMu);
    backend.pullInFlight = false;
    backend.shipCv.notify_all();
}

void
Router::failover(Backend &backend)
{
    {
        std::lock_guard<std::mutex> lock(ringMu);
        if (!ring.contains(backend.name))
            return; // Already failed over (or never joined).
        ring.remove(backend.name);
    }
    failovers.fetch_add(1, std::memory_order_relaxed);

    // Deliver responses the backend completed but sync-ship was still
    // holding: the work finished and the bytes are genuine; only the
    // not-yet-pulled log tail is lost.
    std::vector<HeldResponse> flush;
    {
        std::lock_guard<std::mutex> lock(backend.shipMu);
        flush.swap(backend.held);
        backend.shipCv.notify_all();
    }
    for (HeldResponse &held : flush)
        held.respond(held.response);

    const bool fleet_alive = std::any_of(
        backends.begin(), backends.end(), [](const auto &b) {
            return b->alive.load(std::memory_order_acquire);
        });
    if (fleet_alive && !draining.load(std::memory_order_acquire))
        reinstallReplica(backend);

    // Re-dispatch everything that was in flight on the dead backend:
    // checks ride the ring again (their completed units now live on
    // the new owner), control ops answer with an error.
    std::vector<Waiter> orphans;
    {
        std::lock_guard<std::mutex> lock(backend.pendingMu);
        for (auto &[id, waiters] : backend.pending)
            for (Waiter &waiter : waiters)
                orphans.push_back(std::move(waiter));
        backend.pending.clear();
    }
    std::uint64_t retried = 0;
    for (Waiter &waiter : orphans) {
        if (waiter.isCheck && fleet_alive) {
            ++retried;
            dispatchCheck(std::move(waiter));
        } else {
            waiter.respond(service::renderErrorResponse(
                waiter.id,
                "backend '" + backend.name + "' died mid-request"));
        }
    }
    requestsRetried.fetch_add(retried, std::memory_order_relaxed);
    inform("route: backend '", backend.name, "' died; re-dispatched ",
           retried, " in-flight requests");
}

void
Router::reinstallReplica(Backend &dead)
{
    // Ship every replicated frame of the dead backend to its key's new
    // owner. Grouping whole frames per owner keeps each install line a
    // bounded, self-verifying unit; installs are idempotent puts, so
    // re-sending after a second failure is harmless.
    std::unordered_map<Backend *, std::string> batches;
    const auto flushBatch = [this](Backend *owner, std::string &batch) {
        if (batch.empty())
            return;
        if (!sendLine(*owner, renderInstallRequest(batch)))
            markDead(*owner);
        batch.clear();
    };

    std::uint64_t cursor = 0;
    std::uint64_t shipped = 0;
    bool eof = false;
    while (!eof) {
        std::string raw;
        try {
            raw = dead.replica.readLog(cursor, topology.pullMaxBytes,
                                       cursor, eof);
        } catch (const service::StoreError &error) {
            warn("route: replica walk of '", dead.name,
                 "' failed: ", error.what());
            break;
        }
        if (raw.empty())
            break;
        std::vector<service::Frame> frames;
        service::decodeFrames(raw, frames);
        for (const service::Frame &frame : frames) {
            Backend *owner = nullptr;
            {
                std::lock_guard<std::mutex> lock(ringMu);
                const std::string *name =
                    ring.ownerOf(routingKeyOf(frame));
                if (name != nullptr)
                    owner = backendByName(*name);
            }
            if (owner == nullptr ||
                !owner->alive.load(std::memory_order_acquire))
                continue;
            std::string &batch = batches[owner];
            const std::string encoded =
                service::encodeFrame(frame.key, frame.payload);
            if (!batch.empty() &&
                batch.size() + encoded.size() > topology.pullMaxBytes)
                flushBatch(owner, batch);
            batch += encoded;
            ++shipped;
        }
    }
    // icheck-lint: allow(D1): each batch ships to a distinct backend's
    // idempotent store; inter-backend send order cannot reach any output
    for (auto &[owner, batch] : batches)
        flushBatch(owner, batch);
    framesReinstalled.fetch_add(shipped, std::memory_order_relaxed);
    inform("route: reinstalled ", shipped,
           " replicated frames from dead backend '", dead.name, "'");
}

std::string
Router::forwardAndWait(Backend &backend, const std::string &id,
                       const std::string &line)
{
    struct SyncSlot
    {
        std::mutex mu;
        std::condition_variable cv;
        std::string response;
        bool done = false;
    };
    auto slot = std::make_shared<SyncSlot>();

    Waiter waiter;
    waiter.id = id;
    waiter.line = line;
    waiter.respond = [slot](const std::string &response) {
        std::lock_guard<std::mutex> lock(slot->mu);
        slot->response = response;
        slot->done = true;
        slot->cv.notify_all();
    };
    {
        std::lock_guard<std::mutex> lock(backend.pendingMu);
        backend.pending[id].push_back(std::move(waiter));
    }
    if (!sendLine(backend, line))
        markDead(backend); // Failover answers the waiter with an error.
    // Same race as dispatchCheck: a failover that drained pending
    // before our push would leave this wait blocked forever.
    if (!backend.alive.load(std::memory_order_acquire))
        reclaimStranded(backend, id);

    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&slot] { return slot->done; });
    return slot->response;
}

void
Router::handleStats(const std::string &id, const std::string &line,
                    const Respond &respond)
{
    const RouterStats router_stats = stats();

    struct PerBackend
    {
        std::string name;
        bool alive = false;
        std::uint64_t replicaFrames = 0;
        std::uint64_t replicaBytes = 0;
        std::string statsObject;
    };
    std::vector<PerBackend> rows;

    struct Aggregate
    {
        std::uint64_t requestsCompleted = 0;
        std::uint64_t checksCompleted = 0;
        std::uint64_t unitsExecuted = 0;
        std::uint64_t unitsReused = 0;
        std::uint64_t framesAppended = 0;
        std::uint64_t framesInstalled = 0;
        std::uint64_t storeBytes = 0;
        std::uint64_t storeKeys = 0;
    };
    Aggregate total;
    std::size_t alive_count = 0;

    for (const auto &backend : backends) {
        PerBackend row;
        row.name = backend->name;
        row.alive = backend->alive.load(std::memory_order_acquire);
        row.replicaFrames =
            backend->framesReplicated.load(std::memory_order_relaxed);
        row.replicaBytes = backend->replica.logBytes();
        if (row.alive) {
            const std::string response =
                forwardAndWait(*backend, id, line);
            row.statsObject = extractStatsObject(response);
            row.alive = backend->alive.load(std::memory_order_acquire);
        }
        if (row.alive && !row.statsObject.empty()) {
            ++alive_count;
            const auto parsed = service::parseJson(row.statsObject);
            if (parsed.has_value() && parsed->isObject()) {
                const auto add = [&parsed](const char *key,
                                           std::uint64_t &into) {
                    const service::JsonValue *field = parsed->find(key);
                    if (field == nullptr)
                        return;
                    const auto value = field->asU64();
                    if (value.has_value())
                        into += *value;
                };
                add("requestsCompleted", total.requestsCompleted);
                add("checksCompleted", total.checksCompleted);
                add("unitsExecuted", total.unitsExecuted);
                add("unitsReused", total.unitsReused);
                add("framesAppended", total.framesAppended);
                add("framesInstalled", total.framesInstalled);
                add("storeBytes", total.storeBytes);
                add("storeKeys", total.storeKeys);
            }
        }
        rows.push_back(std::move(row));
    }

    const double touched = static_cast<double>(total.unitsExecuted +
                                               total.unitsReused);
    const double dedup =
        touched > 0.0 ? static_cast<double>(total.unitsReused) / touched
                      : 0.0;

    std::string body = "{\"id\":\"" + jsonEscapeText(id) +
                       "\",\"status\":\"ok\",\"fleet\":{";
    body += "\"backends\":" + std::to_string(backends.size());
    body += ",\"aliveBackends\":" + std::to_string(alive_count);
    body += ",\"router\":{\"requestsRouted\":" +
            std::to_string(router_stats.requestsRouted);
    body += ",\"protocolErrors\":" +
            std::to_string(router_stats.protocolErrors);
    body += ",\"framesReplicated\":" +
            std::to_string(router_stats.framesReplicated);
    body += ",\"framesReinstalled\":" +
            std::to_string(router_stats.framesReinstalled);
    body += ",\"requestsRetried\":" +
            std::to_string(router_stats.requestsRetried);
    body += ",\"failovers\":" + std::to_string(router_stats.failovers);
    body += std::string(",\"syncShip\":") +
            (topology.syncShip ? "true" : "false") + "}";
    char dedup_text[32];
    std::snprintf(dedup_text, sizeof dedup_text, "%.4f", dedup);
    body += ",\"aggregate\":{\"requestsCompleted\":" +
            std::to_string(total.requestsCompleted);
    body += ",\"checksCompleted\":" +
            std::to_string(total.checksCompleted);
    body += ",\"unitsExecuted\":" + std::to_string(total.unitsExecuted);
    body += ",\"unitsReused\":" + std::to_string(total.unitsReused);
    body += ",\"dedupHitRate\":";
    body += dedup_text;
    body += ",\"framesAppended\":" +
            std::to_string(total.framesAppended);
    body += ",\"framesInstalled\":" +
            std::to_string(total.framesInstalled);
    body += ",\"storeBytes\":" + std::to_string(total.storeBytes);
    body += ",\"storeKeys\":" + std::to_string(total.storeKeys) + "}";
    body += ",\"perBackend\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PerBackend &row = rows[i];
        if (i != 0)
            body += ',';
        body += "{\"name\":\"" + jsonEscapeText(row.name) +
                "\",\"alive\":";
        body += row.alive ? "true" : "false";
        body += ",\"replicaFrames\":" +
                std::to_string(row.replicaFrames);
        body += ",\"replicaBytes\":" + std::to_string(row.replicaBytes);
        if (!row.statsObject.empty())
            body += ",\"stats\":" + row.statsObject;
        body += '}';
    }
    body += "]}}";
    respond(body);
}

void
Router::handleDrain(const std::string &id, const std::string &line,
                    const Respond &respond)
{
    draining.store(true, std::memory_order_release);
    for (const auto &backend : backends) {
        if (!backend->alive.load(std::memory_order_acquire))
            continue;
        // Ship the log tail first: a drained backend exits, and its
        // final frames should survive in the replica.
        shipToEof(*backend);
        if (!backend->alive.load(std::memory_order_acquire))
            continue;
        forwardAndWait(*backend, id, line);
    }
    respond("{\"id\":\"" + jsonEscapeText(id) +
            "\",\"status\":\"ok\",\"draining\":true}");
    drainComplete.store(true, std::memory_order_release);
}

RouterStats
Router::stats() const
{
    RouterStats out;
    out.requestsRouted = requestsRouted.load(std::memory_order_relaxed);
    out.protocolErrors = protocolErrors.load(std::memory_order_relaxed);
    for (const auto &backend : backends)
        out.framesReplicated +=
            backend->framesReplicated.load(std::memory_order_relaxed);
    out.framesReinstalled =
        framesReinstalled.load(std::memory_order_relaxed);
    out.requestsRetried =
        requestsRetried.load(std::memory_order_relaxed);
    out.failovers = failovers.load(std::memory_order_relaxed);
    return out;
}

namespace
{

/**
 * Per-connection state of one router client. Shared-owned: check
 * responses arrive asynchronously from backend reader threads, so the
 * respond closures handed to the router hold a shared_ptr and the
 * connection (and its fd) outlives its reaped reader thread until the
 * last response is written or dropped.
 */
struct ClientConnection
    : public std::enable_shared_from_this<ClientConnection>
{
    int fd = -1;
    std::thread reader;
    std::mutex writeMu;
    std::atomic<bool> done{false}; ///< Reader exited; safe to reap.

    ~ClientConnection()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

void
writeClientResponse(ClientConnection &connection,
                    const std::string &response)
{
    std::string framed = response;
    framed += '\n';
    std::lock_guard<std::mutex> lock(connection.writeMu);
    std::size_t written = 0;
    while (written < framed.size()) {
        // MSG_NOSIGNAL: a client that disconnected mid-response must
        // not SIGPIPE the router out from under every other client.
        const ssize_t n =
            ::send(connection.fd, framed.data() + written,
                   framed.size() - written, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // Peer went away; its responses are undeliverable.
        }
        written += static_cast<std::size_t>(n);
    }
}

void
clientReader(ClientConnection &connection, Router &router)
{
    const Router::Respond respond =
        [self = connection.shared_from_this()](
            const std::string &response) {
            writeClientResponse(*self, response);
        };
    std::string buffer;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::read(connection.fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (n == 0)
            return;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t i = start; i < buffer.size(); ++i) {
            if (buffer[i] != '\n')
                continue;
            std::string line = buffer.substr(start, i - start);
            start = i + 1;
            if (!line.empty())
                router.handleClientLine(line, respond);
        }
        buffer.erase(0, start);
        if (buffer.size() > 2 * clientMaxLineBytes) {
            respond(service::renderErrorResponse(
                {}, "oversized request line; closing connection"));
            return;
        }
    }
}

} // namespace

int
Router::serve(const volatile std::sig_atomic_t *shutdown_flag)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        warn("route: socket() failed: ", std::strerror(errno));
        return ExitInternal;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (listenSocket.size() >= sizeof addr.sun_path) {
        warn("route: socket path too long: ", listenSocket);
        ::close(listener);
        return ExitUsage;
    }
    std::strncpy(addr.sun_path, listenSocket.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(listenSocket.c_str());
    if (::bind(listener, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, 64) != 0) {
        warn("route: cannot bind/listen on '", listenSocket,
             "': ", std::strerror(errno));
        ::close(listener);
        return ExitInternal;
    }
    inform("routing ", backends.size(), " backends on unix socket ",
           listenSocket);

    std::vector<std::shared_ptr<ClientConnection>> connections;
    // Reap disconnected clients as we go — a long-lived router must not
    // accumulate one dead thread + socket per client that came and went.
    const auto reapFinished = [&connections] {
        for (auto it = connections.begin(); it != connections.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                (*it)->reader.join();
                it = connections.erase(it);
            } else {
                ++it;
            }
        }
    };
    while (!(shutdown_flag != nullptr && *shutdown_flag != 0) &&
           !drainComplete.load(std::memory_order_acquire)) {
        reapFinished();
        pollfd pfd{listener, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("route: poll failed: ", std::strerror(errno));
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            warn("route: accept failed: ", std::strerror(errno));
            break;
        }
        auto connection = std::make_shared<ClientConnection>();
        connection->fd = fd;
        ClientConnection *raw = connection.get();
        connection->reader = std::thread([raw, this] {
            clientReader(*raw, *this);
            raw->done.store(true, std::memory_order_release);
        });
        connections.push_back(std::move(connection));
    }

    ::close(listener);
    for (auto &connection : connections)
        ::shutdown(connection->fd, SHUT_RDWR);
    for (auto &connection : connections)
        connection->reader.join();
    // Dropping the vector closes each fd once its last outstanding
    // respond closure (if any) has run; stop() below drains those.
    connections.clear();
    ::unlink(listenSocket.c_str());
    stop();
    return ExitOk;
}

void
Router::stop()
{
    if (!started.exchange(false, std::memory_order_acq_rel))
        return;
    {
        std::lock_guard<std::mutex> lock(shipperMu);
        stopShipper = true;
        shipperCv.notify_all();
    }
    if (shipper.joinable())
        shipper.join();
    // Drop links; each reader observes EOF and runs its failover path,
    // which only answers outstanding waiters (the ring is already being
    // torn down, so re-dispatch lands on an error quickly if at all).
    draining.store(true, std::memory_order_release);
    for (const auto &backend : backends)
        markDead(*backend);
    for (const auto &backend : backends) {
        if (backend->reader.joinable())
            backend->reader.join();
        if (backend->fd >= 0) {
            ::close(backend->fd);
            backend->fd = -1;
        }
    }
}

} // namespace icheck::fleet
