#ifndef ICHECK_FLEET_ROUTER_HPP
#define ICHECK_FLEET_ROUTER_HPP

/**
 * @file
 * The fleet router behind `icheck route`.
 *
 * One router process fronts N `icheck serve` backends. Clients speak
 * the ordinary service JSONL protocol to the router's Unix socket; the
 * router parses each request, shards `check` ops by consistent hashing
 * on the canonical campaign key (so identical work always lands on the
 * same backend and cross-request dedup keeps paying), and forwards the
 * request line verbatim over a persistent, pipelined per-backend
 * connection — the response bytes a client sees are exactly the bytes
 * the backend rendered, which is what keeps router output
 * byte-identical to a direct backend at any fleet shape.
 *
 * Durability rides log shipping: the router continuously `pull`s each
 * backend's append-only CRC frame log into a per-backend replica
 * store (re-verifying every frame CRC on ingest). When a backend dies
 * — EOF, write failure, SIGKILL — the router removes it from the
 * ring, re-`install`s its replicated frames on the keys' new owners,
 * and re-dispatches the dead backend's in-flight requests, so every
 * work unit that was shipped before the crash resumes without
 * re-running. With `ship:"sync"` a check response is held until the
 * producing backend's log has been pulled past it, making failover
 * lossless for completed units at the cost of one pull round-trip of
 * latency.
 *
 * `stats` fans out to every live backend and aggregates; `drain`
 * ships each backend's log tail, then drains the fleet and finally
 * the router itself. Ids beginning with `__fleet` are reserved for
 * the router's own shipping traffic and rejected from clients.
 */

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fleet/fleet_config.hpp"
#include "fleet/hash_ring.hpp"
#include "service/result_store.hpp"

namespace icheck::fleet
{

/** Router-level counters (monotonic since start). */
struct RouterStats
{
    std::uint64_t requestsRouted = 0;   ///< Check ops forwarded.
    std::uint64_t protocolErrors = 0;   ///< Client lines rejected.
    std::uint64_t framesReplicated = 0; ///< Frames pulled into replicas.
    std::uint64_t framesReinstalled = 0; ///< Frames shipped on failover.
    std::uint64_t requestsRetried = 0;  ///< Re-dispatched on failover.
    std::uint64_t failovers = 0;        ///< Backends declared dead.
};

class Router
{
  public:
    using Respond = std::function<void(const std::string &)>;

    Router(FleetTopology topology, std::string listen_socket);
    ~Router();

    /** Connect every backend and start the reader/shipper threads.
     *  False (with a warning) if any backend is unreachable. */
    bool start();

    /**
     * Accept clients on the listen socket until a shutdown signal or a
     * completed fleet drain. Returns a process exit code.
     */
    int serve(const volatile std::sig_atomic_t *shutdown_flag);

    /** Tear down client connections, backend links, and threads. */
    void stop();

    /**
     * Handle one client request line; @p respond receives exactly one
     * response line (no trailing newline). Check responses may arrive
     * asynchronously from backend reader threads. Exposed for tests.
     */
    void handleClientLine(const std::string &line, Respond respond);

    RouterStats stats() const;

  private:
    /** One request awaiting its backend response. */
    struct Waiter
    {
        std::string id;
        std::string line;      ///< Original request line (for retry).
        std::string canonical; ///< Routing key (empty for non-check).
        Respond respond;
        bool isCheck = false;
        int attempts = 0;
    };

    /** A check response held until the backend's log is shipped. */
    struct HeldResponse
    {
        Respond respond;
        std::string response;
        /** Generation of the pull that must hit eof before this
         *  flushes. Only a pull *sent after* the response arrived can
         *  prove the campaign's frames replicated; a pull already in
         *  flight at hold time may predate them. */
        std::uint64_t requiredGen = 0;
    };

    /** Persistent link to one backend. */
    struct Backend
    {
        std::string name;
        std::string socketPath;
        int fd = -1;
        std::atomic<bool> alive{false};
        std::thread reader;
        std::mutex writeMu;

        /** In-flight requests by id, FIFO per id. Guarded by pendingMu. */
        std::mutex pendingMu;
        std::unordered_map<std::string, std::vector<Waiter>> pending;

        /** Log-shipping state. Guarded by shipMu. Pulls carry a
         *  monotone generation (in send order): a pull's eof proves
         *  the log replicated up to its *send* time, so anything that
         *  needs "replicated as of now" records `pullsSent + 1` and
         *  waits for a pull of at least that generation to land. */
        std::mutex shipMu;
        std::condition_variable shipCv;
        std::uint64_t cursor = 0;    ///< Next log byte to pull.
        std::uint64_t pullsSent = 0; ///< Generation of the newest pull.
        std::uint64_t lastEofGen = 0; ///< Newest generation to hit eof.
        bool pullInFlight = false;
        bool pullQueued = false; ///< Send a fresh pull once this lands.
        std::vector<HeldResponse> held; ///< Sync-ship barrier queue.

        /** Replica of this backend's frame log (CRC-verified). */
        service::ResultStore replica;
        std::atomic<std::uint64_t> framesReplicated{0};
    };

    Backend *backendByName(const std::string &name);
    bool connectBackend(Backend &backend);
    bool sendLine(Backend &backend, const std::string &line);

    void dispatchCheck(Waiter waiter);
    /**
     * Rescue a waiter for @p id that was enqueued after failover()
     * already drained @p backend's pending map. Callers re-check
     * `alive` after enqueuing; when it went false, exactly one of
     * failover() or this reclaim extracts each waiter (extraction is
     * serialized on pendingMu), so nothing is answered twice or never.
     */
    void reclaimStranded(Backend &backend, const std::string &id);
    void backendReaderLoop(Backend &backend);
    void completeResponse(Backend &backend, const std::string &id,
                          const std::string &line);
    void handlePullResponse(Backend &backend, const std::string &line);
    /** Start a pull if none is in flight. Caller holds shipMu. */
    void startPullLocked(Backend &backend);
    /** Block until the backend's log is fully replicated (or it dies). */
    void shipToEof(Backend &backend);
    void shipperLoop();

    void markDead(Backend &backend);
    /** Runs on the dead backend's reader thread, exactly once. */
    void failover(Backend &backend);
    void reinstallReplica(Backend &dead);

    void handleStats(const std::string &id, const std::string &line,
                     const Respond &respond);
    void handleDrain(const std::string &id, const std::string &line,
                     const Respond &respond);
    /** Forward @p line to @p backend and block for its response. */
    std::string forwardAndWait(Backend &backend, const std::string &id,
                               const std::string &line);

    FleetTopology topology;
    std::string listenSocket;

    mutable std::mutex ringMu;
    HashRing ring;

    std::vector<std::unique_ptr<Backend>> backends;

    std::thread shipper;
    std::mutex shipperMu;
    std::condition_variable shipperCv;
    bool stopShipper = false;

    std::atomic<bool> draining{false};
    std::atomic<bool> drainComplete{false};
    std::atomic<bool> started{false};

    std::atomic<std::uint64_t> requestsRouted{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> framesReinstalled{0};
    std::atomic<std::uint64_t> requestsRetried{0};
    std::atomic<std::uint64_t> failovers{0};
};

} // namespace icheck::fleet

#endif // ICHECK_FLEET_ROUTER_HPP
