/**
 * @file
 * Hash-width ablation: empirical footing for the paper's accuracy claim.
 *
 * InstantCheck reports false negatives (two different states, equal
 * hashes) with probability 2^-W for a W-bit State Hash; the paper picks
 * W = 64 so collisions are "statistically rare". This bench hashes many
 * distinct synthetic memory states through the real pipeline, truncates
 * the State Hash to various widths, and compares observed pairwise
 * collisions against the birthday-bound expectation pairs/2^W.
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "support/rng.hpp"

using namespace icheck;
using namespace icheck::hashing;

namespace
{

/** Hash of one random synthetic state (a handful of (addr, value)s). */
HashWord
randomStateHash(const StateHasher &hasher, Xoshiro256 &rng)
{
    ModHash sum;
    const int locations = 4 + static_cast<int>(rng.below(8));
    for (int i = 0; i < locations; ++i) {
        const Addr addr = 0x1000 + rng.below(1 << 20) * 8;
        sum += hasher.valueHash(addr, rng.next(), 8,
                                ValueClass::Integer);
    }
    return sum.raw();
}

} // namespace

int
main()
{
    constexpr int n_states = 4000;
    const Crc64LocationHasher location_hasher;
    const StateHasher hasher(location_hasher, FpRoundMode::none());
    Xoshiro256 rng(2026);

    std::vector<HashWord> hashes;
    hashes.reserve(n_states);
    for (int i = 0; i < n_states; ++i)
        hashes.push_back(randomStateHash(hasher, rng));

    const double pairs =
        static_cast<double>(n_states) * (n_states - 1) / 2.0;
    std::printf("Hash-width ablation: %d distinct states, %.0f pairs\n",
                n_states, pairs);
    std::printf("%8s %16s %16s\n", "width", "expected-coll",
                "observed-coll");
    std::printf("%s\n", std::string(44, '-').c_str());

    for (unsigned width : {8u, 12u, 16u, 20u, 24u, 32u, 48u, 64u}) {
        const HashWord mask =
            width >= 64 ? ~HashWord{0} : ((HashWord{1} << width) - 1);
        std::map<HashWord, int> buckets;
        for (HashWord hash : hashes)
            ++buckets[hash & mask];
        double collisions = 0;
        for (const auto &[value, count] : buckets)
            collisions += static_cast<double>(count) * (count - 1) / 2.0;
        const double expected =
            pairs / std::pow(2.0, static_cast<double>(width));
        std::printf("%8u %16.2f %16.0f\n", width, expected, collisions);
    }
    std::printf("\nObserved collisions track the 2^-W birthday bound: at "
                "8-16 bits false negatives would be routine, at 64 bits\n"
                "they require ~2^32 distinct states before the first "
                "expected collision — the paper's 'statistically rare'.\n");
    return 0;
}
