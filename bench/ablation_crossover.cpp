/**
 * @file
 * Section 7.3 ablation: the incremental-vs-traversal crossover.
 *
 * SW-InstantCheck-Inc pays per *store* (5 instr/byte, old + new); SW-
 * InstantCheck-Tr pays per *checkpoint* (5 instr/byte of live state).
 * Sweeping the ratio of writes-between-checkpoints to state size moves
 * the winner from traversal (write-heavy: barnes, fft, lu) to incremental
 * (checkpoint-heavy: ocean, sphinx3, streamcluster). This bench makes the
 * crossover explicit with a synthetic workload.
 */

#include <cstdio>
#include <memory>

#include "check/driver.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;
using sim::LambdaProgram;

namespace
{

/**
 * Synthetic phase workload: @p state_words of state, @p writes_per_phase
 * writes between checkpoints, @p phases barrier checkpoints.
 */
check::ProgramFactory
synthetic(std::uint32_t state_words, std::uint32_t writes_per_phase,
          std::uint32_t phases)
{
    return [=] {
        auto barrier_id = std::make_shared<sim::BarrierId>();
        return std::make_unique<LambdaProgram>(
            "synthetic", 4,
            [=](sim::SetupCtx &ctx) {
                ctx.global("state", mem::tArray(mem::tInt64(),
                                                state_words));
                *barrier_id = ctx.barrier(4);
            },
            [=](sim::ThreadCtx &ctx) {
                const Addr state = ctx.global("state");
                const std::uint32_t per_thread =
                    writes_per_phase / 4;
                for (std::uint32_t phase = 0; phase < phases; ++phase) {
                    for (std::uint32_t w = 0; w < per_thread; ++w) {
                        const std::uint32_t slot =
                            (ctx.tid() * per_thread + w) % state_words;
                        ctx.store<std::int64_t>(
                            state + 8 * slot,
                            static_cast<std::int64_t>(phase + w));
                        ctx.tick(40);
                    }
                    ctx.barrier(*barrier_id);
                }
            });
    };
}

double
factorOf(check::Scheme scheme, const check::ProgramFactory &factory)
{
    check::DriverConfig cfg;
    cfg.scheme = scheme;
    cfg.runs = 3;
    cfg.machine.numCores = 4;
    check::DeterminismDriver driver(cfg);
    return driver.check(factory).overheadFactor();
}

} // namespace

int
main()
{
    std::printf("Section 7.3 ablation: SW-Inc vs SW-Tr crossover\n");
    std::printf("state = 4096 words; sweep writes between checkpoints "
                "(16 checkpoints)\n\n");
    std::printf("%14s %14s %14s %10s\n", "writes/phase", "SW-Inc",
                "SW-Tr", "winner");
    std::printf("%s\n", std::string(56, '-').c_str());
    for (std::uint32_t writes : {64u, 256u, 1024u, 4096u, 16384u}) {
        const auto factory = synthetic(4096, writes, 16);
        const double inc = factorOf(check::Scheme::SwInc, factory);
        const double tr = factorOf(check::Scheme::SwTr, factory);
        std::printf("%14u %13.2fx %13.2fx %10s\n", writes, inc, tr,
                    inc < tr ? "inc" : "tr");
    }
    std::printf("\nSmall write counts favor incremental hashing; once "
                "writes-per-checkpoint approach the state size,\n"
                "traversal becomes cheaper — matching the per-application "
                "winners in Figure 6.\n");
    return 0;
}
