/**
 * @file
 * DPOR exploration reduction, as one machine-readable number per racy
 * app (default output BENCH_explore.json): nodes (schedules executed)
 * to full coverage — exploration until the search exhausts — with
 * `--prune state,dpor` versus the same search without DPOR.
 *
 * The workloads are the bug-seeded apps at exploration scale: four
 * threads, run-to-block quantum, so scheduling decisions sit at
 * synchronization boundaries and the seeded bug is a schedule-visible
 * final-state split. Both searches exhaust, so "nodes to coverage" is
 * exact, not a sample: the state sets found must be identical, and the
 * ratio is the Mazurkiewicz-trace reduction the paper's Section 6
 * pruning discussion motivates.
 *
 * Usage: micro_explore [out.json] [--quick] [--baseline <json>]
 *                      [--no-dpor]
 *
 * --quick shrinks the run budget for CI smoke runs. --baseline reads a
 * previous output (bench/baselines/explore_main.json, recorded with
 * --no-dpor to represent the pre-DPOR repo) and embeds it plus the
 * per-app node reduction, so the JSON documents the win instead of
 * leaving it a claim. The *StatesFound keys must come out at reduction
 * 1.00 — equal coverage — or the comparison is meaningless.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "explore/explorer.hpp"

using namespace icheck;

namespace
{

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "radixNodesToCoverage",
    "waterNSNodesToCoverage",
    "waterSPNodesToCoverage",
    "radixStatesFound",
    "waterNSStatesFound",
    "waterSPStatesFound",
};

struct Metrics
{
    double values[6] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

struct AppCase
{
    const char *label;
    check::ProgramFactory factory;
};

std::vector<AppCase>
appCases()
{
    using namespace icheck::apps;
    std::vector<AppCase> cases;
    cases.push_back({"radix(4,8,order-violation)", [] {
                         return std::make_unique<Radix>(
                             4, 8, BugSeed::OrderViolation);
                     }});
    cases.push_back({"waterNS(4,4,1,semantic)", [] {
                         return std::make_unique<WaterNS>(
                             4, 4, 1, BugSeed::Semantic);
                     }});
    cases.push_back({"waterSP(4,4,1,atomicity)", [] {
                         return std::make_unique<WaterSP>(
                             4, 4, 1, BugSeed::AtomicityViolation);
                     }});
    return cases;
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

explore::ExploreConfig
exploreConfig(bool dpor, int max_runs)
{
    explore::ExploreConfig cfg;
    cfg.prune = explore::PruneMode::StateHash; // the CLI default
    cfg.dpor = dpor;
    cfg.maxRuns = max_runs;
    cfg.quantum = 1u << 20; // run-to-block: decisions at sync points
    return cfg;
}

/**
 * Nodes to full coverage for one app. Exhaustion is part of the metric:
 * a capped search reports the cap as a lower bound and warns, so a
 * regression can make the number worse but never silently better.
 */
void
nodesToCoverage(const AppCase &app, bool dpor, int max_runs,
                double &nodes, double &states)
{
    const auto start = std::chrono::steady_clock::now();
    const explore::ExploreResult result = explore::explore(
        app.factory, machineConfig(), exploreConfig(dpor, max_runs));
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (!result.exhausted)
        std::fprintf(stderr,
                     "warning: %s did not exhaust in %d runs; "
                     "nodes-to-coverage is a lower bound\n",
                     app.label, max_runs);
    nodes = static_cast<double>(result.runsExecuted);
    states = static_cast<double>(result.finalStates.size());
    std::printf("%-28s dpor=%d nodes=%7.0f states=%2.0f "
                "(%s, %.2fs)\n",
                app.label, dpor ? 1 : 0, nodes, states,
                result.exhausted ? "exhausted" : "CAPPED", secs);
}

/** First occurrence of each metric key in a previous output. */
std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle);
        if (pos == std::string::npos) {
            std::fprintf(stderr, "baseline %s lacks %s\n", path.c_str(),
                         kKeys[i].c_str());
            return std::nullopt;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_explore.json";
    std::string baseline_path;
    bool quick = false;
    bool no_dpor = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--no-dpor") {
            no_dpor = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            out_path = arg;
        }
    }

    // The searches exhaust far below these caps on a healthy tree; the
    // caps only bound the damage a reduction regression can do to CI.
    const int max_runs = quick ? 30000 : 300000;
    const bool dpor = !no_dpor;

    std::printf("micro_explore (%s%s)\n", quick ? "quick" : "full",
                dpor ? "" : ", dpor off");

    const std::vector<AppCase> cases = appCases();
    Metrics cur;
    for (std::size_t i = 0; i < cases.size(); ++i)
        nodesToCoverage(cases[i], dpor, max_runs, cur[i], cur[i + 3]);

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_explore\",\n"
                 "  \"quick\": %s,\n"
                 "  \"dpor\": %s,\n",
                 quick ? "true" : "false", dpor ? "true" : "false");
    emitBlock(out, "current", cur, "%.0f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.0f");
        // Lower is better for node counts, so the win is base/cur; the
        // *StatesFound keys must come out at exactly 1.00 (equal
        // coverage) for the node reduction to mean anything.
        Metrics reduction;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            reduction[i] = cur[i] > 0.0 ? (*base)[i] / cur[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "reductionVsMain", reduction, "%.2f");
        std::printf("node reduction vs main:\n");
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            std::printf("%24s %13.2fx\n", kKeys[i].c_str(),
                        reduction[i]);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
