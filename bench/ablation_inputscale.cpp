/**
 * @file
 * Input-scale ablation (simdev / simmedium / simlarge analogues):
 * how work, checkpoints, and checking overheads scale with input size,
 * and the input-dependence of the streamcluster bug's visibility — the
 * paper's reason for checking many internal points ("catches bugs that
 * for some inputs do not show up at the program end").
 */

#include <cstdio>

#include "apps/scales.hpp"
#include "check/driver.hpp"

using namespace icheck;

namespace
{

check::DriverReport
runCampaign(const check::ProgramFactory &factory, check::Scheme scheme)
{
    check::DriverConfig cfg;
    cfg.scheme = scheme;
    cfg.runs = 5;
    cfg.machine.numCores = 8;
    check::DeterminismDriver driver(cfg);
    return driver.check(factory);
}

} // namespace

int
main()
{
    std::printf("Input-scale ablation\n\n");
    std::printf("%-14s %-10s %12s %12s %10s %12s\n", "App", "Input",
                "native", "checkpoints", "HW-Inc", "SW-Inc");
    std::printf("%s\n", std::string(76, '-').c_str());
    for (const char *name : {"fft", "sphinx3", "pbzip2"}) {
        for (apps::InputScale scale :
             {apps::InputScale::Dev, apps::InputScale::Medium,
              apps::InputScale::Large}) {
            const auto factory = apps::scaledFactory(name, scale);
            const auto hw = runCampaign(factory, check::Scheme::HwInc);
            const auto sw = runCampaign(factory, check::Scheme::SwInc);
            std::printf("%-14s %-10s %12.0f %12zu %9.4fx %11.2fx\n",
                        name, apps::scaleName(scale).c_str(),
                        hw.avgNativeInstrs, hw.distributions.size(),
                        hw.overheadFactor(), sw.overheadFactor());
        }
    }

    std::printf("\nstreamcluster bug visibility by input "
                "(bit-by-bit, 10 runs):\n");
    std::printf("%-10s %10s %10s %8s %8s\n", "Input", "DetPts",
                "NDetPts", "DetEnd", "Output");
    std::printf("%s\n", std::string(52, '-').c_str());
    for (apps::InputScale scale :
         {apps::InputScale::Dev, apps::InputScale::Medium,
          apps::InputScale::Large}) {
        check::DriverConfig cfg;
        cfg.runs = 10;
        cfg.machine.numCores = 8;
        cfg.machine.fpRoundingEnabled = false;
        check::DeterminismDriver driver(cfg);
        const auto report =
            driver.check(apps::scaledFactory("streamcluster", scale));
        std::printf("%-10s %10llu %10llu %8s %8s\n",
                    apps::scaleName(scale).c_str(),
                    static_cast<unsigned long long>(report.detPoints),
                    static_cast<unsigned long long>(report.ndetPoints),
                    report.detAtEnd ? "det" : "NDET",
                    report.outputDeterministic ? "det" : "NDET");
    }
    std::printf("\nThe bug corrupts internal barriers at every input but "
                "reaches the program end and output only on simdev —\n"
                "end-only checking on the larger inputs would report a "
                "clean program (Section 7.2.1).\n");
    return 0;
}
