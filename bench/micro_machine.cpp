/**
 * @file
 * Host-side throughput of the simulator itself: simulated accesses per
 * second for a native run, with the HW checker attached (MHM hashing
 * every store), and with the software checkers — the cost of using this
 * library, as opposed to the modeled target overheads of Figure 6.
 */

#include <benchmark/benchmark.h>
#include <memory>

#include "check/checker.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"

using namespace icheck;

namespace
{

/** A write-heavy 4-thread kernel with barrier checkpoints. */
std::unique_ptr<sim::LambdaProgram>
kernel(std::shared_ptr<sim::BarrierId> barrier_id)
{
    return std::make_unique<sim::LambdaProgram>(
        "kernel", 4,
        [barrier_id](sim::SetupCtx &ctx) {
            ctx.global("data", mem::tArray(mem::tInt64(), 256));
            *barrier_id = ctx.barrier(4);
        },
        [barrier_id](sim::ThreadCtx &ctx) {
            const Addr data = ctx.global("data");
            for (int phase = 0; phase < 4; ++phase) {
                for (int i = 0; i < 64; ++i) {
                    const Addr slot =
                        data + 8 * ((ctx.tid() * 64 + i) % 256);
                    ctx.store<std::int64_t>(
                        slot, ctx.load<std::int64_t>(slot) + i);
                }
                ctx.barrier(*barrier_id);
            }
        });
}

void
runOnce(std::optional<check::Scheme> scheme, benchmark::State &state)
{
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = 42;
        // The native baseline models a stock machine: MHM fused off.
        cfg.hashingArmed = scheme.has_value();
        sim::Machine machine(cfg);
        std::unique_ptr<check::Checker> checker;
        if (scheme.has_value()) {
            checker = check::makeChecker(*scheme);
            checker->attach(machine);
            machine.setRunStartHandler([&] { checker->onRunStart(); });
            machine.setCheckpointHandler(
                [&](const sim::CheckpointInfo &) {
                    benchmark::DoNotOptimize(
                        checker->checkpointHash().raw());
                });
        }
        auto barrier_id = std::make_shared<sim::BarrierId>();
        auto program = kernel(barrier_id);
        const sim::RunResult result = machine.run(*program);
        accesses += result.nativeInstrs;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

void
BM_MachineNative(benchmark::State &state)
{
    runOnce(std::nullopt, state);
}

void
BM_MachineHwInc(benchmark::State &state)
{
    runOnce(check::Scheme::HwInc, state);
}

void
BM_MachineSwInc(benchmark::State &state)
{
    runOnce(check::Scheme::SwInc, state);
}

void
BM_MachineSwTr(benchmark::State &state)
{
    runOnce(check::Scheme::SwTr, state);
}

} // namespace

BENCHMARK(BM_MachineNative)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MachineHwInc)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MachineSwInc)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MachineSwTr)->Unit(benchmark::kMicrosecond);
