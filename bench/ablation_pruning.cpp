/**
 * @file
 * Section 6.2 ablation: systematic-testing search-space reduction by
 * pruning strategy. Compares exhaustive enumeration, happens-before
 * pruning (the CHESS approximation), and InstantCheck state-hash pruning
 * on small parallel fragments. The paper's claim: state equality prunes
 * strictly more than happens-before, because different synchronization
 * orders often reach identical states (Figure 1).
 */

#include <cstdio>
#include <memory>

#include "explore/explorer.hpp"
#include "sim/lambda_program.hpp"

using namespace icheck;
using sim::LambdaProgram;

namespace
{

/** N threads each do G += L(tid) under a lock (Figure 1, generalized). */
check::ProgramFactory
lockedAccumulator(ThreadId threads)
{
    return [threads] {
        auto mutex_id = std::make_shared<sim::MutexId>();
        return std::make_unique<LambdaProgram>(
            "locked-accum", threads,
            [mutex_id](sim::SetupCtx &ctx) {
                const Addr g = ctx.global("G", mem::tInt64());
                ctx.init<std::int64_t>(g, 2);
                *mutex_id = ctx.mutex();
            },
            [mutex_id](sim::ThreadCtx &ctx) {
                ctx.lock(*mutex_id);
                const auto g = ctx.load<std::int64_t>(ctx.global("G"));
                ctx.store<std::int64_t>(ctx.global("G"),
                                        g + 3 + ctx.tid());
                ctx.unlock(*mutex_id);
            });
    };
}

/** Two threads race on two variables without locks. */
check::ProgramFactory
racyPair()
{
    return [] {
        return std::make_unique<LambdaProgram>(
            "racy-pair", 2,
            [](sim::SetupCtx &ctx) {
                ctx.global("x", mem::tInt64());
                ctx.global("y", mem::tInt64());
            },
            [](sim::ThreadCtx &ctx) {
                const Addr x = ctx.global("x");
                const Addr y = ctx.global("y");
                if (ctx.tid() == 0) {
                    ctx.store<std::int64_t>(x, 1);
                    const auto v = ctx.load<std::int64_t>(y);
                    ctx.store<std::int64_t>(x, v + 2);
                } else {
                    ctx.store<std::int64_t>(y, 1);
                    const auto v = ctx.load<std::int64_t>(x);
                    ctx.store<std::int64_t>(y, v + 2);
                }
            });
    };
}

void
row(const char *name, const check::ProgramFactory &factory)
{
    sim::MachineConfig mc;
    mc.numCores = 2;

    explore::ExploreConfig cfg;
    cfg.maxRuns = 20000;
    cfg.quantum = 1;

    std::printf("%-22s", name);
    std::size_t states = 0;
    for (explore::PruneMode mode :
         {explore::PruneMode::None, explore::PruneMode::HappensBefore,
          explore::PruneMode::StateHash}) {
        cfg.prune = mode;
        const explore::ExploreResult result =
            explore::explore(factory, mc, cfg);
        if (mode == explore::PruneMode::None)
            states = result.finalStates.size();
        std::printf(" %9d%s", result.runsExecuted,
                    result.exhausted ? " " : "+");
        if (result.finalStates.size() != states)
            std::printf(" [STATE SET MISMATCH]");
    }
    std::printf(" %9zu\n", states);
}

void
boundRow(const char *name, const check::ProgramFactory &factory)
{
    sim::MachineConfig mc;
    mc.numCores = 2;
    explore::ExploreConfig cfg;
    cfg.maxRuns = 20000;
    cfg.quantum = 1;
    cfg.prune = explore::PruneMode::None;

    std::printf("%-22s", name);
    for (std::size_t budget : {std::size_t{0}, std::size_t{1},
                               std::size_t{2}, ~std::size_t{0}}) {
        cfg.maxPreemptions = budget;
        const explore::ExploreResult result =
            explore::explore(factory, mc, cfg);
        std::printf(" %6d/%-4zu", result.runsExecuted,
                    result.finalStates.size());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Section 6.2 ablation: interleavings executed by pruning "
                "strategy (quantum = 1 access)\n");
    std::printf("%-22s %10s %10s %10s %10s\n", "Program", "none",
                "hb-prune", "state-hash", "states");
    std::printf("%s\n", std::string(68, '-').c_str());
    row("fig1-locked-2t", lockedAccumulator(2));
    row("fig1-locked-3t", lockedAccumulator(3));
    row("racy-pair", racyPair());
    std::printf("\nAll strategies find the same final-state sets; "
                "state-hash pruning executes the fewest runs because it\n"
                "merges interleavings that differ in happens-before but "
                "agree in state (Figure 1's pair is the canonical\n"
                "example). '+' marks a search stopped by the run cap.\n");

    std::printf("\nCHESS-style preemption bounding (runs/states per "
                "budget):\n");
    std::printf("%-22s %11s %11s %11s %11s\n", "Program", "p=0", "p=1",
                "p=2", "unbounded");
    std::printf("%s\n", std::string(70, '-').c_str());
    boundRow("fig1-racy-2t", racyPair());
    boundRow("fig1-locked-3t", lockedAccumulator(3));
    std::printf("\nSmall preemption budgets already cover most reachable "
                "states at a fraction of the runs — the CHESS insight\n"
                "that InstantCheck's state pruning composes with "
                "(Section 6.2).\n");
    return 0;
}
