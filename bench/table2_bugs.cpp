/**
 * @file
 * Regenerates Table 2: detection of the three seeded bugs (semantic,
 * atomicity violation, order violation) in formerly deterministic
 * applications — 30 runs each, reporting deterministic / nondeterministic
 * checking points and the first run at which the bug's nondeterminism is
 * detected.
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"

using namespace icheck;

namespace
{

struct Row
{
    const char *app;
    const char *bugType;
    check::ProgramFactory buggy;
};

check::DriverConfig
driverConfig()
{
    check::DriverConfig cfg;
    cfg.runs = 30;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = true;
    return cfg;
}

} // namespace

int
main()
{
    const Row rows[] = {
        {"waterNS", "semantic",
         [] {
             return std::make_unique<apps::WaterNS>(
                 8, 48, 5, apps::BugSeed::Semantic);
         }},
        {"waterSP", "atomicity violation",
         [] {
             return std::make_unique<apps::WaterSP>(
                 8, 48, 4, apps::BugSeed::AtomicityViolation);
         }},
        {"radix", "order violation",
         [] {
             return std::make_unique<apps::Radix>(
                 8, 512, apps::BugSeed::OrderViolation);
         }},
    };

    std::printf("Table 2: seeded-bug detection (30 runs, bug seeded in "
                "thread 3 only)\n");
    std::printf("%-12s %-22s %10s %10s %12s\n", "App", "BugType",
                "DetPoints", "NDetPoints", "FirstNDetRun");
    std::printf("%s\n", std::string(70, '-').c_str());

    for (const Row &row : rows) {
        check::DeterminismDriver driver(driverConfig());
        const check::DriverReport report = driver.check(row.buggy);
        std::printf("%-12s %-22s %10llu %10llu %12d\n", row.app,
                    row.bugType,
                    static_cast<unsigned long long>(report.detPoints),
                    static_cast<unsigned long long>(report.ndetPoints),
                    report.firstNdetRun);
    }
    std::printf("\nAll three bug types manifest as nondeterminism and are "
                "caught by the same check, without bug-type-specific\n"
                "detectors, annotations, or training runs "
                "(Section 7.4).\n");
    return 0;
}
