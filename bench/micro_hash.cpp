/**
 * @file
 * Microbenchmarks of the hashing core: per-byte location hashing (CRC-64
 * vs Mix64), incremental store deltas, FP round-off modes, and span
 * hashing — the host-side costs behind the Section 7.3 cost model.
 */

#include <benchmark/benchmark.h>

#include "hashing/fp_round.hpp"
#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "support/rng.hpp"

using namespace icheck;
using namespace icheck::hashing;

namespace
{

void
BM_LocationHashByte(benchmark::State &state, HasherKind kind)
{
    const auto hasher = makeLocationHasher(kind);
    Xoshiro256 rng(1);
    Addr addr = 0x1000;
    std::uint8_t value = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hasher->hashByte(addr, value));
        addr += 13;
        value = static_cast<std::uint8_t>(value * 31 + 7);
        if (value == 0)
            value = 1;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}

void
BM_StoreDelta(benchmark::State &state, HasherKind kind)
{
    const auto hasher = makeLocationHasher(kind);
    const StateHasher pipeline(*hasher, FpRoundMode::none());
    Xoshiro256 rng(2);
    std::uint64_t old_bits = 0;
    for (auto _ : state) {
        const std::uint64_t new_bits = rng.next();
        benchmark::DoNotOptimize(pipeline.storeDelta(
            0x2000, old_bits, new_bits, 8, ValueClass::Integer));
        old_bits = new_bits;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * 16));
}

void
BM_FpStoreDelta(benchmark::State &state, FpRoundKind kind)
{
    const Crc64LocationHasher hasher;
    FpRoundMode mode;
    mode.kind = kind;
    const StateHasher pipeline(hasher, mode);
    Xoshiro256 rng(3);
    std::uint64_t old_bits = 0;
    for (auto _ : state) {
        const std::uint64_t new_bits =
            std::bit_cast<std::uint64_t>(rng.uniform() * 100.0);
        benchmark::DoNotOptimize(pipeline.storeDelta(
            0x3000, old_bits, new_bits, 8, ValueClass::Double));
        old_bits = new_bits;
    }
}

void
BM_SpanHash(benchmark::State &state)
{
    const Crc64LocationHasher hasher;
    const StateHasher pipeline(hasher, FpRoundMode::none());
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint8_t> data(len);
    Xoshiro256 rng(4);
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pipeline.spanHash(0x4000, data.data(), data.size()));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * static_cast<std::int64_t>(len)));
}

} // namespace

BENCHMARK_CAPTURE(BM_LocationHashByte, crc64, HasherKind::Crc64);
BENCHMARK_CAPTURE(BM_LocationHashByte, mix64, HasherKind::Mix64);
BENCHMARK_CAPTURE(BM_StoreDelta, crc64, HasherKind::Crc64);
BENCHMARK_CAPTURE(BM_StoreDelta, mix64, HasherKind::Mix64);
BENCHMARK_CAPTURE(BM_FpStoreDelta, none, FpRoundKind::None);
BENCHMARK_CAPTURE(BM_FpStoreDelta, mantissa_mask,
                  FpRoundKind::MantissaMask);
BENCHMARK_CAPTURE(BM_FpStoreDelta, decimal_floor,
                  FpRoundKind::DecimalFloor);
BENCHMARK(BM_SpanHash)->Arg(64)->Arg(1024)->Arg(16384);
