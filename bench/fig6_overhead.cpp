/**
 * @file
 * Regenerates Figure 6: instructions executed normalized to Native for
 * HW-InstantCheck-Inc, SW-InstantCheck-Inc-Ideal, and
 * SW-InstantCheck-Tr-Ideal, per application plus the geometric mean.
 *
 * Cost model (Section 7.3): software hashing costs 5 instructions per
 * byte; HW-Inc's only overhead is the Section 5 zeroing/scrubbing of
 * allocations (plus reading TH registers at checkpoints); the ideal
 * software bounds ignore instrumentation-trampoline and allocation-table
 * costs. Absolute ratios depend on the synthetic workload sizes; the
 * paper-matching *shape* is: HW overhead is negligible (fractions of a
 * percent on average), the software schemes cost integer factors, and
 * incremental-vs-traversal wins flip per application with the ratio of
 * writes between checkpoints to state size.
 *
 * The sphinx3 ignore-deletion costs (Section 7.3's 4.5X / 55X / 438X
 * discussion) are reported separately at the end.
 */

#include <cstdio>

#include "apps/app_registry.hpp"
#include "check/driver.hpp"
#include "runtime/parallel_driver.hpp"
#include "support/stats.hpp"

using namespace icheck;

namespace
{

/** One pool shared across every campaign in this figure. */
runtime::ThreadPool &
pool()
{
    // icheck-lint: allow(C1): ThreadPool is internally synchronized;
    // sharing one across campaigns is this benchmark's point.
    static runtime::ThreadPool shared;
    return shared;
}

check::DriverConfig
configFor(check::Scheme scheme, const check::IgnoreSpec &ignores)
{
    check::DriverConfig cfg;
    cfg.scheme = scheme;
    cfg.idealCostModel = true;
    cfg.runs = 5; // overhead ratios are schedule-stable; 5 runs suffice
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = true;
    cfg.ignores = ignores;
    return cfg;
}

double
overheadFactor(const apps::AppInfo &app, check::Scheme scheme,
               bool with_ignores)
{
    const check::IgnoreSpec ignores =
        with_ignores ? app.ignores : check::IgnoreSpec{};
    runtime::CampaignOptions options;
    options.pool = &pool();
    return runtime::runCampaign(configFor(scheme, ignores), app.factory,
                                options)
        .overheadFactor();
}

} // namespace

int
main()
{
    std::printf("Figure 6: instructions executed, normalized to Native "
                "(Native == 1.00)\n");
    std::printf("%-14s %10s %12s %18s %18s   %s\n", "App", "Native",
                "HW-Inc", "SW-Inc-Ideal", "SW-Tr-Ideal", "faster SW");
    std::printf("%s\n", std::string(90, '-').c_str());

    GeoMean geo_hw, geo_sw_inc, geo_sw_tr;
    for (const apps::AppInfo &app : apps::registry()) {
        // Native baseline (no checker, no instrumentation).
        check::DeterminismDriver native_driver(
            configFor(check::Scheme::HwInc, {}));
        const sim::RunResult native =
            native_driver.runNative(app.factory, /*sched_seed=*/1000);

        const double hw = overheadFactor(app, check::Scheme::HwInc,
                                         false);
        const double sw_inc = overheadFactor(app, check::Scheme::SwInc,
                                             false);
        const double sw_tr = overheadFactor(app, check::Scheme::SwTr,
                                            false);
        geo_hw.record(hw);
        geo_sw_inc.record(sw_inc);
        geo_sw_tr.record(sw_tr);

        std::printf("%-14s %10llu %11.4fx %17.2fx %17.2fx   %s\n",
                    app.name.c_str(),
                    static_cast<unsigned long long>(native.nativeInstrs),
                    hw, sw_inc, sw_tr,
                    sw_inc < sw_tr ? "incremental" : "traversal");
    }
    std::printf("%s\n", std::string(90, '-').c_str());
    std::printf("%-14s %10s %11.4fx %17.2fx %17.2fx\n", "GEOM", "",
                geo_hw.value(), geo_sw_inc.value(), geo_sw_tr.value());

    // sphinx3 with the nondeterministic scratch memory deleted from the
    // hash: deletion traverses the ignored bytes at every checkpoint.
    const apps::AppInfo &sphinx = apps::findApp("sphinx3");
    std::printf("\nsphinx3 with ignore-deletion of the nondeterministic "
                "memory (Section 7.3):\n");
    std::printf("  HW-Inc        %8.2fx\n",
                overheadFactor(sphinx, check::Scheme::HwInc, true));
    std::printf("  SW-Inc-Ideal  %8.2fx\n",
                overheadFactor(sphinx, check::Scheme::SwInc, true));
    std::printf("  SW-Tr-Ideal   %8.2fx\n",
                overheadFactor(sphinx, check::Scheme::SwTr, true));

    std::printf("\nShape checks (paper Section 7.3): HW overhead is "
                "negligible; SW schemes cost integer factors;\n"
                "SW-Inc wins when writes between checkpoints are few "
                "relative to state size (e.g. ocean, sphinx3,\n"
                "streamcluster), SW-Tr wins when writes dominate (e.g. "
                "barnes, fft, lu).\n");
    return 0;
}
