/**
 * @file
 * FP-rounding granularity ablation (sections 3.1 and 5).
 *
 * The round-off unit must be coarse enough to absorb reassociation noise
 * but fine enough not to mask real differences. This bench sweeps both
 * knobs the paper offers programmers:
 *
 *  - decimal flooring with N digits, against (a) a benign FP workload
 *    (ocean: should become deterministic once N is coarse enough) and
 *    (b) a seeded semantic bug of ~1e-1 magnitude (waterNS: must stay
 *    detected until the grain exceeds the bug's effect);
 *  - mantissa masking with M bits, same two subjects.
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "check/driver.hpp"

using namespace icheck;

namespace
{

check::DriverReport
runWith(const check::ProgramFactory &factory, hashing::FpRoundMode mode)
{
    check::DriverConfig cfg;
    cfg.runs = 12;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = true;
    cfg.machine.mhmCfg.fpMode = mode;
    check::DeterminismDriver driver(cfg);
    return driver.check(factory);
}

const char *
verdict(const check::DriverReport &report)
{
    return report.deterministic() ? "Det" : "NDet";
}

} // namespace

int
main()
{
    const auto ocean = [] { return std::make_unique<apps::Ocean>(8); };
    const auto buggy = [] {
        return std::make_unique<apps::WaterNS>(8, 48, 5,
                                               apps::BugSeed::Semantic);
    };

    std::printf("FP rounding granularity ablation (12 runs each)\n\n");
    std::printf("Decimal flooring (keep N digits):\n");
    std::printf("%8s %18s %24s\n", "N", "ocean (benign FP)",
                "waterNS+semantic (bug)");
    std::printf("%s\n", std::string(54, '-').c_str());
    for (int digits : {12, 9, 6, 3, 1, 0}) {
        const auto mode = hashing::FpRoundMode::floorDigits(digits);
        std::printf("%8d %18s %24s\n", digits,
                    verdict(runWith(ocean, mode)),
                    verdict(runWith(buggy, mode)));
    }

    std::printf("\nMantissa masking (zero M low bits of the double "
                "mantissa):\n");
    std::printf("%8s %18s %24s\n", "M", "ocean (benign FP)",
                "waterNS+semantic (bug)");
    std::printf("%s\n", std::string(54, '-').c_str());
    for (int bits : {4, 12, 24, 36, 44, 50}) {
        const auto mode = hashing::FpRoundMode::mask(bits);
        std::printf("%8d %18s %24s\n", bits,
                    verdict(runWith(ocean, mode)),
                    verdict(runWith(buggy, mode)));
    }

    std::printf("\nBenign reassociation noise (~1 ulp) is absorbed once "
                "the grain passes it; the seeded bug (~1e-1 effect)\n"
                "remains detected at every practical setting — rounding "
                "does not hide real errors (Section 5). Very coarse\n"
                "grains would eventually mask bugs too, which is why the "
                "parameters are programmer-controlled.\n");
    return 0;
}
