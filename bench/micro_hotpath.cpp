/**
 * @file
 * Hot-path throughput of the access/hash pipeline, as one machine-readable
 * number per layer (default output BENCH_hotpath.json):
 *
 *   - store-hash loop: Mhm::observeStore stores/sec (basic + clustered);
 *   - span hashing:    StateHasher::spanHash bytes/sec;
 *   - memory:          SparseMemory word access/sec and bulk bytes/sec;
 *   - end-to-end:      Machine accesses/sec, native and with the HW-Inc
 *                      checker attached.
 *
 * Usage: micro_hotpath [out.json] [--quick] [--baseline <json>]
 *
 * --quick shrinks every loop ~10x for CI smoke runs. --baseline reads a
 * previous output (e.g. one recorded at the main commit on the same host)
 * and embeds it plus per-metric speedups, so the JSON itself documents the
 * win of a hot-path change instead of leaving it a claim. Numbers are
 * host-specific; compare only files produced on one machine.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "mem/memory.hpp"
#include "mhm/mhm.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr int kReps = 3; // best-of to damp host noise

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "storeHashStoresPerSec",
    "storeHashClusteredStoresPerSec",
    "spanHashBytesPerSec",
    "memAccessesPerSec",
    "memBulkBytesPerSec",
    "machineNativeAccessesPerSec",
    "machineHwIncAccessesPerSec",
};

struct Metrics
{
    double values[7] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-kReps items/sec of @p body, which returns items done. */
template <typename Fn>
double
bestRate(Fn &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = Clock::now();
        const double items = static_cast<double>(body());
        const double secs = seconds(start);
        if (secs > 0.0 && items / secs > best)
            best = items / secs;
    }
    return best;
}

/** Mhm::observeStore throughput: 8-byte integer stores. */
double
storeHashRate(mhm::Mhm &module, std::uint64_t stores)
{
    return bestRate([&] {
        module.reset();
        module.startHashing();
        module.stopFpRounding();
        Xoshiro256 rng(1);
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < stores; ++i) {
            const Addr addr = 0x1000 + (rng.next() & 0x7ff8);
            const std::uint64_t value = rng.next() | 1;
            module.observeStore(addr, prev, value, 8,
                                hashing::ValueClass::Integer);
            prev = value;
        }
        // Fold the TH so the loop cannot be optimized out.
        volatile HashWord sink = module.th().raw();
        (void)sink;
        return stores;
    });
}

/** StateHasher::spanHash throughput over a 64 KiB buffer. */
double
spanHashRate(std::uint64_t passes)
{
    const hashing::Crc64LocationHasher hasher;
    const hashing::StateHasher pipeline(hasher,
                                        hashing::FpRoundMode::none());
    std::vector<std::uint8_t> data(64 * 1024);
    Xoshiro256 rng(2);
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next());
    return bestRate([&] {
        hashing::ModHash sum;
        for (std::uint64_t p = 0; p < passes; ++p)
            sum += pipeline.spanHash(0x4000 + p, data.data(), data.size());
        volatile HashWord sink = sum.raw();
        (void)sink;
        return passes * data.size();
    });
}

/** SparseMemory word-access throughput (one write + one read per step). */
double
memAccessRate(std::uint64_t steps)
{
    return bestRate([&] {
        mem::SparseMemory memory;
        Xoshiro256 rng(3);
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < steps; ++i) {
            const Addr addr = 0x10000 + (rng.next() & 0x3fff8);
            memory.writeValue(addr, 8, acc + i);
            acc ^= memory.readValue(addr, 8);
        }
        volatile std::uint64_t sink = acc;
        (void)sink;
        return 2 * steps;
    });
}

/** SparseMemory bulk read/write throughput over 256 KiB blocks. */
double
memBulkRate(std::uint64_t passes)
{
    std::vector<std::uint8_t> block(256 * 1024);
    Xoshiro256 rng(4);
    for (auto &byte : block)
        byte = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> back(block.size());
    return bestRate([&] {
        mem::SparseMemory memory;
        std::uint64_t bytes = 0;
        for (std::uint64_t p = 0; p < passes; ++p) {
            // Unaligned base so every pass straddles page boundaries.
            const Addr base = 0x20000 + 37 * (p % 5);
            memory.writeBytes(base, block.data(), block.size());
            memory.readBytes(base, back.data(), back.size());
            bytes += 2 * block.size();
        }
        volatile std::uint8_t sink = back[back.size() / 2];
        (void)sink;
        return bytes;
    });
}

/** A write-heavy 4-thread kernel with barrier checkpoints. */
std::unique_ptr<sim::LambdaProgram>
kernel(std::shared_ptr<sim::BarrierId> barrier_id, int phases)
{
    return std::make_unique<sim::LambdaProgram>(
        "hotpath-kernel", 4,
        [barrier_id](sim::SetupCtx &ctx) {
            ctx.global("data", mem::tArray(mem::tInt64(), 1024));
            *barrier_id = ctx.barrier(4);
        },
        [barrier_id, phases](sim::ThreadCtx &ctx) {
            const Addr data = ctx.global("data");
            for (int phase = 0; phase < phases; ++phase) {
                for (int i = 0; i < 256; ++i) {
                    const Addr slot =
                        data + 8 * ((ctx.tid() * 256 + i) % 1024);
                    ctx.store<std::int64_t>(
                        slot, ctx.load<std::int64_t>(slot) + i + 1);
                }
                ctx.barrier(*barrier_id);
            }
        });
}

/** End-to-end machine accesses/sec, optionally with a checker attached. */
double
machineRate(std::optional<check::Scheme> scheme, int runs, int phases)
{
    return bestRate([&] {
        std::uint64_t accesses = 0;
        for (int run = 0; run < runs; ++run) {
            sim::MachineConfig cfg;
            cfg.numCores = 4;
            cfg.schedSeed = 42 + run;
            if (!scheme.has_value()) {
                // The paper's baseline: an uninstrumented native run does
                // not pay for hashing at all.
                cfg.hashingArmed = false;
            }
            sim::Machine machine(cfg);
            std::unique_ptr<check::Checker> checker;
            if (scheme.has_value()) {
                checker = check::makeChecker(*scheme);
                checker->attach(machine);
                machine.setRunStartHandler([&] { checker->onRunStart(); });
                machine.setCheckpointHandler(
                    [&](const sim::CheckpointInfo &) {
                        volatile HashWord sink =
                            checker->checkpointHash().raw();
                        (void)sink;
                    });
            }
            auto barrier_id = std::make_shared<sim::BarrierId>();
            auto program = kernel(barrier_id, phases);
            const sim::RunResult result = machine.run(*program);
            accesses += result.nativeInstrs;
        }
        return accesses;
    });
}

/**
 * Extract the first occurrence of each metric key from @p path (a previous
 * output of this bench; the "current" block is emitted first, so the first
 * occurrence is the one to compare against).
 */
std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle);
        if (pos == std::string::npos) {
            std::fprintf(stderr, "baseline %s lacks %s\n", path.c_str(),
                         kKeys[i].c_str());
            return std::nullopt;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_hotpath.json";
    std::string baseline_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            out_path = arg;
        }
    }

    const std::uint64_t scale = quick ? 1 : 10;
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("micro_hotpath (%s): hardware concurrency %u\n",
                quick ? "quick" : "full", hw);

    Metrics cur;
    {
        hashing::Crc64LocationHasher hasher;
        mhm::BasicMhm basic(hasher, hashing::FpRoundMode::paperDefault());
        cur[0] = storeHashRate(basic, 200'000 * scale);
        mhm::ClusteredMhm clustered(hasher,
                                    hashing::FpRoundMode::paperDefault(),
                                    4, mhm::DispatchPolicy::RoundRobin, 1);
        cur[1] = storeHashRate(clustered, 200'000 * scale);
    }
    cur[2] = spanHashRate(16 * scale);
    cur[3] = memAccessRate(400'000 * scale);
    cur[4] = memBulkRate(8 * scale);
    cur[5] = machineRate(std::nullopt, static_cast<int>(2 * scale), 8);
    cur[6] = machineRate(check::Scheme::HwInc,
                         static_cast<int>(2 * scale), 8);

    for (std::size_t i = 0; i < kKeys.size(); ++i)
        std::printf("%34s %14.0f\n", kKeys[i].c_str(), cur[i]);

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_hotpath\",\n"
                 "  \"quick\": %s,\n"
                 "  \"hardwareConcurrency\": %u,\n",
                 quick ? "true" : "false", hw);
    emitBlock(out, "current", cur, "%.0f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.0f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] = (*base)[i] > 0.0 ? cur[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
        std::printf("speedup vs main:\n");
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            std::printf("%34s %13.2fx\n", kKeys[i].c_str(), speedup[i]);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
