/**
 * @file
 * Hot-path throughput of the access/hash pipeline, as one machine-readable
 * number per layer (default output BENCH_hotpath.json):
 *
 *   - store-hash loop: Mhm::observeStore stores/sec (basic + clustered);
 *   - span hashing:    StateHasher::spanHash bytes/sec;
 *   - memory:          SparseMemory word access/sec and bulk bytes/sec;
 *   - end-to-end:      Machine accesses/sec, native and with the HW-Inc
 *                      checker attached;
 *   - listener-attached: Machine accesses/sec with the FastTrack race
 *                      detector armed, via direct synchronous dispatch
 *                      (the pre-transport path) and via the ring event
 *                      transport with an interest mask.
 *
 * Usage: micro_hotpath [out.json] [--quick] [--baseline <json>]
 *                      [--pretransport <json>]
 *
 * --quick shrinks every loop ~10x for CI smoke runs. --baseline reads a
 * previous output (e.g. one recorded at the main commit on the same host)
 * and embeds it plus per-metric speedups, so the JSON itself documents the
 * win of a hot-path change instead of leaving it a claim. --pretransport
 * reads the pinned pre-transport baseline (the sync-dispatch path is
 * byte-for-byte that code) and emits listenerAttachedTransportWin, the
 * transport-path rate over the pinned sync rate. Numbers are
 * host-specific; compare only files produced on one machine.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "check/io_hash.hpp"
#include "hashing/location_hash.hpp"
#include "hashing/state_hash.hpp"
#include "mem/memory.hpp"
#include "mhm/mhm.hpp"
#include "race/race_detector.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "sim/transport.hpp"
#include "support/rng.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr int kReps = 3; // best-of to damp host noise

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "storeHashStoresPerSec",
    "storeHashClusteredStoresPerSec",
    "spanHashBytesPerSec",
    "memAccessesPerSec",
    "memBulkBytesPerSec",
    "machineNativeAccessesPerSec",
    "machineHwIncAccessesPerSec",
    "machineRaceSyncAccessesPerSec",
    "machineRaceTransportAccessesPerSec",
    "machineCheckSyncAccessesPerSec",
    "machineCheckTransportAccessesPerSec",
};

/** Indices of the listener-attached pairs in kKeys. */
constexpr std::size_t kRaceSync = 7;
constexpr std::size_t kRaceTransport = 8;
constexpr std::size_t kCheckSync = 9;
constexpr std::size_t kCheckTransport = 10;

struct Metrics
{
    double values[11] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-kReps items/sec of @p body, which returns items done. */
template <typename Fn>
double
bestRate(Fn &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = Clock::now();
        const double items = static_cast<double>(body());
        const double secs = seconds(start);
        if (secs > 0.0 && items / secs > best)
            best = items / secs;
    }
    return best;
}

/** Mhm::observeStore throughput: 8-byte integer stores. */
double
storeHashRate(mhm::Mhm &module, std::uint64_t stores)
{
    return bestRate([&] {
        module.reset();
        module.startHashing();
        module.stopFpRounding();
        Xoshiro256 rng(1);
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < stores; ++i) {
            const Addr addr = 0x1000 + (rng.next() & 0x7ff8);
            const std::uint64_t value = rng.next() | 1;
            module.observeStore(addr, prev, value, 8,
                                hashing::ValueClass::Integer);
            prev = value;
        }
        // Fold the TH so the loop cannot be optimized out.
        volatile HashWord sink = module.th().raw();
        (void)sink;
        return stores;
    });
}

/** StateHasher::spanHash throughput over a 64 KiB buffer. */
double
spanHashRate(std::uint64_t passes)
{
    const hashing::Crc64LocationHasher hasher;
    const hashing::StateHasher pipeline(hasher,
                                        hashing::FpRoundMode::none());
    std::vector<std::uint8_t> data(64 * 1024);
    Xoshiro256 rng(2);
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next());
    return bestRate([&] {
        hashing::ModHash sum;
        for (std::uint64_t p = 0; p < passes; ++p)
            sum += pipeline.spanHash(0x4000 + p, data.data(), data.size());
        volatile HashWord sink = sum.raw();
        (void)sink;
        return passes * data.size();
    });
}

/** SparseMemory word-access throughput (one write + one read per step). */
double
memAccessRate(std::uint64_t steps)
{
    return bestRate([&] {
        mem::SparseMemory memory;
        Xoshiro256 rng(3);
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < steps; ++i) {
            const Addr addr = 0x10000 + (rng.next() & 0x3fff8);
            memory.writeValue(addr, 8, acc + i);
            acc ^= memory.readValue(addr, 8);
        }
        volatile std::uint64_t sink = acc;
        (void)sink;
        return 2 * steps;
    });
}

/** SparseMemory bulk read/write throughput over 256 KiB blocks. */
double
memBulkRate(std::uint64_t passes)
{
    std::vector<std::uint8_t> block(256 * 1024);
    Xoshiro256 rng(4);
    for (auto &byte : block)
        byte = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> back(block.size());
    return bestRate([&] {
        mem::SparseMemory memory;
        std::uint64_t bytes = 0;
        for (std::uint64_t p = 0; p < passes; ++p) {
            // Unaligned base so every pass straddles page boundaries.
            const Addr base = 0x20000 + 37 * (p % 5);
            memory.writeBytes(base, block.data(), block.size());
            memory.readBytes(base, back.data(), back.size());
            bytes += 2 * block.size();
        }
        volatile std::uint8_t sink = back[back.size() / 2];
        (void)sink;
        return bytes;
    });
}

/** A write-heavy 4-thread kernel with barrier checkpoints. */
std::unique_ptr<sim::LambdaProgram>
kernel(std::shared_ptr<sim::BarrierId> barrier_id, int phases)
{
    return std::make_unique<sim::LambdaProgram>(
        "hotpath-kernel", 4,
        [barrier_id](sim::SetupCtx &ctx) {
            ctx.global("data", mem::tArray(mem::tInt64(), 1024));
            *barrier_id = ctx.barrier(4);
        },
        [barrier_id, phases](sim::ThreadCtx &ctx) {
            const Addr data = ctx.global("data");
            for (int phase = 0; phase < phases; ++phase) {
                for (int i = 0; i < 256; ++i) {
                    const Addr slot =
                        data + 8 * ((ctx.tid() * 256 + i) % 1024);
                    // 3 stores per load: the scatter/update shape where
                    // values-blind listeners leave the most on the table.
                    const std::int64_t v =
                        ctx.load<std::int64_t>(slot) + i + 1;
                    ctx.store<std::int64_t>(slot, v);
                    ctx.store<std::int64_t>(slot, v ^ (i << 1));
                    ctx.store<std::int64_t>(slot, v + 3);
                }
                ctx.outputValue<std::int32_t>(phase);
                ctx.barrier(*barrier_id);
            }
        });
}

/** End-to-end machine accesses/sec, optionally with a checker attached. */
double
machineRate(std::optional<check::Scheme> scheme, int runs, int phases)
{
    return bestRate([&] {
        std::uint64_t accesses = 0;
        for (int run = 0; run < runs; ++run) {
            sim::MachineConfig cfg;
            cfg.numCores = 4;
            cfg.schedSeed = 42 + run;
            if (!scheme.has_value()) {
                // The paper's baseline: an uninstrumented native run does
                // not pay for hashing at all.
                cfg.hashingArmed = false;
            }
            sim::Machine machine(cfg);
            std::unique_ptr<check::Checker> checker;
            if (scheme.has_value()) {
                checker = check::makeChecker(*scheme);
                checker->attach(machine);
                machine.setRunStartHandler([&] { checker->onRunStart(); });
                machine.setCheckpointHandler(
                    [&](const sim::CheckpointInfo &) {
                        volatile HashWord sink =
                            checker->checkpointHash().raw();
                        (void)sink;
                    });
            }
            auto barrier_id = std::make_shared<sim::BarrierId>();
            auto program = kernel(barrier_id, phases);
            const sim::RunResult result = machine.run(*program);
            accesses += result.nativeInstrs;
        }
        return accesses;
    });
}

/**
 * The listener-attached scenario: a native (hashing-off) run with the
 * FastTrack race detector armed. Synchronous dispatch is byte-for-byte
 * the pre-transport hot path; the transport path declares an interest
 * mask (the detector keys off addresses, never store values), which is
 * exactly the old-value read the producer then skips.
 */
double
machineRaceRate(bool via_transport, int runs, int phases)
{
    return bestRate([&] {
        std::uint64_t accesses = 0;
        for (int run = 0; run < runs; ++run) {
            sim::MachineConfig cfg;
            cfg.numCores = 4;
            cfg.schedSeed = 42 + run;
            cfg.hashingArmed = false;
            race::RaceDetector detector;
            sim::EventTransport transport;
            sim::Machine machine(cfg);
            if (via_transport) {
                sim::ConsumerInterest interest;
                interest.storeValues = false;
                transport.addListener(&detector, interest);
                machine.setTransport(&transport);
            } else {
                machine.addListener(&detector);
            }
            auto barrier_id = std::make_shared<sim::BarrierId>();
            auto program = kernel(barrier_id, phases);
            const sim::RunResult result = machine.run(*program);
            machine.setTransport(nullptr);
            volatile std::uint64_t sink = detector.accessesChecked();
            (void)sink;
            accesses += result.nativeInstrs;
        }
        return accesses;
    });
}

/**
 * The checker-listener scenario: hashing off, the output hasher attached
 * — exactly what a plain `icheck check` campaign run pays per run. The
 * hasher consumes only output events, but synchronous dispatch cannot
 * know that: it materializes a listener event (and the old store value)
 * for every access anyway. The transport's interest mask drops the whole
 * access stream at the producer, which is its headline end-to-end win.
 */
double
machineCheckRate(bool via_transport, int runs, int phases)
{
    return bestRate([&] {
        std::uint64_t accesses = 0;
        for (int run = 0; run < runs; ++run) {
            sim::MachineConfig cfg;
            cfg.numCores = 4;
            cfg.schedSeed = 42 + run;
            cfg.hashingArmed = false;
            check::OutputHasher hasher;
            sim::EventTransport transport;
            sim::Machine machine(cfg);
            if (via_transport) {
                sim::ConsumerInterest interest;
                interest.loads = false;
                interest.stores = false;
                interest.storeValues = false;
                transport.addListener(&hasher, interest);
                machine.setTransport(&transport);
            } else {
                machine.addListener(&hasher);
            }
            auto barrier_id = std::make_shared<sim::BarrierId>();
            auto program = kernel(barrier_id, phases);
            const sim::RunResult result = machine.run(*program);
            machine.setTransport(nullptr);
            volatile HashWord sink = hasher.value();
            (void)sink;
            accesses += result.nativeInstrs;
        }
        return accesses;
    });
}

/** Byte-identity cross-check of the checker scenario: the output hash
 *  must be the same bytes through either dispatch path. */
bool
verifyCheckEquivalence()
{
    HashWord hash[2] = {};
    std::uint64_t bytes[2] = {};
    for (int mode = 0; mode < 2; ++mode) {
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = 99;
        cfg.hashingArmed = false;
        check::OutputHasher hasher;
        sim::EventTransport transport;
        sim::Machine machine(cfg);
        if (mode == 1) {
            sim::ConsumerInterest interest;
            interest.loads = false;
            interest.stores = false;
            interest.storeValues = false;
            transport.addListener(&hasher, interest);
            machine.setTransport(&transport);
        } else {
            machine.addListener(&hasher);
        }
        auto barrier_id = std::make_shared<sim::BarrierId>();
        auto program = kernel(barrier_id, 2);
        machine.run(*program);
        machine.setTransport(nullptr);
        hash[mode] = hasher.value();
        bytes[mode] = hasher.bytes();
    }
    if (hash[0] != hash[1] || bytes[0] != bytes[1]) {
        std::fprintf(stderr,
                     "checker-listener paths diverge: hash %llx vs %llx, "
                     "%llu vs %llu bytes\n",
                     static_cast<unsigned long long>(hash[0]),
                     static_cast<unsigned long long>(hash[1]),
                     static_cast<unsigned long long>(bytes[0]),
                     static_cast<unsigned long long>(bytes[1]));
        return false;
    }
    return true;
}

/** Byte-identity cross-check: both dispatch paths must report the same
 *  races and analyze the same access count. */
bool
verifyRaceEquivalence()
{
    std::set<race::RaceRecord> races[2];
    std::uint64_t checked[2] = {};
    for (int mode = 0; mode < 2; ++mode) {
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        cfg.schedSeed = 99;
        cfg.hashingArmed = false;
        race::RaceDetector detector;
        sim::EventTransport transport;
        sim::Machine machine(cfg);
        if (mode == 1) {
            sim::ConsumerInterest interest;
            interest.storeValues = false;
            transport.addListener(&detector, interest);
            machine.setTransport(&transport);
        } else {
            machine.addListener(&detector);
        }
        auto barrier_id = std::make_shared<sim::BarrierId>();
        auto program = kernel(barrier_id, 2);
        machine.run(*program);
        machine.setTransport(nullptr);
        races[mode] = detector.races();
        checked[mode] = detector.accessesChecked();
    }
    if (races[0] != races[1] || checked[0] != checked[1]) {
        std::fprintf(stderr,
                     "listener-attached paths diverge: %zu vs %zu races, "
                     "%llu vs %llu accesses\n",
                     races[0].size(), races[1].size(),
                     static_cast<unsigned long long>(checked[0]),
                     static_cast<unsigned long long>(checked[1]));
        return false;
    }
    return true;
}

/**
 * Extract the first occurrence of each metric key from @p path (a previous
 * output of this bench; the "current" block is emitted first, so the first
 * occurrence is the one to compare against).
 */
std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle);
        if (pos == std::string::npos) {
            // Baselines pinned before a metric existed simply lack its
            // key; report a zero rate (speedup renders as 0) instead of
            // refusing the whole comparison.
            std::fprintf(stderr, "baseline %s lacks %s (treated as 0)\n",
                         path.c_str(), kKeys[i].c_str());
            base[i] = 0.0;
            continue;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_hotpath.json";
    std::string baseline_path;
    std::string pretransport_path;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--pretransport" && i + 1 < argc) {
            pretransport_path = argv[++i];
        } else {
            out_path = arg;
        }
    }

    const std::uint64_t scale = quick ? 1 : 10;
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("micro_hotpath (%s): hardware concurrency %u\n",
                quick ? "quick" : "full", hw);

    Metrics cur;
    {
        hashing::Crc64LocationHasher hasher;
        mhm::BasicMhm basic(hasher, hashing::FpRoundMode::paperDefault());
        cur[0] = storeHashRate(basic, 200'000 * scale);
        mhm::ClusteredMhm clustered(hasher,
                                    hashing::FpRoundMode::paperDefault(),
                                    4, mhm::DispatchPolicy::RoundRobin, 1);
        cur[1] = storeHashRate(clustered, 200'000 * scale);
    }
    cur[2] = spanHashRate(16 * scale);
    cur[3] = memAccessRate(400'000 * scale);
    cur[4] = memBulkRate(8 * scale);
    cur[5] = machineRate(std::nullopt, static_cast<int>(2 * scale), 8);
    cur[6] = machineRate(check::Scheme::HwInc,
                         static_cast<int>(2 * scale), 8);
    if (!verifyRaceEquivalence() || !verifyCheckEquivalence())
        return 1;
    cur[kRaceSync] =
        machineRaceRate(false, static_cast<int>(2 * scale), 8);
    cur[kRaceTransport] =
        machineRaceRate(true, static_cast<int>(2 * scale), 8);
    cur[kCheckSync] =
        machineCheckRate(false, static_cast<int>(2 * scale), 8);
    cur[kCheckTransport] =
        machineCheckRate(true, static_cast<int>(2 * scale), 8);

    for (std::size_t i = 0; i < kKeys.size(); ++i)
        std::printf("%34s %14.0f\n", kKeys[i].c_str(), cur[i]);

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }
    std::optional<Metrics> pretransport;
    if (!pretransport_path.empty()) {
        pretransport = readBaseline(pretransport_path);
        if (!pretransport.has_value())
            return 1;
    }

    // The headline of this bench: the checker-listener end-to-end rate
    // via the transport, over the synchronous-dispatch rate (the pinned
    // pre-transport baseline when given, else this binary's own). The
    // race-detector pair above is the other bound: a consumer that needs
    // the full access stream pays ring transit roughly at parity.
    const double pretransport_sync =
        pretransport.has_value() && (*pretransport)[kCheckSync] > 0.0
            ? (*pretransport)[kCheckSync]
            : cur[kCheckSync];
    const double transport_win =
        pretransport_sync > 0.0 ? cur[kCheckTransport] / pretransport_sync
                                : 0.0;
    std::printf("%34s %13.2fx\n", "listenerAttachedTransportWin",
                transport_win);

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_hotpath\",\n"
                 "  \"quick\": %s,\n"
                 "  \"hardwareConcurrency\": %u,\n"
                 "  \"listenerAttachedTransportWin\": %.2f,\n",
                 quick ? "true" : "false", hw, transport_win);
    emitBlock(out, "current", cur, "%.0f");
    if (pretransport.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "pretransportBaseline", *pretransport, "%.0f");
    }
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.0f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] = (*base)[i] > 0.0 ? cur[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
        std::printf("speedup vs main:\n");
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            std::printf("%34s %13.2fx\n", kKeys[i].c_str(), speedup[i]);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
