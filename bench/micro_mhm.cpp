/**
 * @file
 * Microbenchmarks of the MHM designs (Fig 3): the area-optimized basic
 * module vs the highly-parallel clustered module at several cluster
 * counts and dispatch policies, plus write-buffer drain-policy costs.
 */

#include <benchmark/benchmark.h>

#include "cache/write_buffer.hpp"
#include "hashing/location_hash.hpp"
#include "mhm/mhm.hpp"
#include "support/rng.hpp"

using namespace icheck;

namespace
{

void
runStream(mhm::Mhm &module, benchmark::State &state)
{
    module.startHashing();
    module.stopFpRounding();
    Xoshiro256 rng(1);
    std::uint64_t prev = 0;
    for (auto _ : state) {
        const Addr addr = 0x1000 + (rng.next() & 0xfff8);
        const std::uint64_t value = rng.next();
        module.observeStore(addr, prev, value, 8,
                            hashing::ValueClass::Integer);
        prev = value;
    }
    benchmark::DoNotOptimize(module.th());
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}

void
BM_BasicMhm(benchmark::State &state)
{
    hashing::Crc64LocationHasher hasher;
    mhm::BasicMhm module(hasher, hashing::FpRoundMode::paperDefault());
    runStream(module, state);
}

void
BM_ClusteredMhm(benchmark::State &state)
{
    hashing::Crc64LocationHasher hasher;
    mhm::ClusteredMhm module(hasher, hashing::FpRoundMode::paperDefault(),
                             static_cast<std::size_t>(state.range(0)),
                             mhm::DispatchPolicy::RoundRobin, 1);
    runStream(module, state);
}

void
BM_ClusteredMhmRandomDispatch(benchmark::State &state)
{
    hashing::Crc64LocationHasher hasher;
    mhm::ClusteredMhm module(hasher, hashing::FpRoundMode::paperDefault(),
                             8, mhm::DispatchPolicy::Random, 1);
    runStream(module, state);
}

void
BM_WriteBufferDrain(benchmark::State &state, cache::DrainPolicy policy)
{
    Xoshiro256 rng(2);
    for (auto _ : state) {
        cache::WriteBuffer wb(16, policy, 7);
        std::uint64_t sink_sum = 0;
        auto sink = [&](const cache::WriteBufferEntry &entry) {
            sink_sum += entry.vaddr() + entry.newBits;
        };
        for (int i = 0; i < 64; ++i) {
            cache::WriteBufferEntry entry;
            const Addr vaddr = 0x1000 + (rng.next() & 0xff8);
            entry.paddr = cache::translate(vaddr);
            entry.vpn = vaddr / cache::vpnPageSize;
            entry.width = 8;
            entry.newBits = rng.next();
            wb.push(entry, sink);
        }
        wb.drainAll(sink);
        benchmark::DoNotOptimize(sink_sum);
    }
}

} // namespace

BENCHMARK(BM_BasicMhm);
BENCHMARK(BM_ClusteredMhm)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ClusteredMhmRandomDispatch);
BENCHMARK_CAPTURE(BM_WriteBufferDrain, fifo, cache::DrainPolicy::Fifo);
BENCHMARK_CAPTURE(BM_WriteBufferDrain, lifo, cache::DrainPolicy::Lifo);
BENCHMARK_CAPTURE(BM_WriteBufferDrain, random,
                  cache::DrainPolicy::Random);
