/**
 * @file
 * Regenerates Table 1: determinism characteristics of the 17 workloads.
 *
 * Columns mirror the paper: application, source, FP?, deterministic
 * as-is (+ first nondeterministic run), impact of FP rounding (+ first
 * ndet run after rounding), impact of isolating small structures, number
 * of dynamic checking points (det / ndet) under the app's class
 * configuration, and determinism at program end.
 */

#include <cstdio>
#include <string>

#include "apps/characterize.hpp"

using namespace icheck;
using apps::DetClass;
using apps::Table1Row;

namespace
{

std::string
firstRun(int run)
{
    return run == 0 ? "-" : std::to_string(run);
}

std::string
impact(bool before, bool after)
{
    const auto tag = [](bool det) { return det ? "Det" : "NDet"; };
    return std::string(tag(before)) + "->" + tag(after);
}

} // namespace

int
main()
{
    std::printf("Table 1: determinism characteristics "
                "(30 runs, 8 threads, random serializing scheduler)\n");
    std::printf("%-14s %-8s %-3s %-6s %-6s %-12s %-8s %-12s %8s %8s "
                "%-6s %s\n",
                "App", "Source", "FP", "DetAsIs", "1stND",
                "FP-rounding", "1stND-FP", "IsolStructs", "DetPts",
                "NDetPts", "DetEnd", "Note");
    std::printf("%s\n", std::string(118, '-').c_str());

    apps::CharacterizeConfig config;
    config.runs = 30;
    config.jobs = 0; // fan runs out across all hardware workers

    for (const apps::AppInfo &app : apps::registry()) {
        const Table1Row row = apps::characterizeApp(app, config);

        std::string isolation = "-";
        if (row.detAfterIgnores.has_value()) {
            isolation = impact(row.detAfterFp, *row.detAfterIgnores);
        }

        // The streamcluster star: its nondeterministic barriers come from
        // the real PARSEC 2.1 bug and are masked at the program end.
        std::string det_as_is = row.detAsIs ? "Y" : "N";
        std::string note = app.note;
        if (app.name == "streamcluster" && !row.detAsIs &&
            row.bitwise.detAtEnd) {
            det_as_is = "Y*";
        }

        std::printf("%-14s %-8s %-3s %-6s %6s %-12s %8s %-12s %8llu "
                    "%8llu %-6s %s\n",
                    app.name.c_str(), app.source.c_str(),
                    app.usesFp ? "Y" : "N", det_as_is.c_str(),
                    firstRun(row.firstNdetRun).c_str(),
                    impact(row.detAsIs, row.detAfterFp).c_str(),
                    firstRun(row.firstNdetAfterFp).c_str(),
                    isolation.c_str(),
                    static_cast<unsigned long long>(row.detPoints),
                    static_cast<unsigned long long>(row.ndetPoints),
                    row.detAtEnd ? "Y" : "N", note.c_str());
    }
    std::printf("\n* streamcluster: nondeterministic barriers caused by "
                "the (real) PARSEC 2.1 order-violation bug; masked at\n"
                "  the program end for the medium input, so end-only "
                "checking would miss it (Section 7.2.1).\n");
    return 0;
}
