/**
 * @file
 * Regenerates Figure 5: distributions of nondeterminism points.
 *
 * For each highlighted application, checkpoints are grouped by the
 * distribution of distinct states observed across 30 runs; each group
 * D_k is printed as "N checkpoints x distribution". A distribution "30"
 * means determinism in all 30 runs; "16-11-3" means three distinct
 * states seen in 16, 11, and 3 runs.
 */

#include <cstdio>

#include "apps/app_registry.hpp"
#include "check/distribution.hpp"
#include "check/driver.hpp"

using namespace icheck;

namespace
{

void
printDistributions(const char *title, const check::DriverReport &report)
{
    std::printf("%s (%d runs, %zu checkpoints)\n", title, report.runs,
                report.distributions.size());
    const auto groups = check::groupDistributions(report.distributions);
    int index = 1;
    for (const auto &[dist, count] : groups) {
        std::printf("  D%-2d: %6llu checkpoints x distribution [%s]%s\n",
                    index++, static_cast<unsigned long long>(count),
                    dist.render().c_str(),
                    dist.deterministic() ? " (deterministic)" : "");
    }
    std::printf("\n");
}

check::DriverConfig
config(bool fp_rounding)
{
    check::DriverConfig cfg;
    cfg.runs = 30;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = fp_rounding;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("Figure 5: distribution of nondeterminism points\n\n");

    // (a) ocean, bit-by-bit: FP reduction noise at most barriers.
    {
        check::DeterminismDriver driver(config(false));
        printDistributions("ocean (bit-by-bit comparison)",
                           driver.check(apps::findApp("ocean").factory));
    }
    // (b) fluidanimate, bit-by-bit.
    {
        check::DeterminismDriver driver(config(false));
        printDistributions(
            "fluidanimate (bit-by-bit comparison)",
            driver.check(apps::findApp("fluidanimate").factory));
    }
    // (c) sphinx3 with FP rounding but before structure isolation: the
    // scratch nondeterminism spreads over barrier groups like the
    // paper's D_1..D_5.
    {
        check::DeterminismDriver driver(config(true));
        printDistributions(
            "sphinx3 (FP-rounded, before isolating scratch structures)",
            driver.check(apps::findApp("sphinx3").factory));
    }
    // (d) streamcluster bit-by-bit: the real-bug barriers.
    {
        check::DeterminismDriver driver(config(false));
        printDistributions(
            "streamcluster with the PARSEC 2.1 bug (bit-by-bit)",
            driver.check(apps::findApp("streamcluster").factory));
    }
    std::printf("Scattered distributions mean the probability of "
                "detecting the nondeterminism within 2-3 runs is high\n"
                "(Section 7.2.2): detection in the second or third run is "
                "not luck.\n");
    return 0;
}
