/**
 * @file
 * Snapshot/prefix-sharing throughput, as one machine-readable number per
 * layer (default output BENCH_snapshot.json):
 *
 *   - memory:   SparseMemory::fork() pages/sec (COW pointer copies) vs
 *               clone() pages/sec (full deep copy);
 *   - machine:  restore-checkpoint-then-run-suffix runs/sec vs cold
 *               re-execution of the same schedule prefix;
 *   - explorer: end-to-end explore() nodes/sec with checkpointing on
 *               vs off, on a branchy two-thread mini-workload.
 *
 * Usage: micro_snapshot [out.json] [--quick] [--baseline <json>]
 *                       [--no-checkpoints]
 *
 * --quick shrinks every loop for CI smoke runs. --baseline reads a
 * previous output (e.g. bench/baselines/snapshot_main.json, recorded
 * with --no-checkpoints to represent the pre-snapshot repo) and embeds
 * it plus per-metric speedups, so the JSON documents the win instead of
 * leaving it a claim. --no-checkpoints forces the cold path for the
 * warm metrics too — that is how the pinned baseline is produced.
 * Numbers are host-specific; compare only files from one machine.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/snapshot_tree.hpp"
#include "mem/memory.hpp"
#include "sim/lambda_program.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr int kReps = 3; // best-of to damp host noise

/** The metric keys, in emission order. */
const std::vector<std::string> kKeys = {
    "memForkPagesPerSec",
    "memClonePagesPerSec",
    "restoreSuffixRunsPerSec",
    "coldRerunRunsPerSec",
    "exploreNodesPerSecOn",
    "exploreNodesPerSecOff",
};

struct Metrics
{
    double values[6] = {};

    double &operator[](std::size_t i) { return values[i]; }
    double operator[](std::size_t i) const { return values[i]; }
};

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-kReps items/sec of @p body, which returns items done. */
template <typename Fn>
double
bestRate(Fn &&body)
{
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = Clock::now();
        const double items = static_cast<double>(body());
        const double secs = seconds(start);
        if (secs > 0.0 && items / secs > best)
            best = items / secs;
    }
    return best;
}

/** Map @p pages distinct pages with one word written to each. */
mem::SparseMemory
populatedMemory(std::size_t pages)
{
    mem::SparseMemory memory;
    for (std::size_t p = 0; p < pages; ++p)
        memory.writeValue(0x10000 + p * mem::pageSize, 8, p + 1);
    return memory;
}

/** fork() throughput in shared pages/sec (pointer copies only). */
double
memForkRate(std::size_t pages, std::uint64_t forks)
{
    mem::SparseMemory memory = populatedMemory(pages);
    return bestRate([&] {
        std::uint64_t shared = 0;
        for (std::uint64_t i = 0; i < forks; ++i) {
            mem::SparseMemory child = memory.fork();
            shared += child.mappedPages();
        }
        volatile std::uint64_t sink = shared;
        (void)sink;
        return shared;
    });
}

/** clone() throughput in deep-copied pages/sec. */
double
memCloneRate(std::size_t pages, std::uint64_t clones)
{
    mem::SparseMemory memory = populatedMemory(pages);
    return bestRate([&] {
        std::uint64_t copied = 0;
        for (std::uint64_t i = 0; i < clones; ++i) {
            mem::SparseMemory child = memory.clone();
            copied += child.mappedPages();
        }
        volatile std::uint64_t sink = copied;
        (void)sink;
        return copied;
    });
}

/**
 * The branchy mini-workload: two threads hammering a shared array with
 * no synchronization, so every quantum boundary is a real scheduling
 * decision with fanout 2 until a thread retires.
 */
check::ProgramFactory
branchyFactory()
{
    return [] {
        return std::make_unique<sim::LambdaProgram>(
            "snapshot-branchy", 2,
            [](sim::SetupCtx &ctx) {
                const Addr data =
                    ctx.global("data", mem::tArray(mem::tInt64(), 64));
                for (int i = 0; i < 64; ++i)
                    ctx.init<std::int64_t>(data + 8 * i, i);
            },
            [](sim::ThreadCtx &ctx) {
                const Addr data = ctx.global("data");
                for (int i = 0; i < 240; ++i) {
                    const Addr slot =
                        data + 8 * ((ctx.tid() * 31 + i) % 64);
                    ctx.store<std::int64_t>(
                        slot, ctx.load<std::int64_t>(slot) + 1);
                }
            });
    };
}

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numCores = 2;
    return cfg;
}

explore::ExploreConfig
exploreConfig(bool checkpoints)
{
    explore::ExploreConfig cfg;
    cfg.prune = explore::PruneMode::None;
    cfg.quantum = 4;
    cfg.checkpoints = checkpoints;
    return cfg;
}

/** A deep alternating schedule prefix (both threads stay runnable). */
std::vector<std::uint32_t>
deepPrefix(std::size_t depth)
{
    std::vector<std::uint32_t> prefix(depth);
    for (std::size_t d = 0; d < depth; ++d)
        prefix[d] = static_cast<std::uint32_t>(d % 2);
    return prefix;
}

/**
 * Restore-then-suffix runs/sec: one persistent engine re-runs the same
 * deep prefix, hitting the checkpoint taken at its tip every time, so
 * each iteration pays one restore plus the schedule suffix only.
 */
double
restoreSuffixRate(std::uint64_t runs)
{
    const check::ProgramFactory factory = branchyFactory();
    const explore::detail::SignatureInsert insert_sig =
        [](std::uint64_t) { return true; };
    explore::CheckpointTree tree(64ULL << 20);
    explore::PrefixEngine engine(factory, machineConfig(),
                                 exploreConfig(true), tree, 0);
    const std::vector<std::uint32_t> prefix = deepPrefix(200);
    engine.runOnce(prefix, insert_sig); // populate the checkpoint tree
    return bestRate([&] {
        volatile HashWord sink = 0;
        for (std::uint64_t i = 0; i < runs; ++i)
            sink = engine.runOnce(prefix, insert_sig).finalState;
        (void)sink;
        return runs;
    });
}

/** Cold re-execution of the same schedule prefix, runs/sec. */
double
coldRerunRate(std::uint64_t runs)
{
    const check::ProgramFactory factory = branchyFactory();
    const explore::detail::SignatureInsert insert_sig =
        [](std::uint64_t) { return true; };
    const explore::ExploreConfig cfg = exploreConfig(false);
    const std::vector<std::uint32_t> prefix = deepPrefix(200);
    return bestRate([&] {
        volatile HashWord sink = 0;
        for (std::uint64_t i = 0; i < runs; ++i)
            sink = explore::detail::runOnce(factory, machineConfig(), cfg,
                                            prefix, insert_sig)
                       .finalState;
        (void)sink;
        return runs;
    });
}

/** End-to-end explore() nodes (schedules) per second. */
double
exploreRate(bool checkpoints, int max_runs)
{
    const check::ProgramFactory factory = branchyFactory();
    explore::ExploreConfig cfg = exploreConfig(checkpoints);
    cfg.maxRuns = max_runs;
    return bestRate([&] {
        const explore::ExploreResult result =
            explore::explore(factory, machineConfig(), cfg);
        return result.runsExecuted;
    });
}

/**
 * Extract the first occurrence of each metric key from @p path (a
 * previous output of this bench; the "current" block is emitted first,
 * so the first occurrence is the one to compare against).
 */
std::optional<Metrics>
readBaseline(const std::string &path)
{
    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr) {
        std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), in)) > 0)
        text.append(buf, got);
    std::fclose(in);

    Metrics base;
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        const std::string needle = "\"" + kKeys[i] + "\":";
        const std::size_t pos = text.find(needle);
        if (pos == std::string::npos) {
            std::fprintf(stderr, "baseline %s lacks %s\n", path.c_str(),
                         kKeys[i].c_str());
            return std::nullopt;
        }
        base[i] = std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    return base;
}

void
emitBlock(std::FILE *out, const char *name, const Metrics &m,
          const char *fmt)
{
    std::fprintf(out, "  \"%s\": {", name);
    for (std::size_t i = 0; i < kKeys.size(); ++i) {
        std::fprintf(out, "%s\n    \"%s\": ", i == 0 ? "" : ",",
                     kKeys[i].c_str());
        std::fprintf(out, fmt, m[i]);
    }
    std::fprintf(out, "\n  }");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_snapshot.json";
    std::string baseline_path;
    bool quick = false;
    bool no_checkpoints = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--no-checkpoints") {
            no_checkpoints = true;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else {
            out_path = arg;
        }
    }

    const std::uint64_t scale = quick ? 1 : 8;
    const unsigned hw = std::thread::hardware_concurrency();
    const bool warm =
        !no_checkpoints && sim::Machine::snapshotSupported();

    std::printf("micro_snapshot (%s%s): hardware concurrency %u\n",
                quick ? "quick" : "full",
                warm ? "" : ", checkpoints off", hw);

    Metrics cur;
    cur[0] = memForkRate(512, 50 * scale);
    cur[1] = memCloneRate(512, 5 * scale);
    if (warm) {
        cur[2] = restoreSuffixRate(25 * scale);
        cur[4] = exploreRate(true, static_cast<int>(40 * scale));
    } else {
        // Pre-snapshot behaviour: every "restore" is a cold re-run and
        // exploration never shares prefixes.
        cur[2] = coldRerunRate(10 * scale);
        cur[4] = exploreRate(false, static_cast<int>(40 * scale));
    }
    cur[3] = coldRerunRate(10 * scale);
    cur[5] = exploreRate(false, static_cast<int>(40 * scale));

    for (std::size_t i = 0; i < kKeys.size(); ++i)
        std::printf("%28s %14.0f\n", kKeys[i].c_str(), cur[i]);

    std::optional<Metrics> base;
    if (!baseline_path.empty()) {
        base = readBaseline(baseline_path);
        if (!base.has_value())
            return 1;
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_snapshot\",\n"
                 "  \"quick\": %s,\n"
                 "  \"checkpointing\": %s,\n"
                 "  \"hardwareConcurrency\": %u,\n",
                 quick ? "true" : "false", warm ? "true" : "false", hw);
    emitBlock(out, "current", cur, "%.0f");
    if (base.has_value()) {
        std::fprintf(out, ",\n");
        emitBlock(out, "mainBaseline", *base, "%.0f");
        Metrics speedup;
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            speedup[i] = (*base)[i] > 0.0 ? cur[i] / (*base)[i] : 0.0;
        std::fprintf(out, ",\n");
        emitBlock(out, "speedupVsMain", speedup, "%.2f");
        std::printf("speedup vs main:\n");
        for (std::size_t i = 0; i < kKeys.size(); ++i)
            std::printf("%28s %13.2fx\n", kKeys[i].c_str(), speedup[i]);
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
