/**
 * @file
 * Serial-vs-parallel campaign throughput of the runtime subsystem.
 *
 * Runs the same determinism campaign sequentially and through the
 * parallel executor at increasing worker counts, verifies every parallel
 * DriverReport is bit-identical to the sequential one, and records
 * runs/sec plus speedup to a machine-readable JSON file (default
 * BENCH_parallel.json; override with argv[1]) so the perf trajectory is
 * trackable across PRs.
 *
 * Campaign parallelism only unlocks additional *cores*: one campaign run
 * keeps at most one host thread active at a time (the serializing
 * scheduler), so on a multi-core host throughput scales near-linearly
 * until jobs reaches the core count, while on a single-core host the
 * recorded speedup is ~1.0 by construction. The JSON therefore carries
 * hardwareConcurrency so readers can normalize.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app_registry.hpp"
#include "runtime/parallel_driver.hpp"
#include "runtime/result_sink.hpp"

using namespace icheck;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr const char *kApp = "sphinx3"; // heaviest bundled campaign
constexpr int kRuns = 24;
constexpr int kReps = 3; // best-of to damp scheduler noise

check::DriverConfig
campaignConfig()
{
    check::DriverConfig cfg;
    cfg.runs = kRuns;
    cfg.machine.numCores = 8;
    return cfg;
}

/** Bit-level equality of everything a DriverReport asserts. */
bool
identicalReports(const check::DriverReport &a, const check::DriverReport &b)
{
    if (a.records.size() != b.records.size())
        return false;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        if (a.records[i].checkpointHashes != b.records[i].checkpointHashes ||
            a.records[i].outputHash != b.records[i].outputHash ||
            a.records[i].outputBytes != b.records[i].outputBytes)
            return false;
    }
    return a.detPoints == b.detPoints && a.ndetPoints == b.ndetPoints &&
           a.firstNdetRun == b.firstNdetRun && a.detAtEnd == b.detAtEnd &&
           a.outputDeterministic == b.outputDeterministic &&
           a.checkpointCountsMatch == b.checkpointCountsMatch;
}

struct Sample
{
    double seconds = 0.0;
    double runsPerSec = 0.0;
    double utilization = 0.0;
    bool identical = true;
};

/** Best-of-kReps campaign throughput at @p jobs (0 = serial driver). */
Sample
measure(const apps::AppInfo &app, int jobs,
        const check::DriverReport *reference)
{
    Sample best;
    for (int rep = 0; rep < kReps; ++rep) {
        runtime::ResultSink sink;
        runtime::CampaignOptions options;
        options.jobs = jobs;
        options.sink = &sink;
        const auto start = Clock::now();
        const check::DriverReport report =
            runtime::runCampaign(campaignConfig(), app.factory, options);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (reference != nullptr && !identicalReports(*reference, report))
            best.identical = false;
        const double rps =
            seconds > 0.0 ? static_cast<double>(kRuns) / seconds : 0.0;
        if (rps > best.runsPerSec) {
            best.runsPerSec = rps;
            best.seconds = seconds;
            best.utilization = sink.lastCampaign().workerUtilization;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_parallel.json";
    const apps::AppInfo &app = apps::findApp(kApp);
    const unsigned hw = runtime::ThreadPool::hardwareWorkers();

    std::printf("micro_parallel: %s campaign (%d runs), hardware "
                "concurrency %u\n",
                kApp, kRuns, hw);
    std::printf("%6s %12s %10s %10s %12s\n", "jobs", "runs/sec",
                "seconds", "speedup", "identical");

    // Serial baseline through the sequential DeterminismDriver path.
    const check::DriverReport reference =
        check::DeterminismDriver(campaignConfig()).check(app.factory);
    const Sample serial = measure(app, /*jobs=*/1, &reference);
    std::printf("%6d %12.1f %10.4f %10.2fx %12s\n", 1, serial.runsPerSec,
                serial.seconds, 1.0, serial.identical ? "yes" : "NO");

    const std::vector<int> job_counts = {2, 4, 8};
    std::vector<Sample> samples;
    bool all_identical = serial.identical;
    for (const int jobs : job_counts) {
        const Sample sample = measure(app, jobs, &reference);
        samples.push_back(sample);
        all_identical = all_identical && sample.identical;
        std::printf("%6d %12.1f %10.4f %10.2fx %12s\n", jobs,
                    sample.runsPerSec, sample.seconds,
                    sample.runsPerSec / serial.runsPerSec,
                    sample.identical ? "yes" : "NO");
    }

    std::FILE *out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"micro_parallel\",\n"
                 "  \"app\": \"%s\",\n"
                 "  \"runs\": %d,\n"
                 "  \"hardwareConcurrency\": %u,\n"
                 "  \"reportsBitIdentical\": %s,\n"
                 "  \"serial\": {\"runsPerSec\": %.1f, \"seconds\": "
                 "%.4f},\n"
                 "  \"parallel\": [",
                 kApp, kRuns, hw, all_identical ? "true" : "false",
                 serial.runsPerSec, serial.seconds);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        std::fprintf(out,
                     "%s\n    {\"jobs\": %d, \"runsPerSec\": %.1f, "
                     "\"seconds\": %.4f, \"speedup\": %.2f, "
                     "\"workerUtilization\": %.3f}",
                     i == 0 ? "" : ",", job_counts[i],
                     samples[i].runsPerSec, samples[i].seconds,
                     samples[i].runsPerSec / serial.runsPerSec,
                     samples[i].utilization);
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
    return all_identical ? 0 : 1;
}
