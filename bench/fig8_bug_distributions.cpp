/**
 * @file
 * Regenerates Figure 8: distributions of nondeterminism points for the
 * three seeded bugs of Table 2. Scattered distributions (waterNS,
 * waterSP) explain fast detection; radix's less scattered distribution
 * explains why its bug takes a few more runs to surface.
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "check/distribution.hpp"
#include "check/driver.hpp"

using namespace icheck;

namespace
{

void
report(const char *title, const check::ProgramFactory &factory)
{
    check::DriverConfig cfg;
    cfg.runs = 30;
    cfg.machine.numCores = 8;
    cfg.machine.fpRoundingEnabled = true;
    check::DeterminismDriver driver(cfg);
    const check::DriverReport rep = driver.check(factory);

    std::printf("%s (first ndet run: %d)\n", title, rep.firstNdetRun);
    const auto groups = check::groupDistributions(rep.distributions);
    int index = 1;
    for (const auto &[dist, count] : groups) {
        std::printf("  D%-2d: %4llu checkpoints x [%s]%s\n", index++,
                    static_cast<unsigned long long>(count),
                    dist.render().c_str(),
                    dist.deterministic() ? " (deterministic)" : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Figure 8: distribution of nondeterminism points for the "
                "seeded bugs (30 runs)\n\n");
    report("waterNS + semantic bug", [] {
        return std::make_unique<apps::WaterNS>(8, 48, 5,
                                               apps::BugSeed::Semantic);
    });
    report("waterSP + atomicity violation", [] {
        return std::make_unique<apps::WaterSP>(
            8, 48, 4, apps::BugSeed::AtomicityViolation);
    });
    report("radix + order violation (single dynamic occurrence)", [] {
        return std::make_unique<apps::Radix>(
            8, 512, apps::BugSeed::OrderViolation);
    });
    return 0;
}
