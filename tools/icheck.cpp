/**
 * @file
 * The `icheck` command-line tool: run InstantCheck determinism campaigns
 * on the bundled workloads without writing any code.
 *
 *   icheck list
 *   icheck check <app> [--runs N] [--scheme hw|swinc|swtr]
 *                      [--no-rounding] [--no-ignores] [--seed S]
 *                      [--input dev|medium|large] [--distributions]
 *                      [--jobs N] [--jsonl FILE]
 *   icheck characterize <app> [--runs N] [--jobs N]
 *   icheck explore <app> [--runs N] [--quantum Q] [--depth D]
 *                        [--prune none|hb|state[,dpor]] [--preemptions P]
 *                        [--jobs N] [--no-checkpoints] [--stats]
 *   icheck localize <app> [--checkpoint K] [--seed-a A] [--seed-b B]
 *   icheck stats <app> [--seed S] [--input dev|medium|large]
 *   icheck infer <app> [--runs N] [--no-rounding]
 *   icheck verify [--runs N] [--jobs N]
 *   icheck serve [--socket PATH] [--store FILE] [--jobs N]
 *                [--dispatchers N] [--queue-depth N]
 *   icheck route --socket PATH (--config FILE | --backend NAME=SOCK...)
 *                [--vnodes N] [--ship sync|async]
 *                [--pull-interval-ms N]
 *
 * Campaigns fan their N seeded runs out across --jobs worker threads
 * (default: hardware concurrency); the report is bit-identical for every
 * worker count. --jsonl streams per-run records and campaign counters.
 *
 * Exit codes: 0 success / deterministic verdict, 1 nondeterminism
 * detected, 2 usage or configuration error, 3 internal error.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <system_error>
#include <vector>

#include "apps/apps.hpp"
#include "apps/characterize.hpp"
#include "apps/scales.hpp"
#include "check/distribution.hpp"
#include "check/infer.hpp"
#include "check/localize.hpp"
#include "check/report_json.hpp"
#include "check/trace_export.hpp"
#include "explore/explorer.hpp"
#include "race/race_log.hpp"
#include "runtime/parallel_driver.hpp"
#include "runtime/parallel_explore.hpp"
#include "fleet/fleet_config.hpp"
#include "fleet/router.hpp"
#include "service/daemon.hpp"
#include "service/serve_loop.hpp"
#include "support/exit_codes.hpp"
#include "support/logging.hpp"

using namespace icheck;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  icheck list\n"
        "  icheck check <app> [--runs N] [--scheme hw|swinc|swtr]\n"
        "                     [--no-rounding] [--no-ignores] [--seed S]\n"
        "                     [--input dev|medium|large]"
        " [--distributions]\n"
        "                     [--jobs N] [--jsonl FILE] [--json]\n"
        "                     [--bug semantic|atomicity|order]\n"
        "                     [--race-log FILE] [--trace FILE]\n"
        "                     [--transport off|inline|async]"
        " [--ring-capacity N]\n"
        "  icheck characterize <app> [--runs N] [--jobs N]\n"
        "  icheck explore <app> [--runs N] [--quantum Q] [--depth D]\n"
        "                       [--prune none|hb|state[,dpor]]"
        " [--preemptions P]\n"
        "                       [--jobs N] [--no-checkpoints]"
        " [--stats]\n"
        "                       [--transport] [--trace-dir DIR]\n"
        "  icheck localize <app> [--checkpoint K] [--seed-a A]"
        " [--seed-b B]\n"
        "  icheck stats <app> [--seed S] [--input dev|medium|large]\n"
        "  icheck infer <app> [--runs N] [--no-rounding]\n"
        "  icheck verify [--runs N] [--jobs N]\n"
        "  icheck serve [--socket PATH] [--store FILE] [--jobs N]\n"
        "               [--dispatchers N] [--queue-depth N]\n"
        "               [--max-line-bytes N]\n"
        "  icheck route --socket PATH (--config FILE |"
        " --backend NAME=SOCK...)\n"
        "               [--vnodes N] [--ship sync|async]\n"
        "               [--pull-interval-ms N]\n"
        "\n"
        "--jobs N fans campaign runs out over N worker threads (default:\n"
        "hardware concurrency); reports are bit-identical for any N.\n"
        "--jsonl FILE streams per-run records and campaign counters.\n"
        "--json prints the canonical one-line report (byte-identical to\n"
        "the report a serve daemon returns for the same request).\n"
        "--bug plants a known defect from the paper's Table 2 into the\n"
        "app (waterNS: semantic, waterSP: atomicity, radix: order).\n"
        "--race-log FILE appends the dynamic race detector's racing\n"
        "access pairs as JSONL, each endpoint attributed to the app\n"
        "source file:line; icheck-lint --race-log cross-checks its\n"
        "static findings against this log.\n"
        "--transport picks how run listeners receive events: `off` is\n"
        "direct synchronous dispatch, `inline` (the default) routes\n"
        "through per-core lock-free ring buffers drained at decision\n"
        "boundaries, `async` drains them on a dedicated consumer\n"
        "thread; reports are byte-identical across all modes and\n"
        "--ring-capacity values. For explore, --transport is a flag\n"
        "routing the HB/DPOR trackers the same way (forces cold runs).\n"
        "--trace FILE (check) writes a Chrome trace-event JSON of two\n"
        "representative runs — schedule slices, lock holds, barrier\n"
        "epochs, preemptions, checkpoints, and hash-divergence markers\n"
        "— loadable in chrome://tracing or Perfetto. --trace-dir DIR\n"
        "(explore) writes one such file per executed schedule.\n"
        "--prune takes one base mode (none|hb|state) plus optionally\n"
        "`dpor` (comma-separated): dynamic partial-order reduction runs\n"
        "one representative schedule per Mazurkiewicz trace; final\n"
        "states and bug findings are identical to the unreduced search.\n"
        "serve reads JSONL requests on stdin (or --socket PATH) and\n"
        "answers one JSONL response per line; --store FILE persists\n"
        "results so a restarted daemon resumes without re-running\n"
        "completed work.\n"
        "route fronts N serve backends: check requests shard by\n"
        "consistent hashing on the canonical campaign key, responses\n"
        "are byte-identical to a direct backend, and each backend's\n"
        "CRC frame log is continuously replicated so a killed\n"
        "backend's completed units resume on the survivors. --ship\n"
        "sync holds each check response until its frames are\n"
        "replicated (lossless failover); async (default) ships on a\n"
        "--pull-interval-ms timer.\n"
        "\n"
        "exit codes:\n"
        "  0  success; for check: externally deterministic\n"
        "  1  nondeterminism detected (check/verify verdict)\n"
        "  2  usage or configuration error\n"
        "  3  internal error\n");
    return ExitUsage;
}

/** Tiny flag parser: --name value / --name. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i)
            tokens.emplace_back(argv[i]);
    }

    bool
    flag(const std::string &name)
    {
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (*it == name) {
                tokens.erase(it);
                return true;
            }
        }
        return false;
    }

    std::optional<std::string>
    value(const std::string &name)
    {
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (*it == name && std::next(it) != tokens.end()) {
                const std::string v = *std::next(it);
                tokens.erase(it, std::next(it, 2));
                return v;
            }
        }
        return std::nullopt;
    }

    std::uint64_t
    number(const std::string &name, std::uint64_t fallback)
    {
        if (const auto v = value(name))
            return std::strtoull(v->c_str(), nullptr, 10);
        return fallback;
    }

    bool leftovers() const { return !tokens.empty(); }

  private:
    std::vector<std::string> tokens;
};

int
cmdList()
{
    std::printf("%-14s %-9s %-3s %-13s %s\n", "App", "Source", "FP",
                "Class", "Notes");
    for (const apps::AppInfo &app : apps::registry()) {
        std::printf("%-14s %-9s %-3s %-13s %s\n", app.name.c_str(),
                    app.source.c_str(), app.usesFp ? "Y" : "N",
                    apps::detClassName(app.expected).c_str(),
                    app.note.c_str());
    }
    return 0;
}

check::TransportMode
parseTransport(const std::string &name)
{
    if (name == "off")
        return check::TransportMode::Off;
    if (name == "inline")
        return check::TransportMode::Inline;
    if (name == "async")
        return check::TransportMode::Async;
    ICHECK_FATAL("unknown transport mode '", name,
                 "' (off | inline | async)");
}

check::Scheme
parseScheme(const std::string &name)
{
    if (name == "hw")
        return check::Scheme::HwInc;
    if (name == "swinc")
        return check::Scheme::SwInc;
    if (name == "swtr")
        return check::Scheme::SwTr;
    ICHECK_FATAL("unknown scheme '", name, "' (hw | swinc | swtr)");
}

apps::InputScale
parseScale(const std::string &name)
{
    if (name == "dev")
        return apps::InputScale::Dev;
    if (name == "medium")
        return apps::InputScale::Medium;
    if (name == "large")
        return apps::InputScale::Large;
    ICHECK_FATAL("unknown input scale '", name,
                 "' (dev | medium | large)");
}

apps::BugSeed
parseBug(const std::string &name)
{
    if (name == "semantic")
        return apps::BugSeed::Semantic;
    if (name == "atomicity")
        return apps::BugSeed::AtomicityViolation;
    if (name == "order")
        return apps::BugSeed::OrderViolation;
    ICHECK_FATAL("unknown bug seed '", name,
                 "' (semantic | atomicity | order)");
}

/** Factory for the Table 2 bug-seeded variant of @p app. */
check::ProgramFactory
seededFactory(const std::string &app, apps::BugSeed bug)
{
    if (app == "waterNS")
        return [bug] {
            return std::make_unique<apps::WaterNS>(8, 48, 5, bug);
        };
    if (app == "waterSP")
        return [bug] {
            return std::make_unique<apps::WaterSP>(8, 48, 4, bug);
        };
    if (app == "radix")
        return [bug] { return std::make_unique<apps::Radix>(8, 512, bug); };
    ICHECK_FATAL("--bug is seeded into waterNS, waterSP, or radix; not '",
                 app, "'");
}

int
cmdCheck(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    check::DriverConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 30));
    cfg.scheme = parseScheme(
        args.value("--scheme").value_or("hw"));
    cfg.machine.fpRoundingEnabled = !args.flag("--no-rounding");
    cfg.baseSchedSeed = args.number("--seed", 1000);
    cfg.transport = parseTransport(
        args.value("--transport").value_or("inline"));
    cfg.transportRingCapacity =
        static_cast<std::size_t>(args.number("--ring-capacity", 1024));
    if (cfg.transportRingCapacity < 1)
        ICHECK_FATAL("--ring-capacity must be at least 1");
    if (!args.flag("--no-ignores"))
        cfg.ignores = app.ignores;
    const bool show_distributions = args.flag("--distributions");
    const bool json_report = args.flag("--json");
    const apps::InputScale scale =
        parseScale(args.value("--input").value_or("medium"));
    const int jobs = static_cast<int>(args.number("--jobs", 0));
    const std::optional<std::string> jsonl_path = args.value("--jsonl");
    const std::optional<std::string> bug_name = args.value("--bug");
    const std::optional<std::string> race_log_path =
        args.value("--race-log");
    const std::optional<std::string> trace_path = args.value("--trace");
    if (args.leftovers())
        return usage();

    const check::ProgramFactory factory =
        bug_name ? seededFactory(app.name, parseBug(*bug_name))
                 : apps::scaledFactory(app.name, scale);

    std::ofstream jsonl_stream;
    if (jsonl_path.has_value()) {
        jsonl_stream.open(*jsonl_path, std::ios::app);
        if (!jsonl_stream)
            ICHECK_FATAL("cannot open --jsonl file '", *jsonl_path, "'");
    }
    runtime::ResultSink sink(jsonl_path ? &jsonl_stream : nullptr);
    runtime::CampaignOptions options;
    options.jobs = jobs;
    options.sink = &sink;
    const check::DriverReport report =
        runtime::runCampaign(cfg, factory, options);

    // The race log is a side artifact: it reruns the campaign's seeds
    // under the happens-before detector with source attribution armed,
    // and never changes the determinism verdict or exit code.
    if (race_log_path.has_value()) {
        std::ofstream race_stream(*race_log_path, std::ios::app);
        if (!race_stream)
            ICHECK_FATAL("cannot open --race-log file '", *race_log_path,
                         "'");
        const int races = race::exportRaceLog(
            factory, cfg.machine, cfg.runs, cfg.baseSchedSeed, app.name,
            race_stream);
        std::fprintf(stderr,
                     "icheck: %d attributed race(s) appended to %s\n",
                     races, race_log_path->c_str());
    }

    // --trace is the same kind of side artifact: re-run two
    // representative seeds with the Chrome trace builder attached and
    // write one file chrome://tracing / Perfetto loads directly.
    if (trace_path.has_value()) {
        const check::TraceExportResult traced =
            check::exportCampaignTrace(cfg, factory, report, *trace_path);
        std::fprintf(stderr,
                     "icheck: traced %d run(s), %d hash divergence(s), "
                     "written to %s\n",
                     traced.runsTraced, traced.divergences,
                     trace_path->c_str());
    }

    if (json_report) {
        // The canonical renderer is shared with the serve daemon: the
        // same request produces these exact bytes either way.
        std::printf("%s\n", check::renderReportJson(report).c_str());
        return report.deterministic() ? ExitOk : ExitNondeterminism;
    }

    std::printf("%s under %s (%d runs, rounding %s, ignores %s)\n",
                app.name.c_str(), report.scheme.c_str(), report.runs,
                cfg.machine.fpRoundingEnabled ? "on" : "off",
                cfg.ignores.empty() ? "off" : "on");
    std::printf("  verdict: %s\n",
                report.deterministic()
                    ? "externally DETERMINISTIC (within coverage)"
                    : "NONDETERMINISTIC");
    if (report.firstNdetRun)
        std::printf("  first nondeterministic run: %d\n",
                    report.firstNdetRun);
    std::printf("  checking points: %llu det, %llu ndet; end %s; "
                "output %s\n",
                static_cast<unsigned long long>(report.detPoints),
                static_cast<unsigned long long>(report.ndetPoints),
                report.detAtEnd ? "det" : "NDET",
                report.outputDeterministic ? "det" : "NDET");
    std::printf("  overhead: %.3f%% over native (%.0f native instrs "
                "per run)\n",
                (report.overheadFactor() - 1.0) * 100.0,
                report.avgNativeInstrs);
    if (show_distributions) {
        const auto groups =
            check::groupDistributions(report.distributions);
        int index = 1;
        for (const auto &[dist, count] : groups) {
            std::printf("  D%-2d: %6llu checkpoints x [%s]\n", index++,
                        static_cast<unsigned long long>(count),
                        dist.render().c_str());
        }
    }
    return report.deterministic() ? 0 : 1;
}

int
cmdCharacterize(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    apps::CharacterizeConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 30));
    cfg.jobs = static_cast<int>(args.number("--jobs", 0));
    if (args.leftovers())
        return usage();
    const apps::Table1Row row = apps::characterizeApp(app, cfg);
    std::printf("%s (%s): expected class %s\n", app.name.c_str(),
                app.source.c_str(),
                apps::detClassName(app.expected).c_str());
    const std::string first_ndet =
        row.firstNdetRun ? " (first ndet run " +
                               std::to_string(row.firstNdetRun) + ")"
                         : std::string{};
    std::printf("  bit-by-bit:          %s%s\n",
                row.detAsIs ? "Det" : "NDet", first_ndet.c_str());
    std::printf("  with FP rounding:    %s\n",
                row.detAfterFp ? "Det" : "NDet");
    if (row.detAfterIgnores.has_value())
        std::printf("  isolating structs:   %s\n",
                    *row.detAfterIgnores ? "Det" : "NDet");
    std::printf("  checking points:     %llu det / %llu ndet, end %s\n",
                static_cast<unsigned long long>(row.detPoints),
                static_cast<unsigned long long>(row.ndetPoints),
                row.detAtEnd ? "det" : "NDET");
    return 0;
}

/**
 * Parse the --prune spec: comma-separated tokens, at most one base mode
 * (none | hb | state) plus optionally `dpor` (composable with any base).
 * A bare "dpor" means "none,dpor".
 */
void
parsePrune(const std::string &spec, explore::ExploreConfig &cfg)
{
    bool base_set = false;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string name = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        if (name == "dpor") {
            cfg.dpor = true;
        } else {
            if (base_set)
                ICHECK_FATAL("--prune allows one base mode, got a second: '",
                             name, "'");
            if (name == "none")
                cfg.prune = explore::PruneMode::None;
            else if (name == "hb")
                cfg.prune = explore::PruneMode::HappensBefore;
            else if (name == "state")
                cfg.prune = explore::PruneMode::StateHash;
            else
                ICHECK_FATAL("unknown prune mode '", name,
                             "' (none | hb | state | dpor, comma-separated)");
            base_set = true;
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    // A bare "dpor" keeps the default base mode of none: DPOR's own
    // reduction is exact, so layering state pruning on top is opt-in.
    if (cfg.dpor && !base_set)
        cfg.prune = explore::PruneMode::None;
}

int
cmdExplore(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    explore::ExploreConfig cfg;
    cfg.maxRuns = static_cast<int>(args.number("--runs", 200));
    cfg.quantum = args.number("--quantum", 16);
    cfg.maxDepth = args.number("--depth", 24);
    parsePrune(args.value("--prune").value_or("state"), cfg);
    if (const auto p = args.value("--preemptions"))
        cfg.maxPreemptions = std::strtoull(p->c_str(), nullptr, 10);
    cfg.checkpoints = !args.flag("--no-checkpoints");
    cfg.transport = args.flag("--transport");
    if (const auto trace_dir = args.value("--trace-dir")) {
        cfg.traceDir = *trace_dir;
        std::error_code ec;
        std::filesystem::create_directories(cfg.traceDir, ec);
        if (ec)
            ICHECK_FATAL("cannot create --trace-dir '", cfg.traceDir,
                         "': ", ec.message());
    }
    const int jobs = static_cast<int>(args.number("--jobs", 1));
    const bool show_stats = args.flag("--stats");
    if (args.leftovers())
        return usage();

    sim::MachineConfig mc;
    mc.numCores = 2;
    const explore::ExploreResult result =
        jobs == 1
            ? explore::explore(app.factory, mc, cfg)
            : runtime::exploreParallel(app.factory, mc, cfg, jobs);

    std::printf("%s: %d schedules explored (%s), %zu final state%s\n",
                app.name.c_str(), result.runsExecuted,
                result.exhausted ? "exhausted" : "budget reached",
                result.finalStates.size(),
                result.finalStates.size() == 1 ? "" : "s");
    std::printf("  branches pruned %llu, bounded out %llu\n",
                static_cast<unsigned long long>(result.branchesPruned),
                static_cast<unsigned long long>(
                    result.branchesBoundedOut));
    if (show_stats)
        std::printf("%s\n",
                    explore::renderStatsJson(result.stats).c_str());
    return 0;
}

int
cmdInfer(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const int runs = static_cast<int>(args.number("--runs", 8));
    sim::MachineConfig mc;
    mc.numCores = 8;
    mc.fpRoundingEnabled = !args.flag("--no-rounding");
    if (args.leftovers())
        return usage();
    const check::InferenceResult result =
        check::inferIgnores(app.factory, mc, runs);
    if (result.empty()) {
        std::printf("%s: no nondeterministic structures found over %d "
                    "comparisons\n",
                    app.name.c_str(), result.comparisons);
        return 0;
    }
    std::printf("%s: nondeterministic structures (from %d "
                "comparisons):\n",
                app.name.c_str(), result.comparisons);
    for (const check::DiffSite &site : result.evidence) {
        std::printf("  %-30s %-12s offsets [%zu, %zu]  %llu bytes\n",
                    site.owner.c_str(), site.type.c_str(), site.offsetLo,
                    site.offsetHi,
                    static_cast<unsigned long long>(site.bytes));
    }
    std::printf("proposed ignore spec:\n");
    for (const std::string &site : result.spec.sites)
        std::printf("  site   %s\n", site.c_str());
    for (const std::string &name : result.spec.globals)
        std::printf("  global %s\n", name.c_str());
    return 0;
}

int
cmdStats(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const std::uint64_t seed = args.number("--seed", 1000);
    const apps::InputScale scale =
        parseScale(args.value("--input").value_or("medium"));
    if (args.leftovers())
        return usage();
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = seed;
    sim::Machine machine(cfg);
    machine.setInstrumentation(true);
    auto program = apps::scaledFactory(app.name, scale)();
    machine.run(*program);
    std::printf("%s", machine.renderStats().c_str());
    return 0;
}

/**
 * Release gate: re-derive every workload's determinism class and compare
 * against the registry's expectation (i.e., against Table 1).
 */
int
cmdVerify(Args &args)
{
    apps::CharacterizeConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 12));
    cfg.jobs = static_cast<int>(args.number("--jobs", 0));
    if (args.leftovers())
        return usage();
    int failures = 0;
    for (const apps::AppInfo &app : apps::registry()) {
        const apps::Table1Row row = apps::characterizeApp(app, cfg);
        apps::DetClass measured;
        if (row.detAsIs) {
            measured = apps::DetClass::BitByBit;
        } else if (row.detAfterFp) {
            measured = apps::DetClass::FpRounding;
        } else if (row.detAfterIgnores.value_or(false)) {
            measured = apps::DetClass::SmallStruct;
        } else {
            measured = apps::DetClass::NonDet;
        }
        // streamcluster ships with the real bug: bitwise-nondet at
        // internal barriers yet classified bit-by-bit (Table 1's star).
        const bool streamcluster_star =
            app.name == "streamcluster" &&
            app.expected == apps::DetClass::BitByBit &&
            row.bitwise.detAtEnd && row.bitwise.outputDeterministic;
        const bool ok =
            measured == app.expected || streamcluster_star;
        std::printf("%-14s expected %-13s measured %-13s %s\n",
                    app.name.c_str(),
                    apps::detClassName(app.expected).c_str(),
                    apps::detClassName(measured).c_str(),
                    ok ? "OK" : "MISMATCH");
        failures += ok ? 0 : 1;
    }
    if (failures == 0)
        std::printf("all %zu workloads match Table 1\n",
                    apps::registry().size());
    return failures == 0 ? 0 : 1;
}

int
cmdLocalize(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const std::uint64_t checkpoint = args.number("--checkpoint", 0);
    const std::uint64_t seed_a = args.number("--seed-a", 1000);
    const std::uint64_t seed_b = args.number("--seed-b", 1001);
    if (args.leftovers())
        return usage();
    sim::MachineConfig mc;
    mc.numCores = 8;
    const check::LocalizeReport report = check::localizeNondeterminism(
        app.factory, mc, seed_a, seed_b, checkpoint);
    std::printf("%s: %llu differing bytes at checkpoint %llu "
                "(seeds %llu vs %llu)\n",
                app.name.c_str(),
                static_cast<unsigned long long>(report.totalDiffBytes),
                static_cast<unsigned long long>(checkpoint),
                static_cast<unsigned long long>(seed_a),
                static_cast<unsigned long long>(seed_b));
    for (const check::DiffSite &site : report.sites) {
        std::printf("  %-30s %-12s offsets [%zu, %zu]  %llu bytes\n",
                    site.owner.c_str(), site.type.c_str(), site.offsetLo,
                    site.offsetHi,
                    static_cast<unsigned long long>(site.bytes));
    }
    if (report.sites.empty())
        std::printf("  (states identical at this checkpoint)\n");
    return 0;
}

// icheck-lint: allow(C1): sig_atomic_t flag is the only state a signal
// handler may legally touch; it is read-only outside the handler.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void
handleShutdownSignal(int)
{
    g_shutdown_requested = 1;
}

int
cmdServe(Args &args)
{
    service::ServiceConfig cfg;
    cfg.jobs = static_cast<int>(args.number("--jobs", 0));
    cfg.dispatchers = static_cast<int>(args.number("--dispatchers", 2));
    cfg.queueDepth =
        static_cast<std::size_t>(args.number("--queue-depth", 64));
    cfg.maxLineBytes = static_cast<std::size_t>(
        args.number("--max-line-bytes", 64 * 1024));
    if (const auto store_path = args.value("--store"))
        cfg.storePath = *store_path;
    const std::optional<std::string> socket_path = args.value("--socket");
    if (args.leftovers())
        return usage();
    if (cfg.dispatchers < 1 || cfg.dispatchers > 64)
        ICHECK_FATAL("--dispatchers must be in [1, 64]");
    if (cfg.queueDepth < 1 || cfg.queueDepth > 65536)
        ICHECK_FATAL("--queue-depth must be in [1, 65536]");

    // SIGTERM/SIGINT begin a graceful drain: in-flight campaigns finish
    // (their units land in the store), then the daemon exits. SIGPIPE
    // is ignored so a client vanishing mid-response surfaces as EPIPE
    // on that connection instead of killing every other client's work.
    std::signal(SIGTERM, handleShutdownSignal);
    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGPIPE, SIG_IGN);

    service::Service daemon(cfg);
    if (socket_path.has_value())
        return service::serveSocket(daemon, *socket_path,
                                    &g_shutdown_requested);
    return service::servePipe(daemon, std::cin, std::cout,
                              &g_shutdown_requested);
}

int
cmdRoute(Args &args)
{
    const std::optional<std::string> socket_path = args.value("--socket");
    if (!socket_path.has_value())
        ICHECK_FATAL("route requires --socket PATH to listen on");

    fleet::FleetTopology topology;
    if (const auto config_path = args.value("--config")) {
        std::ifstream in(*config_path);
        if (!in)
            ICHECK_FATAL("cannot open --config file '", *config_path,
                         "'");
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const fleet::ParsedFleetConfig parsed =
            fleet::parseFleetConfig(text);
        if (!parsed.ok())
            ICHECK_FATAL("--config ", *config_path, ": ", parsed.error);
        topology = *parsed.topology;
    } else {
        while (const auto backend = args.value("--backend")) {
            const std::size_t eq = backend->find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 == backend->size())
                ICHECK_FATAL("--backend expects NAME=SOCKET, got '",
                             *backend, "'");
            topology.backends.push_back(fleet::BackendAddress{
                backend->substr(0, eq), backend->substr(eq + 1)});
        }
        if (topology.backends.empty())
            ICHECK_FATAL(
                "route needs --config FILE or at least one "
                "--backend NAME=SOCKET");
    }

    if (const auto vnodes = args.value("--vnodes")) {
        const std::uint64_t n =
            std::strtoull(vnodes->c_str(), nullptr, 10);
        if (n < 1 || n > 1024)
            ICHECK_FATAL("--vnodes must be in [1, 1024]");
        topology.vnodes = static_cast<std::size_t>(n);
    }
    if (const auto ship = args.value("--ship")) {
        if (*ship != "sync" && *ship != "async")
            ICHECK_FATAL("--ship must be sync or async, got '", *ship,
                         "'");
        topology.syncShip = *ship == "sync";
    }
    if (const auto interval = args.value("--pull-interval-ms")) {
        const std::uint64_t n =
            std::strtoull(interval->c_str(), nullptr, 10);
        if (n < 1 || n > 60000)
            ICHECK_FATAL("--pull-interval-ms must be in [1, 60000]");
        topology.pullIntervalMs = static_cast<int>(n);
    }
    if (args.leftovers())
        return usage();

    // Same graceful story as serve: SIGTERM/SIGINT stop accepting and
    // tear the fleet links down; an explicit client `drain` ships every
    // backend's log tail and drains the whole fleet first. SIGPIPE is
    // ignored: a SIGKILLed backend or a vanished client must surface
    // as EPIPE on that one link (the failover path), not kill the
    // router and every in-flight request with it.
    std::signal(SIGTERM, handleShutdownSignal);
    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGPIPE, SIG_IGN);

    fleet::Router router(std::move(topology), *socket_path);
    if (!router.start())
        return ExitInternal;
    return router.serve(&g_shutdown_requested);
}

int
dispatch(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "verify") {
        Args args(argc, argv, 2);
        return cmdVerify(args);
    }
    if (command == "serve") {
        Args args(argc, argv, 2);
        return cmdServe(args);
    }
    if (command == "route") {
        Args args(argc, argv, 2);
        return cmdRoute(args);
    }
    if (argc < 3)
        return usage();
    const std::string app_name = argv[2];
    Args args(argc, argv, 3);
    if (command == "check")
        return cmdCheck(app_name, args);
    if (command == "characterize")
        return cmdCharacterize(app_name, args);
    if (command == "explore")
        return cmdExplore(app_name, args);
    if (command == "localize")
        return cmdLocalize(app_name, args);
    if (command == "stats")
        return cmdStats(app_name, args);
    if (command == "infer")
        return cmdInfer(app_name, args);
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return dispatch(argc, argv);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "icheck: internal error: %s\n",
                     error.what());
        return ExitInternal;
    }
}
