/**
 * @file
 * The `icheck` command-line tool: run InstantCheck determinism campaigns
 * on the bundled workloads without writing any code.
 *
 *   icheck list
 *   icheck check <app> [--runs N] [--scheme hw|swinc|swtr]
 *                      [--no-rounding] [--no-ignores] [--seed S]
 *                      [--input dev|medium|large] [--distributions]
 *                      [--jobs N] [--jsonl FILE]
 *   icheck characterize <app> [--runs N] [--jobs N]
 *   icheck explore <app> [--runs N] [--quantum Q] [--depth D]
 *                        [--prune none|hb|state] [--preemptions P]
 *                        [--jobs N] [--no-checkpoints] [--stats]
 *   icheck localize <app> [--checkpoint K] [--seed-a A] [--seed-b B]
 *   icheck stats <app> [--seed S] [--input dev|medium|large]
 *   icheck infer <app> [--runs N] [--no-rounding]
 *   icheck verify [--runs N] [--jobs N]
 *
 * Campaigns fan their N seeded runs out across --jobs worker threads
 * (default: hardware concurrency); the report is bit-identical for every
 * worker count. --jsonl streams per-run records and campaign counters.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "apps/characterize.hpp"
#include "apps/scales.hpp"
#include "check/distribution.hpp"
#include "check/infer.hpp"
#include "check/localize.hpp"
#include "explore/explorer.hpp"
#include "runtime/parallel_driver.hpp"
#include "runtime/parallel_explore.hpp"
#include "support/logging.hpp"

using namespace icheck;

namespace
{

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  icheck list\n"
        "  icheck check <app> [--runs N] [--scheme hw|swinc|swtr]\n"
        "                     [--no-rounding] [--no-ignores] [--seed S]\n"
        "                     [--input dev|medium|large]"
        " [--distributions]\n"
        "                     [--jobs N] [--jsonl FILE]\n"
        "  icheck characterize <app> [--runs N] [--jobs N]\n"
        "  icheck explore <app> [--runs N] [--quantum Q] [--depth D]\n"
        "                       [--prune none|hb|state]"
        " [--preemptions P]\n"
        "                       [--jobs N] [--no-checkpoints]"
        " [--stats]\n"
        "  icheck localize <app> [--checkpoint K] [--seed-a A]"
        " [--seed-b B]\n"
        "  icheck stats <app> [--seed S] [--input dev|medium|large]\n"
        "  icheck infer <app> [--runs N] [--no-rounding]\n"
        "  icheck verify [--runs N] [--jobs N]\n"
        "\n"
        "--jobs N fans campaign runs out over N worker threads (default:\n"
        "hardware concurrency); reports are bit-identical for any N.\n"
        "--jsonl FILE streams per-run records and campaign counters.\n");
    return 2;
}

/** Tiny flag parser: --name value / --name. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i)
            tokens.emplace_back(argv[i]);
    }

    bool
    flag(const std::string &name)
    {
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (*it == name) {
                tokens.erase(it);
                return true;
            }
        }
        return false;
    }

    std::optional<std::string>
    value(const std::string &name)
    {
        for (auto it = tokens.begin(); it != tokens.end(); ++it) {
            if (*it == name && std::next(it) != tokens.end()) {
                const std::string v = *std::next(it);
                tokens.erase(it, std::next(it, 2));
                return v;
            }
        }
        return std::nullopt;
    }

    std::uint64_t
    number(const std::string &name, std::uint64_t fallback)
    {
        if (const auto v = value(name))
            return std::strtoull(v->c_str(), nullptr, 10);
        return fallback;
    }

    bool leftovers() const { return !tokens.empty(); }

  private:
    std::vector<std::string> tokens;
};

int
cmdList()
{
    std::printf("%-14s %-9s %-3s %-13s %s\n", "App", "Source", "FP",
                "Class", "Notes");
    for (const apps::AppInfo &app : apps::registry()) {
        std::printf("%-14s %-9s %-3s %-13s %s\n", app.name.c_str(),
                    app.source.c_str(), app.usesFp ? "Y" : "N",
                    apps::detClassName(app.expected).c_str(),
                    app.note.c_str());
    }
    return 0;
}

check::Scheme
parseScheme(const std::string &name)
{
    if (name == "hw")
        return check::Scheme::HwInc;
    if (name == "swinc")
        return check::Scheme::SwInc;
    if (name == "swtr")
        return check::Scheme::SwTr;
    ICHECK_FATAL("unknown scheme '", name, "' (hw | swinc | swtr)");
}

apps::InputScale
parseScale(const std::string &name)
{
    if (name == "dev")
        return apps::InputScale::Dev;
    if (name == "medium")
        return apps::InputScale::Medium;
    if (name == "large")
        return apps::InputScale::Large;
    ICHECK_FATAL("unknown input scale '", name,
                 "' (dev | medium | large)");
}

int
cmdCheck(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    check::DriverConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 30));
    cfg.scheme = parseScheme(
        args.value("--scheme").value_or("hw"));
    cfg.machine.fpRoundingEnabled = !args.flag("--no-rounding");
    cfg.baseSchedSeed = args.number("--seed", 1000);
    if (!args.flag("--no-ignores"))
        cfg.ignores = app.ignores;
    const bool show_distributions = args.flag("--distributions");
    const apps::InputScale scale =
        parseScale(args.value("--input").value_or("medium"));
    const int jobs = static_cast<int>(args.number("--jobs", 0));
    const std::optional<std::string> jsonl_path = args.value("--jsonl");
    if (args.leftovers())
        return usage();

    std::ofstream jsonl_stream;
    if (jsonl_path.has_value()) {
        jsonl_stream.open(*jsonl_path, std::ios::app);
        if (!jsonl_stream)
            ICHECK_FATAL("cannot open --jsonl file '", *jsonl_path, "'");
    }
    runtime::ResultSink sink(jsonl_path ? &jsonl_stream : nullptr);
    runtime::CampaignOptions options;
    options.jobs = jobs;
    options.sink = &sink;
    const check::DriverReport report = runtime::runCampaign(
        cfg, apps::scaledFactory(app.name, scale), options);

    std::printf("%s under %s (%d runs, rounding %s, ignores %s)\n",
                app.name.c_str(), report.scheme.c_str(), report.runs,
                cfg.machine.fpRoundingEnabled ? "on" : "off",
                cfg.ignores.empty() ? "off" : "on");
    std::printf("  verdict: %s\n",
                report.deterministic()
                    ? "externally DETERMINISTIC (within coverage)"
                    : "NONDETERMINISTIC");
    if (report.firstNdetRun)
        std::printf("  first nondeterministic run: %d\n",
                    report.firstNdetRun);
    std::printf("  checking points: %llu det, %llu ndet; end %s; "
                "output %s\n",
                static_cast<unsigned long long>(report.detPoints),
                static_cast<unsigned long long>(report.ndetPoints),
                report.detAtEnd ? "det" : "NDET",
                report.outputDeterministic ? "det" : "NDET");
    std::printf("  overhead: %.3f%% over native (%.0f native instrs "
                "per run)\n",
                (report.overheadFactor() - 1.0) * 100.0,
                report.avgNativeInstrs);
    if (show_distributions) {
        const auto groups =
            check::groupDistributions(report.distributions);
        int index = 1;
        for (const auto &[dist, count] : groups) {
            std::printf("  D%-2d: %6llu checkpoints x [%s]\n", index++,
                        static_cast<unsigned long long>(count),
                        dist.render().c_str());
        }
    }
    return report.deterministic() ? 0 : 1;
}

int
cmdCharacterize(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    apps::CharacterizeConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 30));
    cfg.jobs = static_cast<int>(args.number("--jobs", 0));
    if (args.leftovers())
        return usage();
    const apps::Table1Row row = apps::characterizeApp(app, cfg);
    std::printf("%s (%s): expected class %s\n", app.name.c_str(),
                app.source.c_str(),
                apps::detClassName(app.expected).c_str());
    const std::string first_ndet =
        row.firstNdetRun ? " (first ndet run " +
                               std::to_string(row.firstNdetRun) + ")"
                         : std::string{};
    std::printf("  bit-by-bit:          %s%s\n",
                row.detAsIs ? "Det" : "NDet", first_ndet.c_str());
    std::printf("  with FP rounding:    %s\n",
                row.detAfterFp ? "Det" : "NDet");
    if (row.detAfterIgnores.has_value())
        std::printf("  isolating structs:   %s\n",
                    *row.detAfterIgnores ? "Det" : "NDet");
    std::printf("  checking points:     %llu det / %llu ndet, end %s\n",
                static_cast<unsigned long long>(row.detPoints),
                static_cast<unsigned long long>(row.ndetPoints),
                row.detAtEnd ? "det" : "NDET");
    return 0;
}

explore::PruneMode
parsePrune(const std::string &name)
{
    if (name == "none")
        return explore::PruneMode::None;
    if (name == "hb")
        return explore::PruneMode::HappensBefore;
    if (name == "state")
        return explore::PruneMode::StateHash;
    ICHECK_FATAL("unknown prune mode '", name, "' (none | hb | state)");
}

int
cmdExplore(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    explore::ExploreConfig cfg;
    cfg.maxRuns = static_cast<int>(args.number("--runs", 200));
    cfg.quantum = args.number("--quantum", 16);
    cfg.maxDepth = args.number("--depth", 24);
    cfg.prune = parsePrune(args.value("--prune").value_or("state"));
    if (const auto p = args.value("--preemptions"))
        cfg.maxPreemptions = std::strtoull(p->c_str(), nullptr, 10);
    cfg.checkpoints = !args.flag("--no-checkpoints");
    const int jobs = static_cast<int>(args.number("--jobs", 1));
    const bool show_stats = args.flag("--stats");
    if (args.leftovers())
        return usage();

    sim::MachineConfig mc;
    mc.numCores = 2;
    const explore::ExploreResult result =
        jobs == 1
            ? explore::explore(app.factory, mc, cfg)
            : runtime::exploreParallel(app.factory, mc, cfg, jobs);

    std::printf("%s: %d schedules explored (%s), %zu final state%s\n",
                app.name.c_str(), result.runsExecuted,
                result.exhausted ? "exhausted" : "budget reached",
                result.finalStates.size(),
                result.finalStates.size() == 1 ? "" : "s");
    std::printf("  branches pruned %llu, bounded out %llu\n",
                static_cast<unsigned long long>(result.branchesPruned),
                static_cast<unsigned long long>(
                    result.branchesBoundedOut));
    if (show_stats) {
        const explore::ExploreStats &s = result.stats;
        const double dedup =
            s.sigInserts == 0
                ? 0.0
                : 1.0 - static_cast<double>(s.sigUnique) /
                            static_cast<double>(s.sigInserts);
        std::printf(
            "{\"checkpointing\": %s, \"nodes_expanded\": %llu, "
            "\"checkpoint_hits\": %llu, \"checkpoint_misses\": %llu, "
            "\"checkpoints_created\": %llu, "
            "\"checkpoints_evicted\": %llu, "
            "\"checkpoint_bytes\": %llu, \"pages_cow_cloned\": %llu, "
            "\"decisions_restored\": %llu, "
            "\"decisions_executed\": %llu, \"sig_inserts\": %llu, "
            "\"sig_unique\": %llu, \"dedup_rate\": %.4f}\n",
            s.checkpointing ? "true" : "false",
            static_cast<unsigned long long>(s.nodesExpanded),
            static_cast<unsigned long long>(s.checkpointHits),
            static_cast<unsigned long long>(s.checkpointMisses),
            static_cast<unsigned long long>(s.checkpointsCreated),
            static_cast<unsigned long long>(s.checkpointsEvicted),
            static_cast<unsigned long long>(s.checkpointBytes),
            static_cast<unsigned long long>(s.pagesCowCloned),
            static_cast<unsigned long long>(s.decisionsRestored),
            static_cast<unsigned long long>(s.decisionsExecuted),
            static_cast<unsigned long long>(s.sigInserts),
            static_cast<unsigned long long>(s.sigUnique), dedup);
    }
    return 0;
}

int
cmdInfer(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const int runs = static_cast<int>(args.number("--runs", 8));
    sim::MachineConfig mc;
    mc.numCores = 8;
    mc.fpRoundingEnabled = !args.flag("--no-rounding");
    if (args.leftovers())
        return usage();
    const check::InferenceResult result =
        check::inferIgnores(app.factory, mc, runs);
    if (result.empty()) {
        std::printf("%s: no nondeterministic structures found over %d "
                    "comparisons\n",
                    app.name.c_str(), result.comparisons);
        return 0;
    }
    std::printf("%s: nondeterministic structures (from %d "
                "comparisons):\n",
                app.name.c_str(), result.comparisons);
    for (const check::DiffSite &site : result.evidence) {
        std::printf("  %-30s %-12s offsets [%zu, %zu]  %llu bytes\n",
                    site.owner.c_str(), site.type.c_str(), site.offsetLo,
                    site.offsetHi,
                    static_cast<unsigned long long>(site.bytes));
    }
    std::printf("proposed ignore spec:\n");
    for (const std::string &site : result.spec.sites)
        std::printf("  site   %s\n", site.c_str());
    for (const std::string &name : result.spec.globals)
        std::printf("  global %s\n", name.c_str());
    return 0;
}

int
cmdStats(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const std::uint64_t seed = args.number("--seed", 1000);
    const apps::InputScale scale =
        parseScale(args.value("--input").value_or("medium"));
    if (args.leftovers())
        return usage();
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.schedSeed = seed;
    sim::Machine machine(cfg);
    machine.setInstrumentation(true);
    auto program = apps::scaledFactory(app.name, scale)();
    machine.run(*program);
    std::printf("%s", machine.renderStats().c_str());
    return 0;
}

/**
 * Release gate: re-derive every workload's determinism class and compare
 * against the registry's expectation (i.e., against Table 1).
 */
int
cmdVerify(Args &args)
{
    apps::CharacterizeConfig cfg;
    cfg.runs = static_cast<int>(args.number("--runs", 12));
    cfg.jobs = static_cast<int>(args.number("--jobs", 0));
    if (args.leftovers())
        return usage();
    int failures = 0;
    for (const apps::AppInfo &app : apps::registry()) {
        const apps::Table1Row row = apps::characterizeApp(app, cfg);
        apps::DetClass measured;
        if (row.detAsIs) {
            measured = apps::DetClass::BitByBit;
        } else if (row.detAfterFp) {
            measured = apps::DetClass::FpRounding;
        } else if (row.detAfterIgnores.value_or(false)) {
            measured = apps::DetClass::SmallStruct;
        } else {
            measured = apps::DetClass::NonDet;
        }
        // streamcluster ships with the real bug: bitwise-nondet at
        // internal barriers yet classified bit-by-bit (Table 1's star).
        const bool streamcluster_star =
            app.name == "streamcluster" &&
            app.expected == apps::DetClass::BitByBit &&
            row.bitwise.detAtEnd && row.bitwise.outputDeterministic;
        const bool ok =
            measured == app.expected || streamcluster_star;
        std::printf("%-14s expected %-13s measured %-13s %s\n",
                    app.name.c_str(),
                    apps::detClassName(app.expected).c_str(),
                    apps::detClassName(measured).c_str(),
                    ok ? "OK" : "MISMATCH");
        failures += ok ? 0 : 1;
    }
    if (failures == 0)
        std::printf("all %zu workloads match Table 1\n",
                    apps::registry().size());
    return failures == 0 ? 0 : 1;
}

int
cmdLocalize(const std::string &app_name, Args &args)
{
    const apps::AppInfo &app = apps::findApp(app_name);
    const std::uint64_t checkpoint = args.number("--checkpoint", 0);
    const std::uint64_t seed_a = args.number("--seed-a", 1000);
    const std::uint64_t seed_b = args.number("--seed-b", 1001);
    if (args.leftovers())
        return usage();
    sim::MachineConfig mc;
    mc.numCores = 8;
    const check::LocalizeReport report = check::localizeNondeterminism(
        app.factory, mc, seed_a, seed_b, checkpoint);
    std::printf("%s: %llu differing bytes at checkpoint %llu "
                "(seeds %llu vs %llu)\n",
                app.name.c_str(),
                static_cast<unsigned long long>(report.totalDiffBytes),
                static_cast<unsigned long long>(checkpoint),
                static_cast<unsigned long long>(seed_a),
                static_cast<unsigned long long>(seed_b));
    for (const check::DiffSite &site : report.sites) {
        std::printf("  %-30s %-12s offsets [%zu, %zu]  %llu bytes\n",
                    site.owner.c_str(), site.type.c_str(), site.offsetLo,
                    site.offsetHi,
                    static_cast<unsigned long long>(site.bytes));
    }
    if (report.sites.empty())
        std::printf("  (states identical at this checkpoint)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "verify") {
        Args args(argc, argv, 2);
        return cmdVerify(args);
    }
    if (argc < 3)
        return usage();
    const std::string app_name = argv[2];
    Args args(argc, argv, 3);
    if (command == "check")
        return cmdCheck(app_name, args);
    if (command == "characterize")
        return cmdCharacterize(app_name, args);
    if (command == "explore")
        return cmdExplore(app_name, args);
    if (command == "localize")
        return cmdLocalize(app_name, args);
    if (command == "stats")
        return cmdStats(app_name, args);
    if (command == "infer")
        return cmdInfer(app_name, args);
    return usage();
}
