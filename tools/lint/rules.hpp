#ifndef ICHECK_LINT_RULES_HPP
#define ICHECK_LINT_RULES_HPP

/**
 * @file
 * The D/C/H rule implementations.
 *
 * Rules run over the token stream of one file plus a small amount of
 * path context (is this file in the timing whitelist? in arena code? in
 * src/runtime?). They are heuristic by design — no template
 * instantiation, no cross-TU analysis — and err on the side of
 * flagging: a human answers every finding either with a fix or with a
 * reasoned suppression comment (`icheck-lint: allow(D1): why`).
 */

#include <string>
#include <vector>

#include "finding.hpp"
#include "token.hpp"

namespace icheck::lint
{

/** Per-run knobs; the defaults encode this repository's layout. */
struct LintConfig
{
    /**
     * Path substrings where steady_clock::now() is legitimate (timing
     * measurement that never feeds a hash or report payload).
     */
    std::vector<std::string> timingWhitelist = {
        "bench/", "src/runtime/", "src/service/", "tools/loadgen/",
        "tests/"};

    /** Path substrings where raw new/delete is arena business. */
    std::vector<std::string> arenaWhitelist = {"src/mem/"};

    /**
     * Path substrings where C2 (unlocked counter updates) applies. The
     * service's codecs (json, record_codec) are single-threaded parsers
     * whose cursors are not shared counters, so only the concurrent
     * pieces of src/service/ are in scope.
     */
    std::vector<std::string> lockedCounterScope = {
        "src/runtime/", "src/service/daemon", "src/service/executor",
        "src/service/serve_loop"};

    /**
     * An object is considered guarded when at least this fraction of
     * its writes hold the reference lock (and minGuardWrites is met).
     * The guarded-by relation gates L3, read-flagging, and the X1
     * cross-check; L1 flags non-conforming writes at a lower bar (any
     * locked write plus minGuardWrites total).
     */
    double guardRatio = 0.8;

    /** Minimum writes before guard inference says anything at all. */
    int minGuardWrites = 2;

    /**
     * Worker threads for the per-file phase (lex + pattern rules +
     * symbol/lockset fact extraction). 1 = serial; 0 = one per core.
     * Output is byte-identical for every value.
     */
    unsigned jobs = 1;
};

/** Run every code rule over @p lexed (from @p path) into @p findings. */
void runCodeRules(const std::string &path, const LexResult &lexed,
                  const LintConfig &config,
                  std::vector<Finding> &findings);

/** Run the comment rules (H3) over @p lexed into @p findings. */
void runCommentRules(const std::string &path, const LexResult &lexed,
                     std::vector<Finding> &findings);

/** True if @p path contains any of @p needles. */
bool pathMatchesAny(const std::string &path,
                    const std::vector<std::string> &needles);

} // namespace icheck::lint

#endif // ICHECK_LINT_RULES_HPP
