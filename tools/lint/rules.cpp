#include "rules.hpp"

#include <cstddef>
#include <map>
#include <set>

#include "stream.hpp"

namespace icheck::lint
{

namespace
{

void
report(std::vector<Finding> &findings, Rule rule, const std::string &path,
       int line, const std::string &detail)
{
    Finding finding;
    finding.rule = rule;
    finding.file = path;
    finding.line = line;
    finding.message = detail;
    findings.push_back(std::move(finding));
}

bool
isUnorderedContainer(const std::string &name)
{
    return name == "unordered_map" || name == "unordered_set" ||
           name == "unordered_multimap" || name == "unordered_multiset";
}

bool
isClockName(const std::string &name)
{
    return name == "steady_clock" || name == "system_clock" ||
           name == "high_resolution_clock";
}

/** Names declared in the file that the pattern rules care about. */
struct DeclNames
{
    std::set<std::string> unorderedVars;
    std::set<std::string> atomicVars;
    /** using Alias = ...steady_clock; maps Alias -> clock identifier. */
    std::map<std::string, std::string> clockAliases;
};

DeclNames
collectDeclNames(const Stream &s)
{
    DeclNames names;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const std::string &text = s.text(i);
        if (isUnorderedContainer(text) || text == "atomic") {
            std::size_t j = i + 1;
            if (s.is(j, "<"))
                j = skipAngles(s, j);
            while (s.is(j, "&") || s.is(j, "*") || s.is(j, "const"))
                ++j;
            if (s.isIdent(j)) {
                if (text == "atomic")
                    names.atomicVars.insert(s.text(j));
                else
                    names.unorderedVars.insert(s.text(j));
            }
        } else if (text == "using" && s.isIdent(i + 1) &&
                   s.is(i + 2, "=")) {
            for (std::size_t j = i + 3;
                 j < s.size() && !s.is(j, ";"); ++j) {
                if (isClockName(s.text(j))) {
                    names.clockAliases[s.text(i + 1)] = s.text(j);
                    break;
                }
            }
        }
    }
    return names;
}

/* ------------------------------------------------------------------ */
/* D1: iteration over unordered containers                            */
/* ------------------------------------------------------------------ */

void
scanUnorderedIteration(const Stream &s, const DeclNames &names,
                       const std::string &path,
                       std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        // Range-for whose range expression ends in an unordered name.
        if (s.is(i, "for") && s.is(i + 1, "(")) {
            const std::size_t close = skipParens(s, i + 1) - 1;
            if (close < s.size() && s.isIdent(close - 1) &&
                names.unorderedVars.count(s.text(close - 1)) != 0) {
                report(findings, Rule::D1, path, s.line(close - 1),
                       "range-for over unordered container '" +
                           s.text(close - 1) + "'");
            }
        }
        // Explicit iterator traversal: name.begin() / name.cbegin().
        if (s.isIdent(i) && names.unorderedVars.count(s.text(i)) != 0 &&
            (s.is(i + 1, ".") || s.is(i + 1, "->")) &&
            (s.is(i + 2, "begin") || s.is(i + 2, "cbegin")) &&
            s.is(i + 3, "(")) {
            report(findings, Rule::D1, path, s.line(i),
                   "iterator traversal of unordered container '" +
                       s.text(i) + "'");
        }
    }
}

/* ------------------------------------------------------------------ */
/* D2: pointer-valued ordering keys                                   */
/* ------------------------------------------------------------------ */

bool
isOrderedAssoc(const std::string &name)
{
    return name == "map" || name == "set" || name == "multimap" ||
           name == "multiset";
}

void
scanPointerKeys(const Stream &s, const std::string &path,
                std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (isOrderedAssoc(s.text(i)) && s.is(i + 1, "<") &&
            !s.is(i - 1, ".") && !s.is(i - 1, "->")) {
            // Walk the first template argument (up to the ',' or the
            // closing '>' at depth 1) looking for a pointer declarator.
            int depth = 0;
            for (std::size_t j = i + 1; j < s.size(); ++j) {
                const std::string &text = s.text(j);
                if (text == "<")
                    ++depth;
                else if (text == ">")
                    --depth;
                else if (text == ">>")
                    depth -= 2;
                else if (text == ";" || text == "{")
                    break;
                else if (text == "," && depth == 1)
                    break;
                else if (text == "*") {
                    report(findings, Rule::D2, path, s.line(i),
                           "ordered container '" + s.text(i) +
                               "' keyed by a pointer type");
                    break;
                }
                if (depth <= 0)
                    break;
            }
        }
        // sort(...) with a comparator lambda taking pointer parameters.
        if ((s.is(i, "sort") || s.is(i, "stable_sort")) &&
            s.is(i + 1, "(")) {
            const std::size_t close = skipParens(s, i + 1);
            for (std::size_t j = i + 2; j < close; ++j) {
                if (!s.is(j, "["))
                    continue;
                std::size_t k = j;
                while (k < close && !s.is(k, "]"))
                    ++k;
                if (!s.is(k + 1, "("))
                    continue;
                const std::size_t params_end = skipParens(s, k + 1);
                int stars = 0;
                for (std::size_t p = k + 1; p < params_end; ++p) {
                    if (s.is(p, "*"))
                        ++stars;
                }
                if (stars >= 2) {
                    report(findings, Rule::D2, path, s.line(j),
                           "sort comparator ordering by pointer "
                           "parameters");
                }
                j = params_end;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* D3: nondeterministic calls                                         */
/* ------------------------------------------------------------------ */

void
scanNondetCalls(const Stream &s, const DeclNames &names,
                const std::string &path, const LintConfig &config,
                std::vector<Finding> &findings)
{
    const bool timing_ok = pathMatchesAny(path, config.timingWhitelist);
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (!s.isIdent(i))
            continue;
        if (s.is(i - 1, ".") || s.is(i - 1, "->"))
            continue; // member access: some other type's method
        const std::string &name = s.text(i);
        if (name == "random_device") {
            report(findings, Rule::D3, path, s.line(i),
                   "std::random_device is nondeterministic by design");
        } else if ((name == "rand" || name == "srand" ||
                    name == "getenv") &&
                   s.is(i + 1, "(")) {
            report(findings, Rule::D3, path, s.line(i),
                   "call to '" + name + "'");
        } else if (name == "clock" && s.is(i + 1, "(") &&
                   s.is(i + 2, ")")) {
            // libc clock() is niladic; clock(x) is someone's own
            // function.
            report(findings, Rule::D3, path, s.line(i),
                   "call to 'clock'");
        } else if (name == "time" && s.is(i + 1, "(") &&
                   (s.is(i + 2, "nullptr") || s.is(i + 2, "NULL") ||
                    s.is(i + 2, "0") || s.is(i + 2, "&"))) {
            // libc time() is called with a null or address argument;
            // anything else is likelier a local function named time.
            report(findings, Rule::D3, path, s.line(i),
                   "call to 'time'");
        } else if (name == "now" && s.is(i - 1, "::")) {
            std::string clock = s.text(i - 2);
            const auto alias = names.clockAliases.find(clock);
            if (alias != names.clockAliases.end())
                clock = alias->second;
            if (clock == "steady_clock" && timing_ok)
                continue;
            if (isClockName(clock)) {
                report(findings, Rule::D3, path, s.line(i),
                       clock + "::now() outside the timing whitelist");
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* C3: detached threads                                               */
/* ------------------------------------------------------------------ */

void
scanDetach(const Stream &s, const std::string &path,
           std::vector<Finding> &findings)
{
    for (std::size_t i = 0; i < s.size(); ++i) {
        if ((s.is(i, ".") || s.is(i, "->")) && s.is(i + 1, "detach") &&
            s.is(i + 2, "(")) {
            report(findings, Rule::C3, path, s.line(i + 1),
                   "thread detached instead of joined");
        }
    }
}

/* ------------------------------------------------------------------ */
/* H2: raw new/delete outside arena code                              */
/* ------------------------------------------------------------------ */

void
scanRawNewDelete(const Stream &s, const std::string &path,
                 const LintConfig &config,
                 std::vector<Finding> &findings)
{
    if (pathMatchesAny(path, config.arenaWhitelist))
        return;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s.is(i - 1, "operator"))
            continue;
        if (s.is(i, "new")) {
            report(findings, Rule::H2, path, s.line(i),
                   "raw new outside arena code");
        } else if (s.is(i, "delete") && !s.is(i - 1, "=")) {
            report(findings, Rule::H2, path, s.line(i),
                   "raw delete outside arena code");
        }
    }
}

/* ------------------------------------------------------------------ */
/* Scope walker: C1 (mutable statics), C2 (unlocked counter updates), */
/* H1 (virtual without override in derived classes)                   */
/* ------------------------------------------------------------------ */

enum class ScopeKind
{
    Top,
    Namespace,
    Class,
    DerivedClass,
    Enum,
    Function,
    Block,
};

struct Scope
{
    ScopeKind kind = ScopeKind::Top;
    bool lockHeld = false;
    std::set<std::string> locals;
};

bool
isControlKeyword(const std::string &text)
{
    return text == "if" || text == "for" || text == "while" ||
           text == "switch" || text == "do" || text == "else" ||
           text == "try" || text == "catch";
}

/** Type-ish tokens allowed in a declaration head before the name. */
bool
isDeclHeadToken(const Stream &s, std::size_t i)
{
    if (s.isIdent(i))
        return true;
    const std::string &text = s.text(i);
    return text == "::" || text == "<" || text == ">" || text == ">>" ||
           text == "*" || text == "&" || text == ",";
}

class ScopeWalker
{
  public:
    ScopeWalker(const Stream &s, const DeclNames &names,
                const std::string &path, const LintConfig &config,
                std::vector<Finding> &findings)
        : s(s), names(names), path(path), findings(findings),
          counterRules(pathMatchesAny(path, config.lockedCounterScope))
    {
        stack.push_back(Scope{});
    }

    void
    run()
    {
        for (std::size_t i = 0; i < s.size(); ++i)
            step(i);
    }

  private:
    const Stream &s;
    const DeclNames &names;
    const std::string &path;
    std::vector<Finding> &findings;
    const bool counterRules;

    std::vector<Scope> stack;
    std::vector<std::size_t> head; ///< Token indices of the open statement.

    Scope &
    current()
    {
        return stack.back();
    }

    bool
    lockActive() const
    {
        return stack.back().lockHeld;
    }

    bool
    isLocal(const std::string &name) const
    {
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            if (it->locals.count(name) != 0)
                return true;
            if (it->kind == ScopeKind::Function)
                break; // captures of enclosing functions do not count
        }
        return false;
    }

    bool
    headContains(const char *want) const
    {
        for (const std::size_t i : head) {
            if (s.is(i, want))
                return true;
        }
        return false;
    }

    /** Register names that look like parameters in the head's parens. */
    void
    declareHeadParams(Scope &scope)
    {
        for (std::size_t n = 0; n + 1 < head.size(); ++n) {
            const std::size_t i = head[n];
            const std::size_t next = head[n + 1];
            if (s.isIdent(i) &&
                (s.is(next, ",") || s.is(next, ")") || s.is(next, "=") ||
                 s.is(next, ":")))
                scope.locals.insert(s.text(i));
        }
    }

    /** Declare range-for and init-statement variables when 'for (' opens. */
    void
    declareForHeader(std::size_t i)
    {
        const std::size_t close = skipParens(s, i + 1);
        for (std::size_t j = i + 2; j + 1 < close; ++j) {
            if (s.isIdent(j) && (s.is(j + 1, "=") || s.is(j + 1, ":")))
                current().locals.insert(s.text(j));
        }
    }

    void
    classifyAndPush()
    {
        Scope scope;
        const ScopeKind enclosing = current().kind;
        if (headContains("namespace")) {
            scope.kind = ScopeKind::Namespace;
        } else if (headContains("enum")) {
            scope.kind = ScopeKind::Enum;
        } else if ((headContains("class") || headContains("struct") ||
                    headContains("union")) &&
                   !headContains("(")) {
            scope.kind = headContains(":") ? ScopeKind::DerivedClass
                                           : ScopeKind::Class;
        } else if (!head.empty() && s.is(head.back(), "]")) {
            // Capture-only lambda, `[this] { ... }`: a body with no
            // parameter list still starts a new execution context.
            scope.kind = ScopeKind::Function;
        } else if (!head.empty() &&
                   isControlKeyword(s.text(head.front()))) {
            scope.kind = ScopeKind::Block;
            scope.lockHeld = lockActive();
        } else if (headContains(")") &&
                   (enclosing == ScopeKind::Function ||
                    enclosing == ScopeKind::Block) &&
                   !headContains("]")) {
            // A paren group inside another function that is not a
            // lambda: an initializer or compound expression, not a new
            // execution context.
            scope.kind = ScopeKind::Block;
            scope.lockHeld = lockActive();
            declareHeadParams(scope);
        } else if (headContains(")")) {
            scope.kind = ScopeKind::Function;
            declareHeadParams(scope);
        } else if (headContains("]") && headContains("(")) {
            scope.kind = ScopeKind::Function;
            declareHeadParams(scope);
        } else {
            scope.kind = ScopeKind::Block;
            scope.lockHeld = lockActive();
        }
        // Lambdas are deferred execution: the lock at the definition
        // site is not held when the body runs.
        if (headContains("]") && scope.kind == ScopeKind::Function)
            scope.lockHeld = false;
        stack.push_back(std::move(scope));
        head.clear();
    }

    /** Handle a declaration statement ending at ';' or '=': add locals. */
    void
    declareFromHead()
    {
        if (current().kind != ScopeKind::Function &&
            current().kind != ScopeKind::Block)
            return;
        // Candidate segment: head up to the first '=' or '(' if any.
        std::size_t end = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            if (s.is(head[n], "=") || s.is(head[n], "(")) {
                end = n;
                break;
            }
        }
        if (end < 2)
            return;
        const std::size_t last = head[end - 1];
        if (!s.isIdent(last))
            return;
        for (std::size_t n = 0; n < end - 1; ++n) {
            if (!isDeclHeadToken(s, head[n]))
                return;
        }
        current().locals.insert(s.text(last));
    }

    /** True if @p text names a type that is safe to share mutable. */
    static bool
    isSynchronizedOrImmutable(const std::string &text)
    {
        return text == "const" || text == "constexpr" ||
               text == "constinit" || text == "thread_local" ||
               text == "atomic" || text == "mutex" ||
               text == "shared_mutex" || text == "once_flag" ||
               text == "condition_variable";
    }

    /** C1 (keyword form): a 'static' declaration in any scope. */
    void
    checkStatic(std::size_t i)
    {
        for (std::size_t j = i + 1; j < s.size(); ++j) {
            const std::string &text = s.text(j);
            if (isSynchronizedOrImmutable(text))
                return;
            if (text == "(")
                return; // function declaration (or paren-init, rare)
            if (text == ";" || text == "{" || text == "=") {
                report(findings, Rule::C1, path, s.line(i),
                       "mutable static variable");
                return;
            }
        }
    }

    /**
     * C1 (linkage form): a mutable global declared at namespace scope
     * without the static keyword — anonymous-namespace globals have
     * internal linkage and are exactly as reachable from pool workers.
     */
    void
    checkNamespaceGlobal()
    {
        if (current().kind != ScopeKind::Namespace || head.empty())
            return;
        static const std::set<std::string> head_skip = {
            "extern",    "using",   "typedef",       "template",
            "friend",    "class",   "struct",        "union",
            "enum",      "namespace", "static_assert", "return",
            "throw",     "operator", "static",       "inline",
        };
        if (head_skip.count(s.text(head.front())) != 0)
            return;
        std::size_t end = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            if (s.is(head[n], "("))
                return; // function declaration or macro invocation
            if (s.is(head[n], ")"))
                return; // tail of a statement split by a braced default
            if (isSynchronizedOrImmutable(s.text(head[n])))
                return;
            if (s.is(head[n], "=") && n < end)
                end = n;
        }
        if (end < 2)
            return;
        const std::size_t last = head[end - 1];
        if (!s.isIdent(last))
            return;
        for (std::size_t n = 0; n < end - 1; ++n) {
            if (!isDeclHeadToken(s, head[n]))
                return;
        }
        report(findings, Rule::C1, path, s.line(last),
               "mutable global '" + s.text(last) +
                   "' at namespace scope");
    }

    /** H1: 'virtual' inside a derived class without override/final. */
    void
    checkVirtual(std::size_t i)
    {
        if (current().kind != ScopeKind::DerivedClass)
            return;
        int parens = 0;
        for (std::size_t j = i + 1; j < s.size(); ++j) {
            const std::string &text = s.text(j);
            if (text == "override" || text == "final")
                return;
            if (text == "(")
                ++parens;
            else if (text == ")")
                --parens;
            else if ((text == ";" || text == "{") && parens <= 0)
                break;
        }
        report(findings, Rule::H1, path, s.line(i),
               "virtual member in derived class lacks override/final");
    }

    /** Root identifier of a member chain ending at token @p i. */
    std::size_t
    chainStart(std::size_t i) const
    {
        std::size_t root = i;
        while (root >= 2 &&
               (s.is(root - 1, ".") || s.is(root - 1, "->")) &&
               s.isIdent(root - 2))
            root -= 2;
        return root;
    }

    void
    reportCounter(std::size_t ident, const char *op)
    {
        const std::size_t root = chainStart(ident);
        const std::string &name = s.text(root);
        if (isLocal(name) || names.atomicVars.count(name) != 0 ||
            names.atomicVars.count(s.text(ident)) != 0)
            return;
        report(findings, Rule::C2, path, s.line(ident),
               std::string("'") + s.text(ident) + "' updated with " + op +
                   " outside any lock scope");
    }

    /** C2: ++/--/+=/-= on a shared name with no lock in scope. */
    void
    checkCounterUpdate(std::size_t i)
    {
        if (!counterRules || lockActive())
            return;
        const ScopeKind kind = current().kind;
        if (kind != ScopeKind::Function && kind != ScopeKind::Block)
            return;
        const std::string &text = s.text(i);
        if (text == "++" || text == "--") {
            if (s.isIdent(i + 1) && !s.isIdent(i - 1) &&
                !s.is(i - 1, ")") && !s.is(i - 1, "]")) {
                // Prefix form: target chain extends forward.
                std::size_t last = i + 1;
                while ((s.is(last + 1, ".") || s.is(last + 1, "->")) &&
                       s.isIdent(last + 2))
                    last += 2;
                reportCounter(last, text.c_str());
            } else if (s.isIdent(i - 1)) {
                reportCounter(i - 1, text.c_str());
            }
        } else if (text == "+=" || text == "-=") {
            if (s.isIdent(i - 1))
                reportCounter(i - 1, text.c_str());
        }
    }

    void
    step(std::size_t i)
    {
        if (s.kind(i) == TokenKind::Preprocessor)
            return;
        const std::string &text = s.text(i);
        if (text == "{") {
            classifyAndPush();
            return;
        }
        if (text == "}") {
            if (stack.size() > 1)
                stack.pop_back();
            head.clear();
            return;
        }
        if (text == ";") {
            declareFromHead();
            checkNamespaceGlobal();
            head.clear();
            return;
        }
        if ((text == "public" || text == "private" ||
             text == "protected") &&
            s.is(i + 1, ":")) {
            head.clear();
            return;
        }
        if (text == "static") {
            checkStatic(i);
        } else if (text == "virtual") {
            checkVirtual(i);
        } else if (text == "for" && s.is(i + 1, "(")) {
            declareForHeader(i);
        } else if (text == "lock_guard" || text == "unique_lock" ||
                   text == "scoped_lock" || text == "shared_lock") {
            current().lockHeld = true;
        } else if (text == "lock" && s.is(i + 1, "(") &&
                   (s.is(i - 1, ".") || s.is(i - 1, "->"))) {
            current().lockHeld = true;
        } else if (text == "unlock" && s.is(i + 1, "(") &&
                   (s.is(i - 1, ".") || s.is(i - 1, "->"))) {
            current().lockHeld = false;
        } else {
            checkCounterUpdate(i);
        }
        // '=' also ends the *declaration* part of a statement: the
        // declared name must be visible to the initializer expression
        // (e.g. `auto it = container.begin()`).
        if (text == "=")
            declareFromHead();
        head.push_back(i);
    }
};

} // namespace

bool
pathMatchesAny(const std::string &path,
               const std::vector<std::string> &needles)
{
    for (const std::string &needle : needles) {
        if (path.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

void
runCodeRules(const std::string &path, const LexResult &lexed,
             const LintConfig &config, std::vector<Finding> &findings)
{
    const Stream s{lexed.tokens};
    const DeclNames names = collectDeclNames(s);
    scanUnorderedIteration(s, names, path, findings);
    scanPointerKeys(s, path, findings);
    scanNondetCalls(s, names, path, config, findings);
    scanDetach(s, path, findings);
    scanRawNewDelete(s, path, config, findings);
    ScopeWalker(s, names, path, config, findings).run();
}

void
runCommentRules(const std::string &path, const LexResult &lexed,
                std::vector<Finding> &findings)
{
    for (const Comment &comment : lexed.comments) {
        const std::size_t todo = comment.text.find("TODO");
        const std::size_t fixme = comment.text.find("FIXME");
        const std::size_t at = todo != std::string::npos ? todo : fixme;
        if (at == std::string::npos)
            continue;
        // Accept TODO(#123), TODO(issue-42), FIXME(gh#7): any
        // parenthesized tag containing a digit right after the marker.
        bool owned = false;
        std::size_t i = at;
        while (i < comment.text.size() && comment.text[i] != '(' &&
               comment.text[i] != '\n')
            ++i;
        if (i < comment.text.size() && comment.text[i] == '(') {
            for (std::size_t j = i + 1;
                 j < comment.text.size() && comment.text[j] != ')';
                 ++j) {
                if (std::isdigit(
                        static_cast<unsigned char>(comment.text[j]))) {
                    owned = true;
                    break;
                }
            }
        }
        if (!owned) {
            report(findings, Rule::H3, path, comment.line,
                   "TODO/FIXME without an issue reference");
        }
    }
}

} // namespace icheck::lint
