#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace icheck::lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within each leading char. */
const char *const kMultiOps[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "+=",
    "-=",  "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=",
    ">=",  "&&",  "||",  "<<",  ">>",  "##",
};

/** Stream cursor with line tracking. */
struct Cursor
{
    const std::string &text;
    std::size_t pos = 0;
    int line = 1;

    bool
    done() const
    {
        return pos >= text.size();
    }

    char
    peek(std::size_t ahead = 0) const
    {
        return pos + ahead < text.size() ? text[pos + ahead] : '\0';
    }

    char
    advance()
    {
        const char c = text[pos++];
        if (c == '\n')
            ++line;
        return c;
    }
};

/**
 * Lex one // comment. Consecutive // lines with no code between them
 * merge into a single logical comment, so a suppression directive or
 * to-do marker wrapped over several lines is seen whole.
 */
void
lexLineComment(Cursor &cur, LexResult &out, std::size_t tokens_before,
               bool own_line)
{
    const int line = cur.line;
    cur.advance();
    cur.advance(); // the two slashes
    std::string text;
    while (!cur.done() && cur.peek() != '\n')
        text += cur.advance();

    // Only whole-line comments merge: a comment trailing code belongs
    // to that line alone, even if another comment follows directly.
    if (own_line && !out.comments.empty()) {
        Comment &prev = out.comments.back();
        if (prev.endLine + 1 == line && prev.mergeable &&
            prev.tokensBefore == tokens_before) {
            prev.text += "\n" + text;
            prev.endLine = line;
            return;
        }
    }
    Comment comment;
    comment.line = line;
    comment.endLine = line;
    comment.text = std::move(text);
    comment.mergeable = own_line;
    comment.tokensBefore = tokens_before;
    out.comments.push_back(std::move(comment));
}

void
lexBlockComment(Cursor &cur, LexResult &out)
{
    Comment comment;
    comment.line = cur.line;
    cur.advance();
    cur.advance(); // the slash-star
    while (!cur.done()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
            cur.advance();
            cur.advance();
            break;
        }
        comment.text += cur.advance();
    }
    comment.endLine = cur.line;
    out.comments.push_back(std::move(comment));
}

/** Lex an ordinary (possibly prefixed) string or char literal body. */
void
lexQuoted(Cursor &cur, char quote)
{
    cur.advance(); // opening quote
    while (!cur.done()) {
        const char c = cur.advance();
        if (c == '\\' && !cur.done())
            cur.advance();
        else if (c == quote)
            break;
    }
}

/** Lex a raw string literal starting at R" (prefix already consumed). */
void
lexRawString(Cursor &cur)
{
    cur.advance(); // R
    cur.advance(); // "
    std::string delim;
    while (!cur.done() && cur.peek() != '(')
        delim += cur.advance();
    if (!cur.done())
        cur.advance(); // (
    const std::string close = ")" + delim + "\"";
    std::string window;
    while (!cur.done()) {
        window += cur.advance();
        if (window.size() > close.size())
            window.erase(window.begin());
        if (window == close)
            break;
    }
}

/** True if the raw-string introducer R"... starts at the cursor. */
bool
atRawString(const Cursor &cur)
{
    return cur.peek() == 'R' && cur.peek(1) == '"';
}

void
lexNumber(Cursor &cur, LexResult &out)
{
    Token token{TokenKind::Number, "", cur.line};
    while (!cur.done()) {
        const char c = cur.peek();
        if (isIdentChar(c) || c == '.' || c == '\'') {
            token.text += cur.advance();
        } else if ((c == '+' || c == '-') && !token.text.empty()) {
            const char prev = token.text.back();
            if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')
                token.text += cur.advance();
            else
                break;
        } else {
            break;
        }
    }
    out.tokens.push_back(std::move(token));
}

void
lexPreprocessor(Cursor &cur, LexResult &out)
{
    Token token{TokenKind::Preprocessor, "", cur.line};
    while (!cur.done()) {
        if (cur.peek() == '\\' && cur.peek(1) == '\n') {
            cur.advance();
            cur.advance();
            token.text += ' ';
            continue;
        }
        if (cur.peek() == '\n')
            break;
        if (cur.peek() == '/' &&
            (cur.peek(1) == '/' || cur.peek(1) == '*'))
            break; // let the comment lexers record it
        token.text += cur.advance();
    }
    out.tokens.push_back(std::move(token));
}

void
lexPunct(Cursor &cur, LexResult &out)
{
    Token token{TokenKind::Punct, "", cur.line};
    for (const char *op : kMultiOps) {
        std::size_t len = 0;
        while (op[len] != '\0' && cur.peek(len) == op[len])
            ++len;
        if (op[len] == '\0') {
            for (std::size_t i = 0; i < len; ++i)
                token.text += cur.advance();
            out.tokens.push_back(std::move(token));
            return;
        }
    }
    token.text += cur.advance();
    out.tokens.push_back(std::move(token));
}

} // namespace

LexResult
lex(const std::string &source)
{
    LexResult out;
    Cursor cur{source};
    bool at_line_start = true;

    while (!cur.done()) {
        const char c = cur.peek();
        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            if (c == '\n')
                at_line_start = true;
            cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '/') {
            lexLineComment(cur, out, out.tokens.size(), at_line_start);
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            lexBlockComment(cur, out);
            continue;
        }
        if (c == '#' && at_line_start) {
            lexPreprocessor(cur, out);
            continue;
        }
        at_line_start = false;
        if (atRawString(cur)) {
            out.tokens.push_back(Token{TokenKind::String, "R\"...\"",
                                       cur.line});
            lexRawString(cur);
            continue;
        }
        if (c == '"') {
            out.tokens.push_back(Token{TokenKind::String, "\"...\"",
                                       cur.line});
            lexQuoted(cur, '"');
            continue;
        }
        if (c == '\'') {
            out.tokens.push_back(Token{TokenKind::CharLit, "'...'",
                                       cur.line});
            lexQuoted(cur, '\'');
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            lexNumber(cur, out);
            continue;
        }
        if (isIdentStart(c)) {
            Token token{TokenKind::Identifier, "", cur.line};
            while (!cur.done() && isIdentChar(cur.peek()))
                token.text += cur.advance();
            out.tokens.push_back(std::move(token));
            continue;
        }
        lexPunct(cur, out);
    }
    return out;
}

} // namespace icheck::lint
