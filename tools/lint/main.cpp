/**
 * @file
 * icheck-lint command line.
 *
 *   icheck-lint [options] <paths...>
 *     --baseline FILE        subtract FILE's accepted findings
 *     --write-baseline FILE  record current findings as the baseline
 *     --update-baseline      rewrite the --baseline file in place
 *     --race-log FILE        cross-check against a dynamic race log
 *     --sarif FILE           also emit SARIF 2.1.0 to FILE
 *     --jobs N               parallel file scans (0 = hardware)
 *     --list-rules           describe every rule and exit
 *     --jsonl                machine-readable output, one JSON per line
 *     --quiet                suppress per-finding hints
 *
 * Exit status: 0 when no new findings, 1 when new findings remain,
 * 2 on usage or I/O errors.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "linter.hpp"
#include "sarif.hpp"

namespace
{

using namespace icheck::lint;

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--baseline FILE] [--write-baseline FILE]"
                 " [--update-baseline] [--race-log FILE]"
                 " [--sarif FILE] [--jobs N]"
                 " [--list-rules] [--jsonl] [--quiet] <paths...>\n";
    return 2;
}

void
listRules()
{
    for (const RuleInfo &info : ruleRegistry()) {
        std::cout << info.id << ": " << info.summary << "\n"
                  << "    fix: " << info.hint << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    std::string baseline_path;
    std::string write_baseline_path;
    std::string race_log_path;
    std::string sarif_path;
    bool update_baseline = false;
    bool jsonl = false;
    bool quiet = false;
    LintConfig config;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            listRules();
            return 0;
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--write-baseline" && i + 1 < argc) {
            write_baseline_path = argv[++i];
        } else if (arg == "--update-baseline") {
            update_baseline = true;
        } else if (arg == "--race-log" && i + 1 < argc) {
            race_log_path = argv[++i];
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            config.jobs =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--jsonl") {
            jsonl = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage(argv[0]);
    if (update_baseline) {
        if (baseline_path.empty()) {
            std::cerr << "icheck-lint: --update-baseline needs "
                         "--baseline FILE\n";
            return 2;
        }
        write_baseline_path = baseline_path;
    }

    std::vector<DynamicRace> races;
    if (!race_log_path.empty()) {
        std::ifstream in(race_log_path);
        if (!in) {
            std::cerr << "icheck-lint: cannot read " << race_log_path
                      << "\n";
            return 2;
        }
        races = readRaceLog(in);
    }

    LintRun run;
    try {
        run = lintPaths(paths, config, races);
    } catch (const std::exception &error) {
        std::cerr << "icheck-lint: " << error.what() << "\n";
        return 2;
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        if (!out) {
            std::cerr << "icheck-lint: cannot write "
                      << write_baseline_path << "\n";
            return 2;
        }
        writeBaseline(out, run.findings);
        std::cout << "icheck-lint: wrote " << run.findings.size()
                  << " baseline entries to " << write_baseline_path
                  << "\n";
        return 0;
    }

    std::vector<KeyedFinding> fresh = run.findings;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::cerr << "icheck-lint: cannot read " << baseline_path
                      << "\n";
            return 2;
        }
        fresh = subtractBaseline(run.findings, readBaseline(in));
    }

    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path);
        if (!out) {
            std::cerr << "icheck-lint: cannot write " << sarif_path
                      << "\n";
            return 2;
        }
        out << renderSarif(fresh) << "\n";
    }

    for (const KeyedFinding &entry : fresh) {
        const RuleInfo &info = ruleInfo(entry.finding.rule);
        if (jsonl) {
            std::cout << "{\"file\":\"" << jsonEscape(entry.finding.file)
                      << "\",\"line\":" << entry.finding.line
                      << ",\"rule\":\"" << info.id << "\",\"severity\":\""
                      << severityName(entry.finding.severity)
                      << "\",\"message\":\""
                      << jsonEscape(entry.finding.message) << "\"}\n";
            continue;
        }
        std::cout << entry.finding.file << ":" << entry.finding.line
                  << ": " << severityName(entry.finding.severity)
                  << ": [" << info.id << "] " << entry.finding.message
                  << "\n";
        if (!quiet)
            std::cout << "    fix: " << info.hint << "\n";
    }
    if (!jsonl) {
        std::cout << "icheck-lint: " << run.filesScanned
                  << " files scanned, " << fresh.size()
                  << " new finding(s)";
        if (!baseline_path.empty())
            std::cout << " (" << run.findings.size() - fresh.size()
                      << " baselined)";
        std::cout << "\n";
    }
    return fresh.empty() ? 0 : 1;
}
