#ifndef ICHECK_LINT_RACELOG_HPP
#define ICHECK_LINT_RACELOG_HPP

/**
 * @file
 * Parser for the JSONL race logs that `icheck check --race-log` writes
 * (src/race/race_log). The linting driver cross-checks these dynamic
 * racing access pairs against its static lockset findings:
 *
 *  - Promotion: a static L1/L2/L3 finding on a line where the dynamic
 *    detector recorded a racing access is no longer a heuristic guess —
 *    it is promoted to error severity and annotated.
 *  - Contradiction (X1): a dynamic race endpoint on a line the lockset
 *    pass believed guarded means the static model is wrong there (a
 *    lock alias it cannot see, or an unlocked path it missed).
 *
 * Race-log paths come from std::source_location (compiler-invocation
 * relative or absolute); lint paths are whatever the user passed.
 * Matching is by path-suffix at '/' component boundaries.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace icheck::lint
{

/** One endpoint of a dynamic race. */
struct RaceEndpoint
{
    std::string file;
    int line = 0;
    int tid = 0;
};

/** One line of the race log. */
struct DynamicRace
{
    std::string app;
    std::string kind;   ///< "write-write" / "read-write" / "write-read".
    std::string symbol; ///< "global:kinetic+0x0" etc.
    RaceEndpoint first;
    RaceEndpoint second;
};

/**
 * Parse a JSONL race log. Tolerant: lines that are not parseable race
 * records are skipped, never fatal (the log may be concatenated across
 * apps and tools).
 */
std::vector<DynamicRace> readRaceLog(std::istream &in);

/** True when one path is a '/'-boundary suffix of the other. */
bool pathsMatch(const std::string &a, const std::string &b);

} // namespace icheck::lint

#endif // ICHECK_LINT_RACELOG_HPP
