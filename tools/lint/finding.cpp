#include "finding.hpp"

namespace icheck::lint
{

const std::vector<RuleInfo> &
ruleRegistry()
{
    static const std::vector<RuleInfo> registry = {
        {Rule::D1, "D1",
         "iteration over an unordered container (hash order is not "
         "deterministic across runs or library versions)",
         "copy into a sorted container or sort the results before they "
         "can reach a report, hash, or output; suppress only if order "
         "provably cannot escape"},
        {Rule::D2, "D2",
         "pointer-valued ordering key (addresses differ between runs, "
         "so the order is not reproducible)",
         "key on a stable id (index, name, sequence number) instead of "
         "an address"},
        {Rule::D3, "D3",
         "nondeterministic call outside the seeded-RNG/timing whitelist "
         "(rand, random_device, time, clock, *_clock::now, getenv)",
         "draw randomness from support/rng.hpp; measure time only in "
         "whitelisted timing code (bench/, src/runtime/, tests/) and "
         "keep it out of hashes and reports"},
        {Rule::C1, "C1",
         "mutable namespace- or class-level static (shared state "
         "reachable from pool workers without synchronization)",
         "make it const/constexpr, thread_local, std::atomic, or move "
         "it behind a mutex-owning class"},
        {Rule::C2, "C2",
         "counter updated outside any lock scope in src/runtime",
         "take the owning mutex, make the counter std::atomic, or "
         "suppress with the lock that the caller is documented to hold"},
        {Rule::C3, "C3",
         "std::thread::detach (detached threads outlive scope and race "
         "shutdown)",
         "keep the thread joinable and join it, or hand it to the pool"},
        {Rule::H1, "H1",
         "virtual member function in a derived class without "
         "override/final",
         "spell override so signature drift is a compile error; "
         "suppress when intentionally introducing a new virtual"},
        {Rule::H2, "H2",
         "raw new/delete outside arena code (src/mem)",
         "use make_unique/make_shared or the arena allocator"},
        {Rule::H3, "H3",
         "TODO/FIXME without an issue reference",
         "write TODO(#123) so the debt is owned, or delete the marker"},
        {Rule::H4, "H4",
         "malformed icheck-lint suppression (unknown rule or missing "
         "reason)",
         "write // icheck-lint: allow(D1): <why this is safe>"},
        {Rule::L1, "L1",
         "write to a shared field without the lock that guards its "
         "other writes (inconsistent guard discipline)",
         "take the guard lock around the write, or suppress citing the "
         "protocol (single-writer phase, barrier ordering) that makes "
         "the lock unnecessary"},
        {Rule::L2, "L2",
         "lock-order inversion: this acquisition order is reversed "
         "elsewhere, so two threads can deadlock",
         "pick one global acquisition order (document it) and acquire "
         "both locks in that order everywhere, or use std::scoped_lock"},
        {Rule::L3, "L3",
         "address of a guard-protected field escapes without the guard "
         "held (callees can then bypass the lock)",
         "pass a copy, or take the guard lock around the escape and "
         "document that the callee must not retain the pointer"},
        {Rule::X1, "X1",
         "dynamic race observed (icheck --race-log) on a line the "
         "static lockset pass believed guarded",
         "the static model missed a lock alias or an unlocked path; "
         "fix the race, then re-run the campaign to confirm the log "
         "entry disappears"},
    };
    return registry;
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:    return "note";
      case Severity::Warning: return "warning";
      case Severity::Error:   return "error";
    }
    return "warning";
}

const RuleInfo &
ruleInfo(Rule rule)
{
    return ruleRegistry()[static_cast<std::size_t>(rule)];
}

bool
parseRule(const std::string &id, Rule &out)
{
    for (const RuleInfo &info : ruleRegistry()) {
        if (id == info.id) {
            out = info.rule;
            return true;
        }
    }
    return false;
}

} // namespace icheck::lint
