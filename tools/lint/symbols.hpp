#ifndef ICHECK_LINT_SYMBOLS_HPP
#define ICHECK_LINT_SYMBOLS_HPP

/**
 * @file
 * Per-translation-unit symbol table for the lockset pass.
 *
 * A tolerant declaration parser walks the token stream once and records
 * the names the dataflow needs to resolve: class/struct definitions with
 * their data members (noting which members are mutexes, atomics, or
 * const), and namespace-scope globals. It is heuristic in exactly the
 * way the rest of icheck-lint is — no preprocessor, no template
 * instantiation, one TU at a time — and errs on the side of recording
 * too much: resolution failures downstream degrade to "not a tracked
 * object", never to a crash.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace icheck::lint
{

/** One data member of a class, or one namespace-scope global. */
struct VarInfo
{
    std::string name;
    std::string type;     ///< Leading type token(s), joined with spaces.
    bool isMutex = false; ///< Type names a mutex (std:: or sim MutexId).
    bool isAtomic = false;
    bool isConst = false; ///< const/constexpr/constinit.
    int line = 0;
};

/** One class/struct definition seen in the TU. */
struct ClassInfo
{
    std::string name;
    std::vector<std::string> bases;
    std::map<std::string, VarInfo> members;
    int line = 0;

    /** True if any member's type is a mutex. */
    bool
    hasMutexMember() const
    {
        for (const auto &[name_, member] : members)
            if (member.isMutex)
                return true;
        return false;
    }
};

/** Everything the lockset pass resolves names against, for one TU. */
struct SymbolTable
{
    std::string file;
    std::map<std::string, ClassInfo> classes;
    std::map<std::string, VarInfo> globals;

    /** Member lookup through the base-class chain (within this TU). */
    const VarInfo *findMember(const std::string &className,
                              const std::string &member) const;
};

/** True if @p type (one token) names a mutex type. */
bool isMutexType(const std::string &type);

/** Build the symbol table for one lexed TU. Never throws on bad input. */
SymbolTable collectSymbols(const std::string &path,
                           const LexResult &lexed);

} // namespace icheck::lint

#endif // ICHECK_LINT_SYMBOLS_HPP
