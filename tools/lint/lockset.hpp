#ifndef ICHECK_LINT_LOCKSET_HPP
#define ICHECK_LINT_LOCKSET_HPP

/**
 * @file
 * Scope-sensitive lockset dataflow over the per-TU symbol table.
 *
 * Phase 1 (per TU, parallelizable): a scope walker tracks which locks
 * are held at every point — RAII guards (lock_guard/unique_lock/
 * scoped_lock/shared_lock), explicit mu.lock()/mu.unlock(), and this
 * repo's simulated ctx.lock(mu)/ctx.unlock(mu) — and records three fact
 * kinds against resolved object names:
 *
 *  - LockAccess: a write (assignment, compound assignment, ++/--, or
 *    ctx.store) or a read (ctx.load) of a class member or global,
 *    with the lockset held at the site;
 *  - LockOrderEdge: lock B acquired while lock A was held;
 *  - EscapeSite: the address of a member/global taken (&x).
 *
 * Names are qualified ("Class::field", "::global") so facts aggregate
 * across TUs. Inside an out-of-line method `K::f`, identifiers that
 * resolve to neither a local nor a TU-visible symbol are treated as
 * members of K — the class body usually lives in a header this TU-local
 * analysis never sees.
 *
 * Phase 2 (global): aggregation infers a guarded-by relation. The
 * *reference lock* of an object is the lock held by most of its writes
 * (ties break lexicographically); an object is *guarded* when at least
 * minGuardWrites writes exist and at least guardRatio of them hold the
 * reference lock. Rules:
 *
 *  - L1: a write (outside constructors/destructors) that does not hold
 *    the object's reference lock, for objects with >= minGuardWrites
 *    writes and at least one locked write; reads are flagged only for
 *    guarded objects.
 *  - L2: a lock-order edge that participates in a cycle of the global
 *    lock-order graph.
 *  - L3: an escape of a guarded object's address without the guard.
 */

#include <map>
#include <set>
#include <string>
#include <vector>

#include "finding.hpp"
#include "rules.hpp"
#include "symbols.hpp"
#include "token.hpp"

namespace icheck::lint
{

/** One access to a tracked object, with the lockset held at the site. */
struct LockAccess
{
    std::string object; ///< Qualified: "Class::field" or "::global".
    std::string file;
    int line = 0;
    bool isWrite = true;
    bool inConstructor = false; ///< Inside a constructor/destructor.
    std::vector<std::string> locksHeld; ///< Qualified, sorted, unique.
};

/** Lock @p second acquired while @p first was held. */
struct LockOrderEdge
{
    std::string first;
    std::string second;
    std::string file;
    int line = 0;
};

/** Address of @p object taken with @p locksHeld held. */
struct EscapeSite
{
    std::string object;
    std::string file;
    int line = 0;
    std::vector<std::string> locksHeld;
};

/** Everything phase 1 extracts from one TU. */
struct LocksetFacts
{
    std::vector<LockAccess> accesses;
    std::vector<LockOrderEdge> edges;
    std::vector<EscapeSite> escapes;
};

/** The inferred guard of one object. */
struct GuardInfo
{
    std::string lock;     ///< Reference lock ("" when no write is locked).
    int lockedWrites = 0; ///< Writes holding the reference lock.
    int totalWrites = 0;
    bool guarded = false; ///< Ratio and write-count thresholds met.
};

/** What the lockset pass ended up believing; feeds the cross-check. */
struct LocksetSummary
{
    std::map<std::string, GuardInfo> guards; ///< object -> inference.

    /**
     * Sites the static pass believed safe: accesses to guarded objects
     * made while holding the reference lock. file -> lines. A dynamic
     * race landing on one of these lines contradicts the model (X1).
     */
    std::map<std::string, std::set<int>> guardedLines;
};

/** Phase 1: extract lockset facts from one lexed TU. */
LocksetFacts collectLocksetFacts(const std::string &path,
                                 const LexResult &lexed,
                                 const SymbolTable &symbols,
                                 const LintConfig &config);

/**
 * Phase 2: aggregate per-TU facts, infer guards, and emit L1/L2/L3
 * findings (deterministic order). Returns the inference summary.
 */
LocksetSummary analyzeLocksets(const std::vector<LocksetFacts> &facts,
                               const LintConfig &config,
                               std::vector<Finding> &findings);

} // namespace icheck::lint

#endif // ICHECK_LINT_LOCKSET_HPP
