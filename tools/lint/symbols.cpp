#include "symbols.hpp"

#include "stream.hpp"

namespace icheck::lint
{

namespace
{

/** Scope classification; only Class and Namespace matter here. */
enum class SymScope
{
    Top,
    Namespace,
    Class,
    Enum,
    Function,
    Block,
};

bool
isControl(const std::string &text)
{
    return text == "if" || text == "for" || text == "while" ||
           text == "switch" || text == "do" || text == "else" ||
           text == "try" || text == "catch";
}

/** Modifier tokens a declaration may start with; stripped from types. */
bool
isDeclModifier(const std::string &text)
{
    return text == "static" || text == "inline" || text == "extern" ||
           text == "mutable" || text == "volatile" ||
           text == "constinit" || text == "thread_local";
}

/** Statement heads that can never be a variable declaration. */
bool
isNonDeclHead(const std::string &text)
{
    return text == "using" || text == "typedef" || text == "template" ||
           text == "friend" || text == "static_assert" ||
           text == "return" || text == "throw" || text == "operator" ||
           text == "namespace" || text == "enum" || text == "class" ||
           text == "struct" || text == "union" || text == "public" ||
           text == "private" || text == "protected" || text == "case" ||
           text == "default" || text == "goto" || text == "break" ||
           text == "continue";
}

/** Type-ish tokens allowed between the modifiers and the declared name. */
bool
isTypeToken(const Stream &s, std::size_t i)
{
    if (s.isIdent(i))
        return true;
    const std::string &text = s.text(i);
    return text == "::" || text == "<" || text == ">" || text == ">>" ||
           text == "*" || text == "&" || text == "," || text == "const";
}

class SymbolWalker
{
  public:
    SymbolWalker(const Stream &s, SymbolTable &table)
        : s(s), table(table)
    {
        scopes.push_back(SymScope::Top);
    }

    void
    run()
    {
        for (std::size_t i = 0; i < s.size(); ++i)
            step(i);
        // Unterminated classes (truncated input): commit what we have.
        while (!openClasses.empty()) {
            commitClass();
        }
    }

  private:
    const Stream &s;
    SymbolTable &table;
    std::vector<SymScope> scopes;
    std::vector<ClassInfo> openClasses; ///< One per enclosing Class scope.
    std::vector<std::size_t> head;

    bool
    headContains(const char *want) const
    {
        for (const std::size_t i : head)
            if (s.is(i, want))
                return true;
        return false;
    }

    void
    commitClass()
    {
        ClassInfo info = std::move(openClasses.back());
        openClasses.pop_back();
        if (!info.name.empty())
            table.classes[info.name] = std::move(info);
    }

    /**
     * Parse `class Name : public Base, Base2` out of the head. The name
     * is the identifier after the last class/struct/union keyword (the
     * last, so `template <class T> struct Foo` finds Foo).
     */
    ClassInfo
    parseClassHead() const
    {
        ClassInfo info;
        std::size_t keyword = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            const std::string &text = s.text(head[n]);
            if (text == "class" || text == "struct" || text == "union")
                keyword = n;
        }
        if (keyword == head.size())
            return info;
        std::size_t n = keyword + 1;
        // Skip attribute/macro identifiers: the name is the identifier
        // right before ':', '{', or the head's end.
        std::size_t name_at = head.size();
        for (; n < head.size() && !s.is(head[n], ":"); ++n) {
            if (s.isIdent(head[n]))
                name_at = n;
        }
        if (name_at == head.size())
            return info;
        info.name = s.text(head[name_at]);
        info.line = s.line(head[name_at]);
        // Bases: identifiers after ':', minus access specifiers and
        // template arguments.
        int angles = 0;
        for (++n; n < head.size(); ++n) {
            const std::string &text = s.text(head[n]);
            if (text == "<")
                ++angles;
            else if (text == ">")
                --angles;
            else if (text == ">>")
                angles -= 2;
            if (angles > 0)
                continue;
            if (s.isIdent(head[n]) && text != "public" &&
                text != "private" && text != "protected" &&
                text != "virtual" &&
                (n + 1 >= head.size() || !s.is(head[n + 1], "::")))
                info.bases.push_back(text);
        }
        return info;
    }

    /**
     * Try to parse the head as `modifiers type name [= init]`. Returns
     * false if the head cannot be a variable declaration.
     */
    bool
    parseVarDecl(VarInfo &var) const
    {
        if (head.empty() || isNonDeclHead(s.text(head.front())))
            return false;
        std::size_t end = head.size();
        for (std::size_t n = 0; n < head.size(); ++n) {
            if (s.is(head[n], "(") || s.is(head[n], ")") ||
                s.is(head[n], "[") || s.is(head[n], "]"))
                return false; // function, array, or macro invocation
            if (s.is(head[n], "=")) {
                end = n;
                break;
            }
        }
        std::size_t begin = 0;
        while (begin < end && isDeclModifier(s.text(head[begin])))
            ++begin;
        if (end - begin < 2)
            return false;
        const std::size_t name_at = head[end - 1];
        if (!s.isIdent(name_at))
            return false;
        for (std::size_t n = begin; n + 1 < end; ++n) {
            if (!isTypeToken(s, head[n]))
                return false;
        }
        var.name = s.text(name_at);
        var.line = s.line(name_at);
        for (std::size_t n = begin; n + 1 < end; ++n) {
            const std::string &text = s.text(head[n]);
            if (!var.type.empty())
                var.type += ' ';
            var.type += text;
            if (isMutexType(text))
                var.isMutex = true;
            if (text == "atomic" || text == "atomic_flag")
                var.isAtomic = true;
            if (text == "const" || text == "constexpr")
                var.isConst = true;
        }
        for (const std::size_t i : head) {
            const std::string &text = s.text(i);
            if (text == "constexpr" || text == "constinit")
                var.isConst = true;
        }
        return true;
    }

    void
    endStatement()
    {
        VarInfo var;
        if (scopes.back() == SymScope::Class && !openClasses.empty()) {
            if (parseVarDecl(var)) {
                openClasses.back().members[var.name] = std::move(var);
            }
        } else if (scopes.back() == SymScope::Namespace ||
                   scopes.back() == SymScope::Top) {
            if (parseVarDecl(var))
                table.globals[var.name] = std::move(var);
        }
        head.clear();
    }

    void
    classifyAndPush()
    {
        const bool classHead =
            (headContains("class") || headContains("struct") ||
             headContains("union")) &&
            !headContains("(") && !headContains("enum");
        if (headContains("namespace")) {
            scopes.push_back(SymScope::Namespace);
        } else if (headContains("enum")) {
            scopes.push_back(SymScope::Enum);
        } else if (classHead) {
            scopes.push_back(SymScope::Class);
            openClasses.push_back(parseClassHead());
        } else if (headContains(")") || headContains("]")) {
            scopes.push_back(SymScope::Function);
        } else if (!head.empty() && isControl(s.text(head.front()))) {
            scopes.push_back(SymScope::Block);
        } else {
            // Brace initializer on a declaration — `std::atomic<long>
            // hits{0};` — commits the variable here; the '{' never
            // reaches endStatement.
            VarInfo var;
            if (scopes.back() == SymScope::Class &&
                !openClasses.empty() && parseVarDecl(var)) {
                openClasses.back().members[var.name] = std::move(var);
            } else if ((scopes.back() == SymScope::Namespace ||
                        scopes.back() == SymScope::Top) &&
                       parseVarDecl(var)) {
                table.globals[var.name] = std::move(var);
            }
            scopes.push_back(SymScope::Block);
        }
        head.clear();
    }

    void
    step(std::size_t i)
    {
        if (s.kind(i) == TokenKind::Preprocessor)
            return;
        const std::string &text = s.text(i);
        if (text == "{") {
            classifyAndPush();
            return;
        }
        if (text == "}") {
            if (scopes.size() > 1) {
                if (scopes.back() == SymScope::Class &&
                    !openClasses.empty())
                    commitClass();
                scopes.pop_back();
            }
            head.clear();
            return;
        }
        if (text == ";") {
            endStatement();
            return;
        }
        if ((text == "public" || text == "private" ||
             text == "protected") &&
            s.is(i + 1, ":")) {
            head.clear();
            return;
        }
        head.push_back(i);
    }
};

} // namespace

bool
isMutexType(const std::string &type)
{
    // std::mutex and friends, plus this repo's simulated sim::MutexId.
    return type == "mutex" || type == "shared_mutex" ||
           type == "recursive_mutex" || type == "timed_mutex" ||
           type == "recursive_timed_mutex" || type == "shared_timed_mutex" ||
           type == "MutexId";
}

const VarInfo *
SymbolTable::findMember(const std::string &className,
                        const std::string &member) const
{
    // Iterative base-chain walk with a visited set: inheritance cycles
    // cannot occur in valid C++, but the parser is tolerant of invalid
    // input and must not recurse forever on it.
    std::set<std::string> visited;
    std::vector<const ClassInfo *> worklist;
    if (const auto cls = classes.find(className); cls != classes.end()) {
        worklist.push_back(&cls->second);
        visited.insert(className);
    }
    while (!worklist.empty()) {
        const ClassInfo *cls = worklist.back();
        worklist.pop_back();
        const auto hit = cls->members.find(member);
        if (hit != cls->members.end())
            return &hit->second;
        for (const std::string &base : cls->bases) {
            if (!visited.insert(base).second)
                continue;
            const auto next = classes.find(base);
            if (next != classes.end())
                worklist.push_back(&next->second);
        }
    }
    return nullptr;
}

SymbolTable
collectSymbols(const std::string &path, const LexResult &lexed)
{
    SymbolTable table;
    table.file = path;
    const Stream s{lexed.tokens};
    SymbolWalker(s, table).run();
    return table;
}

} // namespace icheck::lint
