#ifndef ICHECK_LINT_STREAM_HPP
#define ICHECK_LINT_STREAM_HPP

/**
 * @file
 * Bounds-safe view over a lexed token vector, shared by every analysis
 * pass (pattern rules, symbol collection, lockset dataflow). Out-of-range
 * indices answer harmless defaults so scanners can look ahead and behind
 * without guarding every access.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "token.hpp"

namespace icheck::lint
{

/** Bounds-safe view over the code token vector. */
struct Stream
{
    const std::vector<Token> &tokens;

    std::size_t
    size() const
    {
        return tokens.size();
    }

    const std::string &
    text(std::size_t i) const
    {
        static const std::string empty;
        return i < tokens.size() ? tokens[i].text : empty;
    }

    TokenKind
    kind(std::size_t i) const
    {
        return i < tokens.size() ? tokens[i].kind : TokenKind::Punct;
    }

    bool
    is(std::size_t i, const char *want) const
    {
        return i < tokens.size() && tokens[i].text == want;
    }

    bool
    isIdent(std::size_t i) const
    {
        return kind(i) == TokenKind::Identifier;
    }

    int
    line(std::size_t i) const
    {
        return i < tokens.size() ? tokens[i].line : 0;
    }
};

/**
 * Skip a balanced template argument list; @p i points at '<'. Returns
 * the index just past the matching '>', or @p i + 1 if the brackets
 * never balance (then it probably was a comparison, not a template).
 */
inline std::size_t
skipAngles(const Stream &s, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < s.size(); ++j) {
        const std::string &text = s.text(j);
        if (text == "<")
            ++depth;
        else if (text == ">")
            --depth;
        else if (text == ">>")
            depth -= 2;
        else if (text == ";" || text == "{" || text == "}")
            break;
        if (depth <= 0)
            return j + 1;
    }
    return i + 1;
}

/** Skip a balanced paren group; @p i points at '('. */
inline std::size_t
skipParens(const Stream &s, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < s.size(); ++j) {
        if (s.is(j, "("))
            ++depth;
        else if (s.is(j, ")") && --depth == 0)
            return j + 1;
    }
    return s.size();
}

} // namespace icheck::lint

#endif // ICHECK_LINT_STREAM_HPP
