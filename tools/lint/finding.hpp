#ifndef ICHECK_LINT_FINDING_HPP
#define ICHECK_LINT_FINDING_HPP

/**
 * @file
 * Findings and the rule registry for icheck-lint.
 *
 * Rule families mirror the determinism promise of the project itself:
 *
 *  - D-rules flag determinism hazards — anything whose result can differ
 *    between two executions of the same build (hash-ordered iteration,
 *    address-valued ordering keys, wall-clock and environment reads).
 *  - C-rules flag concurrency hazards in code reachable from the pool
 *    workers (shared mutable statics, unlocked counter updates, detached
 *    threads).
 *  - H-rules flag hygiene issues that make the first two families harder
 *    to audit (missing override, raw new/delete outside arenas,
 *    unowned to-do markers, malformed suppressions).
 *  - L-rules come from the symbol-aware lockset pass: a per-TU symbol
 *    table plus a scope-sensitive lockset dataflow infer which lock
 *    guards each shared field, then flag writes that skip the guard
 *    (L1), lock-order inversions (L2), and guarded fields whose address
 *    escapes the lock (L3).
 *  - X-rules cross-check static belief against dynamic evidence: X1
 *    fires when `icheck check --race-log` recorded a race on a line the
 *    lockset pass believed guarded.
 */

#include <string>
#include <vector>

namespace icheck::lint
{

/** Every rule icheck-lint knows. Stable ids: they appear in baselines. */
enum class Rule
{
    D1, ///< Iteration over an unordered container.
    D2, ///< Pointer-valued ordering key (map/set key or sort comparator).
    D3, ///< Nondeterministic call (rand/random_device/time/clock/getenv).
    C1, ///< Mutable namespace- or class-level static.
    C2, ///< Non-atomic counter update outside a lock (src/runtime).
    C3, ///< std::thread::detach.
    H1, ///< Virtual member in a derived class without override/final.
    H2, ///< Raw new/delete outside arena code.
    H3, ///< To-do marker without an issue reference.
    H4, ///< Malformed suppression (unknown rule or missing reason).
    L1, ///< Write to a field that skips the field's inferred guard lock.
    L2, ///< Lock-order inversion (A before B here, B before A elsewhere).
    L3, ///< Address of a guarded field escapes without the guard held.
    X1, ///< Dynamic race on a line the static pass believed guarded.
};

/** How bad a finding is; SARIF levels map 1:1. */
enum class Severity
{
    Note,
    Warning,
    Error,
};

/** "note" / "warning" / "error" — the SARIF level spelling. */
const char *severityName(Severity severity);

/** Static description of one rule. */
struct RuleInfo
{
    Rule rule;
    const char *id;      ///< "D1" etc., the spelling used everywhere.
    const char *summary; ///< One-line description of the hazard.
    const char *hint;    ///< How to fix or legitimately suppress it.
};

/** Registry of all rules, in id order. */
const std::vector<RuleInfo> &ruleRegistry();

/** The info entry for @p rule. */
const RuleInfo &ruleInfo(Rule rule);

/** Parse "D1" etc.; returns false if @p id names no rule. */
bool parseRule(const std::string &id, Rule &out);

/** One reported lint finding. */
struct Finding
{
    Rule rule = Rule::D1;
    std::string file;
    int line = 0;
    std::string message;
    Severity severity = Severity::Warning;
};

} // namespace icheck::lint

#endif // ICHECK_LINT_FINDING_HPP
